# Convenience targets for the HERD reproduction.

.PHONY: install test bench figures figures-full examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

figures:
	python -m repro.bench.cli all --scale bench

figures-full:
	python -m repro.bench.cli all --scale full

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf benchmarks/out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
