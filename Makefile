# Convenience targets for the HERD reproduction.

.PHONY: install test bench figures figures-full examples metrics-smoke chaos-smoke ha-smoke lab-smoke elastic-smoke engine-smoke qos-smoke txn-smoke nemesis-smoke clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

figures:
	python -m repro.bench.cli all --scale bench

figures-full:
	python -m repro.bench.cli all --scale full

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

# One small figure with full observability on; both artifacts must parse.
metrics-smoke:
	python -m repro.bench.cli fig2 --metrics /tmp/herd-metrics.json \
		--trace /tmp/herd-trace.json
	python -c "import json; m = json.load(open('/tmp/herd-metrics.json')); \
		assert m['runs'] and all(r['stations'] for r in m['runs']), 'no station metrics'; \
		t = json.load(open('/tmp/herd-trace.json')); \
		assert any(e['ph'] == 'X' for e in t['traceEvents']), 'no trace spans'; \
		print('metrics-smoke ok: %d runs, %d trace events' \
		% (len(m['runs']), len(t['traceEvents'])))"

# Two seeded chaos runs (loss + corruption + duplication + reordering +
# NIC stall + RNR + one server crash); the harness exits non-zero if any
# safety invariant is violated, and the same seed twice must yield the
# same fingerprint (checked inside the test suite too).
chaos-smoke:
	python -m repro.bench.cli --chaos --chaos-seed 7 --chaos-runs 2 \
		--metrics /tmp/herd-chaos-metrics.json
	python -c "import json; m = json.load(open('/tmp/herd-chaos-metrics.json')); \
		counters = [k for r in m['runs'] for k in r.get('counters', {}) \
		if k.startswith('faults.')]; \
		assert counters, 'no faults.* counters exported'; \
		print('chaos-smoke ok: %d runs, %d fault counters' \
		% (len(m['runs']), len(counters)))"

# A replicated cluster loses its primary mid-load: every acked write
# must survive, the history must check out linearizable, availability
# must stay above 99%, and the same seed twice must yield the same
# fingerprint (which pins failover timing, not just op counts).
ha-smoke:
	python -c "from repro.faults import run_chaos; \
		kw = dict(seed=11, scenario='kill-primary', horizon_ns=300000.0, \
		n_clients=4, n_items=64, value_size=24, n_server_processes=2, \
		intensity=0.5, replication_factor=3, ack_policy='majority'); \
		a = run_chaos(**kw); b = run_chaos(**kw); \
		print(a.summary()); \
		assert a.ok, a.violations; \
		assert a.checker == 'linearizable', a.checker; \
		assert a.ops_lost == 0, '%d acked writes lost' % a.ops_lost; \
		assert a.availability > 0.99, 'availability %.4f' % a.availability; \
		assert a.fingerprint == b.fingerprint, 'nondeterministic fingerprint'; \
		print('ha-smoke ok: %d acked, 0 lost, availability %.4f, fingerprint %s' \
		% (a.ops_acked, a.availability, a.fingerprint[:16]))"

# A spare partition joins a live replicated cluster while a kill-primary
# fault lands on the migration source: the reshard must complete (after
# an abort + restart), lose zero acked writes, keep the history
# linearizable, and reproduce bit-for-bit; then the elasticity sweep is
# gated against its committed baseline (tail throughput must track the
# born-full reference cluster), folding into BENCH_lab.json.
elastic-smoke:
	python -c "from repro.faults import run_chaos; \
		kw = dict(seed=11, scenario='migrate-under-kill', horizon_ns=300000.0, \
		n_clients=4, n_items=64, value_size=24, n_server_processes=3, \
		intensity=0.5, replication_factor=3, ack_policy='majority'); \
		a = run_chaos(**kw); b = run_chaos(**kw); \
		print(a.summary()); \
		assert a.ok, a.violations; \
		assert a.checker == 'linearizable', a.checker; \
		assert a.ops_lost == 0, '%d acked writes lost' % a.ops_lost; \
		assert a.migrations_done >= 1, 'no migration completed'; \
		assert a.migrations_aborted >= 1, 'the kill never hit a live migration'; \
		assert a.fingerprint == b.fingerprint, 'nondeterministic fingerprint'; \
		print('elastic-smoke ok: map v%d, %d migrations done (%d aborted), ' \
		'%d reroutes, fingerprint %s' \
		% (a.map_version, a.migrations_done, a.migrations_aborted, \
		a.reroutes, a.fingerprint[:16]))"
	python -m repro.lab.cli run elasticity --workers 2 --timeout 600
	python -m repro.lab.cli gate elasticity \
		--baseline benchmarks/baselines/elasticity.json

# A 10x flash crowd hits the same cluster twice: with admission control
# (shedding) the in-SLO goodput must hold at >= 70% of the pre-burst
# level with zero lost acked writes and a reproducible fingerprint;
# without it the same crowd must demonstrably collapse — that contrast
# is the whole point of repro.qos (docs/QOS.md).  Then the overload
# sweep is gated against its committed baseline, folding into
# BENCH_lab.json.
qos-smoke:
	python -c "from repro.faults import run_chaos; \
		kw = dict(seed=7, scenario='flash-crowd'); \
		a = run_chaos(shedding=True, **kw); \
		b = run_chaos(shedding=True, **kw); \
		off = run_chaos(shedding=False, **kw); \
		print(a.summary()); \
		assert a.ok, a.violations; \
		assert a.goodput_ratio >= 0.7, 'goodput ratio %.2f' % a.goodput_ratio; \
		assert a.ops_lost == 0, '%d acked writes lost' % a.ops_lost; \
		assert a.shed > 0 and a.retry_after_nacks > 0, 'shedding never engaged'; \
		assert off.goodput_ratio <= 0.2, \
		'unprotected run failed to collapse (%.2f)' % off.goodput_ratio; \
		assert a.fingerprint == b.fingerprint, 'nondeterministic fingerprint'; \
		print('qos-smoke ok: goodput ratio %.2f shed=%d (unprotected %.2f), ' \
		'0 lost, fingerprint %s' \
		% (a.goodput_ratio, a.shed, off.goodput_ratio, a.fingerprint[:16]))"
	python -m repro.lab.cli run overload --workers 2 --timeout 600
	python -m repro.lab.cli gate overload \
		--baseline benchmarks/baselines/overload.json

# The event-kernel gate: the sorted-run calendar must stay faster than
# the reference heap calendar (HeapSimulator, the pre-overhaul
# algorithm) on identical schedules, and both must produce the
# identical dispatch digest — a perf gate and a determinism gate in
# one, folded into BENCH_lab.json.  Workers=1: parallel timing points
# would contend with each other.
engine-smoke:
	python -m repro.lab.cli run engine --workers 1 --timeout 600
	python -m repro.lab.cli gate engine \
		--baseline benchmarks/baselines/engine.json

# Multi-key transactions, both commit dataplanes (docs/TXN.md): every
# run must pass the strict-serializability checker with zero torn
# writes and a reproducible fingerprint; the contention sweep must
# reproduce the RPC-vs-one-sided crossover; a crash-paused partition
# must tear nothing while one-sided commits keep landing (CPU bypass);
# the remote FIFO queue must conserve items on all three designs.
# Then the txn sweep is gated against its committed baseline, folding
# into BENCH_lab.json.
txn-smoke:
	python -c "from repro.bench.figures import run_txn; \
		a = run_txn(dataplane='rpc', seed=7); b = run_txn(dataplane='rpc', seed=7); \
		c = run_txn(dataplane='onesided', seed=7); d = run_txn(dataplane='onesided', seed=7); \
		assert a.ok and c.ok, (a.violation, c.violation); \
		assert a.fingerprint == b.fingerprint, 'rpc nondeterministic'; \
		assert c.fingerprint == d.fingerprint, 'onesided nondeterministic'; \
		print('txn-smoke dataplanes ok:'); print(' ', a.summary()); print(' ', c.summary())"
	python -c "from repro.bench.figures import run_txn; \
		cold_rpc = run_txn(dataplane='rpc', hot_fraction=0.0); \
		cold_one = run_txn(dataplane='onesided', hot_fraction=0.0); \
		hot_rpc = run_txn(dataplane='rpc', hot_fraction=0.9); \
		hot_one = run_txn(dataplane='onesided', hot_fraction=0.9); \
		assert all(r.ok for r in (cold_rpc, cold_one, hot_rpc, hot_one)); \
		assert cold_one.result.mops > cold_rpc.result.mops, 'no uncontended one-sided win'; \
		assert hot_rpc.result.mops > 2 * hot_one.result.mops, 'no contended RPC win'; \
		print('txn-smoke crossover ok: cold %.2f < %.2f, hot %.2f > %.2f Mops' \
		% (cold_rpc.result.mops, cold_one.result.mops, \
		hot_rpc.result.mops, hot_one.result.mops))"
	python -c "from repro.txn import TxnCluster, TxnConfig; \
		crash = (0, 40000.0, 60000.0); \
		rpc = TxnCluster(TxnConfig(dataplane='rpc', crash=crash), n_clients=8, seed=3).run(); \
		one = TxnCluster(TxnConfig(dataplane='onesided', crash=crash), n_clients=8, seed=3).run(); \
		assert rpc.ok and rpc.torn_writes == 0, (rpc.violation, rpc.torn_writes); \
		assert one.ok and one.commits_in_outage > 0, 'no CPU-bypass progress'; \
		print('txn-smoke crash ok: commits in outage rpc=%d onesided=%d, zero torn' \
		% (rpc.commits_in_outage, one.commits_in_outage))"
	python -c "from repro.txn import TxnQueueCluster, QueueConfig; \
		r = TxnQueueCluster(QueueConfig(dataplane='rpc')).run(); \
		c = TxnQueueCluster(QueueConfig(dataplane='onesided', ticket_mode='cas')).run(); \
		f = TxnQueueCluster(QueueConfig(dataplane='onesided', ticket_mode='faa')).run(); \
		assert r.ok and c.ok and f.ok, (r.violations, c.violations, f.violations); \
		assert f.enq_retries == 0 and c.enq_retries > 0, 'FAA/CAS retry contrast missing'; \
		print(r.summary()); print(c.summary()); print(f.summary())"
	python -m repro.lab.cli run txn --workers 2 --timeout 600
	python -m repro.lab.cli gate txn \
		--baseline benchmarks/baselines/txn.json

# The nemesis gate (docs/NEMESIS.md): a bounded random-schedule search
# across every dataplane must find zero invariant violations on
# healthy configs; the planted-bug arm must find its failure, shrink
# it to the single crash atom (deterministically — same seed, same
# reproducer), and the frozen artifact must replay byte-identically
# end to end through the CLI; then the nemesis sweep is gated against
# its committed baseline, folding into BENCH_lab.json.
nemesis-smoke:
	python -m repro.bench.cli --nemesis 12 --nemesis-seed 7
	python -c "from repro.nemesis import generate, run_schedule, shrink_schedule, resolve; \
		from repro.faults.rng import derive_seed; \
		oracles = resolve(('planted-no-crash',)); \
		hits = [s for s in (generate(derive_seed(7, 'nemesis.planted.%d' % i), 'herd') \
		for i in range(24)) if s.plan.crashes]; \
		assert hits, 'no planted crash schedule in 24 draws'; \
		found = hits[0]; \
		assert not run_schedule(found, oracles).ok, 'planted bug not detected'; \
		a = shrink_schedule(found, oracles); b = shrink_schedule(found, oracles); \
		assert a.atoms_after == 1 and a.minimal, (a.atoms_after, a.minimal); \
		assert a.fingerprint == b.fingerprint, 'nondeterministic shrink'; \
		r = run_schedule(a.schedule, oracles); \
		assert r.fingerprint == a.fingerprint and r.violations == a.violations; \
		print('nemesis-smoke planted ok: %d -> %d atoms in %d tests, ' \
		'minimal, replayed fingerprint %s' \
		% (a.atoms_before, a.atoms_after, a.tests, a.fingerprint[:16]))"
	python -c "from repro.nemesis import generate, run_schedule, shrink_schedule, \
		resolve, build_artifact, save_artifact; \
		from repro.faults.rng import derive_seed; \
		oracles = ('planted-no-crash',); \
		hits = [s for s in (generate(derive_seed(7, 'nemesis.planted.%d' % i), 'herd') \
		for i in range(24)) if s.plan.crashes]; \
		sh = shrink_schedule(hits[0], resolve(oracles)); \
		save_artifact('/tmp/herd-nemesis-repro.json', \
		build_artifact(run_schedule(sh.schedule, resolve(oracles)), oracles=oracles))"
	python -m repro.bench.cli --nemesis-replay /tmp/herd-nemesis-repro.json
	python -m repro.lab.cli run nemesis --workers 2 --timeout 600
	python -m repro.lab.cli gate nemesis \
		--baseline benchmarks/baselines/nemesis.json

# The lab gate, end to end: a 4-point parallel sweep lands in the
# result store, a re-run must be served entirely from cache, the
# committed baseline must pass (writing BENCH_lab.json, the repo's
# perf trajectory), and a deliberately perturbed baseline must fail.
lab-smoke:
	python -m repro.lab.cli run smoke --workers 2 --timeout 300
	python -m repro.lab.cli run smoke --workers 2 --quiet \
		| grep -q "(4 cached, 0 ran, 0 failed)"
	python -m repro.lab.cli gate smoke \
		--baseline benchmarks/baselines/lab-smoke.json
	python -c "import json; b = json.load(open('benchmarks/baselines/lab-smoke.json')); \
		label = sorted(b['points'])[0]; b['points'][label]['mops'] *= 1.5; \
		json.dump(b, open('/tmp/herd-lab-perturbed.json', 'w'))"
	! python -m repro.lab.cli gate smoke \
		--baseline /tmp/herd-lab-perturbed.json \
		--bench-json /tmp/herd-lab-perturbed-bench.json
	@echo "lab-smoke ok: gate passed on committed baseline, failed on perturbed"

clean:
	rm -rf benchmarks/out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
