# Convenience targets for the HERD reproduction.

.PHONY: install test bench figures figures-full examples metrics-smoke clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

figures:
	python -m repro.bench.cli all --scale bench

figures-full:
	python -m repro.bench.cli all --scale full

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

# One small figure with full observability on; both artifacts must parse.
metrics-smoke:
	python -m repro.bench.cli fig2 --metrics /tmp/herd-metrics.json \
		--trace /tmp/herd-trace.json
	python -c "import json; m = json.load(open('/tmp/herd-metrics.json')); \
		assert m['runs'] and all(r['stations'] for r in m['runs']), 'no station metrics'; \
		t = json.load(open('/tmp/herd-trace.json')); \
		assert any(e['ph'] == 'X' for e in t['traceEvents']), 'no trace spans'; \
		print('metrics-smoke ok: %d runs, %d trace events' \
		% (len(m['runs']), len(t['traceEvents'])))"

clean:
	rm -rf benchmarks/out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
