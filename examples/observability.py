#!/usr/bin/env python
"""Observability: metrics and traces from an instrumented HERD run.

Wraps a small HERD deployment in an ``obs.capture()`` session: every
simulator built inside the block gets a metrics registry (station
utilization, queue-delay histograms, HERD op counters) and a bounded
tracer.  The session then exports a metrics JSON and a Chrome
trace-event file (load it via chrome://tracing or ui.perfetto.dev).

The same instrumentation hangs off any ``herd-bench`` invocation:

    herd-bench fig9 --metrics m.json --trace t.trace.json

Run:  python examples/observability.py
"""

from repro.herd import HerdCluster, HerdConfig
from repro.obs import capture
from repro.workloads import Workload


def main() -> None:
    with capture(trace=True, trace_limit=50_000) as session:
        session.label = "quickstart"
        cluster = HerdCluster(HerdConfig(n_server_processes=4, window=4), seed=1)
        cluster.add_clients(24, Workload(get_fraction=0.95, value_size=32, n_keys=4096))
        cluster.preload(range(4096), value_size=32)
        result = cluster.run(warmup_ns=20_000, measure_ns=100_000)

    print("throughput: %.1f Mops" % result.mops)

    # The RunResult carries a RunReport snapshot of the same registry.
    report = result.report
    print("report: %s at t=%.0f ns, %d trace events buffered" % (
        report.name, report.sim_time_ns, report.trace_events,
    ))

    snap = session.runs[0].registry.snapshot()
    print("\nwhere the server machine's time went:")
    for name, station in sorted(snap["stations"].items()):
        if not name.startswith("server."):
            continue
        delay = station["queue_delay_ns"]
        print("  %-28s util %5.1f%%  jobs %7d  mean queue delay %6.1f ns" % (
            name, 100.0 * station["utilization"], station["jobs"], delay["mean"],
        ))

    print("\nsemantic counters (selection):")
    for name, value in sorted(snap["counters"].items()):
        if "wqe" in name or name.endswith("cqe_dma"):
            print("  %-40s %d" % (name, value))
    for name, value in sorted(snap["gauges"].items()):
        if name.startswith("herd.server0."):
            print("  %-40s %d" % (name, int(value)))

    session.write_metrics("observability-metrics.json")
    session.write_trace("observability-trace.json")
    print("\nwrote observability-metrics.json and observability-trace.json")
    print("(open the trace in chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    main()
