#!/usr/bin/env python
"""HERD under packet loss: application-level retries (Section 2.2.3).

InfiniBand is lossless in normal operation, so HERD runs its requests
over Unreliable Connection and its responses over Unreliable Datagram —
"sacrificing transport-level retransmission for fast common case
performance at the cost of rare application-level retries".  This
example injects bit errors on the path toward the server and shows the
retry machinery recovering every operation.

Run:  python examples/fault_injection.py
"""

from repro.herd import HerdCluster, HerdConfig
from repro.workloads import Workload


def run(loss_rate: float, retry_timeout_ns):
    cluster = HerdCluster(
        HerdConfig(
            n_server_processes=2, window=2, retry_timeout_ns=retry_timeout_ns
        ),
        n_client_machines=2,
        seed=11,
    )
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=256))
    cluster.preload(range(256), 32)
    cluster.fabric.loss_filter = lambda src, dst: loss_rate if dst == "server" else 0.0
    result = cluster.run(warmup_ns=0, measure_ns=600_000)
    return cluster, result


def main() -> None:
    print("4 clients, 50/50 GET/PUT, 5% of packets toward the server dropped\n")

    cluster, result = run(loss_rate=0.05, retry_timeout_ns=None)
    stalled = sum(
        1 for c in cluster.clients if c.outstanding == cluster.config.window
    )
    print("without retries:")
    print("  ops completed : %d" % result.ops)
    print("  stalled client windows: %d of %d" % (stalled, len(cluster.clients)))

    cluster, result = run(loss_rate=0.05, retry_timeout_ns=40_000.0)
    print("\nwith 40 us application-level retries:")
    print("  ops completed : %d" % result.ops)
    print("  packets dropped: %d" % cluster.fabric.dropped)
    print("  retries sent  : %d" % sum(c.retries for c in cluster.clients))
    print("  duplicates    : %d" % sum(c.duplicate_responses for c in cluster.clients))
    print("  failures      : %d" % sum(c.failures for c in cluster.clients))


if __name__ == "__main__":
    main()
