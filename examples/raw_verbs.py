#!/usr/bin/env python
"""Program the verbs layer directly: the building blocks under HERD.

Demonstrates the full verbs API on the simulated fabric — registering
memory, connecting queue pairs, one-sided READ/WRITE, two-sided
SEND/RECV over UD with a GRH, inlining, and selective signaling —
and prints the latency of each step.

Run:  python examples/raw_verbs.py
"""

from repro.hw import APT, Fabric, Machine
from repro.sim import Simulator
from repro.verbs import (
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
    connect_pair,
)


def main() -> None:
    sim = Simulator()
    fabric = Fabric(sim, APT)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    client = RdmaDevice(Machine(sim, fabric, "client"))

    # --- one-sided WRITE then READ over RC --------------------------------
    server_mr = server.register_memory(4096)
    client_sink = client.register_memory(4096)
    _server_qp, client_qp = connect_pair(server, client, Transport.RC)

    log = []

    def one_sided():
        start = sim.now
        write = WorkRequest.write(
            raddr=server_mr.addr, rkey=server_mr.rkey,
            payload=b"hello, remote memory", inline=True, signaled=True,
        )
        yield client.post_send(client_qp, write)
        yield client_qp.send_cq.pop()
        log.append(("inlined WRITE (signaled, RC)", sim.now - start))

        start = sim.now
        read = WorkRequest.read(
            raddr=server_mr.addr, rkey=server_mr.rkey,
            local=(client_sink, 0, 20),
        )
        yield client.post_send(client_qp, read)
        yield client_qp.send_cq.pop()
        log.append(("READ of those bytes back", sim.now - start))

    sim.process(one_sided())
    sim.run_until_idle()
    assert client_sink.read(0, 20) == b"hello, remote memory"

    # --- two-sided SEND/RECV over UD ---------------------------------------
    server_ud = server.create_qp(Transport.UD)
    client_ud = client.create_qp(Transport.UD)
    inbox = server.register_memory(2048)
    server.post_recv(server_ud, RecvRequest(wr_id=1, local=(inbox, 0, 2048)))

    def datagram():
        start = sim.now
        send = WorkRequest.send(
            payload=b"datagram!", inline=True, signaled=False,
            ah=("server", server_ud.qpn),
        )
        yield client.post_send(client_ud, send)
        cqe = yield server_ud.recv_cq.pop()
        log.append(("UD SEND -> RECV completion", sim.now - start))
        # UD receive buffers start with a 40-byte GRH.
        payload = inbox.read(40, cqe.byte_len)
        assert payload == b"datagram!"

    sim.process(datagram())
    sim.run_until_idle()

    print("simulated ConnectX-3 on 56 Gbps InfiniBand (Apt profile)\n")
    for label, ns in log:
        print("  %-32s %7.2f us" % (label, ns / 1e3))
    print("\nserver memory now holds: %r" % server_mr.read(0, 20))


if __name__ == "__main__":
    main()
