#!/usr/bin/env python
"""Quickstart: stand up a HERD cluster and serve a workload.

Builds the paper's deployment in miniature — one server machine running
six polling server processes, a handful of client processes WRITE-ing
requests over UC and receiving UD SEND responses — then reports
throughput and latency.

Run:  python examples/quickstart.py
"""

from repro.herd import HerdCluster, HerdConfig
from repro.workloads import Workload


def main() -> None:
    config = HerdConfig(n_server_processes=6, window=4)
    cluster = HerdCluster(config, seed=1)

    # A read-intensive workload: 95% GET / 5% PUT, 16-byte keyhashes,
    # 32-byte values (the paper's representative item size).
    workload = Workload(get_fraction=0.95, value_size=32, n_keys=4096)
    cluster.add_clients(51, workload)

    # Warm the cache so GETs hit.
    cluster.preload(range(4096), value_size=32)

    result = cluster.run(warmup_ns=50_000, measure_ns=200_000)

    print("HERD on simulated ConnectX-3 / 56 Gbps InfiniBand (Apt)")
    print("  throughput : %6.1f Mops" % result.mops)
    print("  latency    : mean %.1f us  (p5 %.1f / p95 %.1f)" % (
        result.latency["mean_us"],
        result.latency["p5_us"],
        result.latency["p95_us"],
    ))
    print("  GET misses : %d" % int(result.extra["get_misses"]))
    print("  per core   : %s Mops" % ", ".join(
        "%.2f" % m for m in result.per_server_mops
    ))


if __name__ == "__main__":
    main()
