"""Elastic resharding: shard maps, a live join, and chaos (repro.elastic).

Three steps:

1. the shard map algebra — striped boot maps, fenced assignment, and
   the move lists a join/leave expands into;
2. a spare partition joining a live replicated cluster: the
   coordinator migrates an equal share onto it while clients keep
   completing ops, and the map version advances on each fenced cutover;
3. the migrate-under-kill chaos scenario: the migration source's
   primary dies mid-copy, the move aborts and restarts after failover,
   and the linearizability checker proves nothing acked was lost.

Run:  python examples/elasticity.py
"""

from repro.elastic import HASH_SPACE, ShardMap
from repro.faults import run_chaos
from repro.herd import HerdCluster, HerdConfig
from repro.workloads.ycsb import Workload


def shard_map_algebra() -> None:
    """Immutable, version-fenced range tables over the keyhash space."""
    boot = ShardMap.striped(2)
    print("boot map:     %r" % boot)
    moves = boot.plan_join(2)
    print("join plan:    %d moves, each (lo, hi, src, dst)" % len(moves))
    grown = boot
    for lo, hi, _src, dst in moves:
        grown = grown.assign(lo, hi, dst)  # one fenced migration each
    print("after join:   %r" % grown)
    print(
        "shares:       "
        + ", ".join(
            "p%d=%.3f" % (p, grown.share_of(p)) for p in grown.owners()
        )
    )
    # versions are the fencing token: older maps are never re-adopted
    assert grown.version == boot.version + len(moves)
    assert grown.owner_of_hash(HASH_SPACE - 1) != boot.owner_of_hash(
        HASH_SPACE - 1
    )


def live_join() -> None:
    """A spare partition joins under live traffic; ownership moves."""
    print()
    config = HerdConfig(
        n_server_processes=3,
        n_active_partitions=2,  # partition 2 exists but owns nothing yet
        window=4,
        retry_timeout_ns=10_000.0,
        replication_factor=3,
        ack_policy="majority",
        lease_us=5.0,
        heartbeat_us=1.0,
    )
    cluster = HerdCluster(config, n_client_machines=2, seed=7)
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=24, n_keys=64))
    cluster.preload(range(64), 24)
    before = cluster.elastic.shard_map
    cluster.elastic.coordinator.schedule_join(2, at_ns=60_000.0)
    result = cluster.run(warmup_ns=0, measure_ns=300_000.0)
    after = cluster.elastic.shard_map
    counters = cluster.elastic.counters()
    print("map before:   %r" % before)
    print("map after:    %r" % after)
    print(
        "join:         %d migrations, %d records moved, %.2f Mops meanwhile"
        % (counters["migrations_done"], counters["records_applied"], result.mops)
    )
    print(
        "clients:      %d NOT_OWNER nacks, %d reroutes, %d map refreshes"
        % (
            sum(c.not_owner_nacks for c in cluster.clients),
            sum(c.reroutes for c in cluster.clients),
            sum(c.map_refreshes for c in cluster.clients),
        )
    )
    assert after.version > before.version
    assert 2 in after.owners()


def migrate_under_kill() -> None:
    """The elastic-smoke scenario: a kill lands mid-migration."""
    print()
    report = run_chaos(
        seed=11,
        scenario="migrate-under-kill",
        horizon_ns=300_000.0,
        n_clients=4,
        n_items=64,
        value_size=24,
        n_server_processes=3,
        intensity=0.5,
        replication_factor=3,
        ack_policy="majority",
    )
    print(report.summary())
    assert report.ok, report.violations
    assert report.checker == "linearizable"
    assert report.ops_lost == 0
    assert report.migrations_done >= 1
    assert report.migrations_aborted >= 1, "the kill missed the migration"


def main() -> None:
    shard_map_algebra()
    live_join()
    migrate_under_kill()


if __name__ == "__main__":
    main()
