"""Chaos-testing HERD: fault injection end to end.

Three steps:

1. a hand-written FaultPlan against a small cluster, reading the
   injected-fault counters afterwards;
2. a server-process crash in isolation, watching recovery re-scan the
   request region;
3. the full chaos harness (randomized seeded faults + invariant
   checks), run twice to show the fingerprint is reproducible.

Run:  python examples/chaos.py
"""

from repro.faults import FaultPlan, run_chaos
from repro.herd import HerdCluster, HerdConfig
from repro.workloads.ycsb import Workload


def declarative_plan() -> None:
    """A hand-written fault plan: loss, corruption, duplication, a stall."""
    config = HerdConfig(
        n_server_processes=2,
        window=4,
        retry_timeout_ns=30_000.0,
        adaptive_retry=True,
        min_retry_timeout_ns=15_000.0,
    )
    cluster = HerdCluster(config=config, n_client_machines=2, seed=1)
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=256))
    cluster.preload(range(256), value_size=32)

    plan = (
        FaultPlan(seed=1)
        .drop(dst="server", rate=0.02, end_ns=150_000)      # lost requests
        .drop(src="server", rate=0.01, end_ns=150_000)      # lost responses
        .corrupt(rate=0.005, end_ns=150_000)                # ICRC discards
        .duplicate(src="server", rate=0.01, end_ns=150_000) # dup responses
        .nic_stall("server", engine="ingress", at_ns=60_000, duration_ns=4_000)
    )
    print(plan.describe())

    cluster.install_faults(plan)
    result = cluster.run(warmup_ns=20_000, measure_ns=180_000)
    print("\nthroughput under faults: %.2f Mops" % result.mops)
    print("injected: %s" % cluster.injector.counts)
    print(
        "client retries=%d duplicates=%d"
        % (
            sum(c.retries for c in cluster.clients),
            sum(c.duplicate_responses for c in cluster.clients),
        )
    )


def crash_and_recovery() -> None:
    """Kill one server process mid-run and watch the region re-scan."""
    config = HerdConfig(n_server_processes=2, window=4, retry_timeout_ns=30_000.0)
    cluster = HerdCluster(config=config, n_client_machines=2, seed=2)
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=256))
    cluster.preload(range(256), value_size=32)
    cluster.install_faults(
        FaultPlan(seed=2).crash_server(0, at_ns=80_000, down_ns=50_000)
    )
    result = cluster.run(warmup_ns=20_000, measure_ns=280_000)
    server = cluster.servers[0]
    print(
        "\nserver 0: %d crash, %d recovery, %d live slots re-scanned"
        % (server.crashes, server.recoveries, server.recovered_slots)
    )
    print(
        "cluster finished %d ops at %.2f Mops despite the dead core"
        % (sum(c.completed for c in cluster.clients), result.mops)
    )


def chaos_harness() -> None:
    """Randomized seeded faults, invariant checks, and reproducibility."""
    print()
    report = run_chaos(seed=42, horizon_ns=250_000.0)
    print(report.summary())
    assert report.ok, "chaos invariants violated"

    again = run_chaos(seed=42, horizon_ns=250_000.0)
    assert again.fingerprint == report.fingerprint
    print("\nsame seed, same fingerprint: reproducible ✓")


def main() -> None:
    declarative_plan()
    crash_and_recovery()
    chaos_harness()


if __name__ == "__main__":
    main()
