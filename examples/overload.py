"""Overload protection under a flash crowd (repro.qos).

The paper's closed-loop clients cannot overload a server: each keeps a
fixed window of outstanding requests, so offered load is capped by
completion rate.  Real front-ends are open-loop — requests arrive on
their own schedule — and that is the regime where admission control
earns its keep.  Three steps:

1. an open-loop cluster under a 10x flash crowd *with* admission
   control: bounded queues, CoDel sojourn control, and
   ``RESP_RETRY_AFTER`` nacks hold in-SLO goodput through the burst;
2. the same crowd with every limit off: queueing delay ramps without
   bound and in-SLO goodput collapses — the control arm;
3. a two-tenant cluster where one tenant floods 10x: per-tenant token
   buckets and weighted fair admission throttle the aggressor while
   the well-behaved tenant's p99 barely moves.

Run:  python examples/overload.py
"""

from repro.faults import run_chaos
from repro.herd import HerdCluster, HerdConfig
from repro.qos import QosConfig
from repro.workloads import FlashCrowdArrivals, Workload
from repro.faults.rng import child_rng


def protected_flash_crowd() -> None:
    """The qos-smoke scenario: goodput holds through a 10x crowd."""
    report = run_chaos(seed=7, scenario="flash-crowd", shedding=True)
    print(report.summary())
    print(
        "protected: goodput ratio %.2f (floor 0.70), %d shed, "
        "%d retry-after nacks, %d lost acked writes"
        % (
            report.goodput_ratio,
            report.shed,
            report.retry_after_nacks,
            report.ops_lost,
        )
    )


def unprotected_collapse() -> None:
    """Same crowd, no admission control: the motivating failure."""
    print()
    report = run_chaos(seed=7, scenario="flash-crowd", shedding=False)
    print(
        "unprotected: goodput ratio %.2f — in-SLO goodput collapsed "
        "(p99.9 %.1f us) once the queue-filling ramp ended"
        % (report.goodput_ratio, report.p999_us)
    )


def aggressor_and_victim() -> None:
    """Tenant isolation: quotas + weighted fair admission."""
    print()
    report = run_chaos(seed=7, scenario="aggressor-tenant", shedding=True)
    print(
        "aggressor-tenant: victim p99 %.1f us, aggressor p99 %.1f us, "
        "%d sheds, %d retry-after nacks — the victim's tail stays in "
        "single-digit microseconds while the aggressor queues behind "
        "its own quota"
        % (
            report.tenant_p99_us[0],
            report.tenant_p99_us[1],
            report.shed,
            report.retry_after_nacks,
        )
    )


def hand_built_cluster() -> None:
    """The same machinery on a cluster you wire yourself."""
    print()
    config = HerdConfig(
        n_server_processes=2,
        window=32,
        retry_timeout_ns=30_000.0,
        qos=QosConfig(
            queue_limit=32,           # bounded request queue per partition
            drop_policy="nack",       # shed via RESP_RETRY_AFTER
            codel_target_ns=4_000.0,  # sojourn SLO target
            retry_after_ns=16_000.0,  # client ingress pause per nack
            qp_pool=4,                # bounded server UC QP pool
        ),
    )
    cluster = HerdCluster(config=config, n_client_machines=4, seed=3)
    cluster.add_clients(8, Workload(get_fraction=0.5, value_size=32, n_keys=256))
    # attaching an ArrivalProcess makes a client open-loop: ops arrive
    # on the process's schedule instead of refilling the window
    for client in cluster.clients:
        client.arrivals = FlashCrowdArrivals(
            0.45,  # steady ops/us per client: well under capacity
            child_rng(3, "qos.client%d.arrivals" % client.client_id),
            burst_factor=10.0,
            burst_start_ns=120_000.0,
            burst_end_ns=240_000.0,
        )
    cluster.wire()
    cluster.preload(range(256), 32)
    result = cluster.run(warmup_ns=0, measure_ns=300_000)
    runtime = cluster.qos_runtime
    print(
        "hand-built cluster: %.2f Mops through the burst, %d offered, "
        "%d shed by reason %s"
        % (
            result.mops,
            sum(c.offered for c in cluster.clients),
            runtime.total_shed,
            dict(runtime.shed),
        )
    )


def main() -> None:
    protected_flash_crowd()
    unprotected_collapse()
    aggressor_and_victim()
    hand_built_cluster()


if __name__ == "__main__":
    main()
