"""Multi-key transactions: RPC vs one-sided commit (repro.txn).

The paper prices RPC against one-sided READs for single-key GETs; the
transactional sequel prices a server-mediated two-phase commit against
a FaRM-style client-driven commit (READ / CAS-lock / validate /
WRITE-install) over the same partitioned store.  Four steps:

1. both dataplanes on the same uncontended workload — one-sided wins
   by bypassing the server CPU, and every run is audited by the
   strict-serializability checker;
2. the same cluster with 90% of transactions on a 4-key hot set —
   CAS retries burn the one-sided dataplane down while the server's
   serialization one-shots single-partition commits;
3. a crash arm: pause one partition's server mid-run — RPC commits
   stall behind retries, one-sided commits keep landing
   (``commits_in_outage``), both with zero torn writes;
4. the remote FIFO queue both ways, plus a hand-built history fed
   straight to ``check_serializable`` — including a write-skew
   history the checker rejects.

Run:  python examples/txn.py
"""

from repro.ha import TxnRecord, check_serializable
from repro.txn import QueueConfig, TxnCluster, TxnConfig, TxnQueueCluster

RUN = dict(warmup_ns=20_000.0, measure_ns=120_000.0)


def uncontended_crossover() -> None:
    """Cold keys: the one-sided dataplane's CPU bypass wins."""
    for dataplane in ("rpc", "onesided"):
        config = TxnConfig(dataplane=dataplane, n_keys=512)
        report = TxnCluster(config, n_clients=12, seed=0).run(**RUN)
        assert report.ok, report.violation
        print(report.summary())


def contended_crossover() -> None:
    """Hot keys: the server's serialization is the feature."""
    print()
    for dataplane in ("rpc", "onesided"):
        config = TxnConfig(
            dataplane=dataplane,
            n_keys=512,
            hot_fraction=0.9,  # 90% of txns draw from the hot set
            n_hot=4,           # ... of 4 keys, all in partition 0
        )
        report = TxnCluster(config, n_clients=12, seed=0).run(**RUN)
        assert report.ok, report.violation
        print("hot   %s" % report.summary())


def crash_arm() -> None:
    """CPU bypass, other face: commits land while the server is down."""
    print()
    for dataplane in ("rpc", "onesided"):
        config = TxnConfig(
            dataplane=dataplane,
            crash=(0, 40_000.0, 60_000.0),  # partition 0 down 40..100 us
        )
        report = TxnCluster(config, n_clients=8, seed=3).run(
            warmup_ns=0.0, measure_ns=160_000.0
        )
        assert report.ok and report.torn_writes == 0
        print(
            "crash %s: %d commits, %d during the outage, torn=%d"
            % (dataplane, report.commits, report.commits_in_outage,
               report.torn_writes)
        )


def remote_queue() -> None:
    """The same design axis for a remote data structure."""
    print()
    for dataplane, ticket_mode in (
        ("rpc", "cas"),          # ticket_mode ignored: server-side deque
        ("onesided", "cas"),     # enqueue tickets claimed by CAS retry
        ("onesided", "faa"),     # ... or by FETCH_ADD, which cannot lose
    ):
        config = QueueConfig(dataplane=dataplane, ticket_mode=ticket_mode)
        report = TxnQueueCluster(config, n_clients=6, seed=0).run()
        assert report.ok, report.violations
        print(report.summary())


def checker_by_hand() -> None:
    """Feed the serializability checker a history you wrote yourself."""
    print()
    a, b = b"A" * 16, b"B" * 16

    # T1 writes {0: a}; T2, invoked strictly after T1 responded, reads it.
    ok = check_serializable(
        [
            TxnRecord(1, client=0, reads=(), writes=((0, a),),
                      invoke=0.0, respond=5.0),
            TxnRecord(2, client=1, reads=((0, a),), writes=(),
                      invoke=10.0, respond=15.0),
        ],
        final={0: a},
    )
    print("sequential read-your-write: %s" % ("ok" if ok is None else ok))

    # Write skew: two concurrent txns each read the *initial* state of
    # both keys, then each writes the key the other read.  No serial
    # order explains both reads — the exact anomaly the RPC dataplane's
    # lock-all-then-validate ordering exists to prevent.
    zero = b"\x00" * 16
    verdict = check_serializable(
        [
            TxnRecord(1, client=0, reads=((0, zero), (1, zero)),
                      writes=((0, a),), invoke=0.0, respond=10.0),
            TxnRecord(2, client=1, reads=((0, zero), (1, zero)),
                      writes=((1, b),), invoke=0.0, respond=10.0),
        ],
        initial={0: zero, 1: zero},
        final={0: a, 1: b},
    )
    assert verdict is not None
    print("write skew rejected: %s" % verdict)


def main() -> None:
    uncontended_crossover()
    contended_crossover()
    crash_arm()
    remote_queue()
    checker_by_hand()


if __name__ == "__main__":
    main()
