"""Replicated HERD partitions surviving a primary kill (repro.ha).

Three steps:

1. a replicated cluster under clean conditions — replication's goodput
   cost and the replica mesh counters;
2. killing a partition's primary mid-load: the lease monitor promotes
   a backup, clients replay in-flight requests, and the run's history
   checks out linearizable with zero acked writes lost;
3. the linearizability checker on hand-built histories, showing what
   it accepts and what it rejects.

Run:  python examples/ha.py
"""

from repro.faults import run_chaos
from repro.ha import HaOp, check_histories, check_key
from repro.herd import HerdCluster, HerdConfig
from repro.workloads.ycsb import Workload


def replicated_cluster() -> None:
    """rf=3 with majority acks, no faults: what replication costs."""
    config = HerdConfig(
        n_server_processes=2,
        window=4,
        retry_timeout_ns=30_000.0,
        replication_factor=3,
        ack_policy="majority",
    )
    cluster = HerdCluster(config=config, n_client_machines=2, seed=1)
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=256))
    cluster.preload(range(256), value_size=32)
    result = cluster.run(warmup_ns=20_000, measure_ns=180_000)
    shipped = sum(n.updates_shipped for n in cluster.ha.nodes)
    print("throughput with rf=3: %.2f Mops" % result.mops)
    print(
        "replication mesh: %d updates shipped, %d acks, %d heartbeats"
        % (
            shipped,
            sum(n.acks_sent for n in cluster.ha.nodes),
            sum(n.heartbeats_sent for n in cluster.ha.nodes),
        )
    )


def kill_the_primary() -> None:
    """The ha-smoke scenario: one primary dies at 35% of the horizon."""
    print()
    report = run_chaos(
        seed=11,
        scenario="kill-primary",
        horizon_ns=300_000.0,
        n_clients=4,
        n_items=64,
        value_size=24,
        n_server_processes=2,
        intensity=0.5,
        replication_factor=3,
        ack_policy="majority",
    )
    print(report.summary())
    assert report.ok, report.violations
    assert report.ops_lost == 0
    print(
        "\n%d acked, %d lost, availability %.4f, failover %.1f ns mean"
        % (
            report.ops_acked,
            report.ops_lost,
            report.availability,
            report.failover_latency_ns,
        )
    )


def checker_by_hand() -> None:
    """What 'linearizable' means, on four-operation histories."""
    print()
    key = b"k" * 16

    def w(client, value, invoke, respond):
        return HaOp(client=client, kind="w", value=value, invoke=invoke, respond=respond)

    def r(client, value, invoke, respond):
        return HaOp(client=client, kind="r", value=value, invoke=invoke, respond=respond)

    fine = [w(0, b"a", 0, 10), w(1, b"b", 5, 8), r(2, b"a", 20, 21)]
    print("overlapping writes, either order: %s" % check_key(fine))

    lost = {key: [w(0, b"a", 0, 1), w(1, b"b", 2, 3)]}
    verdict = check_histories(lost, {key: None}, {key: b"a"})
    print("acked write missing from the final state:\n  %s" % verdict[0])


def main() -> None:
    replicated_cluster()
    kill_the_primary()
    checker_by_hand()


if __name__ == "__main__":
    main()
