#!/usr/bin/env python
"""Compare HERD against the paper's baselines on one workload cell.

Reproduces one column of Figure 9: 48-byte items, read-intensive,
showing why single-RTT WRITE/SEND beats multi-READ designs.

Run:  python examples/compare_systems.py [value_size] [get_fraction]
"""

import sys

from repro.bench.figures import run_farm, run_herd, run_pilaf


def main() -> None:
    value_size = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    get_fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.95

    systems = [
        ("HERD", lambda: run_herd(value_size=value_size, get_fraction=get_fraction)),
        ("Pilaf-em-OPT", lambda: run_pilaf(value_size=value_size, get_fraction=get_fraction)),
        ("FaRM-em", lambda: run_farm(value_size=value_size, get_fraction=get_fraction)),
        ("FaRM-em-VAR", lambda: run_farm(
            value_size=value_size, get_fraction=get_fraction, inline_values=False
        )),
    ]

    print(
        "%d-byte values, %.0f%% GET (16-byte keyhashes)"
        % (value_size, get_fraction * 100)
    )
    print("%-14s %10s %12s" % ("system", "Mops", "mean lat us"))
    rows = []
    for name, runner in systems:
        result = runner()
        rows.append((name, result.mops, result.latency["mean_us"]))
        print("%-14s %10.1f %12.1f" % rows[-1])

    herd_mops = rows[0][1]
    best_read_based = max(m for name, m, _l in rows[1:])
    print(
        "\nHERD / best READ-based design: %.2fx"
        % (herd_mops / best_read_based)
    )


if __name__ == "__main__":
    main()
