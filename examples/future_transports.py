#!/usr/bin/env python
"""Beyond the paper: the two paths past the ~260-client limit.

Section 5.5 sketches two futures for HERD's connection scalability:

1. switch requests to SEND/SEND over Unreliable Datagram
   (costs a few Mops, scales to thousands of clients);
2. wait for Connect-IB's Dynamically Connected transport
   (keeps the WRITE-based design, removes the per-client QP state).

Both are implemented here; this example races all three designs at
moderate and large client counts.

Run:  python examples/future_transports.py
"""

from repro.herd import HerdCluster, HerdConfig
from repro.herd.ud_variant import SendSendHerdCluster
from repro.workloads import Workload

WORKLOAD = dict(get_fraction=0.95, value_size=32, n_keys=1 << 12)


def run_write_based(n_clients: int, transport: str) -> float:
    cluster = HerdCluster(
        HerdConfig(n_server_processes=6, request_transport=transport),
        n_client_machines=max(17, n_clients // 5),
        seed=2,
    )
    cluster.add_clients(n_clients, Workload(**WORKLOAD))
    cluster.preload(range(1 << 12), 32)
    return cluster.run(measure_ns=120_000).mops


def run_send_send(n_clients: int) -> float:
    cluster = SendSendHerdCluster(
        HerdConfig(n_server_processes=6),
        n_client_machines=max(17, n_clients // 5),
    )
    cluster.add_clients(n_clients, Workload(**WORKLOAD))
    cluster.preload(range(1 << 12), 32)
    return cluster.run(measure_ns=120_000).mops


def main() -> None:
    designs = [
        ("WRITE/SEND over UC (the paper's HERD)", lambda n: run_write_based(n, "UC")),
        ("SEND/SEND over UD  (Section 5.5)", run_send_send),
        ("WRITE/SEND over DC (Connect-IB)", lambda n: run_write_based(n, "DC")),
    ]
    counts = (51, 260, 460)
    print("%-40s" % "design" + "".join("%12s" % ("%d clients" % n) for n in counts))
    for name, runner in designs:
        row = "%-40s" % name
        for n in counts:
            row += "%12.1f" % runner(n)
        print(row)
    print(
        "\nThe UC design peaks highest but declines past ~260 clients\n"
        "(QP contexts overflow the NIC's SRAM); both alternatives hold\n"
        "their throughput — exactly the trade-off Section 5.5 describes."
    )


if __name__ == "__main__":
    main()
