#!/usr/bin/env python
"""HERD under a skewed (Zipf .99) workload — Section 5.7 in miniature.

Shows the two ingredients of HERD's skew resistance:

1. YCSB-style hash scrambling spreads the hottest keys across the six
   EREW partitions, so per-core load stays within ~1.5x;
2. cores share the NIC, so the busiest core can use the PIO/DMA
   headroom the idle cores leave behind.

Run:  python examples/skewed_workload.py
"""

from repro.bench.figures import run_herd
from repro.workloads import ZipfianGenerator


def main() -> None:
    n_keys = 1 << 20
    zipf = ZipfianGenerator(n_keys, theta=0.99, seed=0)
    top = zipf.probability_of_rank(0)
    print("keyspace: %d keys, Zipf theta=.99" % n_keys)
    print(
        "most popular key carries %.1f%% of traffic (%.0fx the average key)"
        % (top * 100, top * n_keys)
    )

    for distribution in ("uniform", "zipfian"):
        result = run_herd(
            distribution=distribution,
            n_keys=n_keys,
            measure_ns=200_000.0,
            index_entries=2 ** 18,
            log_bytes=1 << 24,
        )
        per_core = result.per_server_mops
        print("\n%s workload:" % distribution)
        print("  total      : %.1f Mops" % result.mops)
        print("  per core   : %s" % ", ".join("%.2f" % m for m in per_core))
        print(
            "  max / min  : %.2fx"
            % (max(per_core) / min(per_core))
        )


if __name__ == "__main__":
    main()
