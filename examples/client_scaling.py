#!/usr/bin/env python
"""How far does one HERD server scale? — Figure 12 in miniature.

Sweeps the number of connected client processes and shows the knee
where the server RNIC's QP-context SRAM overflows (~260 clients), plus
the cache hit rate that explains it.

Run:  python examples/client_scaling.py
"""

from repro.herd import HerdCluster, HerdConfig
from repro.workloads import Workload


def measure(n_clients: int) -> None:
    cluster = HerdCluster(
        HerdConfig(n_server_processes=6, window=4),
        n_client_machines=93,
        seed=3,
    )
    cluster.add_clients(
        n_clients, Workload(get_fraction=0.95, value_size=32, n_keys=4096)
    )
    cluster.preload(range(4096), 32)
    result = cluster.run(warmup_ns=50_000, measure_ns=120_000)
    print(
        "  %4d clients: %5.1f Mops   (server QP-cache hit rate %.0f%%)"
        % (
            n_clients,
            result.mops,
            100 * result.extra["server_qp_cache_hit_rate"],
        )
    )


def main() -> None:
    print("HERD throughput vs connected client processes (window = 4):")
    for n_clients in (60, 140, 220, 260, 320, 400, 460):
        measure(n_clients)
    print(
        "\nThe knee near 260 clients is the RNIC's QP-context cache "
        "overflowing;\nbeyond it every packet risks a PCIe context fetch "
        "(Section 5.5 / Figure 12)."
    )


if __name__ == "__main__":
    main()
