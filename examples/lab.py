#!/usr/bin/env python
"""The lab: a two-axis sweep, run in parallel, cached, and gated.

Defines a value-size x GET-fraction sweep over small HERD deployments,
runs it on 2 worker processes (a second run is served entirely from
the result-store cache), captures a baseline, and prints a gate
report — first against the honest baseline (PASS), then against a
tampered one (FAIL), which is exactly how CI catches a perf
regression.

The same flow from the command line:

    herd-lab run smoke --workers 4
    herd-lab baseline smoke --out base.json
    herd-lab gate smoke --baseline base.json

Run:  python examples/lab.py
"""

import os
import tempfile

from repro.lab import (
    Axis,
    ResultStore,
    SweepSpec,
    capture_baseline,
    check,
    run_sweep,
)


def main() -> None:
    spec = SweepSpec(
        name="example",
        task="herd",
        base={
            "n_clients": 8,
            "n_client_machines": 4,
            "n_server_processes": 2,
            "measure_ns": 60_000.0,
            "n_keys": 1 << 10,
        },
        axes=[
            Axis("value_size", [32, 256]),
            Axis("get_fraction", [0.5, 0.95]),
        ],
        description="2x2 HERD grid: value size x GET fraction",
    )

    workdir = tempfile.mkdtemp(prefix="herd-lab-example-")
    store = ResultStore(os.path.join(workdir, "lab"))

    print("== running %d points on 2 workers" % len(spec.points()))
    outcome = run_sweep(spec, store=store, workers=2)
    print(
        "ran %d, cached %d, failed %d\n"
        % (outcome.n_ran, outcome.n_cached, outcome.n_failed)
    )

    print("== running the same sweep again (everything cached)")
    again = run_sweep(spec, store=store, workers=2, progress=False)
    print("ran %d, cached %d\n" % (again.n_ran, again.n_cached))

    print("== gate against the honest baseline")
    baseline = capture_baseline(spec, again.results)
    report = check(spec, again.results, baseline)
    print(report.summary())

    print("\n== gate against a tampered baseline (pretend HERD used to be 30% faster)")
    label = sorted(baseline["points"])[0]
    baseline["points"][label]["mops"] *= 1.3
    report = check(spec, again.results, baseline)
    print(report.summary())
    print("\n(exit code in CI would be %d)" % (0 if report.passed else 1))


if __name__ == "__main__":
    main()
