#!/usr/bin/env python
"""Why is the throughput what it is? — closed-form bottleneck analysis.

`repro.analysis.BottleneckModel` computes each scenario's per-resource
service demands by hand and predicts the saturation throughput; the
simulator should agree.  This example prints predictions, measurements,
and the binding resource for the paper's headline numbers.

Run:  python examples/bottleneck_analysis.py
"""

from repro.analysis import BottleneckModel
from repro.bench.figures import run_farm, run_herd, run_pilaf
from repro.bench.microbench import inbound_throughput, outbound_throughput
from repro.verbs import Transport


def main() -> None:
    model = BottleneckModel()
    rows = [
        (
            "inbound WRITE (32 B)",
            model.inbound_write(32),
            lambda: inbound_throughput("WRITE", Transport.UC, 32),
        ),
        (
            "inbound READ (32 B)",
            model.inbound_read(32),
            lambda: inbound_throughput("READ", Transport.RC, 32),
        ),
        (
            "outbound inlined WRITE (32 B)",
            model.outbound_inline(32),
            lambda: outbound_throughput("WR-INLINE", 32),
        ),
        (
            "HERD, 48 B items, 95% GET",
            model.herd(value_size=32, get_fraction=0.95),
            lambda: run_herd(value_size=32, get_fraction=0.95).mops,
        ),
        (
            "Pilaf-em GETs",
            model.pilaf_get(32),
            lambda: run_pilaf(value_size=32, get_fraction=1.0).mops,
        ),
        (
            "FaRM-em GETs",
            model.farm_get(32),
            lambda: run_farm(value_size=32, get_fraction=1.0).mops,
        ),
    ]
    print("%-32s %10s %10s   %s" % ("scenario", "predicted", "measured", "bottleneck"))
    print("-" * 80)
    for name, prediction, measure in rows:
        measured = measure()
        measured = measured if isinstance(measured, float) else measured
        print(
            "%-32s %8.1f M %8.1f M   %s (%.1f ns/op)"
            % (
                name,
                prediction.mops,
                measured,
                prediction.bottleneck,
                prediction.demands_ns[prediction.bottleneck],
            )
        )
    print(
        "\nHERD's binding resource at peak is the PIO path — exactly the\n"
        "paper's Section 5.7 observation that 'the server processes\n"
        "saturate the PCIe PIO throughput'."
    )


if __name__ == "__main__":
    main()
