"""The nemesis end to end: search, plant a bug, shrink, replay.

Four steps:

1. generate one random schedule per dataplane and run it through the
   invariant-oracle suite (all must hold on the healthy tree);
2. a small multi-schedule search, round-robin over the dataplanes;
3. the planted-bug arm: layer the `planted-no-crash` oracle (which
   pretends server crashes are bugs), find a "failing" schedule, and
   delta-debug it down to the single crash atom;
4. freeze the minimal reproducer as a JSON artifact and replay it,
   byte-identically, the way `herd-bench --nemesis-replay` does.

Run:  python examples/nemesis.py
"""

import os
import tempfile

from repro.faults.rng import derive_seed
from repro.nemesis import (
    DATAPLANE_NAMES,
    atoms_of,
    build_artifact,
    generate,
    replay,
    resolve,
    run_schedule,
    save_artifact,
    search,
    shrink_schedule,
)


def one_schedule_per_dataplane() -> None:
    print("== one generated schedule per dataplane")
    for name in DATAPLANE_NAMES:
        schedule = generate(seed=7, dataplane=name)
        result = run_schedule(schedule)
        assert result.ok, result.violations
        print("  %-13s %d atom(s), fingerprint %s"
              % (name, len(atoms_of(schedule.plan)), result.fingerprint[:12]))


def small_search() -> None:
    print("== search: 6 schedules, round-robin")
    report = search(6, seed=1, shrink=False)
    assert report.ok, report.failures
    print("  " + report.summary())


def planted_bug() -> str:
    print("== planted-bug arm: find, shrink to the crash atom")
    oracles = resolve(("planted-no-crash",))
    found = None
    for i in range(24):
        schedule = generate(derive_seed(7, "nemesis.planted.%d" % i), "herd")
        if schedule.plan.crashes:
            found = schedule
            break
    assert found is not None, "no crash move in 24 draws"
    assert not run_schedule(found, oracles).ok
    shrunk = shrink_schedule(found, oracles)
    assert shrunk.atoms_after == 1 and shrunk.minimal
    print("  " + shrunk.summary())
    print("  minimal plan:")
    for line in shrunk.schedule.plan.describe().splitlines()[1:]:
        print("  " + line)

    path = os.path.join(tempfile.mkdtemp(prefix="nemesis-"), "repro.json")
    artifact = build_artifact(
        run_schedule(shrunk.schedule, oracles), oracles=("planted-no-crash",)
    )
    save_artifact(path, artifact)
    print("  artifact -> %s" % path)
    return path


def replay_artifact(path: str) -> None:
    print("== replay the frozen reproducer")
    outcome = replay(path)
    assert outcome.reproduced
    print("  " + outcome.summary())


def main() -> None:
    one_schedule_per_dataplane()
    small_search()
    replay_artifact(planted_bug())


if __name__ == "__main__":
    main()
