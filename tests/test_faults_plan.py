"""The FaultPlan DSL, named RNG streams, and config validation."""

from dataclasses import replace

import pytest

from repro.faults import FaultPlan, child_rng, derive_seed
from repro.faults.plan import DROP, RANDOMIZED_KIND_POOL
from repro.herd import HerdConfig


# ---------------------------------------------------------------------------
# Named child RNG streams
# ---------------------------------------------------------------------------


def test_derive_seed_is_stable_and_named():
    assert derive_seed(42, "faults.link") == derive_seed(42, "faults.link")
    assert derive_seed(42, "faults.link") != derive_seed(42, "faults.rnr")
    assert derive_seed(42, "faults.link") != derive_seed(43, "faults.link")
    assert 0 <= derive_seed(0, "x") < 2 ** 64


def test_child_rng_streams_are_independent():
    a = child_rng(7, "a")
    b = child_rng(7, "b")
    draws_a = [a.random() for _ in range(10)]
    # Interleaving draws from b must not change a's future draws.
    a2 = child_rng(7, "a")
    b2 = child_rng(7, "b")
    interleaved = []
    for _ in range(10):
        interleaved.append(a2.random())
        b2.random()
    assert draws_a == interleaved


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


def test_builders_chain_and_validate():
    plan = FaultPlan(seed=1).drop(rate=0.5).corrupt(rate=0.1).duplicate(rate=0.2)
    assert len(plan.link_rules) == 3
    with pytest.raises(ValueError):
        plan.drop(rate=1.5)
    with pytest.raises(ValueError):
        plan.duplicate(copies=0)
    with pytest.raises(ValueError):
        plan.delay(-1.0)
    with pytest.raises(ValueError):
        plan.nic_stall("server", engine="sideways", at_ns=0, duration_ns=1)
    with pytest.raises(ValueError):
        plan.crash_server(-1, at_ns=0, down_ns=1)


def test_empty_property():
    assert FaultPlan().empty
    assert not FaultPlan().drop(rate=0.1).empty


def test_rule_matching_by_direction_kind_and_window():
    plan = FaultPlan().drop(
        src="a", dst="b", rate=1.0, start_ns=100.0, end_ns=200.0, packet_kind="ACK"
    )
    (rule,) = plan.link_rules
    assert rule.matches("a", "b", "ACK", 150.0)
    assert not rule.matches("a", "b", "ACK", 99.0)   # before the window
    assert not rule.matches("a", "b", "ACK", 200.0)  # end is exclusive
    assert not rule.matches("x", "b", "ACK", 150.0)  # wrong source
    assert not rule.matches("a", "b", "WRITE", 150.0)  # wrong packet kind


def test_flap_is_sugar_for_two_windowed_drops():
    plan = FaultPlan().flap_link("cm1", at_ns=1_000.0, down_ns=500.0)
    drops = [r for r in plan.link_rules if r.kind == DROP]
    assert len(drops) == 2
    assert {r.src for r in drops} == {"cm1", "*"}
    assert {r.dst for r in drops} == {"cm1", "*"}
    assert all(r.start_ns == 1_000.0 and r.end_ns == 1_500.0 for r in drops)
    assert all(r.tag == "flap" for r in drops)


def test_describe_lists_every_rule():
    plan = (
        FaultPlan(seed=3)
        .drop(dst="server", rate=0.02)
        .nic_stall("server", engine="ingress", at_ns=10.0, duration_ns=5.0)
        .crash_server(1, at_ns=100.0, down_ns=50.0)
    )
    text = plan.describe()
    assert "seed=3" in text
    assert "drop" in text and "nic-stall" in text and "crash" in text


def test_clamped_closes_open_windows():
    plan = FaultPlan().drop(rate=0.1).rnr("cm0", rate=0.5)
    clamped = plan.clamped(1_000.0)
    assert all(r.end_ns == 1_000.0 for r in clamped.link_rules)
    assert all(r.end_ns == 1_000.0 for r in clamped.rnr_rules)
    # The original is untouched.
    assert all(r.end_ns > 1_000.0 for r in plan.link_rules)


def test_randomized_plans_are_deterministic():
    a = FaultPlan.randomized(9, 100_000.0, n_server_processes=4, rnr_machine="cm0")
    b = FaultPlan.randomized(9, 100_000.0, n_server_processes=4, rnr_machine="cm0")
    assert a.link_rules == b.link_rules
    assert a.nic_stalls == b.nic_stalls
    assert a.rnr_rules == b.rnr_rules
    assert a.crashes == b.crashes
    c = FaultPlan.randomized(10, 100_000.0, n_server_processes=4, rnr_machine="cm0")
    assert c.link_rules != a.link_rules


def test_randomized_crash_needs_a_sibling():
    alone = FaultPlan.randomized(1, 100_000.0, n_server_processes=1)
    assert not alone.crashes
    many = FaultPlan.randomized(1, 100_000.0, n_server_processes=4)
    (crash,) = many.crashes
    assert 0 <= crash.server_index < 4
    assert crash.at_ns + crash.down_ns < 100_000.0


def _plan_with_every_rule_type() -> FaultPlan:
    """One plan holding every rule type the DSL can express."""
    return (
        FaultPlan(seed=5)
        .drop(src="cm0", rate=0.1, start_ns=0.0, end_ns=40.0)
        .corrupt(rate=0.05, start_ns=0.0, end_ns=40.0)
        .duplicate(rate=0.1, copies=2, dup_delay_ns=100.0)
        .delay(400.0, rate=0.3)
        .reorder(300.0, rate=0.2)
        .degrade(src="server", latency_add_ns=500.0, rate_mult=0.5,
                 start_ns=10.0, end_ns=20.0)
        .partition_oneway("cm0", "server", end_ns=50.0)
        .lose_heartbeats("rep1", rate=0.9, start_ns=5.0, end_ns=25.0)
        .nic_stall("server", engine="egress", at_ns=1.0, duration_ns=2.0)
        .qp_error("cm1", qpn=3, at_ns=4.0, recover_after_ns=6.0)
        .rnr("cm3", rate=0.5, end_ns=9.0)
        .crash_server(0, at_ns=7.0, down_ns=8.0)
        .flap_link("cm2", at_ns=30.0, down_ns=8.0)
    )


def test_describe_covers_every_rule_type():
    """Satellite audit: every rule type renders exactly once, with its
    per-kind parameters, and flap sugar drops never double-render."""
    plan = _plan_with_every_rule_type()
    lines = plan.describe().splitlines()
    assert lines[0] == "FaultPlan(seed=5)"
    # One line per logical fault: 8 non-flap link rules + 1 stall +
    # 1 qp error + 1 rnr + 1 crash + 1 flap.
    assert len(lines) == 1 + 13
    body = "\n".join(lines[1:])
    assert "drop        cm0->* rate=0.1 during [0, 40) ns" in body
    assert "corrupt" in body
    assert "duplicate   *->* rate=0.1 x2 every 100 ns" in body
    assert "delay       *->* rate=0.3 +400 ns" in body
    assert "reorder     *->* rate=0.2 jitter<300 ns" in body
    assert "degrade     server->* rate=1 tx x2 +500 ns during [10, 20) ns" in body
    assert "partition1w cm0->server rate=1 during [0, 50) ns" in body
    assert "hb_loss     rep1->monitor rate=0.9 kind=SEND ctrl=4 during [5, 25) ns" in body
    assert "nic-stall   server.egress at 1 ns for 2 ns" in body
    assert "qp-error    cm1 qp3 at 4 ns recover +6 ns" in body
    assert "rnr         cm3 rate=0.5 during [0, 9) ns" in body
    assert "crash       server 0 at 7 ns, down 8 ns" in body
    assert "flap        cm2 at 30 ns, down 8 ns" in body
    # The flap renders from its record, not from its two sugar drops.
    assert body.count("flap") == 1


def test_describe_omits_recover_when_qp_error_is_permanent():
    text = FaultPlan().qp_error("cm0", qpn=1, at_ns=5.0).describe()
    assert "qp-error    cm0 qp1 at 5 ns" in text
    assert "recover" not in text


def test_clamped_audits_every_rule_type():
    """Satellite audit: clamping closes every windowed rule type, leaves
    instantaneous device rules alone, and keeps flap records in sync
    with their sugar drops."""
    plan = _plan_with_every_rule_type()
    clamped = plan.clamped(15.0)
    # Every link rule's window (including open-ended and flap sugar)
    # now ends at or before the clamp.
    assert all(r.end_ns <= 15.0 for r in clamped.link_rules)
    assert all(r.end_ns <= 15.0 for r in clamped.rnr_rules)
    # Instantaneous device/process events are not windows: untouched.
    assert clamped.nic_stalls == plan.nic_stalls
    assert clamped.qp_errors == plan.qp_errors
    assert clamped.crashes == plan.crashes
    # The flap at 30 ns starts after the clamp: its downtime collapses
    # to zero (never negative), matching its clamped sugar drops.
    (flap,) = clamped.flaps
    assert flap.at_ns == 30.0 and flap.down_ns == 0.0
    # The original plan is untouched throughout.
    assert plan.flaps[0].down_ns == 8.0
    assert any(r.end_ns > 15.0 for r in plan.link_rules)


def test_clamped_preserves_closed_windows_and_serializes():
    plan = _plan_with_every_rule_type()
    clamped = plan.clamped(1_000.0)
    # Windows already inside the clamp are byte-identical; only the
    # open-ended ones close.
    for before, after in zip(plan.link_rules, clamped.link_rules):
        assert after == (before if before.end_ns <= 1_000.0 else
                         replace(before, end_ns=1_000.0))
    assert clamped.flaps == plan.flaps
    # clamped() output round-trips through the artifact serializer.
    assert FaultPlan.from_dict(clamped.to_dict()).to_dict() == clamped.to_dict()


def test_plan_with_only_flap_records_is_not_empty():
    # A plan rebuilt field-by-field may carry flap records without
    # their sugar drops; it must not read as empty.
    plan = FaultPlan()
    plan.flaps = list(FaultPlan().flap_link("cm0", 1.0, 2.0).flaps)
    assert not plan.empty


# ---------------------------------------------------------------------------
# The randomized kind pool (nemesis vocabulary)
# ---------------------------------------------------------------------------


def test_randomized_kind_pool_covers_the_full_wire_vocabulary():
    """Satellite pin: the pool the nemesis and targeted chaos draw from
    includes the transaction dataplanes' atomic packets."""
    assert RANDOMIZED_KIND_POOL == (
        "WRITE", "SEND", "READ_REQ", "READ_RESP", "ACK",
        "ATOMIC_REQ", "ATOMIC_RESP",
    )


def test_targeted_kinds_draw_from_their_own_stream():
    """targeted_kinds=True appends kind-aimed drops after a shared
    prefix that is byte-identical to the classic mix."""
    base = FaultPlan.randomized(9, 100_000.0, n_server_processes=2)
    targeted = FaultPlan.randomized(
        9, 100_000.0, n_server_processes=2, targeted_kinds=True
    )
    n = len(base.link_rules)
    assert targeted.link_rules[:n] == base.link_rules
    assert targeted.nic_stalls == base.nic_stalls
    assert targeted.crashes == base.crashes
    extra = targeted.link_rules[n:]
    assert len(extra) == 2
    assert all(r.packet_kind in RANDOMIZED_KIND_POOL for r in extra)
    assert all(r.kind == DROP for r in extra)


def test_targeted_kinds_can_aim_at_atomics():
    # Seed pin: this draw includes an atomic packet kind, proving the
    # pool extension is reachable (not just declared).
    plan = FaultPlan.randomized(
        1, 100_000.0, n_server_processes=2, targeted_kinds=True
    )
    kinds = {r.packet_kind for r in plan.link_rules if r.packet_kind}
    assert "ATOMIC_REQ" in kinds


# ---------------------------------------------------------------------------
# HerdConfig validation
# ---------------------------------------------------------------------------


def test_retry_timeout_accepts_none_and_rejects_nonpositive():
    assert HerdConfig(retry_timeout_ns=None).retry_timeout_ns is None
    assert HerdConfig(retry_timeout_ns=1e4).retry_timeout_ns == 1e4
    with pytest.raises(ValueError):
        HerdConfig(retry_timeout_ns=0.0)
    with pytest.raises(ValueError):
        HerdConfig(retry_timeout_ns=-5.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n_server_processes=0),
        dict(window=0),
        dict(window=256),  # the slot-id byte caps the window at 255
        dict(slot_bytes=16),
        dict(index_entries=0),
        dict(log_bytes=0),
        dict(noop_after_polls=0),
        dict(pipeline_depth=0),
        dict(request_transport="RC"),
        dict(retry_backoff=0.5),
        dict(retry_jitter=1.5),
        dict(retry_jitter=-0.1),
        dict(retry_budget=0),
        dict(min_retry_timeout_ns=0.0),
    ],
)
def test_config_rejects_invalid_numeric_fields(kwargs):
    with pytest.raises(ValueError):
        HerdConfig(**kwargs)


def test_config_accepts_the_resilience_knobs():
    cfg = HerdConfig(
        retry_timeout_ns=2e4,
        retry_backoff=1.5,
        retry_jitter=0.2,
        retry_budget=3,
        adaptive_retry=True,
        min_retry_timeout_ns=1e4,
    )
    assert cfg.retry_budget == 3 and cfg.adaptive_retry
