"""The FaultPlan DSL, named RNG streams, and config validation."""

import pytest

from repro.faults import FaultPlan, child_rng, derive_seed
from repro.faults.plan import DROP
from repro.herd import HerdConfig


# ---------------------------------------------------------------------------
# Named child RNG streams
# ---------------------------------------------------------------------------


def test_derive_seed_is_stable_and_named():
    assert derive_seed(42, "faults.link") == derive_seed(42, "faults.link")
    assert derive_seed(42, "faults.link") != derive_seed(42, "faults.rnr")
    assert derive_seed(42, "faults.link") != derive_seed(43, "faults.link")
    assert 0 <= derive_seed(0, "x") < 2 ** 64


def test_child_rng_streams_are_independent():
    a = child_rng(7, "a")
    b = child_rng(7, "b")
    draws_a = [a.random() for _ in range(10)]
    # Interleaving draws from b must not change a's future draws.
    a2 = child_rng(7, "a")
    b2 = child_rng(7, "b")
    interleaved = []
    for _ in range(10):
        interleaved.append(a2.random())
        b2.random()
    assert draws_a == interleaved


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


def test_builders_chain_and_validate():
    plan = FaultPlan(seed=1).drop(rate=0.5).corrupt(rate=0.1).duplicate(rate=0.2)
    assert len(plan.link_rules) == 3
    with pytest.raises(ValueError):
        plan.drop(rate=1.5)
    with pytest.raises(ValueError):
        plan.duplicate(copies=0)
    with pytest.raises(ValueError):
        plan.delay(-1.0)
    with pytest.raises(ValueError):
        plan.nic_stall("server", engine="sideways", at_ns=0, duration_ns=1)
    with pytest.raises(ValueError):
        plan.crash_server(-1, at_ns=0, down_ns=1)


def test_empty_property():
    assert FaultPlan().empty
    assert not FaultPlan().drop(rate=0.1).empty


def test_rule_matching_by_direction_kind_and_window():
    plan = FaultPlan().drop(
        src="a", dst="b", rate=1.0, start_ns=100.0, end_ns=200.0, packet_kind="ACK"
    )
    (rule,) = plan.link_rules
    assert rule.matches("a", "b", "ACK", 150.0)
    assert not rule.matches("a", "b", "ACK", 99.0)   # before the window
    assert not rule.matches("a", "b", "ACK", 200.0)  # end is exclusive
    assert not rule.matches("x", "b", "ACK", 150.0)  # wrong source
    assert not rule.matches("a", "b", "WRITE", 150.0)  # wrong packet kind


def test_flap_is_sugar_for_two_windowed_drops():
    plan = FaultPlan().flap_link("cm1", at_ns=1_000.0, down_ns=500.0)
    drops = [r for r in plan.link_rules if r.kind == DROP]
    assert len(drops) == 2
    assert {r.src for r in drops} == {"cm1", "*"}
    assert {r.dst for r in drops} == {"cm1", "*"}
    assert all(r.start_ns == 1_000.0 and r.end_ns == 1_500.0 for r in drops)
    assert all(r.tag == "flap" for r in drops)


def test_describe_lists_every_rule():
    plan = (
        FaultPlan(seed=3)
        .drop(dst="server", rate=0.02)
        .nic_stall("server", engine="ingress", at_ns=10.0, duration_ns=5.0)
        .crash_server(1, at_ns=100.0, down_ns=50.0)
    )
    text = plan.describe()
    assert "seed=3" in text
    assert "drop" in text and "nic-stall" in text and "crash" in text


def test_clamped_closes_open_windows():
    plan = FaultPlan().drop(rate=0.1).rnr("cm0", rate=0.5)
    clamped = plan.clamped(1_000.0)
    assert all(r.end_ns == 1_000.0 for r in clamped.link_rules)
    assert all(r.end_ns == 1_000.0 for r in clamped.rnr_rules)
    # The original is untouched.
    assert all(r.end_ns > 1_000.0 for r in plan.link_rules)


def test_randomized_plans_are_deterministic():
    a = FaultPlan.randomized(9, 100_000.0, n_server_processes=4, rnr_machine="cm0")
    b = FaultPlan.randomized(9, 100_000.0, n_server_processes=4, rnr_machine="cm0")
    assert a.link_rules == b.link_rules
    assert a.nic_stalls == b.nic_stalls
    assert a.rnr_rules == b.rnr_rules
    assert a.crashes == b.crashes
    c = FaultPlan.randomized(10, 100_000.0, n_server_processes=4, rnr_machine="cm0")
    assert c.link_rules != a.link_rules


def test_randomized_crash_needs_a_sibling():
    alone = FaultPlan.randomized(1, 100_000.0, n_server_processes=1)
    assert not alone.crashes
    many = FaultPlan.randomized(1, 100_000.0, n_server_processes=4)
    (crash,) = many.crashes
    assert 0 <= crash.server_index < 4
    assert crash.at_ns + crash.down_ns < 100_000.0


# ---------------------------------------------------------------------------
# HerdConfig validation
# ---------------------------------------------------------------------------


def test_retry_timeout_accepts_none_and_rejects_nonpositive():
    assert HerdConfig(retry_timeout_ns=None).retry_timeout_ns is None
    assert HerdConfig(retry_timeout_ns=1e4).retry_timeout_ns == 1e4
    with pytest.raises(ValueError):
        HerdConfig(retry_timeout_ns=0.0)
    with pytest.raises(ValueError):
        HerdConfig(retry_timeout_ns=-5.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n_server_processes=0),
        dict(window=0),
        dict(window=256),  # the slot-id byte caps the window at 255
        dict(slot_bytes=16),
        dict(index_entries=0),
        dict(log_bytes=0),
        dict(noop_after_polls=0),
        dict(pipeline_depth=0),
        dict(request_transport="RC"),
        dict(retry_backoff=0.5),
        dict(retry_jitter=1.5),
        dict(retry_jitter=-0.1),
        dict(retry_budget=0),
        dict(min_retry_timeout_ns=0.0),
    ],
)
def test_config_rejects_invalid_numeric_fields(kwargs):
    with pytest.raises(ValueError):
        HerdConfig(**kwargs)


def test_config_accepts_the_resilience_knobs():
    cfg = HerdConfig(
        retry_timeout_ns=2e4,
        retry_backoff=1.5,
        retry_jitter=0.2,
        retry_budget=3,
        adaptive_retry=True,
        min_retry_timeout_ns=1e4,
    )
    assert cfg.retry_budget == 3 and cfg.adaptive_retry
