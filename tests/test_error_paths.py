"""Error paths and misuse handling across the stack."""

import pytest

from repro.herd import HerdCluster, HerdConfig
from repro.hw import APT, Fabric, Machine
from repro.sim import Simulator
from repro.verbs import (
    CompletionQueue,
    RdmaDevice,
    Transport,
    VerbError,
    WorkRequest,
    connect_pair,
)
from repro.verbs.mr import MrAccessError
from repro.workloads import Workload


def make_pair():
    sim = Simulator()
    fabric = Fabric(sim, APT)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    client = RdmaDevice(Machine(sim, fabric, "client"))
    return sim, server, client


# ---------------------------------------------------------------------------
# verbs misuse
# ---------------------------------------------------------------------------


def test_write_with_bad_rkey_raises_remote_access_error():
    sim, server, client = make_pair()
    mr = server.register_memory(128)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(
        cqp,
        WorkRequest.write(raddr=mr.addr, rkey=mr.rkey + 7, payload=b"x", inline=True, signaled=False),
    )
    with pytest.raises(MrAccessError):
        sim.run_until_idle()


def test_write_past_region_end_raises():
    sim, server, client = make_pair()
    mr = server.register_memory(128)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(
        cqp,
        WorkRequest.write(
            raddr=mr.addr + 120, rkey=mr.rkey, payload=b"x" * 16, inline=True, signaled=False
        ),
    )
    with pytest.raises(MrAccessError):
        sim.run_until_idle()


def test_send_to_unknown_qpn_raises():
    sim, server, client = make_pair()
    qp = client.create_qp(Transport.UD)
    client.post_send(
        qp, WorkRequest.send(payload=b"x", inline=True, signaled=False, ah=("server", 999))
    )
    with pytest.raises(VerbError):
        sim.run_until_idle()


def test_cq_poll_and_try_pop():
    sim, server, client = make_pair()
    cq = CompletionQueue(sim, "t")
    assert cq.try_pop() is None
    assert cq.poll() == []
    mr = server.register_memory(128)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    for i in range(3):
        client.post_send(
            cqp,
            WorkRequest.write(
                raddr=mr.addr, rkey=mr.rkey, payload=b"x", inline=True,
                signaled=True, wr_id=i,
            ),
        )
    sim.run_until_idle()
    got = cqp.send_cq.poll(max_entries=2)
    assert [c.wr_id for c in got] == [0, 1]
    assert cqp.send_cq.try_pop().wr_id == 2


# ---------------------------------------------------------------------------
# cluster wiring misuse
# ---------------------------------------------------------------------------


def test_cluster_requires_clients_before_wiring():
    cluster = HerdCluster(HerdConfig(n_server_processes=1))
    with pytest.raises(RuntimeError):
        cluster.wire()


def test_cluster_rejects_clients_after_wiring():
    cluster = HerdCluster(HerdConfig(n_server_processes=1), n_client_machines=1)
    cluster.add_clients(1, Workload(n_keys=64))
    cluster.wire()
    with pytest.raises(RuntimeError):
        cluster.add_clients(1, Workload(n_keys=64))


def test_client_cannot_start_unwired():
    from repro.herd.client import HerdClientProcess

    sim = Simulator()
    fabric = Fabric(sim, APT)
    device = RdmaDevice(Machine(sim, fabric, "c"))
    client = HerdClientProcess(0, device, HerdConfig(n_server_processes=1), Workload(n_keys=64).stream(0))
    with pytest.raises(RuntimeError):
        client.start()


def test_wire_is_idempotent():
    cluster = HerdCluster(HerdConfig(n_server_processes=1), n_client_machines=1)
    cluster.add_clients(1, Workload(n_keys=64))
    cluster.wire()
    n_qps = len(cluster.server_device.qps)
    cluster.wire()
    assert len(cluster.server_device.qps) == n_qps
