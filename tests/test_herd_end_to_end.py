"""End-to-end HERD tests: real requests, real bytes, real responses."""

import pytest

from repro.herd import HerdCluster, HerdConfig
from repro.workloads import Workload
from repro.workloads.ycsb import value_for


def small_cluster(ns=2, window=2, clients=4, get_fraction=0.5, value_size=32,
                  n_keys=256, **cfg_kwargs):
    cluster = HerdCluster(
        HerdConfig(n_server_processes=ns, window=window, **cfg_kwargs),
        n_client_machines=2,
        seed=7,
    )
    cluster.add_clients(
        clients,
        Workload(
            get_fraction=get_fraction, value_size=value_size, n_keys=n_keys
        ),
    )
    cluster.preload(range(n_keys), value_size)
    return cluster


def test_progress_and_no_failures():
    cluster = small_cluster()
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 100
    assert sum(c.failures for c in cluster.clients) == 0


def test_preloaded_gets_all_hit():
    """Values are deterministic per key, so every GET must hit after
    preloading the whole keyspace."""
    cluster = small_cluster(get_fraction=1.0)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 100
    assert result.extra["get_misses"] == 0


def test_every_get_response_succeeds_after_preload():
    """Every GET response decodes as a hit when the keyspace is warm."""
    checked = []
    cluster = small_cluster(get_fraction=1.0, value_size=48)
    cluster.wire()

    def capture(op, latency, success, now):
        assert success
        checked.append(op.item)

    for client in cluster.clients:
        client.response_hook = capture
        client.start()
    for server in cluster.servers:
        server.start()
    cluster.sim.run(until=100_000)
    assert len(checked) > 50


def test_stored_values_match_value_function():
    """Data-path integrity: after a run, the bytes in the server's MICA
    partitions equal the deterministic value function for every key."""
    from repro.herd.config import partition_of
    from repro.workloads.ycsb import keyhash

    cluster = small_cluster(get_fraction=0.5, value_size=40, n_keys=64)
    result = cluster.run(warmup_ns=0, measure_ns=80_000)
    assert result.ops > 20
    for item in range(64):
        kh = keyhash(item)
        server = cluster.servers[partition_of(kh, cluster.config.n_server_processes)]
        assert server.store.get(kh) == value_for(item, 40)


def test_puts_update_server_store():
    cluster = small_cluster(get_fraction=0.0, value_size=16, n_keys=32)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 50
    puts = sum(s.puts for s in cluster.servers)
    assert puts > 50
    assert sum(c.failures for c in cluster.clients) == 0


def test_single_client_does_not_deadlock():
    """With one client and a deep window, the pipeline would hold the
    last requests forever without the no-op rule (Section 4.1.1)."""
    cluster = small_cluster(ns=1, window=2, clients=1)
    result = cluster.run(warmup_ns=0, measure_ns=50_000)
    assert result.ops > 10
    assert cluster.servers[0].noops_pushed > 0


def test_window_limits_outstanding_requests():
    cluster = small_cluster(window=3)
    cluster.wire()
    for client in cluster.clients:
        client.start()
    for server in cluster.servers:
        server.start()
    cluster.sim.run(until=50_000)
    for client in cluster.clients:
        assert client.outstanding <= 3


def test_requests_and_responses_balance():
    cluster = small_cluster()
    cluster.run(warmup_ns=0, measure_ns=100_000)
    issued = sum(c.issued for c in cluster.clients)
    completed = sum(c.completed for c in cluster.clients)
    outstanding = sum(c.outstanding for c in cluster.clients)
    assert issued == completed + outstanding


def test_responses_use_unsignaled_ud_sends():
    """HERD responses are unsignaled SENDs over UD: the server's send
    CQs must stay empty."""
    cluster = small_cluster()
    cluster.run(warmup_ns=0, measure_ns=50_000)
    for server in cluster.servers:
        assert len(server.ud_qp.send_cq) == 0
        assert server.ud_qp.send_cq.pushed == 0


def test_no_recv_is_ever_missing():
    """Clients pre-post a RECV before each request, so no response can
    arrive without a buffer (rnr_drops == 0)."""
    cluster = small_cluster()
    cluster.run(warmup_ns=0, measure_ns=100_000)
    for client in cluster.clients:
        for qp in client.ud_qps:
            assert qp.rnr_drops == 0


def test_server_connected_qp_count_is_nc_not_nc_times_ns():
    """Section 4.2: HERD needs only NC connected QPs at the server."""
    cluster = small_cluster(ns=3, clients=5)
    cluster.wire()
    from repro.verbs import Transport

    server_uc = [
        qp for qp in cluster.server_device.qps.values()
        if qp.transport is Transport.UC
    ]
    server_ud = [
        qp for qp in cluster.server_device.qps.values()
        if qp.transport is Transport.UD
    ]
    assert len(server_uc) == 5          # one per client process
    assert len(server_ud) == 3          # one per server process


def test_large_values_switch_to_non_inlined_responses():
    """Values above the inline cutoff must still arrive intact."""
    cluster = small_cluster(get_fraction=1.0, value_size=300, n_keys=64)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 20
    assert result.extra["get_misses"] == 0
    assert sum(c.failures for c in cluster.clients) == 0


def test_big_put_values_roundtrip():
    """PUT requests above max_inline go out as non-inlined WRITEs."""
    cluster = small_cluster(get_fraction=0.0, value_size=600, n_keys=16)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 20
    assert sum(c.failures for c in cluster.clients) == 0


def test_throughput_in_expected_band():
    """A 6-core HERD server delivers ~25 Mops for small items (the
    paper's 26 Mops); accept a generous band."""
    cluster = HerdCluster(HerdConfig(n_server_processes=6), seed=3)
    cluster.add_clients(51, Workload(get_fraction=0.95, value_size=32, n_keys=1 << 12))
    cluster.preload(range(1 << 12), 32)
    result = cluster.run(warmup_ns=50_000, measure_ns=150_000)
    assert 20.0 < result.mops < 30.0


def test_latency_at_low_load_is_microseconds():
    cluster = small_cluster(ns=2, clients=2, window=1)
    result = cluster.run(warmup_ns=10_000, measure_ns=100_000)
    assert 1.5 < result.latency["mean_us"] < 6.0
