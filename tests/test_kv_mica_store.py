"""Tests for MICA's store mode (non-lossy semantics, Section 2.1)."""

import pytest

from repro.kv.mica import MicaCache


def key(i):
    return ("sk-%06d" % i).encode().ljust(16, b"\x00")


def test_mode_validation():
    with pytest.raises(ValueError):
        MicaCache(mode="archive")


def test_store_mode_roundtrip():
    store = MicaCache(mode="store")
    assert store.put(key(1), b"v1")
    assert store.get(key(1)) == b"v1"


def test_store_mode_rejects_full_bucket_instead_of_evicting():
    store = MicaCache(index_entries=MicaCache.SLOTS_PER_BUCKET, mode="store")
    assert store.n_buckets == 1
    for i in range(MicaCache.SLOTS_PER_BUCKET):
        assert store.put(key(i), b"v")
    assert store.put(key(99), b"v") is False
    assert store.rejected_puts == 1
    assert store.index_evictions == 0
    # Everything inserted is still there.
    for i in range(MicaCache.SLOTS_PER_BUCKET):
        assert store.get(key(i)) == b"v"


def test_store_mode_rejects_log_wrap_instead_of_overwriting():
    store = MicaCache(index_entries=2 ** 10, log_bytes=128, mode="store")
    accepted = 0
    for i in range(10):
        if store.put(key(i), b"x" * 20):
            accepted += 1
    assert 0 < accepted < 10
    assert store.rejected_puts > 0
    # Nothing accepted was ever lost.
    for i in range(accepted):
        assert store.get(key(i)) == b"x" * 20
    assert store.log.wraps == 0


def test_store_mode_overwrite_of_existing_key_allowed_when_bucket_full():
    store = MicaCache(index_entries=MicaCache.SLOTS_PER_BUCKET, mode="store")
    for i in range(MicaCache.SLOTS_PER_BUCKET):
        store.put(key(i), b"old")
    assert store.put(key(0), b"new")  # overwrite, not an insert
    assert store.get(key(0)) == b"new"


def test_cache_mode_still_evicts():
    cache = MicaCache(index_entries=MicaCache.SLOTS_PER_BUCKET, mode="cache")
    for i in range(MicaCache.SLOTS_PER_BUCKET + 2):
        assert cache.put(key(i), b"v")
    assert cache.index_evictions == 2
    assert cache.rejected_puts == 0
