"""Cross-validation: the analytic model vs the discrete-event simulator.

If the simulator's emergent throughput drifts from the closed-form
bottleneck analysis, either the queueing behaviour or the calibration
broke; these tests pin the two together.
"""

import pytest

from repro.analysis import BottleneckModel
from repro.bench.figures import run_farm, run_herd, run_pilaf
from repro.bench.microbench import inbound_throughput, outbound_throughput
from repro.hw import APT, SUSITNA
from repro.verbs import Transport

MODEL = BottleneckModel(APT)


def within(measured, predicted, tolerance):
    assert predicted > 0
    assert abs(measured - predicted) / predicted < tolerance, (
        measured,
        predicted,
    )


# ---------------------------------------------------------------------------
# closed-form sanity
# ---------------------------------------------------------------------------


def test_predictions_identify_bottlenecks():
    assert MODEL.inbound_write(32).bottleneck == "nic_ingress"
    assert MODEL.inbound_read(32).bottleneck == "nic_ingress"
    assert MODEL.inbound_write(1024).bottleneck in ("wire", "dma")
    assert MODEL.outbound_non_inline(32).bottleneck == "dma"
    assert MODEL.outbound_read(32).bottleneck == "nic_egress"


def test_paper_headline_rates():
    """The calibration targets from Section 3.2."""
    assert MODEL.inbound_write(32).mops == pytest.approx(35.0, rel=0.05)
    assert MODEL.inbound_read(32).mops == pytest.approx(26.0, rel=0.05)
    assert MODEL.outbound_read(32).mops == pytest.approx(22.0, rel=0.05)
    assert 30.0 < MODEL.outbound_inline(16).mops < 40.0


def test_herd_prediction_matches_paper_band():
    pred = MODEL.herd(value_size=32, get_fraction=0.95, cores=6)
    assert 23.0 < pred.mops < 28.0
    assert pred.bottleneck == "pio"  # Section 5.7: PIO saturates first


def test_herd_single_core_is_cpu_bound():
    pred = MODEL.herd(cores=1)
    assert pred.bottleneck == "cores"
    assert 5.0 < pred.mops < 8.0  # paper: 6.3 Mops on one core


def test_prefetch_removes_memory_from_the_core_budget():
    with_pf = MODEL.herd(cores=1, prefetch=True).mops
    without = MODEL.herd(cores=1, prefetch=False).mops
    assert with_pf > 1.5 * without


def test_susitna_is_slower_than_apt():
    apt = MODEL.herd().mops
    susitna = BottleneckModel(SUSITNA).herd().mops
    assert susitna < 0.75 * apt


# ---------------------------------------------------------------------------
# model vs simulator
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("payload", [32, 128, 512])
def test_inbound_write_matches_simulator(payload):
    measured = inbound_throughput("WRITE", Transport.UC, payload)
    within(measured, MODEL.inbound_write(payload).mops, 0.15)


@pytest.mark.parametrize("payload", [32, 256])
def test_inbound_read_matches_simulator(payload):
    measured = inbound_throughput("READ", Transport.RC, payload)
    within(measured, MODEL.inbound_read(payload).mops, 0.15)


def test_outbound_inline_matches_simulator():
    measured = outbound_throughput("WR-INLINE", 32)
    within(measured, MODEL.outbound_inline(32).mops, 0.15)


def test_outbound_non_inline_matches_simulator():
    measured = outbound_throughput("WRITE-UC", 32)
    within(measured, MODEL.outbound_non_inline(32).mops, 0.2)


def test_herd_matches_simulator():
    measured = run_herd(value_size=32, get_fraction=0.95).mops
    within(measured, MODEL.herd(value_size=32, get_fraction=0.95).mops, 0.15)


def test_pilaf_get_matches_simulator():
    measured = run_pilaf(value_size=32, get_fraction=1.0).mops
    within(measured, MODEL.pilaf_get(32).mops, 0.2)


@pytest.mark.parametrize("kind", ["READ", "WRITE", "WR-INLINE"])
@pytest.mark.parametrize("payload", [32, 128])
def test_verb_latency_model_matches_simulator(kind, payload):
    """The closed-form path sum agrees with the simulated latency to
    within 2% for raw verbs (Figure 2)."""
    from repro.bench.microbench import verb_latency

    predicted_us = MODEL.verb_latency_ns(kind, payload) / 1e3
    measured_us = verb_latency(kind, payload)
    assert abs(predicted_us - measured_us) / measured_us < 0.02


def test_echo_latency_model_close():
    """ECHO adds server-loop details the model only approximates."""
    from repro.bench.microbench import verb_latency

    predicted_us = MODEL.verb_latency_ns("ECHO", 32) / 1e3
    measured_us = verb_latency("ECHO", 32)
    assert abs(predicted_us - measured_us) / measured_us < 0.2


def test_latency_model_rejects_unknown_kind():
    with pytest.raises(ValueError):
        MODEL.verb_latency_ns("ATOMIC", 8)


def test_client_cpu_accounting_matches_section_5_6():
    """Section 5.6: Pilaf's multi-READ GETs cost the most client CPU;
    HERD 'shifts this overhead to the server's CPU'."""
    herd = MODEL.client_cpu_ns_per_op("HERD", get_fraction=1.0)
    pilaf = MODEL.client_cpu_ns_per_op("Pilaf", get_fraction=1.0)
    farm = MODEL.client_cpu_ns_per_op("FaRM", get_fraction=1.0)
    var = MODEL.client_cpu_ns_per_op("FaRM-VAR", get_fraction=1.0)
    assert pilaf > var > farm       # READ count orders client cost
    assert pilaf > 1.5 * herd       # the paper's 'extra READs' overhead
    with pytest.raises(ValueError):
        MODEL.client_cpu_ns_per_op("memcached")


def test_farm_get_matches_simulator():
    measured = run_farm(value_size=32, get_fraction=1.0).mops
    within(measured, MODEL.farm_get(32).mops, 0.2)
    measured_var = run_farm(value_size=32, get_fraction=1.0, inline_values=False).mops
    within(measured_var, MODEL.farm_get(32, inline_values=False).mops, 0.25)
