"""Tests for memory regions and the registration table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verbs.mr import MemoryRegion, MrAccessError, MrTable, PAGE


def test_register_assigns_nonzero_page_aligned_addresses():
    table = MrTable()
    a = table.register(100)
    b = table.register(100)
    assert a.addr != 0
    assert a.addr % PAGE == 0
    assert b.addr % PAGE == 0
    assert b.addr >= a.addr + PAGE  # non-overlapping


def test_register_rejects_empty():
    with pytest.raises(ValueError):
        MrTable().register(0)


def test_local_write_read_roundtrip():
    mr = MrTable().register(64)
    mr.write(10, b"hello")
    assert mr.read(10, 5) == b"hello"
    assert mr.read(0, 10) == b"\x00" * 10


def test_write_out_of_bounds():
    mr = MrTable().register(16)
    with pytest.raises(MrAccessError):
        mr.write(12, b"toolong")
    with pytest.raises(MrAccessError):
        mr.write(-1, b"x")


def test_read_out_of_bounds():
    mr = MrTable().register(16)
    with pytest.raises(MrAccessError):
        mr.read(8, 9)
    with pytest.raises(MrAccessError):
        mr.read(0, -1)


def test_offset_of_translates_addresses():
    table = MrTable()
    mr = table.register(128)
    assert mr.offset_of(mr.addr) == 0
    assert mr.offset_of(mr.addr + 127) == 127
    with pytest.raises(MrAccessError):
        mr.offset_of(mr.addr + 128)
    with pytest.raises(MrAccessError):
        mr.offset_of(mr.addr - 1)


def test_resolve_checks_rkey_and_bounds():
    table = MrTable()
    mr = table.register(128)
    assert table.resolve(mr.addr, mr.rkey, 128) is mr
    with pytest.raises(MrAccessError):
        table.resolve(mr.addr, mr.rkey + 99, 8)  # bad rkey
    with pytest.raises(MrAccessError):
        table.resolve(mr.addr + 120, mr.rkey, 16)  # overrun


def test_distinct_keys_per_region():
    table = MrTable()
    a = table.register(8)
    b = table.register(8)
    assert a.rkey != b.rkey


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=256),
    st.binary(min_size=0, max_size=64),
)
def test_roundtrip_any_offset_and_payload(capacity_extra, payload):
    """Property: any in-bounds write reads back exactly."""
    mr = MemoryRegion(addr=PAGE, length=len(payload) + capacity_extra, lkey=1, rkey=1)
    offset = capacity_extra // 2
    mr.write(offset, payload)
    assert mr.read(offset, len(payload)) == payload
