"""Tests for the fabric, machine wiring, and memory system."""

import pytest

from repro.hw import APT, Fabric, Machine, MemorySystem
from repro.sim import Simulator


def make_pair():
    sim = Simulator()
    fabric = Fabric(sim, APT)
    a = Machine(sim, fabric, "a")
    b = Machine(sim, fabric, "b")
    return sim, fabric, a, b


def test_packet_delivery_and_delay():
    sim, fabric, a, b = make_pair()
    got = []
    b.attach_packet_handler(lambda pkt: got.append((pkt, sim.now)))
    a.transmit("b", "hello", wire_bytes=70)
    sim.run_until_idle()
    expected = 70 / APT.link_bw + APT.wire_delay_ns
    assert got == [("hello", pytest.approx(expected))]


def test_transmissions_serialize_on_source_port():
    sim, fabric, a, b = make_pair()
    got = []
    b.attach_packet_handler(lambda pkt: got.append(sim.now))
    for _ in range(3):
        a.transmit("b", "p", wire_bytes=700)
    sim.run_until_idle()
    tx = 700 / APT.link_bw
    assert got == [pytest.approx(i * tx + APT.wire_delay_ns) for i in (1, 2, 3)]


def test_different_sources_do_not_contend():
    sim = Simulator()
    fabric = Fabric(sim, APT)
    machines = [Machine(sim, fabric, "m%d" % i) for i in range(3)]
    sink = Machine(sim, fabric, "sink")
    got = []
    sink.attach_packet_handler(lambda pkt: got.append(sim.now))
    for m in machines:
        m.transmit("sink", "p", wire_bytes=70)
    sim.run_until_idle()
    # All three arrive at the same instant: separate source ports.
    assert len(set(got)) == 1


def test_duplicate_attach_rejected():
    sim = Simulator()
    fabric = Fabric(sim, APT)
    Machine(sim, fabric, "a")
    with pytest.raises(ValueError):
        Machine(sim, fabric, "a")


def test_delivery_without_handler_raises():
    sim, fabric, a, b = make_pair()
    a.transmit("b", "p", wire_bytes=70)
    with pytest.raises(RuntimeError):
        sim.run_until_idle()


def test_bit_errors_drop_packets():
    sim, fabric, a, b = make_pair()
    got = []
    b.attach_packet_handler(lambda pkt: got.append(pkt))
    fabric.bit_error_rate = 1.0
    a.transmit("b", "p", wire_bytes=70)
    sim.run_until_idle()
    assert got == []
    assert fabric.dropped == 1


def test_port_statistics():
    sim, fabric, a, b = make_pair()
    b.attach_packet_handler(lambda pkt: None)
    a.transmit("b", "p", wire_bytes=100)
    a.transmit("b", "q", wire_bytes=200)
    sim.run_until_idle()
    assert a.port.tx_packets == 2
    assert a.port.tx_bytes == 300


def test_machine_profile_defaults_to_fabric_profile():
    sim = Simulator()
    fabric = Fabric(sim, APT)
    m = Machine(sim, fabric, "m")
    assert m.profile is APT


# ---------------------------------------------------------------------------
# MemorySystem
# ---------------------------------------------------------------------------


def test_cold_access_costs_dram_latency():
    mem = MemorySystem(APT)
    assert mem.access("bucket:1") == APT.dram_ns


def test_prefetched_access_is_cheap_and_single_use():
    mem = MemorySystem(APT)
    mem.prefetch("bucket:1")
    assert mem.access("bucket:1") == APT.prefetch_hit_ns
    # Prefetch coverage is consumed.
    assert mem.access("bucket:1") == APT.dram_ns


def test_memory_counters():
    mem = MemorySystem(APT)
    mem.prefetch("x")
    mem.access("x")
    mem.access("y")
    assert mem.accesses == 2
    assert mem.prefetch_hits == 1


def test_anonymous_access_pricing():
    mem = MemorySystem(APT)
    assert mem.random_access_ns(prefetched=True) == APT.prefetch_hit_ns
    assert mem.random_access_ns(prefetched=False) == APT.dram_ns
