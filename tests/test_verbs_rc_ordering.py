"""Opt-in RC PSN ordering enforcement on the simulated device.

Real RC hardware stamps request packets with sequence numbers, acks
cumulatively, and discards out-of-order arrivals at the responder.
The simulator's default transport skips all of that (FIFO ack
matching, deliver-whatever-arrives) — fine for HERD's UC/UD wire, but
it under-models RC for consumers that pipeline dependent WRITEs (the
one-sided transaction commit).  ``RdmaDevice.enforce_rc_ordering``
turns the faithful behavior on; these tests pin both the legacy gap
and the enforced semantics.

The nemesis found the gap: see docs/NEMESIS.md, "What the nemesis
found".
"""

from repro.hw import APT, Fabric, Machine
from repro.hw.link import LinkVerdict
from repro.sim import Simulator
from repro.verbs import (
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
    connect_pair,
)


def make_world(enforce=False):
    sim = Simulator()
    fabric = Fabric(sim, APT)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    client = RdmaDevice(Machine(sim, fabric, "client"))
    server.enforce_rc_ordering = enforce
    client.enforce_rc_ordering = enforce
    return sim, fabric, server, client


def drop_first(kind):
    """A fault hook dropping the first packet of ``kind`` it sees."""
    state = {"armed": True}

    def hook(src, dst, packet, wire_bytes):
        if packet.kind.name == kind and state["armed"]:
            state["armed"] = False
            return LinkVerdict(drop=True)
        return None

    return hook


def duplicate_every(kind):
    def hook(src, dst, packet, wire_bytes):
        if packet.kind.name == kind:
            return LinkVerdict(duplicate=1, dup_delay_ns=500.0)
        return None

    return hook


def test_enforcement_is_off_by_default():
    _sim, _fabric, server, client = make_world()
    # The flag must stay opt-in: every pinned fingerprint in the repo
    # was produced by the legacy transport.
    sim2 = Simulator()
    dev = RdmaDevice(Machine(sim2, Fabric(sim2, APT), "m"))
    assert dev.enforce_rc_ordering is False
    assert dev.psn_gap_drops == 0 and dev.psn_duplicate_drops == 0


def post_two_writes(client, cqp, mr):
    client.post_send(
        cqp,
        WorkRequest.write(
            raddr=mr.addr, rkey=mr.rkey, payload=b"A", inline=True, signaled=True
        ),
    )
    client.post_send(
        cqp,
        WorkRequest.write(
            raddr=mr.addr + 1, rkey=mr.rkey, payload=b"B", inline=True, signaled=True
        ),
    )


def test_legacy_fifo_ack_matching_loses_a_dropped_write():
    """The gap the nemesis shrank to: drop the first of two pipelined
    WRITEs and the second ack is FIFO-credited to the *first* WR —
    both complete "successfully" while byte A never arrives."""
    sim, fabric, server, client = make_world(enforce=False)
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    fabric.fault_hook = drop_first("WRITE")
    post_two_writes(client, cqp, mr)
    sim.run_until_idle()
    assert len(cqp.send_cq.poll()) == 2  # both claim success...
    assert mr.read(0, 2) == b"\x00B"  # ...but the acked write is lost


def test_psn_enforcement_repairs_the_dropped_write():
    sim, fabric, server, client = make_world(enforce=True)
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    fabric.fault_hook = drop_first("WRITE")
    post_two_writes(client, cqp, mr)
    sim.run_until_idle()
    # The out-of-order second WRITE is discarded at the responder and
    # retransmitted in order; both bytes land and both WRs complete.
    assert mr.read(0, 2) == b"AB"
    assert len(cqp.send_cq.poll()) == 2
    assert server.psn_gap_drops == 1


def test_duplicate_send_is_discarded_not_redelivered():
    for enforce, want_cqes, want_dups in ((False, 2, 0), (True, 1, 1)):
        sim, fabric, server, client = make_world(enforce)
        rmr = server.register_memory(4096)
        sqp, cqp = connect_pair(server, client, Transport.RC)
        server.post_recv(sqp, RecvRequest(wr_id=1, local=(rmr, 0, 16)))
        server.post_recv(sqp, RecvRequest(wr_id=2, local=(rmr, 16, 16)))
        fabric.fault_hook = duplicate_every("SEND")
        client.post_send(
            cqp, WorkRequest.send(payload=b"m", inline=True, signaled=True)
        )
        sim.run_until_idle()
        # Legacy: the duplicate consumes a second RECV and delivers a
        # phantom message.  Enforced: the duplicate is re-acked with
        # the previous PSN and discarded.
        assert len(sqp.recv_cq.poll()) == want_cqes
        assert server.sends_received == want_cqes
        assert server.psn_duplicate_drops == want_dups


def test_cumulative_ack_repairs_a_lost_ack_without_retransmit():
    # Drop the first WRITE's ACK.  Legacy FIFO matching mis-credits
    # the second ACK to the first WR and the second WRITE retransmits
    # (3 arrivals).  Cumulative PSN acks cover both WRs at once.
    for enforce, want_writes in ((False, 3), (True, 2)):
        sim, fabric, server, client = make_world(enforce)
        mr = server.register_memory(4096)
        _sqp, cqp = connect_pair(server, client, Transport.RC)
        fabric.fault_hook = drop_first("ACK")
        post_two_writes(client, cqp, mr)
        sim.run_until_idle()
        assert mr.read(0, 2) == b"AB"
        assert len(cqp.send_cq.poll()) == 2
        assert server.writes_received == want_writes


def test_duplicate_read_resp_is_ignored():
    for enforce, want_cqes, want_dups in ((False, 2, 0), (True, 1, 1)):
        sim, fabric, server, client = make_world(enforce)
        mr = server.register_memory(4096)
        mr.write(0, b"hello")
        lmr = client.register_memory(4096)
        _sqp, cqp = connect_pair(server, client, Transport.RC)
        fabric.fault_hook = duplicate_every("READ_RESP")
        client.post_send(
            cqp,
            WorkRequest.read(
                raddr=mr.addr, rkey=mr.rkey, local=(lmr, 0, 5), signaled=True
            ),
        )
        sim.run_until_idle()
        assert lmr.read(0, 5) == b"hello"
        # Legacy: the duplicate response completes the same WR twice.
        assert len(cqp.send_cq.poll()) == want_cqes
        assert client.duplicate_acks == want_dups


def test_enforcement_does_not_change_a_clean_rc_exchange():
    """With no faults the enforced transport is behaviorally identical:
    same bytes, same completions, no PSN discards."""
    results = []
    for enforce in (False, True):
        sim, fabric, server, client = make_world(enforce)
        mr = server.register_memory(4096)
        rmr = server.register_memory(4096)
        lmr = client.register_memory(4096)
        sqp, cqp = connect_pair(server, client, Transport.RC)
        server.post_recv(sqp, RecvRequest(wr_id=9, local=(rmr, 0, 16)))
        client.post_send(
            cqp,
            WorkRequest.write(
                raddr=mr.addr, rkey=mr.rkey, payload=b"wx", inline=True, signaled=True
            ),
        )
        client.post_send(
            cqp, WorkRequest.send(payload=b"sy", inline=True, signaled=True)
        )
        client.post_send(
            cqp,
            WorkRequest.read(
                raddr=mr.addr, rkey=mr.rkey, local=(lmr, 0, 2), signaled=True
            ),
        )
        sim.run_until_idle()
        results.append(
            (
                mr.read(0, 2),
                rmr.read(0, 2),
                lmr.read(0, 2),
                len(cqp.send_cq.poll()),
                len(sqp.recv_cq.poll()),
                server.psn_gap_drops + server.psn_duplicate_drops,
            )
        )
    assert results[0] == results[1]
    assert results[1][-1] == 0
