"""Tests for HERD's request/response wire formats and the request region."""

import pytest

from repro.herd import HerdConfig, RequestRegion, partition_of
from repro.herd.wire import (
    GET_MARKER,
    decode_request,
    decode_response,
    encode_get,
    encode_put,
    encode_response,
    request_write_offset,
)
from repro.hw import APT, Fabric, Machine
from repro.sim import Simulator
from repro.verbs import RdmaDevice
from repro.workloads import OpType
from repro.workloads.ycsb import keyhash


KH = keyhash(1234)


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------


def test_get_request_is_18_bytes():
    """A GET request consists only of the keyhash (plus the LEN marker):
    the paper's 16-byte GET plus our explicit 2-byte opcode-in-LEN."""
    assert len(encode_get(KH)) == 18


def test_put_request_carries_value_len_key():
    payload = encode_put(KH, b"v" * 32)
    assert len(payload) == 32 + 2 + 16
    assert payload.endswith(KH)


def test_zero_keyhash_rejected():
    """Section 4.2: clients may not use a zero keyhash — it marks a
    free slot."""
    with pytest.raises(ValueError):
        encode_get(b"\x00" * 16)
    with pytest.raises(ValueError):
        encode_put(b"\x00" * 16, b"v")


def test_bad_keyhash_length_rejected():
    with pytest.raises(ValueError):
        encode_get(b"\x01" * 15)


def test_slot_roundtrip_get():
    slot = bytearray(1024)
    payload = encode_get(KH)
    slot[request_write_offset(1024, payload):] = payload
    op = decode_request(bytes(slot))
    assert op.op is OpType.GET
    assert op.key == KH
    assert op.value is None


def test_slot_roundtrip_put():
    slot = bytearray(1024)
    payload = encode_put(KH, b"hello-world")
    slot[request_write_offset(1024, payload):] = payload
    op = decode_request(bytes(slot))
    assert op.op is OpType.PUT
    assert op.key == KH
    assert op.value == b"hello-world"


def test_free_slot_decodes_to_none():
    assert decode_request(bytes(1024)) is None


def test_keyhash_occupies_rightmost_bytes():
    """The keyhash is written to the rightmost 16 bytes of the slot so
    the RNIC's left-to-right DMA makes it visible last (Section 4.2)."""
    slot = bytearray(1024)
    payload = encode_put(KH, b"x" * 100)
    slot[request_write_offset(1024, payload):] = payload
    assert bytes(slot[-16:]) == KH


def test_max_value_fits_1kb_slot():
    payload = encode_put(KH, b"v" * 1000)
    assert len(payload) <= 1024


def test_response_roundtrips():
    ok, value = decode_response(OpType.GET, encode_response(OpType.GET, b"val"))
    assert ok and value == b"val"
    ok, value = decode_response(OpType.GET, encode_response(OpType.GET, None))
    assert not ok and value is None  # miss
    ok, value = decode_response(OpType.PUT, encode_response(OpType.PUT, None))
    assert ok and value is None


def test_get_marker_cannot_collide_with_real_length():
    assert GET_MARKER > 1000  # max HERD value size


# ---------------------------------------------------------------------------
# request region geometry
# ---------------------------------------------------------------------------


def make_region(ns=2, nc=3, w=2):
    sim = Simulator()
    fabric = Fabric(sim, APT)
    dev = RdmaDevice(Machine(sim, fabric, "server"))
    cfg = HerdConfig(n_server_processes=ns, window=w)
    return sim, RequestRegion(sim, dev, cfg, nc), cfg


def test_region_size_matches_formula():
    """Region size is NS * NC * W KB (Section 4.2)."""
    _sim, region, cfg = make_region(ns=2, nc=3, w=2)
    assert region.mr.length == 2 * 3 * 2 * 1024


def test_slot_index_formula():
    """slot(s, c, w) = s*(W*NC) + c*W + w — the paper's polling formula."""
    _sim, region, cfg = make_region(ns=2, nc=3, w=2)
    assert region.slot_index(0, 0, 0) == 0
    assert region.slot_index(0, 0, 1) == 1
    assert region.slot_index(0, 1, 0) == 2
    assert region.slot_index(1, 0, 0) == 6
    assert region.slot_index(1, 2, 1) == 11


def test_slot_index_bounds():
    _sim, region, _cfg = make_region()
    with pytest.raises(IndexError):
        region.slot_index(2, 0, 0)
    with pytest.raises(IndexError):
        region.slot_index(0, 3, 0)
    with pytest.raises(IndexError):
        region.slot_index(0, 0, 2)


def test_locate_inverts_slot_offset():
    _sim, region, _cfg = make_region(ns=2, nc=3, w=2)
    for s in range(2):
        for c in range(3):
            for w in range(2):
                offset = region.slot_offset(s, c, w)
                assert region.locate(offset) == (s, c, w)
                assert region.locate(offset + 512) == (s, c, w)


def test_write_notification_routed_to_owning_server():
    sim, region, cfg = make_region(ns=2, nc=3, w=2)
    region.mr.on_write(region.slot_offset(1, 2, 0), 18)
    assert len(region.arrivals[1]) == 1
    assert len(region.arrivals[0]) == 0
    assert region.arrivals[1].try_get() == (2, 0)


def test_clear_slot_zeroes_only_keyhash():
    _sim, region, cfg = make_region()
    offset = region.slot_offset(0, 1, 1)
    payload = encode_put(KH, b"data")
    region.mr.write(offset + cfg.slot_bytes - len(payload), payload)
    assert region.read_slot(0, 1, 1) is not None
    region.clear_slot(0, 1, 1)
    assert region.read_slot(0, 1, 1) is None
    # The value bytes are untouched; only the keyhash was zeroed.
    tail = region.mr.read(offset + cfg.slot_bytes - len(payload), 4)
    assert tail == b"data"


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------


def test_partition_is_stable_and_in_range():
    for i in range(100):
        p = partition_of(keyhash(i), 6)
        assert 0 <= p < 6
        assert p == partition_of(keyhash(i), 6)


def test_partitions_are_balanced():
    from collections import Counter

    counts = Counter(partition_of(keyhash(i), 6) for i in range(60_000))
    assert max(counts.values()) / min(counts.values()) < 1.1


def test_config_validation():
    with pytest.raises(ValueError):
        HerdConfig(n_server_processes=0)
    with pytest.raises(ValueError):
        HerdConfig(window=0)
    with pytest.raises(ValueError):
        HerdConfig(slot_bytes=8)
