"""Unit tests for the metrics registry (repro.obs)."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import Counter, Gauge, LogHistogram
from repro.sim import FifoServer, Simulator, Store


def test_counter_increments():
    c = Counter("c")
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_gauge_set_and_high_water():
    g = Gauge("g")
    g.set(3.0)
    g.update_max(1.0)
    assert g.value == 3.0
    g.update_max(7.0)
    assert g.value == 7.0


def test_histogram_log_buckets():
    h = LogHistogram("h")
    for value in (0.0, 1.0, 2.0, 3.0, 1000.0):
        h.observe(value)
    d = h.to_dict()
    assert d["count"] == 5
    assert d["min"] == 0.0 and d["max"] == 1000.0
    bounds = [b["le"] for b in d["buckets"]]
    assert bounds == sorted(bounds)
    # 0 and 1 share the <=1 bucket; 2 is exactly 2^1; 3 rounds up to 4;
    # 1000 rounds up to 1024
    by_bound = {b["le"]: b["count"] for b in d["buckets"]}
    assert by_bound[1.0] == 2
    assert by_bound[2.0] == 1
    assert by_bound[4.0] == 1
    assert by_bound[1024.0] == 1


def test_histogram_percentile_upper_bound():
    h = LogHistogram("h")
    for _ in range(99):
        h.observe(2.0)
    h.observe(1024.0)
    assert h.percentile(50) == 2.0
    assert h.percentile(100) == 1024.0


def test_histogram_rejects_negative():
    with pytest.raises(ValueError):
        LogHistogram("h").observe(-1.0)


def test_registry_get_or_create():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")


def test_gauge_fn_sampled_at_snapshot():
    registry = MetricsRegistry()
    box = {"v": 1}
    registry.gauge_fn("boxed", lambda: box["v"])
    box["v"] = 42
    assert registry.snapshot()["gauges"]["boxed"] == 42


def test_fifo_server_auto_registers_and_reports():
    sim = Simulator()
    sim.metrics = MetricsRegistry(sim)
    server = FifoServer(sim, "unit")
    server.serve(10.0)
    server.serve(10.0)  # queues behind the first: 10 ns delay
    sim.run_until_idle()
    snap = sim.metrics.snapshot()
    station = snap["stations"]["unit"]
    assert station["jobs"] == 2
    assert station["utilization"] == pytest.approx(1.0)
    delay = station["queue_delay_ns"]
    assert delay["count"] == 2
    assert delay["max"] == 10.0


def test_store_depth_high_water_mark():
    sim = Simulator()
    sim.metrics = MetricsRegistry(sim)
    store = Store(sim, "mailbox")
    for i in range(5):
        store.put(i)
    store.try_get()
    store.put(99)  # depth 5 again, hwm stays 5
    assert sim.metrics.snapshot()["gauges"]["store.mailbox.depth_hwm"] == 5


def test_uninstrumented_simulator_pays_nothing():
    sim = Simulator()
    server = FifoServer(sim, "unit")
    store = Store(sim)
    assert server.obs is None
    assert store.obs is None


def test_dump_json_round_trips(tmp_path):
    sim = Simulator()
    sim.metrics = MetricsRegistry(sim)
    sim.metrics.counter("ops").inc(7)
    path = tmp_path / "m.json"
    sim.metrics.dump_json(str(path))
    loaded = json.loads(path.read_text())
    assert loaded["counters"]["ops"] == 7
    assert set(loaded) >= {"sim_time_ns", "counters", "gauges", "histograms", "stations"}
