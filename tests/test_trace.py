"""Tests for the event tracer (Figure 1's instrumentation)."""

from repro.bench.trace import Tracer, _run_one, fig1
from repro.hw import APT, Fabric, Machine
from repro.sim import Simulator
from repro.verbs import RdmaDevice, Transport, WorkRequest, connect_pair


def test_tracer_records_spans_and_marks():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.span("stationA", 0.0, 10.0, "work")
    sim.run(until=5.0)
    tracer.mark("stationB", "tick")
    assert len(tracer.events) == 2
    assert tracer.events[1].start_ns == tracer.events[1].end_ns == 5.0


def test_render_sorts_by_time():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.span("late", 100.0, 110.0)
    tracer.span("early", 1.0, 2.0)
    out = tracer.render("t")
    assert out.index("early") < out.index("late")


def test_untraced_simulations_record_nothing():
    """Tracing is strictly opt-in: a plain Simulator has no tracer and
    the hot paths skip all instrumentation."""
    sim = Simulator()
    fabric = Fabric(sim, APT)
    server = RdmaDevice(Machine(sim, fabric, "s"))
    client = RdmaDevice(Machine(sim, fabric, "c"))
    mr = server.register_memory(128)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(
        cqp, WorkRequest.write(raddr=mr.addr, rkey=mr.rkey, payload=b"x", inline=True, signaled=False)
    )
    sim.run_until_idle()
    assert not hasattr(sim, "tracer")
    assert mr.read(0, 1) == b"x"


def test_traced_write_shows_pio_nic_wire_dma_order():
    out = _run_one("WRITE, inlined, unreliable, unsignaled")
    pio = out.index("requester.pcie.pio")
    nic = out.index("requester.nic.tx")
    wire = out.index("wire requester->responder")
    dma = out.index("responder.pcie.dma")
    assert pio < nic < wire < dma


def test_fig1_covers_all_four_verbs():
    out = fig1()
    for verb in ("WRITE, inlined", "WRITE (signaled, RC)", "READ", "SEND/RECV (UD)"):
        assert verb in out
