"""Tests for the admission-control layer (repro.qos)."""

import pytest

from repro.qos import PartitionAdmission, QosConfig, QosRuntime, TokenBucket


# ---------------------------------------------------------------------------
# QosConfig validation
# ---------------------------------------------------------------------------


def test_config_defaults_validate():
    cfg = QosConfig()
    assert cfg.queue_limit == 24
    assert cfg.drop_policy == "nack"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"queue_limit": 0},
        {"drop_policy": "reset"},
        {"codel_target_ns": 0.0},
        {"codel_interval_ns": -1.0},
        {"n_tenants": 0},
        {"n_tenants": 2, "tenant_rates": (1.0,)},
        {"n_tenants": 1, "tenant_rates": (0.0,)},
        {"tenant_burst": 0.0},
        {"n_tenants": 2, "tenant_weights": (1.0,)},
        {"n_tenants": 2, "tenant_weights": (1.0, 0.0)},
        {"fair_queue_threshold": -1},
        {"fair_slack": -0.5},
        {"retry_after_ns": 0.0},
        {"retry_after_backoff": 0.5},
        {"retry_after_budget": 0},
        {"qp_pool": 0},
    ],
)
def test_config_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        QosConfig(**kwargs)


def test_tenant_assignment_is_modulo():
    cfg = QosConfig(n_tenants=3)
    assert [cfg.tenant_of(c) for c in range(6)] == [0, 1, 2, 0, 1, 2]


# ---------------------------------------------------------------------------
# token bucket
# ---------------------------------------------------------------------------


def test_token_bucket_caps_sustained_rate():
    # 1 op/us = 0.001 ops/ns, depth 4
    bucket = TokenBucket(0.001, 4.0)
    # the initial burst drains the full depth...
    assert sum(bucket.admit(0.0) for _ in range(10)) == 4
    # ...then admission tracks the refill rate: 1 token per us
    admitted = sum(bucket.admit(1000.0 * i) for i in range(1, 11))
    assert admitted == 10
    # hammering between refills gets nothing extra
    assert not bucket.admit(10_000.0)
    assert bucket.admit(11_000.0)


def test_token_bucket_never_exceeds_burst_depth():
    bucket = TokenBucket(0.001, 2.0)
    bucket.admit(0.0)
    # a long idle period refills to the cap, not beyond
    assert sum(bucket.admit(1e9) for _ in range(10)) == 2


# ---------------------------------------------------------------------------
# CoDel sojourn control
# ---------------------------------------------------------------------------


def _partition(**kwargs) -> PartitionAdmission:
    defaults = dict(
        queue_limit=None,
        codel_target_ns=1_000.0,
        codel_interval_ns=10_000.0,
    )
    defaults.update(kwargs)
    runtime = QosRuntime(QosConfig(**defaults), n_partitions=1)
    return runtime.partition(0)


def test_codel_admits_below_target():
    part = _partition()
    for i in range(100):
        assert part.on_request(0, now=100.0 * i, sojourn_ns=500.0, backlog=1) is None


def test_codel_sheds_only_after_a_full_bad_interval():
    part = _partition()
    # sojourn above target, but not yet for a full interval: admit
    assert part.on_request(0, now=0.0, sojourn_ns=5_000.0, backlog=1) is None
    assert part.on_request(0, now=5_000.0, sojourn_ns=5_000.0, backlog=1) is None
    # a full interval (10 us) above target: the dropping state begins
    assert part.on_request(0, now=10_000.0, sojourn_ns=5_000.0, backlog=1) == "slowdown"


def test_codel_shed_cadence_accelerates():
    part = _partition()
    part.on_request(0, now=0.0, sojourn_ns=5_000.0, backlog=1)
    part.on_request(0, now=10_000.0, sojourn_ns=5_000.0, backlog=1)  # 1st shed
    shed_times = []
    t = 10_000.0
    while len(shed_times) < 3 and t < 80_000.0:
        t += 100.0
        if part.on_request(0, now=t, sojourn_ns=5_000.0, backlog=1) == "slowdown":
            shed_times.append(t)
    # interval/sqrt(2) then interval/sqrt(3): gaps shrink as pressure ramps
    gaps = [b - a for a, b in zip([10_000.0] + shed_times, shed_times)]
    assert len(gaps) == 3
    assert gaps[0] > gaps[1] > gaps[2]


def test_codel_recovery_resets_the_controller():
    part = _partition()
    part.on_request(0, now=0.0, sojourn_ns=5_000.0, backlog=1)
    assert part.on_request(0, now=10_000.0, sojourn_ns=5_000.0, backlog=1) == "slowdown"
    # sojourn back under target: dropping state exits immediately
    assert part.on_request(0, now=10_100.0, sojourn_ns=100.0, backlog=1) is None
    # and the interval timer re-arms from scratch
    assert part.on_request(0, now=10_200.0, sojourn_ns=5_000.0, backlog=1) is None
    assert part.on_request(0, now=15_000.0, sojourn_ns=5_000.0, backlog=1) is None


# ---------------------------------------------------------------------------
# queue bound + tenant quotas + fairness
# ---------------------------------------------------------------------------


def test_queue_limit_tail_drops():
    part = _partition(queue_limit=8, codel_target_ns=None)
    assert part.on_request(0, now=0.0, sojourn_ns=0.0, backlog=8) is None
    assert part.on_request(0, now=1.0, sojourn_ns=0.0, backlog=9) == "overflow"


def test_tenant_quota_throttles_only_the_capped_tenant():
    part = _partition(
        codel_target_ns=None,
        n_tenants=2,
        tenant_rates=(None, 1.0),  # tenant 1 capped at 1 op/us
        tenant_burst=2.0,
    )
    # tenant 1 (odd clients) blows through its bucket
    verdicts = [part.on_request(1, now=10.0 * i, sojourn_ns=0.0, backlog=1)
                for i in range(20)]
    assert verdicts.count("throttled") >= 15
    # tenant 0 (even clients) is untouched at the same instants
    assert all(
        part.on_request(0, now=10.0 * i, sojourn_ns=0.0, backlog=1) is None
        for i in range(20)
    )
    runtime = part.runtime
    assert runtime.shed.get("throttled", 0) >= 15
    assert runtime.tenants[0][1] == 0  # tenant 0 never shed


def test_fair_admission_caps_share_under_backlog():
    part = _partition(
        codel_target_ns=None,
        n_tenants=2,
        tenant_weights=(1.0, 1.0),
        fair_queue_threshold=4,
        fair_slack=2.0,
    )
    # all traffic from tenant 0 while a backlog exists: its share is
    # capped at weight/total + slack, the rest sheds as "fairness"
    verdicts = [part.on_request(0, now=1.0 * i, sojourn_ns=0.0, backlog=16)
                for i in range(40)]
    assert verdicts.count("fairness") >= 30
    # the quiet tenant still admits freely
    assert part.on_request(1, now=50.0, sojourn_ns=0.0, backlog=16) is None


def test_fairness_idle_when_no_contention():
    part = _partition(
        codel_target_ns=None,
        n_tenants=2,
        tenant_weights=(1.0, 1.0),
        fair_queue_threshold=4,
    )
    # backlog at/below the threshold: one tenant may take everything
    assert all(
        part.on_request(0, now=1.0 * i, sojourn_ns=0.0, backlog=4) is None
        for i in range(40)
    )


def test_counter_lines_are_deterministic():
    part = _partition(queue_limit=4, codel_target_ns=None, n_tenants=2)
    for i in range(10):
        part.on_request(i % 2, now=float(i), sojourn_ns=0.0, backlog=10)
    lines = part.runtime.counter_lines()
    assert lines == [
        "qos.shed.overflow 10",
        "qos.tenant0 admitted=0 shed=5",
        "qos.tenant1 admitted=0 shed=5",
    ]
