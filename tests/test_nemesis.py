"""The nemesis: schedule generation, oracles, shrinking, artifacts, search.

The contract under test: every schedule is byte-for-byte reproducible
from its seed, a healthy tree survives any generated schedule, the
planted-bug arm proves the find -> shrink -> artifact -> replay path
works end to end, and a frozen artifact replays byte-identically.
"""

import dataclasses
import json

import pytest

from repro.faults.rng import derive_seed
from repro.nemesis import (
    DATAPLANE_NAMES,
    DATAPLANES,
    Schedule,
    atoms_of,
    build_artifact,
    generate,
    load_artifact,
    plan_from_atoms,
    replay,
    resolve,
    run_schedule,
    save_artifact,
    search,
    shrink_schedule,
)


# ---------------------------------------------------------------------------
# Schedule generation
# ---------------------------------------------------------------------------


def test_generate_is_deterministic_per_seed_and_dataplane():
    a = generate(seed=42, dataplane="herd")
    b = generate(seed=42, dataplane="herd")
    assert a.plan.to_dict() == b.plan.to_dict()
    assert a.dataplane == b.dataplane == "herd"
    c = generate(seed=43, dataplane="herd")
    assert c.plan.to_dict() != a.plan.to_dict()


def test_generate_draws_a_nonempty_plan_within_the_horizon():
    for name in DATAPLANE_NAMES:
        schedule = generate(seed=9, dataplane=name)
        atoms = atoms_of(schedule.plan)
        assert 1 <= len(atoms) <= 6
        horizon = schedule.horizon_ns
        for rule in schedule.plan.link_rules:
            assert rule.end_ns <= horizon
        for crash in schedule.plan.crashes:
            assert crash.at_ns < horizon
            assert 0 <= crash.server_index < DATAPLANES[name].n_servers


def test_generate_respects_the_dataplane_crash_budget():
    # qos forbids crashes (the flash crowd is the fault); over many
    # seeds no qos schedule may contain one, and no dataplane may
    # exceed its max_crashes.
    for seed in range(40):
        for name in DATAPLANE_NAMES:
            schedule = generate(seed=seed, dataplane=name)
            assert len(schedule.plan.crashes) <= DATAPLANES[name].max_crashes
    assert DATAPLANES["qos"].max_crashes == 0


def test_generate_plan_seed_is_a_named_child():
    schedule = generate(seed=5, dataplane="herd")
    assert schedule.plan.seed == derive_seed(5, "nemesis.plan")


def test_exclude_moves_filters_the_vocabulary(monkeypatch):
    spec = DATAPLANES["herd"]
    no_crash = dataclasses.replace(
        spec, exclude_moves=("crash", "flap", "qp_error")
    )
    monkeypatch.setitem(DATAPLANES, "herd", no_crash)
    for seed in range(30):
        plan = generate(seed=seed, dataplane="herd").plan
        assert not plan.crashes
        assert not plan.flaps
        assert not plan.qp_errors


def test_unknown_exclude_moves_fail_loudly(monkeypatch):
    spec = DATAPLANES["herd"]
    monkeypatch.setitem(
        DATAPLANES, "herd", dataclasses.replace(spec, exclude_moves=("nope",))
    )
    with pytest.raises(ValueError, match="nope"):
        generate(seed=1, dataplane="herd")


def test_schedule_round_trips_through_dict():
    schedule = generate(seed=17, dataplane="txn-onesided")
    schedule.params["n_keys"] = 64
    back = Schedule.from_dict(schedule.to_dict())
    assert back.to_dict() == schedule.to_dict()
    assert back.runner_params()["n_keys"] == 64
    assert back.runner_params()["dataplane"] == "onesided"


def test_schedule_from_dict_rejects_unknown_dataplanes():
    data = generate(seed=1, dataplane="herd").to_dict()
    data["dataplane"] = "floppy-disk"
    with pytest.raises(ValueError, match="floppy-disk"):
        Schedule.from_dict(data)


# ---------------------------------------------------------------------------
# Atoms: the shrinker's decomposition
# ---------------------------------------------------------------------------


def test_atoms_fold_flap_sugar_and_round_trip():
    from repro.faults import FaultPlan

    plan = (
        FaultPlan(seed=3)
        .drop(rate=0.1, end_ns=50.0)
        .rnr("cm0", rate=0.2, end_ns=40.0)
        .crash_server(0, at_ns=10.0, down_ns=5.0)
        .flap_link("cm1", at_ns=20.0, down_ns=4.0)
    )
    atoms = atoms_of(plan)
    # flap counts once, not as its two sugar drop rules
    assert [kind for kind, _ in atoms] == ["link", "rnr", "crash", "flap"]
    rebuilt = plan_from_atoms(plan.seed, atoms)
    assert rebuilt.to_dict() == plan.to_dict()
    # dropping the flap atom drops its sugar rules too
    no_flap = plan_from_atoms(plan.seed, atoms[:-1])
    assert not no_flap.flaps
    assert all(r.tag != "flap" for r in no_flap.link_rules)


def test_plan_from_atoms_rejects_unknown_kinds():
    with pytest.raises(ValueError):
        plan_from_atoms(1, [("gremlin", None)])


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


def test_resolve_maps_names_and_fails_loudly_on_typos():
    (oracle,) = resolve(("planted-no-crash",))
    assert callable(oracle)
    assert resolve(()) == ()
    with pytest.raises(ValueError, match="planted-no-crash"):
        resolve(("planted-no-crsh",))


# ---------------------------------------------------------------------------
# Healthy runs: every dataplane survives a generated schedule
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dataplane", DATAPLANE_NAMES)
def test_healthy_tree_survives_a_generated_schedule(dataplane):
    schedule = generate(seed=7, dataplane=dataplane)
    result = run_schedule(schedule)
    assert result.ok, result.violations
    assert result.fingerprint
    assert result.dataplane == dataplane
    # and byte-identically so
    again = run_schedule(generate(seed=7, dataplane=dataplane))
    assert again.fingerprint == result.fingerprint


# ---------------------------------------------------------------------------
# The planted-bug arm: find -> shrink -> artifact -> replay
# ---------------------------------------------------------------------------


def _planted_failure():
    """The first herd schedule (on the smoke gate's seed path) whose
    plan contains a crash move."""
    for i in range(24):
        schedule = generate(derive_seed(7, "nemesis.planted.%d" % i), "herd")
        if schedule.plan.crashes:
            return schedule
    raise AssertionError("no crash move in 24 draws")


@pytest.fixture(scope="module")
def planted_shrunk():
    schedule = _planted_failure()
    oracles = resolve(("planted-no-crash",))
    assert not run_schedule(schedule, oracles).ok
    return shrink_schedule(schedule, oracles)


def test_shrink_reduces_the_planted_bug_to_the_crash_atom(planted_shrunk):
    shrunk = planted_shrunk
    assert shrunk.atoms_after == 1
    assert shrunk.minimal
    assert shrunk.atoms_before > shrunk.atoms_after
    atoms = atoms_of(shrunk.schedule.plan)
    assert [kind for kind, _ in atoms] == ["crash"]
    assert shrunk.violations  # the minimal plan still fails
    assert shrunk.tests > 0


def test_shrink_is_deterministic(planted_shrunk):
    again = shrink_schedule(_planted_failure(), resolve(("planted-no-crash",)))
    assert again.fingerprint == planted_shrunk.fingerprint
    assert again.schedule.plan.to_dict() == planted_shrunk.schedule.plan.to_dict()
    assert again.tests == planted_shrunk.tests


def test_shrink_refuses_a_passing_schedule():
    schedule = generate(seed=7, dataplane="herd")
    with pytest.raises(ValueError, match="does not fail"):
        shrink_schedule(schedule)


def test_artifact_round_trip_and_byte_identical_replay(planted_shrunk, tmp_path):
    oracles = resolve(("planted-no-crash",))
    result = run_schedule(planted_shrunk.schedule, oracles)
    artifact = build_artifact(
        result,
        oracles=("planted-no-crash",),
        shrink_stats={
            "atoms_before": planted_shrunk.atoms_before,
            "atoms_after": planted_shrunk.atoms_after,
            "tests": planted_shrunk.tests,
            "minimal": planted_shrunk.minimal,
        },
    )
    path = str(tmp_path / "repro.json")
    save_artifact(path, artifact)
    loaded = load_artifact(path)
    assert loaded == artifact
    # strict JSON on disk: open windows encode as the string "inf"
    assert json.dumps(loaded)

    outcome = replay(path)
    assert outcome.reproduced
    assert outcome.fingerprint_identical and outcome.violations_match
    assert "reproduced byte-identically" in outcome.summary()


def test_replay_detects_a_tampered_artifact(planted_shrunk, tmp_path):
    result = run_schedule(planted_shrunk.schedule, resolve(("planted-no-crash",)))
    artifact = build_artifact(result, oracles=("planted-no-crash",))
    artifact["fingerprint"] = "0" * 64
    path = str(tmp_path / "tampered.json")
    save_artifact(path, artifact)
    outcome = replay(path)
    assert not outcome.reproduced
    assert "DID NOT REPRODUCE" in outcome.summary()


def test_load_artifact_rejects_foreign_files(tmp_path):
    path = tmp_path / "not-a-repro.json"
    path.write_text('{"kind": "grocery-list", "version": 1}')
    with pytest.raises(ValueError, match="not a nemesis repro"):
        load_artifact(str(path))
    path.write_text('{"kind": "nemesis-repro", "version": 99}')
    with pytest.raises(ValueError, match="version"):
        load_artifact(str(path))


# ---------------------------------------------------------------------------
# The search loop
# ---------------------------------------------------------------------------


def test_search_round_robins_and_passes_on_a_healthy_tree():
    report = search(6, seed=1, shrink=False)
    assert report.ok
    assert report.examined == 6
    assert report.per_dataplane == {name: 1 for name in DATAPLANE_NAMES}
    assert "0 failure(s)" in report.summary()


def test_search_restricted_to_one_dataplane():
    report = search(2, seed=3, dataplanes=("herd",), shrink=False)
    assert report.ok
    assert report.per_dataplane == {"herd": 2}


def test_search_finds_shrinks_and_freezes_the_planted_bug(tmp_path):
    report = search(
        8,
        seed=7,
        dataplanes=("herd",),
        oracles=("planted-no-crash",),
        shrink=True,
        artifact_dir=str(tmp_path),
    )
    assert not report.ok
    case = report.failures[0]
    assert case.shrunk is not None and case.shrunk.atoms_after == 1
    assert case.artifact_path is not None
    assert replay(case.artifact_path).reproduced


def test_search_validates_its_inputs():
    with pytest.raises(ValueError):
        search(0)
    with pytest.raises(ValueError, match="floppy-disk"):
        search(1, dataplanes=("floppy-disk",))
    with pytest.raises(ValueError, match="unknown oracle"):
        search(1, oracles=("no-such-oracle",))


# ---------------------------------------------------------------------------
# The CLI (herd-bench --nemesis / --nemesis-replay)
# ---------------------------------------------------------------------------


def test_cli_nemesis_search_exits_zero_on_a_healthy_tree(capsys):
    from repro.bench import cli

    rc = cli.main(
        ["--nemesis", "2", "--nemesis-seed", "7", "--nemesis-dataplanes", "herd"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "2 schedules examined" in out


def test_cli_nemesis_replay_round_trip(planted_shrunk, tmp_path, capsys):
    from repro.bench import cli

    result = run_schedule(planted_shrunk.schedule, resolve(("planted-no-crash",)))
    path = str(tmp_path / "repro.json")
    save_artifact(path, build_artifact(result, oracles=("planted-no-crash",)))
    rc = cli.main(["--nemesis-replay", path])
    out = capsys.readouterr().out
    assert rc == 0
    assert "reproduced byte-identically" in out
