"""End-to-end tests of the verbs datapath: real bytes over simulated hardware."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import APT, Fabric, Machine
from repro.sim import Simulator
from repro.verbs import (
    Opcode,
    RdmaDevice,
    RecvRequest,
    Transport,
    VerbError,
    WorkRequest,
    connect_pair,
)


def make_world(n_clients=1, profile=APT):
    sim = Simulator()
    fabric = Fabric(sim, profile)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    clients = [RdmaDevice(Machine(sim, fabric, "c%d" % i)) for i in range(n_clients)]
    return sim, fabric, server, clients


# ---------------------------------------------------------------------------
# WRITE
# ---------------------------------------------------------------------------


def test_write_moves_real_bytes():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    wr = WorkRequest.write(
        raddr=mr.addr + 100, rkey=mr.rkey, payload=b"herd!", inline=True, signaled=False
    )
    client.post_send(cqp, wr)
    sim.run_until_idle()
    assert mr.read(100, 5) == b"herd!"
    assert server.writes_received == 1


def test_unsignaled_write_generates_no_completion():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(
        cqp,
        WorkRequest.write(raddr=mr.addr, rkey=mr.rkey, payload=b"x", inline=True, signaled=False),
    )
    sim.run_until_idle()
    assert len(cqp.send_cq) == 0


def test_signaled_uc_write_completes_locally():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(
        cqp,
        WorkRequest.write(
            raddr=mr.addr, rkey=mr.rkey, payload=b"x", inline=True, signaled=True, wr_id=7
        ),
    )
    sim.run_until_idle()
    cqes = cqp.send_cq.poll()
    assert [c.wr_id for c in cqes] == [7]
    assert cqes[0].opcode is Opcode.WRITE


def test_signaled_rc_write_completes_only_after_ack():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(
        cqp,
        WorkRequest.write(raddr=mr.addr, rkey=mr.rkey, payload=b"x", inline=True, signaled=True),
    )
    # Before a full round trip the completion cannot exist.
    sim.run(until=APT.wire_delay_ns * 1.5)
    assert len(cqp.send_cq) == 0
    sim.run_until_idle()
    assert len(cqp.send_cq) == 1
    assert server.acks_received == 0 and client.acks_received == 1


def test_non_inline_write_snapshots_at_dma_fetch_time():
    """Zero-copy semantics: the NIC reads host memory when it fetches the
    payload, not when the verb is posted."""
    sim, fabric, server, (client,) = make_world()
    dst = server.register_memory(4096)
    src = client.register_memory(4096)
    src.write(0, b"AAAA")
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(
        cqp,
        WorkRequest.write(raddr=dst.addr, rkey=dst.rkey, local=(src, 0, 4), signaled=False),
    )
    # Scribble over the source immediately; the DMA fetch happens later,
    # so the scribbled bytes are what travels.
    src.write(0, b"BBBB")
    sim.run_until_idle()
    assert dst.read(0, 4) == b"BBBB"


def test_inline_write_snapshots_at_post_time():
    sim, fabric, server, (client,) = make_world()
    dst = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    payload = bytearray(b"CCCC")
    client.post_send(
        cqp,
        WorkRequest.write(
            raddr=dst.addr, rkey=dst.rkey, payload=bytes(payload), inline=True, signaled=False
        ),
    )
    payload[:] = b"DDDD"
    sim.run_until_idle()
    assert dst.read(0, 4) == b"CCCC"


def test_inline_limited_to_256_bytes():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    with pytest.raises(VerbError):
        client.post_send(
            cqp,
            WorkRequest.write(raddr=mr.addr, rkey=mr.rkey, payload=b"z" * 257, inline=True),
        )


def test_write_on_ud_rejected_per_table1():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(4096)
    qp = client.create_qp(Transport.UD)
    with pytest.raises(VerbError):
        client.post_send(
            qp, WorkRequest.write(raddr=mr.addr, rkey=mr.rkey, payload=b"x", inline=True)
        )


def test_write_notify_hook_fires_after_dma():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(4096)
    seen = []
    mr.on_write = lambda offset, length: seen.append((offset, length, sim.now))
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(
        cqp,
        WorkRequest.write(raddr=mr.addr + 64, rkey=mr.rkey, payload=b"abcd", inline=True, signaled=False),
    )
    sim.run_until_idle()
    assert len(seen) == 1
    assert seen[0][:2] == (64, 4)
    assert seen[0][2] > APT.wire_delay_ns  # after flight + DMA


# ---------------------------------------------------------------------------
# READ
# ---------------------------------------------------------------------------


def test_read_fetches_remote_bytes():
    sim, fabric, server, (client,) = make_world()
    remote = server.register_memory(4096)
    remote.write(200, b"value-bytes")
    sink = client.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(
        cqp,
        WorkRequest.read(raddr=remote.addr + 200, rkey=remote.rkey, local=(sink, 0, 11), wr_id=3),
    )
    sim.run_until_idle()
    assert sink.read(0, 11) == b"value-bytes"
    cqes = cqp.send_cq.poll()
    assert [c.wr_id for c in cqes] == [3]
    assert cqes[0].opcode is Opcode.READ
    assert server.reads_served == 1


def test_wqe_ordering_survives_dma_fetch_delays():
    """RDMA guarantee: a QP's WQEs execute in post order.  A non-inlined
    WRITE (delayed by its payload DMA fetch) must not be overtaken by a
    later inlined WRITE on the same QP — this exact reordering once let
    HERD clients mismatch responses (found by fuzzing)."""
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(4096)
    src = client.register_memory(4096)
    src.write(0, b"A" * 300)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    arrival_order = []
    mr.on_write = lambda offset, length: arrival_order.append(offset)
    # First a big non-inlined WRITE, then a small inlined one.
    client.post_send(
        cqp,
        WorkRequest.write(raddr=mr.addr + 0, rkey=mr.rkey, local=(src, 0, 300), signaled=False),
    )
    client.post_send(
        cqp,
        WorkRequest.write(raddr=mr.addr + 2048, rkey=mr.rkey, payload=b"b", inline=True, signaled=False),
    )
    sim.run_until_idle()
    assert arrival_order == [0, 2048]


def test_large_read_response_pays_per_mtu_headers():
    """Messages above one MTU are segmented: the wire carries one
    header per segment (priced, not split into packet objects)."""
    sim, fabric, server, (client,) = make_world()
    length = APT.mtu + 100  # two segments
    remote = server.register_memory(8192)
    sink = client.register_memory(8192)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(
        cqp,
        WorkRequest.read(raddr=remote.addr, rkey=remote.rkey, local=(sink, 0, length)),
    )
    sim.run_until_idle()
    # server->client: the response payload plus 2 wire headers (+ACKless RC read)
    expected_response = length + 2 * APT.wire_bytes(0)
    assert server.machine.port.tx_bytes == expected_response


def test_read_on_uc_rejected_per_table1():
    sim, fabric, server, (client,) = make_world()
    remote = server.register_memory(4096)
    sink = client.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    with pytest.raises(VerbError):
        client.post_send(
            cqp, WorkRequest.read(raddr=remote.addr, rkey=remote.rkey, local=(sink, 0, 8))
        )


def test_outstanding_reads_limited_to_16():
    """The 17th READ waits for a credit (Section 3.2.2)."""
    sim, fabric, server, (client,) = make_world()
    remote = server.register_memory(4096)
    sink = client.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    n = APT.max_outstanding_reads + 4
    for i in range(n):
        client.post_send(
            cqp,
            WorkRequest.read(raddr=remote.addr, rkey=remote.rkey, local=(sink, 0, 8), wr_id=i),
        )
    assert len(cqp.pending_reads) == 4
    sim.run_until_idle()
    # All eventually complete.
    assert len(cqp.send_cq) == n
    assert cqp.pending_reads == type(cqp.pending_reads)()


def test_read_latency_close_to_write_latency():
    """Figure 2b: READ and (non-inlined) WRITE latencies are similar;
    inlining makes WRITE noticeably faster."""
    def measure(make_wr, transport):
        sim, fabric, server, (client,) = make_world()
        remote = server.register_memory(4096)
        sink = client.register_memory(4096)
        src = client.register_memory(4096)
        _sqp, cqp = connect_pair(server, client, transport)
        done = {}
        client.post_send(cqp, make_wr(remote, sink, src))
        def waiter():
            yield cqp.send_cq.pop()
            done["t"] = sim.now
        sim.process(waiter())
        sim.run_until_idle()
        return done["t"]

    read_lat = measure(
        lambda r, s, src: WorkRequest.read(raddr=r.addr, rkey=r.rkey, local=(s, 0, 32)),
        Transport.RC,
    )
    write_lat = measure(
        lambda r, s, src: WorkRequest.write(raddr=r.addr, rkey=r.rkey, local=(src, 0, 32)),
        Transport.RC,
    )
    write_inline_lat = measure(
        lambda r, s, src: WorkRequest.write(raddr=r.addr, rkey=r.rkey, payload=b"i" * 32, inline=True),
        Transport.RC,
    )
    assert write_inline_lat < write_lat
    assert abs(read_lat - write_lat) / read_lat < 0.35
    # All small-verb latencies are in the 1-3 microsecond regime.
    for lat in (read_lat, write_lat, write_inline_lat):
        assert 1_000 < lat < 3_000


# ---------------------------------------------------------------------------
# SEND / RECV
# ---------------------------------------------------------------------------


def post_recv_buffer(dev, qp, size=1024, wr_id=0):
    mr = dev.register_memory(size)
    dev.post_recv(qp, RecvRequest(wr_id=wr_id, local=(mr, 0, size)))
    return mr


def test_send_requires_preposted_recv():
    """Channel semantics: a SEND with no RECV is dropped and counted."""
    sim, fabric, server, (client,) = make_world()
    sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(cqp, WorkRequest.send(payload=b"hello", inline=True, signaled=False))
    sim.run_until_idle()
    assert sqp.rnr_drops == 1
    assert server.sends_received == 0


def test_send_recv_roundtrip_uc():
    sim, fabric, server, (client,) = make_world()
    sqp, cqp = connect_pair(server, client, Transport.UC)
    mr = post_recv_buffer(server, sqp, wr_id=9)
    client.post_send(cqp, WorkRequest.send(payload=b"hello", inline=True, signaled=False))
    sim.run_until_idle()
    assert mr.read(0, 5) == b"hello"  # no GRH on connected transports
    cqes = sqp.recv_cq.poll()
    assert len(cqes) == 1
    assert cqes[0].wr_id == 9
    assert cqes[0].byte_len == 5
    assert cqes[0].src == ("c0", cqp.qpn)


def test_ud_send_lands_after_grh():
    """UD receive buffers start with a 40-byte GRH (Section 4.3 layout)."""
    sim, fabric, server, (client,) = make_world()
    sqp = server.create_qp(Transport.UD)
    cqp = client.create_qp(Transport.UD)
    mr = post_recv_buffer(server, sqp)
    client.post_send(
        cqp,
        WorkRequest.send(
            payload=b"resp", inline=True, signaled=False, ah=("server", sqp.qpn)
        ),
    )
    sim.run_until_idle()
    assert mr.read(APT.grh_bytes, 4) == b"resp"
    assert mr.read(0, 4) == b"\x00" * 4


def test_ud_send_requires_address_handle():
    sim, fabric, server, (client,) = make_world()
    cqp = client.create_qp(Transport.UD)
    client.post_send(cqp, WorkRequest.send(payload=b"x", inline=True))
    with pytest.raises(VerbError):
        sim.run_until_idle()


def test_one_ud_qp_reaches_many_remotes():
    """UD is unconnected: one QP addresses any number of peers."""
    sim, fabric, server, clients = make_world(n_clients=3)
    server_qp = server.create_qp(Transport.UD)
    mrs = []
    client_qps = []
    for c in clients:
        qp = c.create_qp(Transport.UD)
        mrs.append(post_recv_buffer(c, qp))
        client_qps.append(qp)
    for i, qp in enumerate(client_qps):
        server.post_send(
            server_qp,
            WorkRequest.send(
                payload=b"to-%d" % i, inline=True, signaled=False, ah=(clients[i].machine.name, qp.qpn)
            ),
        )
    sim.run_until_idle()
    for i, mr in enumerate(mrs):
        assert mr.read(APT.grh_bytes, 4) == b"to-%d" % i


def test_recv_buffer_too_small_raises():
    sim, fabric, server, (client,) = make_world()
    sqp, cqp = connect_pair(server, client, Transport.UC)
    mr = server.register_memory(4)
    server.post_recv(sqp, RecvRequest(wr_id=0, local=(mr, 0, 4)))
    client.post_send(cqp, WorkRequest.send(payload=b"too big", inline=True, signaled=False))
    with pytest.raises(VerbError):
        sim.run_until_idle()


def test_ud_message_limited_to_mtu():
    sim, fabric, server, (client,) = make_world()
    cqp = client.create_qp(Transport.UD)
    big = client.register_memory(APT.mtu + 1)
    with pytest.raises(VerbError):
        client.post_send(
            cqp,
            WorkRequest.send(local=(big, 0, APT.mtu + 1), ah=("server", 1)),
        )


# ---------------------------------------------------------------------------
# Wiring / validation
# ---------------------------------------------------------------------------


def test_connect_pair_rejects_ud():
    sim, fabric, server, (client,) = make_world()
    with pytest.raises(VerbError):
        connect_pair(server, client, Transport.UD)


def test_qp_cannot_connect_twice():
    sim, fabric, server, (client,) = make_world()
    sqp, cqp = connect_pair(server, client, Transport.UC)
    with pytest.raises(VerbError):
        cqp.connect("server", sqp.qpn)


def test_unconnected_qp_cannot_send():
    sim, fabric, server, (client,) = make_world()
    qp = client.create_qp(Transport.UC)
    with pytest.raises(VerbError):
        client.post_send(qp, WorkRequest.send(payload=b"x", inline=True))


def test_recv_opcode_rejected_on_send_queue():
    sim, fabric, server, (client,) = make_world()
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    wr = WorkRequest(Opcode.RECV)
    with pytest.raises(VerbError):
        client.post_send(cqp, wr)


def test_ah_on_connected_transport_rejected():
    sim, fabric, server, (client,) = make_world()
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(
        cqp, WorkRequest.send(payload=b"x", inline=True, ah=("server", 1))
    )
    with pytest.raises(VerbError):
        sim.run_until_idle()


# ---------------------------------------------------------------------------
# Reliability / fault injection
# ---------------------------------------------------------------------------


def test_rc_retransmits_through_bit_errors():
    sim, fabric, server, (client,) = make_world()
    fabric.bit_error_rate = 0.5
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(
        cqp,
        WorkRequest.write(raddr=mr.addr, rkey=mr.rkey, payload=b"durable", inline=True, signaled=False),
    )
    sim.run_until_idle(limit=50_000_000)
    assert mr.read(0, 7) == b"durable"


def test_uc_loss_is_silent():
    """UC sacrifices transport-level retransmission (Section 2.2.3)."""
    sim, fabric, server, (client,) = make_world()
    fabric.bit_error_rate = 1.0
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(
        cqp,
        WorkRequest.write(raddr=mr.addr, rkey=mr.rkey, payload=b"gone", inline=True, signaled=False),
    )
    sim.run_until_idle(limit=50_000_000)
    assert mr.read(0, 4) == b"\x00" * 4
    assert server.writes_received == 0


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=256))
def test_any_payload_roundtrips_by_write_then_read(payload):
    sim, fabric, server, (client,) = make_world()
    remote = server.register_memory(4096)
    sink = client.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(
        cqp,
        WorkRequest.write(
            raddr=remote.addr, rkey=remote.rkey, payload=payload,
            inline=len(payload) <= 256, signaled=False,
        ),
    )
    sim.run_until_idle()
    client.post_send(
        cqp,
        WorkRequest.read(raddr=remote.addr, rkey=remote.rkey, local=(sink, 0, len(payload))),
    )
    sim.run_until_idle()
    assert sink.read(0, len(payload)) == payload
