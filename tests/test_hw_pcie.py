"""Tests for the PCIe bus model."""

import pytest

from repro.hw import APT
from repro.hw.pcie import PcieBus
from repro.sim import Simulator


def make_bus():
    sim = Simulator()
    return sim, PcieBus(sim, APT)


def test_pio_write_takes_per_cacheline_cost():
    sim, bus = make_bus()
    done = []
    bus.pio_write(64).add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    assert done == [pytest.approx(APT.pio_ns(64))]


def test_pio_writes_serialize():
    """The PIO path is the shared bottleneck the paper identifies for
    outbound inlined verbs; concurrent WQEs must queue."""
    sim, bus = make_bus()
    done = []
    for _ in range(3):
        bus.pio_write(64).add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    step = APT.pio_ns(64)
    assert done == [pytest.approx(step * (i + 1)) for i in range(3)]


def test_doorbell_cheaper_than_wqe():
    sim, bus = make_bus()
    done = []
    bus.doorbell().add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    assert done == [pytest.approx(APT.pio_base_ns)]
    assert done[0] < APT.pio_ns(64)


def test_dma_read_latency_exceeds_occupancy():
    """Non-posted reads pay a PCIe round trip of latency even though the
    engine pipelines them at a much higher rate."""
    sim, bus = make_bus()
    done = []
    bus.dma_read(64).add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    expected = APT.dma_read_ns + 64 / APT.pcie_bw + APT.dma_read_latency_ns
    assert done == [pytest.approx(expected)]


def test_dma_reads_pipeline():
    """Back-to-back DMA reads overlap their latency: N transactions
    finish in N*occupancy + 1*latency, not N*(occupancy+latency)."""
    sim, bus = make_bus()
    done = []
    n = 10
    for _ in range(n):
        bus.dma_read(0).add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    assert done[-1] == pytest.approx(n * APT.dma_read_ns + APT.dma_read_latency_ns)


def test_dma_read_multi_transaction_occupancy():
    sim, bus = make_bus()
    done = []
    bus.dma_read(0, transactions=3).add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    assert done == [pytest.approx(3 * APT.dma_read_ns + APT.dma_read_latency_ns)]


def test_dma_write_cheaper_than_dma_read():
    """Posted beats non-posted (Section 3.2.2)."""
    sim, bus = make_bus()
    times = {}
    bus.dma_write(64).add_callback(lambda e: times.setdefault("wr", sim.now))
    sim.run_until_idle()
    sim2 = Simulator()
    bus2 = PcieBus(sim2, APT)
    bus2.dma_read(64).add_callback(lambda e: times.setdefault("rd", sim2.now))
    sim2.run_until_idle()
    assert times["wr"] < times["rd"]


def test_dma_bandwidth_term_scales_with_payload():
    sim, bus = make_bus()
    done = []
    bus.dma_write(7880).add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    expected = APT.dma_write_ns + 7880 / APT.pcie_bw + APT.dma_write_latency_ns
    assert done == [pytest.approx(expected)]


def test_pio_and_dma_are_independent_paths():
    """PIO and DMA engines do not serialise against each other."""
    sim, bus = make_bus()
    done = []
    bus.pio_write(64).add_callback(lambda e: done.append(("pio", sim.now)))
    bus.dma_write(0).add_callback(lambda e: done.append(("dma", sim.now)))
    sim.run_until_idle()
    times = dict(done)
    assert times["pio"] == pytest.approx(APT.pio_ns(64))
    assert times["dma"] == pytest.approx(APT.dma_write_ns + APT.dma_write_latency_ns)
