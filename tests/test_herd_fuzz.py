"""Configuration fuzzing: HERD stays correct across the config space."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.herd import HerdCluster, HerdConfig
from repro.hw import APT, SUSITNA
from repro.workloads import Workload


@settings(max_examples=12, deadline=None)
@given(
    n_servers=st.integers(min_value=1, max_value=8),
    window=st.integers(min_value=1, max_value=8),
    n_clients=st.integers(min_value=1, max_value=12),
    get_fraction=st.sampled_from([0.0, 0.5, 0.95, 1.0]),
    value_size=st.sampled_from([1, 17, 32, 150, 300, 1000]),
    transport=st.sampled_from(["UC", "DC"]),
    profile=st.sampled_from([APT, SUSITNA]),
)
def test_any_configuration_runs_clean(
    n_servers, window, n_clients, get_fraction, value_size, transport, profile
):
    """Property: for any sane configuration, a short run makes
    progress, balances its windows, never drops a response, and never
    produces a failed or mismatched operation."""
    cluster = HerdCluster(
        HerdConfig(
            n_server_processes=n_servers,
            window=window,
            request_transport=transport,
        ),
        profile=profile,
        n_client_machines=min(4, n_clients),
        seed=window * 101 + n_clients,
    )
    n_keys = 128
    cluster.add_clients(
        n_clients,
        Workload(get_fraction=get_fraction, value_size=value_size, n_keys=n_keys),
    )
    cluster.preload(range(n_keys), value_size)
    result = cluster.run(warmup_ns=0, measure_ns=60_000)

    assert result.ops > 0
    assert result.extra["get_misses"] == 0
    for client in cluster.clients:
        assert client.failures == 0
        assert client.outstanding <= window
        assert client.issued == client.completed + client.outstanding
        for qp in client.ud_qps:
            assert qp.rnr_drops == 0
    # Request/response conservation at the servers.
    responses = sum(s.responses for s in cluster.servers)
    completed = sum(c.completed for c in cluster.clients)
    assert responses >= completed


@settings(max_examples=8, deadline=None)
@given(
    loss_permille=st.integers(min_value=0, max_value=50),
    toward_server=st.booleans(),
    n_servers=st.integers(min_value=1, max_value=4),
    window=st.integers(min_value=1, max_value=4),
    get_fraction=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_loss_recovery_never_corrupts(
    loss_permille, toward_server, n_servers, window, get_fraction
):
    """Property: under any modest loss rate in either direction, the
    retry protocol completes operations without a single wrong or
    failed response."""
    cluster = HerdCluster(
        HerdConfig(
            n_server_processes=n_servers,
            window=window,
            retry_timeout_ns=60_000.0,
        ),
        n_client_machines=2,
        seed=loss_permille * 7 + n_servers,
    )
    cluster.add_clients(
        4, Workload(get_fraction=get_fraction, value_size=32, n_keys=128)
    )
    cluster.preload(range(128), 32)
    rate = loss_permille / 1000.0
    if toward_server:
        cluster.fabric.loss_filter = lambda src, dst: rate if dst == "server" else 0.0
    else:
        cluster.fabric.loss_filter = lambda src, dst: rate if src == "server" else 0.0
    result = cluster.run(warmup_ns=0, measure_ns=400_000)
    assert result.ops > 0
    assert result.extra["get_misses"] == 0
    assert sum(c.failures for c in cluster.clients) == 0
