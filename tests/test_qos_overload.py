"""Acceptance tests for repro.qos: overload protection under flash
crowds, aggressor tenants, and stalled clients (docs/QOS.md).

The contract numbers come straight from ISSUE 8: with shedding on, a
10x flash crowd must hold in-SLO goodput at >= 70% of the pre-burst
level with zero lost acked writes; with shedding off the same crowd
must demonstrably collapse.  A well-behaved tenant sharing the cluster
with an aggressor keeps its p99 within 3x of an isolated run.  Each
``run_chaos`` call here takes well under a second.
"""

import pytest

from repro.faults import FaultPlan
from repro.faults.chaos import OVERLOAD_SCENARIOS, SCENARIOS, run_chaos
from repro.herd import HerdCluster, HerdConfig
from repro.obs import MetricsRegistry
from repro.workloads import Workload


@pytest.fixture(scope="module")
def flash_on():
    return run_chaos(seed=7, scenario="flash-crowd", shedding=True)


@pytest.fixture(scope="module")
def flash_off():
    return run_chaos(seed=7, scenario="flash-crowd", shedding=False)


@pytest.fixture(scope="module")
def aggressor_on():
    return run_chaos(seed=7, scenario="aggressor-tenant", shedding=True)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_overload_scenarios_are_registered():
    for name in OVERLOAD_SCENARIOS:
        assert name in SCENARIOS


# ---------------------------------------------------------------------------
# flash crowd: the goodput floor
# ---------------------------------------------------------------------------


def test_flash_crowd_with_shedding_holds_the_goodput_floor(flash_on):
    report = flash_on
    assert report.ok, report.violations
    assert report.qos_enabled
    assert report.scenario == "flash-crowd"
    # ISSUE 8 contract: in-SLO goodput during the sustained burst stays
    # at >= 70% of the pre-burst level
    assert report.pre_burst_mops > 0.0
    assert report.goodput_ratio >= 0.7
    # no acked write may be lost to shedding (nacked ops are either
    # retried within budget or *rejected before acking*)
    assert report.ops_lost == 0
    # the protection actually engaged: requests were shed and the
    # clients saw RESP_RETRY_AFTER nacks
    assert report.shed > 0
    assert report.retry_after_nacks > 0
    assert report.offered > report.completed
    # p99.9 is recorded for every overload run
    assert report.p999_us > 0.0
    assert report.outcome_row()["p999_us"] == report.p999_us


def test_flash_crowd_without_shedding_collapses(flash_off):
    report = flash_off
    assert not report.qos_enabled
    assert report.shed == 0
    # the unprotected server's in-SLO goodput collapses under the same
    # crowd — this is the control arm that motivates admission control
    assert report.goodput_ratio <= 0.2
    # collapse is a degradation, not an invariant violation: the run
    # itself must still satisfy liveness/accounting checks
    assert report.ok, report.violations


def test_flash_crowd_shedding_beats_no_shedding(flash_on, flash_off):
    assert flash_on.goodput_ratio > 2.0 * max(flash_off.goodput_ratio, 0.1)
    # fingerprints pin the admission decisions, so the arms differ
    assert flash_on.fingerprint != flash_off.fingerprint


def test_flash_crowd_runs_are_deterministic(flash_on):
    again = run_chaos(seed=7, scenario="flash-crowd", shedding=True)
    assert again.fingerprint == flash_on.fingerprint
    assert again.goodput_ratio == flash_on.goodput_ratio
    assert again.offered == flash_on.offered
    assert again.shed == flash_on.shed


def test_flash_crowd_other_seed_still_holds_floor():
    report = run_chaos(seed=11, scenario="flash-crowd", shedding=True)
    assert report.ok, report.violations
    assert report.goodput_ratio >= 0.7
    assert report.ops_lost == 0


# ---------------------------------------------------------------------------
# aggressor tenant: isolation
# ---------------------------------------------------------------------------


def test_aggressor_tenant_victim_keeps_its_tail(aggressor_on):
    report = aggressor_on
    assert report.ok, report.violations
    assert report.qos_enabled
    # tenant 0 is the victim, tenant 1 the aggressor (quota'd + deweighted)
    assert set(report.tenant_p99_us) == {0, 1}
    # ISSUE 8 contract: the well-behaved tenant's p99 stays within 3x of
    # an isolated run (same cluster, no burst)
    isolated = run_chaos(seed=7, scenario="aggressor-tenant", shedding=True, burst=1.0)
    assert isolated.tenant_p99_us[0] > 0.0
    assert report.tenant_p99_us[0] <= 3.0 * isolated.tenant_p99_us[0]
    # while the aggressor is visibly throttled: shed traffic and a far
    # worse tail than the victim's
    assert report.shed > 0
    assert report.tenant_p99_us[1] > 10.0 * report.tenant_p99_us[0]
    # protection keeps useful goodput through the attack
    assert report.goodput_ratio >= 0.6
    assert report.ops_lost == 0


def test_aggressor_tenant_without_quotas_hurts_the_victim(aggressor_on):
    unprotected = run_chaos(seed=7, scenario="aggressor-tenant", shedding=False)
    assert unprotected.ok, unprotected.violations
    # without admission control the victim's tail blows up
    assert unprotected.tenant_p99_us[0] > 3.0 * aggressor_on.tenant_p99_us[0]


# ---------------------------------------------------------------------------
# slow client: head-of-line thundering herd
# ---------------------------------------------------------------------------


def test_slow_client_herd_is_absorbed():
    report = run_chaos(seed=7, scenario="slow-client", shedding=True)
    assert report.ok, report.violations
    assert report.scenario == "slow-client"
    # the released backlog must not dent the other clients' goodput
    assert report.goodput_ratio >= 0.9
    assert report.ops_lost == 0
    assert report.p999_us > 0.0


# ---------------------------------------------------------------------------
# satellite: client.retries_exhausted / client.slots_quarantined counters
# ---------------------------------------------------------------------------


def test_retry_exhaustion_counters_reach_the_registry():
    """Regression: the retry-budget and quarantine paths increment the
    cluster-wide obs counters (they used to be per-client gauges only,
    invisible to metric exports that sum across clients)."""
    cluster = HerdCluster(
        HerdConfig(
            n_server_processes=2,
            window=2,
            retry_timeout_ns=20_000.0,
            retry_budget=1,
        ),
        n_client_machines=2,
        seed=13,
    )
    cluster.sim.metrics = MetricsRegistry(cluster.sim)
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=128))
    cluster.preload(range(128), 32)
    # both counters are registered (at zero) as soon as clients exist
    snap = cluster.sim.metrics.snapshot()
    assert snap["counters"]["client.retries_exhausted"] == 0
    assert snap["counters"]["client.slots_quarantined"] == 0
    # every server response is dropped: the budget of 1 retry drains
    # fast and each abandoned op quarantines its window slot
    cluster.install_faults(FaultPlan(seed=13).drop(src="server", rate=1.0))
    cluster.run(warmup_ns=0, measure_ns=200_000)
    abandoned = sum(c.abandoned for c in cluster.clients)
    quarantined = sum(
        len(c._quarantined[s])
        for c in cluster.clients
        for s in range(cluster.config.n_server_processes)
    )
    assert abandoned > 0
    snap = cluster.sim.metrics.snapshot()
    assert snap["counters"]["client.retries_exhausted"] == abandoned
    assert snap["counters"]["client.slots_quarantined"] == quarantined
    assert quarantined > 0
