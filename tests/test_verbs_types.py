"""Tests for verb types and the Table 1 capability matrix."""

import pytest

from repro.verbs import Opcode, Transport, VerbError, WorkRequest, transport_supports


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def test_rc_supports_everything():
    for op in (Opcode.SEND, Opcode.RECV, Opcode.WRITE, Opcode.READ):
        assert transport_supports(Transport.RC, op)


def test_uc_supports_write_but_not_read():
    assert transport_supports(Transport.UC, Opcode.WRITE)
    assert transport_supports(Transport.UC, Opcode.SEND)
    assert not transport_supports(Transport.UC, Opcode.READ)


def test_ud_supports_only_messaging():
    assert transport_supports(Transport.UD, Opcode.SEND)
    assert transport_supports(Transport.UD, Opcode.RECV)
    assert not transport_supports(Transport.UD, Opcode.WRITE)
    assert not transport_supports(Transport.UD, Opcode.READ)


def test_transport_flags():
    assert Transport.RC.connected and Transport.RC.reliable
    assert Transport.UC.connected and not Transport.UC.reliable
    assert not Transport.UD.connected and not Transport.UD.reliable


def test_semantics_classification():
    """Memory semantics vs channel semantics (Section 2.2.2)."""
    assert Opcode.WRITE.memory_semantics
    assert Opcode.READ.memory_semantics
    assert Opcode.SEND.channel_semantics
    assert Opcode.RECV.channel_semantics
    assert not Opcode.SEND.memory_semantics


# ---------------------------------------------------------------------------
# WorkRequest constructors
# ---------------------------------------------------------------------------


def test_write_constructor_inline():
    wr = WorkRequest.write(raddr=0x1000, rkey=1, payload=b"abc", inline=True)
    assert wr.opcode is Opcode.WRITE
    assert wr.length == 3


def test_write_requires_some_source():
    with pytest.raises(VerbError):
        WorkRequest.write(raddr=0, rkey=0)


def test_inline_write_requires_payload():
    with pytest.raises(VerbError):
        WorkRequest.write(raddr=0, rkey=0, local=(None, 0, 8), inline=True)


def test_send_requires_some_source():
    with pytest.raises(VerbError):
        WorkRequest.send()


def test_read_length_comes_from_local_sink():
    wr = WorkRequest.read(raddr=0x2000, rkey=2, local=(None, 0, 128))
    assert wr.length == 128


def test_length_zero_for_empty():
    wr = WorkRequest.send(payload=b"")
    assert wr.length == 0
