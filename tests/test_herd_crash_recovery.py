"""Server-process crash and recovery via the shared request region."""

from repro.faults import FaultPlan
from repro.herd import HerdCluster, HerdConfig
from repro.herd.config import partition_of
from repro.herd.wire import encode_put
from repro.workloads import Workload
from repro.workloads.ycsb import keyhash, value_for


def crashy_cluster(seed=31, window=2, retry_timeout_ns=40_000.0):
    cluster = HerdCluster(
        HerdConfig(
            n_server_processes=2, window=window, retry_timeout_ns=retry_timeout_ns
        ),
        n_client_machines=2,
        seed=seed,
    )
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=256))
    cluster.preload(range(256), 32)
    return cluster


# ---------------------------------------------------------------------------
# The region scan
# ---------------------------------------------------------------------------


def test_scan_partition_finds_live_slots_only():
    cluster = crashy_cluster()
    region = cluster.region
    assert region.scan_partition(0) == []
    # Plant a request exactly as a client WRITE would leave it.
    payload = encode_put(keyhash(5), b"v" * 8, epoch=1)
    offset = region.slot_offset(0, 2, 1) + cluster.config.slot_bytes - len(payload)
    region.mr.write(offset, payload)
    assert region.scan_partition(0) == [(2, 1)]
    assert region.scan_partition(1) == []  # other partition untouched
    region.clear_slot(0, 2, 1)
    assert region.scan_partition(0) == []


# ---------------------------------------------------------------------------
# Crash mechanics
# ---------------------------------------------------------------------------


def test_crash_and_recover_are_idempotent():
    cluster = crashy_cluster()
    server = cluster.servers[0]
    assert server.recover() is False       # alive: nothing to recover
    assert server.crash() is True
    assert server.crash() is False         # already dead
    assert not server.alive
    assert server.recover() is True
    assert server.alive
    assert (server.crashes, server.recoveries) == (1, 1)


def test_crashed_server_stops_responding_until_recovery():
    cluster = crashy_cluster()
    down_start, down_end = 60_000.0, 200_000.0
    cluster.install_faults(
        FaultPlan(seed=31).crash_server(0, at_ns=down_start, down_ns=down_end - down_start)
    )
    stamps = []
    for server in cluster.servers:
        def hook(client_id, op, now, _s=server.index):
            stamps.append((_s, now))

        server.completion_hook = hook
    cluster.run(warmup_ns=0, measure_ns=500_000)
    dead = [
        t for s, t in stamps if s == 0 and down_start + 5_000.0 < t < down_end
    ]
    # A request caught mid-service may complete just after the crash
    # instant, but nothing responds through the heart of the outage.
    assert not dead
    assert any(t > down_end for s, t in stamps if s == 0), "server 0 never resumed"


def test_siblings_absorb_load_during_the_outage():
    cluster = crashy_cluster(window=8)
    cluster.install_faults(
        FaultPlan(seed=31).crash_server(0, at_ns=60_000.0, down_ns=140_000.0)
    )
    stamps = []
    for server in cluster.servers:
        def hook(client_id, op, now, _s=server.index):
            stamps.append((_s, now))

        server.completion_hook = hook
    cluster.run(warmup_ns=0, measure_ns=500_000)
    # Right after the crash, the healthy sibling keeps completing
    # requests: every completion in the outage belongs to server 1.
    during = [s for s, t in stamps if 62_000.0 < t < 200_000.0]
    assert during and all(s == 1 for s in during)
    # The absorption is transient by design: each client's closed-loop
    # window and park budget fill with ops for the dead partition and
    # the client holds off.  After recovery, both partitions serve.
    after = {s for s, t in stamps if t > 220_000.0}
    assert after == {0, 1}


def test_recovery_rescans_the_region_and_completes_stranded_ops():
    cluster = crashy_cluster()
    cluster.install_faults(
        FaultPlan(seed=31).crash_server(0, at_ns=60_000.0, down_ns=100_000.0)
    )
    result = cluster.run(warmup_ns=0, measure_ns=600_000)
    server = cluster.servers[0]
    assert (server.crashes, server.recoveries) == (1, 1)
    # The windows pointed at server 0 were full when it died, and
    # requests kept landing in shared memory during the outage: the
    # re-scan must have found live slots.
    assert server.recovered_slots > 0
    assert result.ops > 300
    assert sum(c.failures for c in cluster.clients) == 0


def test_store_consistent_after_crash_recovery_and_retries():
    """Re-executed PUTs (recovery + client retries) are idempotent."""
    cluster = crashy_cluster(seed=33)
    cluster.install_faults(
        FaultPlan(seed=33)
        .drop(dst="server", rate=0.02)
        .crash_server(1, at_ns=80_000.0, down_ns=80_000.0)
    )
    cluster.run(warmup_ns=0, measure_ns=600_000)
    for item in range(256):
        kh = keyhash(item)
        stored = cluster.servers[partition_of(kh, 2)].store.get(kh)
        assert stored == value_for(item, 32)


def test_without_retries_a_crash_strands_the_window():
    """Recovery re-serves what is in the region, but responses that
    died with the process are only re-asked-for by retrying clients."""
    cluster = crashy_cluster(retry_timeout_ns=None)
    cluster.install_faults(
        FaultPlan(seed=31).crash_server(0, at_ns=60_000.0, down_ns=100_000.0)
    )
    cluster.run(warmup_ns=0, measure_ns=600_000)
    # Progress continued on the healthy partition regardless.
    assert sum(c.completed for c in cluster.clients) > 100


def test_client_parking_keeps_healthy_partitions_busy():
    cluster = crashy_cluster()
    cluster.install_faults(
        FaultPlan(seed=31).crash_server(0, at_ns=60_000.0, down_ns=200_000.0)
    )
    cluster.run(warmup_ns=0, measure_ns=400_000)
    parked = sum(len(q) for c in cluster.clients for q in c._parked)
    limit = 2 * cluster.config.window
    for client in cluster.clients:
        assert sum(len(q) for q in client._parked) <= limit
    # The global closed loop never exceeds W outstanding.
    for client in cluster.clients:
        assert client.outstanding <= cluster.config.window
