"""Tests for the SEND/SEND HERD variant (Section 5.5)."""

import pytest

from repro.herd import HerdConfig
from repro.herd.ud_variant import (
    SendSendHerdCluster,
    decode_ud_request,
    encode_ud_request,
)
from repro.verbs import Transport
from repro.workloads import OpType, Workload
from repro.workloads.ycsb import Operation, keyhash


def small_cluster(ns=2, clients=4, get_fraction=0.5, value_size=32, n_keys=256):
    cluster = SendSendHerdCluster(
        HerdConfig(n_server_processes=ns, window=2), n_client_machines=2, seed=5
    )
    cluster.add_clients(
        clients, Workload(get_fraction=get_fraction, value_size=value_size, n_keys=n_keys)
    )
    cluster.preload(range(n_keys), value_size)
    return cluster


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------


def test_ud_request_roundtrip_get():
    op = Operation(OpType.GET, keyhash(7), None)
    decoded, qpn = decode_ud_request(encode_ud_request(op, reply_qpn=42))
    assert decoded.op is OpType.GET
    assert decoded.key == keyhash(7)
    assert qpn == 42


def test_ud_request_roundtrip_put():
    op = Operation(OpType.PUT, keyhash(9), b"value-bytes")
    decoded, qpn = decode_ud_request(encode_ud_request(op, reply_qpn=3))
    assert decoded.op is OpType.PUT
    assert decoded.value == b"value-bytes"
    assert qpn == 3


# ---------------------------------------------------------------------------
# end to end
# ---------------------------------------------------------------------------


def test_progress_and_correctness():
    cluster = small_cluster(get_fraction=1.0)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 100
    assert result.extra["get_misses"] == 0
    assert sum(c.failures for c in cluster.clients) == 0


def test_puts_reach_the_store():
    from repro.herd.config import partition_of
    from repro.workloads.ycsb import value_for

    cluster = small_cluster(get_fraction=0.0, value_size=24, n_keys=32)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 50
    for item in range(32):
        kh = keyhash(item)
        server = cluster.servers[partition_of(kh, len(cluster.servers))]
        assert server.store.get(kh) == value_for(item, 24)


def test_recv_rings_never_underflow():
    """The server's deep pre-posted RECV ring plus per-request client
    RECVs mean no SEND is ever dropped."""
    cluster = small_cluster()
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.extra["rnr_drops"] == 0
    for client in cluster.clients:
        assert client.qp.rnr_drops == 0


def test_server_uses_only_ns_ud_qps():
    """The entire client population shares NS unconnected QPs."""
    cluster = small_cluster(ns=3, clients=8)
    uc = [q for q in cluster.server_device.qps.values() if q.transport is Transport.UC]
    ud = [q for q in cluster.server_device.qps.values() if q.transport is Transport.UD]
    assert uc == []
    assert len(ud) == 3


@pytest.mark.slow
def test_send_send_costs_a_few_mops_but_scales():
    """Section 5.5: switching to SEND/SEND costs ~4-5 Mops at moderate
    scale but keeps peak throughput at client counts where the
    WRITE-based design has already declined."""
    from repro.bench.figures import run_herd

    def ss_run(n, machines):
        cluster = SendSendHerdCluster(
            HerdConfig(n_server_processes=6), n_client_machines=machines
        )
        cluster.add_clients(
            n, Workload(get_fraction=0.95, value_size=32, n_keys=1 << 12)
        )
        cluster.preload(range(1 << 12), 32)
        return cluster.run(measure_ns=120_000.0).mops

    hybrid_small = run_herd(n_clients=51, measure_ns=120_000.0).mops
    ss_small = ss_run(51, 17)
    assert 2.0 < hybrid_small - ss_small < 8.0

    hybrid_big = run_herd(
        n_clients=460, n_client_machines=93, measure_ns=120_000.0
    ).mops
    ss_big = ss_run(460, 93)
    assert ss_big > 0.9 * ss_small       # SEND/SEND holds its peak
    assert hybrid_big < 0.7 * hybrid_small  # the hybrid has declined
    assert ss_big > hybrid_big
