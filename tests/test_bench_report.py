"""Tests for figure rendering, the results plumbing, and the CLI."""

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.figures import table1, table2
from repro.bench.report import FigureData, Series, format_figure, format_matrix
from repro.bench.result import collect
from repro.sim import LatencyRecorder, RateMeter


def sample_figure():
    return FigureData(
        "figX",
        "Sample",
        "payload (B)",
        "Mops",
        [
            Series("A", [(4, 1.0), (8, 2.0)]),
            Series("B", [(4, 3.0)]),
        ],
        notes=["hello"],
    )


def test_series_lookup():
    fig = sample_figure()
    assert fig.series_by_label("A").y_for(8) == 2.0
    with pytest.raises(KeyError):
        fig.series_by_label("missing")
    with pytest.raises(KeyError):
        fig.series_by_label("B").y_for(8)


def test_format_figure_contains_all_points_and_gaps():
    text = format_figure(sample_figure())
    assert "figX — Sample" in text
    assert "payload (B)" in text
    assert "1.00" in text and "2.00" in text and "3.00" in text
    # B has no point at x=8: rendered as '-'
    lines = [l for l in text.splitlines() if l.startswith("8")]
    assert lines and lines[0].rstrip().endswith("-")
    assert "note: hello" in text


def test_format_matrix():
    text = format_matrix("T", ["r1"], ["c1", "c2"], [["yes", "no"]])
    assert "T" in text and "yes" in text and "no" in text


def test_table1_text():
    text = table1()
    assert "RC" in text and "UC" in text and "UD" in text
    # Table 1's two headline facts.
    read_row = next(l for l in text.splitlines() if l.startswith("READ"))
    assert read_row.split() == ["READ", "yes", "no", "no"]
    write_row = next(l for l in text.splitlines() if l.startswith("WRITE"))
    assert write_row.split() == ["WRITE", "yes", "yes", "no"]


def test_table2_text():
    text = table2()
    assert "apt" in text and "susitna" in text
    assert "56" in text and "40" in text


def test_collect_bundles_meters():
    meter = RateMeter(0.0, 1e3)
    lat = LatencyRecorder(0.0, 1e3)
    meter.record(10.0)
    lat.record(10.0, 2_000.0)
    result = collect(meter, lat, 1e3, foo=1.5)
    assert result.ops == 1
    assert result.mops == pytest.approx(1.0)
    assert result.latency["mean_us"] == pytest.approx(2.0)
    assert result.extra["foo"] == 1.5


def test_cli_list(capsys):
    assert cli_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "table1" in out


def test_cli_runs_tables(capsys):
    assert cli_main(["table1", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Operations supported" in out
    assert "Cluster configuration" in out


def test_cli_unknown_experiment(capsys):
    assert cli_main(["fig99"]) == 2


def test_cli_renders_fig1_timelines(capsys):
    assert cli_main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Steps involved in posting verbs" in out
    assert "wire requester->responder" in out
