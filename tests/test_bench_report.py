"""Tests for figure rendering, the results plumbing, and the CLI."""

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.figures import table1, table2
from repro.bench.report import FigureData, Series, format_figure, format_matrix
from repro.bench.result import collect
from repro.sim import LatencyRecorder, RateMeter


def sample_figure():
    return FigureData(
        "figX",
        "Sample",
        "payload (B)",
        "Mops",
        [
            Series("A", [(4, 1.0), (8, 2.0)]),
            Series("B", [(4, 3.0)]),
        ],
        notes=["hello"],
    )


def test_series_lookup():
    fig = sample_figure()
    assert fig.series_by_label("A").y_for(8) == 2.0
    with pytest.raises(KeyError):
        fig.series_by_label("missing")
    with pytest.raises(KeyError):
        fig.series_by_label("B").y_for(8)


def test_format_figure_contains_all_points_and_gaps():
    text = format_figure(sample_figure())
    assert "figX — Sample" in text
    assert "payload (B)" in text
    assert "1.00" in text and "2.00" in text and "3.00" in text
    # B has no point at x=8: rendered as '-'
    lines = [l for l in text.splitlines() if l.startswith("8")]
    assert lines and lines[0].rstrip().endswith("-")
    assert "note: hello" in text


def test_format_figure_missing_point_cells():
    # A series that skips interior and trailing x values renders "-" in
    # exactly those cells, and real values everywhere else.
    fig = FigureData(
        "figY",
        "Gaps",
        "x",
        "y",
        [
            Series("full", [(1, 1.0), (2, 2.0), (3, 3.0)]),
            Series("sparse", [(2, 9.0)]),
        ],
    )
    rows = {
        line.split()[0]: line.split()[1:]
        for line in format_figure(fig).splitlines()
        if line and line.split()[0] in ("1", "2", "3")
    }
    assert rows["1"] == ["1.00", "-"]
    assert rows["2"] == ["2.00", "9.00"]
    assert rows["3"] == ["3.00", "-"]


def test_format_figure_x_order_is_first_seen():
    # x values are collected across series in first-seen order, not
    # sorted: later series only append x values the earlier ones lack.
    fig = FigureData(
        "figZ",
        "Order",
        "x",
        "y",
        [
            Series("a", [(4, 1.0), (2, 1.0)]),
            Series("b", [(2, 2.0), (9, 2.0)]),
        ],
    )
    lines = format_figure(fig).splitlines()
    order = [l.split()[0] for l in lines if l and l.split()[0] in "429"]
    assert order == ["4", "2", "9"]


def test_series_y_for_duplicate_x_returns_first():
    series = Series("dup", [(1, 10.0), (1, 20.0)])
    assert series.y_for(1) == 10.0


def test_series_y_for_sees_appended_points():
    # The x-index is rebuilt when the point list grows.
    series = Series("grow", [(1, 1.0)])
    assert series.y_for(1) == 1.0
    series.points.append((2, 4.0))
    assert series.y_for(2) == 4.0


def test_format_matrix():
    text = format_matrix("T", ["r1"], ["c1", "c2"], [["yes", "no"]])
    assert "T" in text and "yes" in text and "no" in text


def test_format_matrix_alignment():
    # Columns are 8 wide and right-aligned under their headers; the
    # rule spans the full header; rows pad the 12-char name column.
    text = format_matrix(
        "T", ["short", "longer-name?"], ["c1", "c2"], [["a", "bb"], ["ccc", "d"]]
    )
    title, header, rule, row1, row2 = text.splitlines()
    assert len(rule) == len(header)
    assert set(rule) == {"-"}
    # each cell's last character sits in the same column as its header's
    for col in ("c1", "c2"):
        anchor = header.index(col) + len(col) - 1
        assert row1.rstrip()[anchor] in "ab"
        assert row2.rstrip()[anchor] in "cd"
    assert row1.startswith("short" + " " * (12 - len("short")))
    assert row2.startswith("longer-name?")


def test_table1_text():
    text = table1()
    assert "RC" in text and "UC" in text and "UD" in text
    # Table 1's two headline facts.
    read_row = next(l for l in text.splitlines() if l.startswith("READ"))
    assert read_row.split() == ["READ", "yes", "no", "no"]
    write_row = next(l for l in text.splitlines() if l.startswith("WRITE"))
    assert write_row.split() == ["WRITE", "yes", "yes", "no"]


def test_table2_text():
    text = table2()
    assert "apt" in text and "susitna" in text
    assert "56" in text and "40" in text


def test_collect_bundles_meters():
    meter = RateMeter(0.0, 1e3)
    lat = LatencyRecorder(0.0, 1e3)
    meter.record(10.0)
    lat.record(10.0, 2_000.0)
    result = collect(meter, lat, 1e3, foo=1.5)
    assert result.ops == 1
    assert result.mops == pytest.approx(1.0)
    assert result.latency["mean_us"] == pytest.approx(2.0)
    assert result.extra["foo"] == 1.5


def test_cli_list(capsys):
    assert cli_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "table1" in out


def test_cli_runs_tables(capsys):
    assert cli_main(["table1", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Operations supported" in out
    assert "Cluster configuration" in out


def test_cli_unknown_experiment(capsys):
    assert cli_main(["fig99"]) == 2


def test_cli_renders_fig1_timelines(capsys):
    assert cli_main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Steps involved in posting verbs" in out
    assert "wire requester->responder" in out
