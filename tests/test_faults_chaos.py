"""The chaos harness: seeded runs, invariants, and the CLI gate."""

import pytest

from repro.bench.cli import main
from repro.faults import FaultPlan, run_chaos
from repro.herd import HerdConfig


# Short horizons keep each run in the low hundreds of milliseconds of
# wall clock while still exercising loss, duplication, and a crash.
HORIZON = 150_000.0


@pytest.mark.parametrize("seed", [0, 7, 19])
def test_chaos_runs_end_green_across_seeds(seed):
    report = run_chaos(seed=seed, horizon_ns=HORIZON)
    assert report.ok, report.violations
    assert report.issued == report.completed + report.abandoned
    assert report.completed > 0
    assert report.fingerprint


def test_chaos_same_seed_reproduces_the_fingerprint():
    a = run_chaos(seed=11, horizon_ns=HORIZON)
    b = run_chaos(seed=11, horizon_ns=HORIZON)
    assert a.ok and b.ok
    assert a.fingerprint == b.fingerprint
    assert (a.issued, a.completed, a.retries) == (b.issued, b.completed, b.retries)
    assert a.fault_counts == b.fault_counts


def test_chaos_different_seeds_diverge():
    a = run_chaos(seed=1, horizon_ns=HORIZON)
    b = run_chaos(seed=2, horizon_ns=HORIZON)
    assert a.fingerprint != b.fingerprint


def test_chaos_with_a_crash_records_the_recovery():
    plan = (
        FaultPlan(seed=5)
        .drop(dst="server", rate=0.02)
        .crash_server(0, at_ns=40_000.0, down_ns=40_000.0)
    )
    report = run_chaos(seed=5, horizon_ns=HORIZON, plan=plan)
    assert report.ok, report.violations
    assert report.server_crashes == 1
    assert report.server_recoveries == 1


def test_chaos_requires_retries():
    with pytest.raises(ValueError):
        run_chaos(config=HerdConfig(retry_timeout_ns=None))


def test_chaos_report_summary_mentions_the_verdict():
    report = run_chaos(seed=3, horizon_ns=HORIZON)
    text = report.summary()
    assert "OK" in text or "VIOLATED" in text
    assert str(report.issued) in text


def test_cli_chaos_smoke(capsys):
    rc = main(
        [
            "--chaos",
            "--chaos-seed",
            "7",
            "--chaos-runs",
            "1",
            "--chaos-horizon",
            str(HORIZON),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "chaos" in out.lower()
