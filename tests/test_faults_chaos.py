"""The chaos harness: seeded runs, invariants, and the CLI gate."""

import pytest

from repro.bench.cli import main
from repro.faults import FaultPlan, run_chaos
from repro.herd import HerdConfig


# Short horizons keep each run in the low hundreds of milliseconds of
# wall clock while still exercising loss, duplication, and a crash.
HORIZON = 150_000.0


@pytest.mark.parametrize("seed", [0, 7, 19])
def test_chaos_runs_end_green_across_seeds(seed):
    report = run_chaos(seed=seed, horizon_ns=HORIZON)
    assert report.ok, report.violations
    assert report.issued == report.completed + report.abandoned
    assert report.completed > 0
    assert report.fingerprint


def test_chaos_same_seed_reproduces_the_fingerprint():
    a = run_chaos(seed=11, horizon_ns=HORIZON)
    b = run_chaos(seed=11, horizon_ns=HORIZON)
    assert a.ok and b.ok
    assert a.fingerprint == b.fingerprint
    assert (a.issued, a.completed, a.retries) == (b.issued, b.completed, b.retries)
    assert a.fault_counts == b.fault_counts


def test_chaos_different_seeds_diverge():
    a = run_chaos(seed=1, horizon_ns=HORIZON)
    b = run_chaos(seed=2, horizon_ns=HORIZON)
    assert a.fingerprint != b.fingerprint


def test_chaos_with_a_crash_records_the_recovery():
    plan = (
        FaultPlan(seed=5)
        .drop(dst="server", rate=0.02)
        .crash_server(0, at_ns=40_000.0, down_ns=40_000.0)
    )
    report = run_chaos(seed=5, horizon_ns=HORIZON, plan=plan)
    assert report.ok, report.violations
    assert report.server_crashes == 1
    assert report.server_recoveries == 1


def test_chaos_requires_retries():
    with pytest.raises(ValueError):
        run_chaos(config=HerdConfig(retry_timeout_ns=None))


def test_chaos_report_summary_mentions_the_verdict():
    report = run_chaos(seed=3, horizon_ns=HORIZON)
    text = report.summary()
    assert "OK" in text or "VIOLATED" in text
    assert str(report.issued) in text


def test_cli_chaos_smoke(capsys):
    rc = main(
        [
            "--chaos",
            "--chaos-seed",
            "7",
            "--chaos-runs",
            "1",
            "--chaos-horizon",
            str(HORIZON),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "chaos" in out.lower()


def test_outcome_table_aligns_columns():
    from repro.bench.cli import _outcome_table

    rows = [
        {
            "scenario": "kill-primary",
            "seed": 7,
            "ops_acked": 930,
            "ops_lost": 0,
            "availability": 0.9907,
            "p999_us": 42.7,
            "checker": "linearizable",
            "verdict": "OK",
        },
        {
            "scenario": "randomized",
            "seed": 8,
            "ops_acked": 12,
            "ops_lost": 3,
            "availability": 1.0,
            "p999_us": 3.1,
            "checker": "n/a",
            "verdict": "FAILED",
        },
    ]
    table = _outcome_table(rows)
    lines = table.splitlines()
    assert len(lines) == 3
    assert lines[0].split() == [
        "scenario", "seed", "acked", "lost", "availability", "p99.9_us",
        "checker", "verdict",
    ]
    # every row puts the verdict in the same column
    col = lines[0].index("verdict")
    assert lines[1][col:].strip() == "OK"
    assert lines[2][col:].strip() == "FAILED"


def test_cli_chaos_scenario_prints_the_outcome_table(capsys):
    rc = main(
        [
            "--chaos",
            "--chaos-seed",
            "11",
            "--chaos-runs",
            "1",
            "--chaos-scenario",
            "kill-primary",
            "--chaos-horizon",
            str(HORIZON),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    # the per-scenario outcome table, plus the HA lines of the summary
    assert "scenario" in out and "verdict" in out
    assert "kill-primary" in out and "OK" in out


def test_chaos_fingerprint_is_pinned():
    """The seed-7 default-horizon fingerprint, pinned byte for byte.

    This hash was recorded on the single-heap calendar before the
    event-engine overhaul; the sorted-run calendar (and every
    optimisation since) must keep reproducing it exactly.  If an engine
    change breaks this, it changed dispatch order — see
    tests/test_engine_calendar.py for the side-by-side oracle.
    """
    report = run_chaos(seed=7)
    assert report.ok, report.violations
    assert report.fingerprint == (
        "71024d25ada3bfcad98d34f5f0d0261a993296d46f8d11f527871ca0eff29e62"
    )
