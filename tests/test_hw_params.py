"""Tests for hardware profiles and geometry helpers (Table 2)."""

import pytest

from repro.hw import APT, SUSITNA, HardwareProfile


def test_apt_matches_table2():
    assert APT.name == "apt"
    assert APT.link_bw == pytest.approx(7.0)   # 56 Gbps InfiniBand
    assert not APT.roce
    assert APT.pcie_bw > SUSITNA.pcie_bw       # PCIe 3.0 x8 vs 2.0 x8


def test_susitna_matches_table2():
    assert SUSITNA.name == "susitna"
    assert SUSITNA.link_bw == pytest.approx(5.0)  # 40 Gbps
    assert SUSITNA.roce


def test_profiles_are_immutable():
    with pytest.raises(Exception):
        APT.link_bw = 1.0  # type: ignore[misc]


def test_replace_overrides_one_field():
    slow = APT.replace(link_bw=1.0)
    assert slow.link_bw == 1.0
    assert slow.wire_delay_ns == APT.wire_delay_ns
    assert APT.link_bw == pytest.approx(7.0)  # original untouched


def test_pio_cachelines_ceil():
    assert APT.pio_cachelines(0) == 0
    assert APT.pio_cachelines(1) == 1
    assert APT.pio_cachelines(64) == 1
    assert APT.pio_cachelines(65) == 2
    assert APT.pio_cachelines(256) == 4


def test_pio_cost_steps_at_cacheline_boundaries():
    """The stepwise PIO cost is the mechanism behind Figure 4b's
    64-byte-interval throughput drops."""
    one_cl = APT.pio_ns(64)
    two_cl = APT.pio_ns(65)
    assert two_cl > one_cl
    assert APT.pio_ns(128) == two_cl


def test_small_wqe_pio_sustains_about_35_mops():
    """~28 ns per 1-cacheline WQE -> ~35 Mops (Figure 4b peak)."""
    rate_mops = 1e3 / APT.pio_ns(60)
    assert 30.0 <= rate_mops <= 40.0


def test_wire_bytes_accounting():
    assert APT.wire_bytes(100) == 100 + APT.wire_header_bytes
    ud = APT.wire_bytes(100, ud=True)
    assert ud == 100 + APT.wire_header_bytes + APT.ud_header_bytes


def test_roce_ud_carries_grh_on_wire():
    ib = APT.wire_bytes(0, ud=True)
    roce = SUSITNA.wire_bytes(0, ud=True)
    assert roce - SUSITNA.wire_header_bytes - SUSITNA.ud_header_bytes == SUSITNA.grh_bytes
    assert ib - APT.wire_header_bytes - APT.ud_header_bytes == 0


def test_inline_limit_is_256_bytes():
    """Section 2.2.2: max PIO-inlined payload is 256 bytes on ConnectX-3."""
    assert APT.max_inline == 256
    assert SUSITNA.max_inline == 256


def test_max_outstanding_reads_is_16():
    """Section 3.2.2: each QP services at most 16 outstanding READs."""
    assert APT.max_outstanding_reads == 16


def test_herd_inline_cutoffs_match_section_5_3():
    """HERD switches to non-inlined SENDs at 144 B (Apt) / 192 B (Susitna)."""
    assert APT.herd_inline_cutoff == 144
    assert SUSITNA.herd_inline_cutoff == 192


def test_custom_profile_validation_not_required_but_consistent():
    p = HardwareProfile(name="toy", link_bw=1.25, wire_delay_ns=100.0)
    assert p.pio_ns(64) == p.pio_base_ns + p.pio_per_cacheline_ns
