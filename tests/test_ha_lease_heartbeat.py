"""LeaseMonitor under heartbeat-selective one-way loss.

The gray failure lease protocols are worst at: a replica's control
traffic vanishes in exactly one direction while every data packet
still flows.  ``FaultPlan.lose_heartbeats`` injects it; the chaos
harness's oracle suite (no split-brain acks, zero lost acked writes,
strictly monotonic fencing epochs, linearizability) judges the run.

Both directions are exercised:

* ``to_monitor`` — the monitor stops hearing the primary and must
  promote; the old primary keeps serving until its lease lapses, so
  the fencing epoch is what keeps the overlap safe;
* ``from_monitor`` — GRANTs are lost, the primary self-demotes
  conservatively, and no promotion may happen at all (the monitor
  still believes it alive).
"""

import pytest

from repro.faults import FaultPlan, run_chaos

BASE = dict(
    seed=11,
    scenario="nemesis",
    horizon_ns=300_000.0,
    n_clients=4,
    n_items=48,
    value_size=24,
    n_server_processes=2,
    replication_factor=3,
    ack_policy="majority",
)


def _heartbeat_blackout():
    # Total heartbeat loss from the primary for 80 us: long enough to
    # expire the lease several times over, so the monitor must act.
    return FaultPlan(seed=4).lose_heartbeats(
        "server", rate=1.0, start_ns=60_000.0, end_ns=140_000.0,
        direction="to_monitor",
    )


@pytest.fixture(scope="module")
def blackout_report():
    return run_chaos(plan=_heartbeat_blackout(), **BASE)


def test_heartbeat_blackout_forces_promotion(blackout_report):
    # The monitor declared the primary dead and failed over even
    # though not one data packet was lost.
    assert blackout_report.promotions >= 1


def test_no_split_brain_and_no_lost_acked_writes(blackout_report):
    # The full oracle suite holds: the linearizability checker ran,
    # no acked write vanished, and the split-brain / fencing-epoch
    # monotonicity witnesses stayed silent.
    assert blackout_report.ok, blackout_report.violations
    assert blackout_report.violations == []
    assert blackout_report.checker == "linearizable"
    assert blackout_report.ops_lost == 0
    assert blackout_report.ops_acked > 0


def test_flap_count_is_bounded(blackout_report):
    # One 80 us blackout must not make the monitor thrash: each
    # promotion requires a fresh lease expiry, so the count is bounded
    # by blackout length over lease time — not by heartbeat count.
    assert 1 <= blackout_report.promotions <= 3


def test_heartbeat_blackout_is_deterministic(blackout_report):
    again = run_chaos(plan=_heartbeat_blackout(), **BASE)
    assert again.fingerprint == blackout_report.fingerprint
    assert again.promotions == blackout_report.promotions


def test_grant_loss_never_promotes():
    # Losing GRANTs to a non-primary replica starves *its* lease, but
    # the monitor keeps hearing every heartbeat: promoting would be a
    # split-brain bug.
    plan = FaultPlan(seed=4).lose_heartbeats(
        "rep1", rate=1.0, start_ns=60_000.0, end_ns=120_000.0,
        direction="from_monitor",
    )
    report = run_chaos(plan=plan, **BASE)
    assert report.ok, report.violations
    assert report.promotions == 0
    assert report.ops_lost == 0
