"""Tests for the 3-1 cuckoo table (Pilaf's backend)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv.cuckoo import (
    BUCKET_BYTES,
    CuckooFullError,
    CuckooTable,
    checksum64,
)


def key(i):
    return ("ck-%06d" % i).encode().ljust(16, b"\x00")


def test_put_get_roundtrip():
    t = CuckooTable()
    t.put(key(1), b"hello")
    assert t.get(key(1)) == b"hello"


def test_missing_key():
    t = CuckooTable()
    assert t.get(key(5)) is None


def test_overwrite_in_place():
    t = CuckooTable()
    t.put(key(1), b"old")
    t.put(key(1), b"newer")
    assert t.get(key(1)) == b"newer"
    assert t.items == 1


def test_delete():
    t = CuckooTable()
    t.put(key(1), b"v")
    assert t.delete(key(1))
    assert t.get(key(1)) is None
    assert not t.delete(key(1))
    assert t.items == 0


def test_three_candidate_buckets():
    t = CuckooTable()
    buckets = t.buckets_for(key(1))
    assert len(buckets) == CuckooTable.HASHES == 3
    assert all(0 <= b < t.n_buckets for b in buckets)
    # Deterministic.
    assert buckets == t.buckets_for(key(1))


def test_relocation_makes_room():
    """Insertions beyond direct capacity trigger cuckoo kicks."""
    t = CuckooTable(n_buckets=64, seed=3)
    inserted = 0
    try:
        for i in range(48):  # push to 75% load
            t.put(key(i), b"v%d" % i)
            inserted += 1
    except CuckooFullError:
        pass
    assert inserted >= 40
    for i in range(inserted):
        assert t.get(key(i)) == b"v%d" % i
    assert t.kicks > 0


def test_average_probes_near_paper_value():
    """Section 5.1.1: ~1.6 bucket probes per GET at 75% occupancy."""
    t = CuckooTable(n_buckets=1024, seed=1)
    n = int(t.n_buckets * 0.75)
    for i in range(n):
        t.put(key(i), b"v")
    for i in range(n):
        t.get(key(i))
    assert 1.3 <= t.average_probes() <= 2.0


def test_bucket_is_32_bytes():
    """The paper assumes 32-byte buckets for alignment."""
    assert BUCKET_BYTES == 32
    t = CuckooTable()
    offset, length = t.bucket_span(3)
    assert (offset, length) == (96, 32)


def test_bucket_bytes_parse_like_a_remote_client():
    """A Pilaf client READs raw bucket bytes and decodes them."""
    t = CuckooTable()
    t.put(key(7), b"remote-value")
    for index in t.buckets_for(key(7)):
        parsed = CuckooTable.parse_bucket(t.read_bucket(index))
        if parsed is not None and parsed[0] == key(7):
            ptr, vlen = parsed[1], parsed[2]
            assert t.read_value(ptr) == b"remote-value"
            assert vlen == len(b"remote-value")
            return
    pytest.fail("key not found in any candidate bucket")


def test_parse_empty_bucket():
    t = CuckooTable()
    assert CuckooTable.parse_bucket(t.read_bucket(0)) is None


def test_self_verifying_bucket_detects_corruption():
    """The two 64-bit checksums exist so clients can detect torn reads
    of concurrently-updated entries (Section 2.3)."""
    t = CuckooTable()
    t.put(key(1), b"v")
    index = next(
        b for b in t.buckets_for(key(1)) if t.read_bucket(b)[:16] == key(1)
    )
    offset, _ = t.bucket_span(index)
    t.table[offset] ^= 0xFF  # flip bits in the stored key
    with pytest.raises(ValueError):
        CuckooTable.parse_bucket(t.read_bucket(index))


def test_extent_checksum_detects_torn_value():
    t = CuckooTable()
    t.put(key(1), b"important")
    index = next(
        b for b in t.buckets_for(key(1)) if t.read_bucket(b)[:16] == key(1)
    )
    _k, ptr, _vlen = CuckooTable.parse_bucket(t.read_bucket(index))
    t.extents[ptr + 10] ^= 0xFF  # corrupt the value body
    with pytest.raises(ValueError):
        t.read_value(ptr)


def test_checksum64_is_deterministic_and_wide():
    a = checksum64(b"hello")
    assert a == checksum64(b"hello")
    assert a != checksum64(b"hellp")
    assert a > 0xFFFFFFFF or checksum64(b"other") > 0xFFFFFFFF


def test_extent_exhaustion():
    t = CuckooTable(extent_bytes=64)
    with pytest.raises(CuckooFullError):
        for i in range(10):
            t.put(key(i), b"x" * 30)


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=200),
        st.binary(min_size=1, max_size=40),
        min_size=1,
        max_size=100,
    )
)
def test_matches_dict_model(model_ops):
    """Property: at moderate load the table is exactly a dict."""
    t = CuckooTable(n_buckets=1024, seed=2)
    for i, value in model_ops.items():
        t.put(key(i), value)
    for i, value in model_ops.items():
        assert t.get(key(i)) == value
    assert t.items == len(model_ops)
    assert t.load_factor() <= 0.75 + 1e-9 or True
