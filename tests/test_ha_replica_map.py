"""Client-side failover policy: ReplicaMap epochs and stale-nack replay.

The :class:`~repro.ha.failover.ReplicaMap` is the client's whole view of
"who owns partition p right now"; its epoch fencing is what makes
out-of-order CONFIG notifications harmless.  The second half drives the
``RESP_STALE_EPOCH`` nack path on a real wired cluster: a nacked op must
stay pending (it was never executed) and replay iff the map has moved.
"""

import pytest

from repro.ha.failover import ReplicaMap
from repro.herd import HerdCluster, HerdConfig
from repro.workloads import Workload


# ---------------------------------------------------------------------------
# ReplicaMap
# ---------------------------------------------------------------------------


def test_replica_map_starts_at_replica_zero_epoch_zero():
    rmap = ReplicaMap(4, 3)
    assert rmap.primary == [0, 0, 0, 0]
    assert rmap.epoch == [0, 0, 0, 0]


def test_replica_map_epoch_advance_moves_traffic():
    rmap = ReplicaMap(2, 3)
    assert rmap.update(0, 1, epoch=1) is True  # moved: traffic re-aims
    assert rmap.primary[0] == 1 and rmap.epoch[0] == 1
    assert rmap.primary[1] == 0  # other partitions untouched
    # same replica, newer epoch: adopted but nothing moved
    assert rmap.update(0, 1, epoch=2) is False
    assert rmap.epoch[0] == 2


def test_replica_map_rejects_stale_and_duplicate_epochs():
    rmap = ReplicaMap(2, 3)
    assert rmap.update(0, 2, epoch=5) is True
    # a reordered (older) notification can never roll the client back
    assert rmap.update(0, 0, epoch=4) is False
    assert rmap.update(0, 0, epoch=5) is False
    assert rmap.primary[0] == 2 and rmap.epoch[0] == 5


def test_replica_map_validation_and_lanes():
    with pytest.raises(ValueError):
        ReplicaMap(0, 3)
    with pytest.raises(ValueError):
        ReplicaMap(2, 0)
    rmap = ReplicaMap(2, 3)
    with pytest.raises(ValueError):
        rmap.update(0, 3, epoch=1)  # replica id out of range for rf=3
    rmap.update(1, 2, epoch=1)
    # lane = replica * NS + partition (rf=1 degenerates to partition)
    assert rmap.lane(0, 2) == 0
    assert rmap.lane(1, 2) == 2 * 2 + 1


# ---------------------------------------------------------------------------
# RESP_STALE_EPOCH replay path
# ---------------------------------------------------------------------------


def _wired_client():
    config = HerdConfig(
        n_server_processes=2,
        window=2,
        retry_timeout_ns=20_000.0,
        replication_factor=3,
        ack_policy="majority",
    )
    cluster = HerdCluster(config, n_client_machines=1, seed=7)
    cluster.add_clients(1, Workload(get_fraction=0.0, value_size=24, n_keys=8))
    cluster.wire()
    client = cluster.clients[0]

    sent = []

    def issue():
        op = client.stream.next_op()
        server = 0
        yield from client._send_op(op, server)
        sent.append(server)

    cluster.sim.process(issue(), name="test-issue")
    cluster.sim.run(until=5_000.0)
    assert sent, "the op was never issued"
    record = client._pending[0][-1]
    client._pending[0].remove(record)  # as _absorb does before the nack
    lane = record.replica * config.n_server_processes + record.server
    return cluster, client, record, lane


def test_stale_nack_with_an_unmoved_map_requeues_without_replay():
    cluster, client, record, lane = _wired_client()
    assert client.ha_map.primary[0] == record.replica == 0
    client._on_stale_nack(record, lane, record.recv_offset)
    cluster.sim.run(until=cluster.sim.now + 50_000.0)
    # the op is still pending at the same replica — the retry/CONFIG
    # path owns the actual move — and nothing was replayed
    assert record in client._pending[0]
    assert record.replica == 0
    assert client.stale_nacks == 1
    assert client.replays == 0


def test_stale_nack_after_a_config_move_replays_to_the_new_primary():
    cluster, client, record, lane = _wired_client()
    # the monitor's CONFIG landed first: partition 0 moved to replica 1
    assert client.ha_map.update(0, 1, epoch=1) is True
    client._on_stale_nack(record, lane, record.recv_offset)
    cluster.sim.run(until=cluster.sim.now + 50_000.0)
    # the nacked op chased the partition to its new primary
    assert record in client._pending[0]
    assert record.replica == 1
    assert client.stale_nacks == 1
    assert client.replays == 1
