"""Tests for the ECHO servers (Figure 5's systems)."""

import pytest

from repro.baselines import EchoCluster, EchoConfig
from repro.verbs import Transport


def run_echo(config, n_clients=6, measure_ns=60_000.0):
    cluster = EchoCluster(config, n_clients=n_clients, n_client_machines=3)
    return cluster, cluster.run(warmup_ns=10_000.0, measure_ns=measure_ns)


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        EchoConfig(request="FETCH")
    with pytest.raises(ValueError):
        EchoConfig(response="FETCH")
    with pytest.raises(ValueError):
        EchoConfig(request="SEND", response="WRITE")


def test_optimization_levels_are_cumulative():
    base = EchoConfig.wr_wr()
    basic = base.at_optimization_level("basic")
    assert not basic.unreliable and not basic.unsignaled and not basic.inline
    unrel = base.at_optimization_level("+unreliable")
    assert unrel.unreliable and not unrel.unsignaled
    unsig = base.at_optimization_level("+unsignaled")
    assert unsig.unreliable and unsig.unsignaled and not unsig.inline
    full = base.at_optimization_level("+inlined")
    assert full.unreliable and full.unsignaled and full.inline
    with pytest.raises(ValueError):
        base.at_optimization_level("+teleport")


def test_transport_selection():
    assert EchoConfig.wr_wr().write_transport is Transport.UC
    assert EchoConfig.wr_wr(unreliable=False).write_transport is Transport.RC
    assert EchoConfig.wr_send().send_transport is Transport.UD
    assert EchoConfig.send_send().send_transport is Transport.UC
    assert EchoConfig.send_send(unreliable=False).send_transport is Transport.RC


# ---------------------------------------------------------------------------
# correctness: echoes return the exact bytes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "config",
    [
        EchoConfig.wr_wr(),
        EchoConfig.wr_send(),
        EchoConfig.send_send(),
        EchoConfig.send_send(send_over_ud=True),
        EchoConfig.wr_wr().at_optimization_level("basic"),
        EchoConfig.wr_send().at_optimization_level("+unsignaled"),
        EchoConfig.send_send().at_optimization_level("basic"),
    ],
    ids=[
        "wr-wr", "wr-send", "send-send", "send-send-ud",
        "wr-wr-basic", "wr-send-unsignaled", "send-send-basic",
    ],
)
def test_echo_payloads_roundtrip_exactly(config):
    cluster, result = run_echo(config)
    assert result.ops > 50
    assert result.extra["echo_mismatches"] == 0
    assert sum(c.echoed_bytes_ok for c in cluster.clients) > 50


def test_all_verb_pairs_make_progress_at_every_level():
    for preset in (EchoConfig.wr_wr(), EchoConfig.wr_send(), EchoConfig.send_send()):
        for level in ("basic", "+unreliable", "+unsignaled", "+inlined"):
            _cluster, result = run_echo(
                preset.at_optimization_level(level), n_clients=4, measure_ns=30_000.0
            )
            assert result.ops > 10, (preset, level)


# ---------------------------------------------------------------------------
# the paper's performance claims (Figure 5)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig5_rates():
    rates = {}
    for name, preset in (
        ("WR/WR", EchoConfig.wr_wr()),
        ("WR/SEND", EchoConfig.wr_send()),
        ("SEND/SEND", EchoConfig.send_send()),
    ):
        for level in ("basic", "+unreliable", "+unsignaled", "+inlined"):
            cluster = EchoCluster(
                preset.at_optimization_level(level), n_clients=48, n_client_machines=16
            )
            rates[(name, level)] = cluster.run().mops
    return rates


def test_optimizations_increase_throughput_monotonically(fig5_rates):
    for name in ("WR/WR", "WR/SEND", "SEND/SEND"):
        series = [
            fig5_rates[(name, level)]
            for level in ("basic", "+unreliable", "+unsignaled", "+inlined")
        ]
        assert series == sorted(series), (name, series)
        assert series[-1] > 2.0 * series[0]  # "increases significantly"


def test_wr_send_matches_wr_wr_at_peak(fig5_rates):
    """The WRITE/SEND hybrid gives WR/WR's throughput (Section 3.2.2),
    which is HERD's whole design argument."""
    wr_wr = fig5_rates[("WR/WR", "+inlined")]
    wr_send = fig5_rates[("WR/SEND", "+inlined")]
    assert abs(wr_send - wr_wr) / wr_wr < 0.1


def test_peak_echo_rates_match_paper_bands(fig5_rates):
    """Paper: WR/WR and WR/SEND ~26 Mops, SEND/SEND ~21 Mops."""
    assert 22.0 < fig5_rates[("WR/WR", "+inlined")] < 30.0
    assert 22.0 < fig5_rates[("WR/SEND", "+inlined")] < 30.0
    assert 17.0 < fig5_rates[("SEND/SEND", "+inlined")] < 23.0


def test_optimized_send_send_beats_three_quarters_of_read_rate(fig5_rates):
    """Section 3.2.2: optimized SEND/SEND echoes reach more than 3/4 of
    the peak inbound READ rate (26 Mops)."""
    assert fig5_rates[("SEND/SEND", "+inlined")] > 0.75 * 26.0


def test_footnote_send_send_over_ud_matches_uc():
    """The paper's footnote 1: 'Figure 5 uses SENDs over UC, but we
    have verified that similar throughput is possible using SENDs over
    UD.'"""
    uc = EchoCluster(
        EchoConfig.send_send(), n_clients=36, n_client_machines=12
    ).run().mops
    ud = EchoCluster(
        EchoConfig.send_send(send_over_ud=True), n_clients=36, n_client_machines=12
    ).run().mops
    assert abs(uc - ud) / uc < 0.15


# ---------------------------------------------------------------------------
# Figure 7: prefetching
# ---------------------------------------------------------------------------


def test_prefetch_lets_few_cores_reach_high_rate():
    """Figure 7: with prefetching, 5 cores deliver peak throughput even
    with N = 8 memory accesses; without it they fall far short."""
    base = EchoConfig.wr_send(memory_accesses=8, n_server_processes=5, window=8)
    with_prefetch = EchoCluster(
        base, n_clients=48, n_client_machines=16
    ).run().mops
    without_prefetch = EchoCluster(
        EchoConfig.wr_send(
            memory_accesses=8, prefetch=False, n_server_processes=5, window=8
        ),
        n_clients=48,
        n_client_machines=16,
    ).run().mops
    assert with_prefetch > 2.5 * without_prefetch
    assert with_prefetch > 15.0
