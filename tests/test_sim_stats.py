"""Tests for latency/rate measurement helpers."""

import pytest

from repro.sim import LatencyRecorder, RateMeter


def test_latency_recorder_filters_by_window():
    rec = LatencyRecorder(window_start=100.0, window_end=200.0)
    rec.record(50.0, 10.0)     # before window: dropped
    rec.record(150.0, 20.0)    # inside
    rec.record(250.0, 30.0)    # after: dropped
    assert rec.count == 1
    assert rec.mean() == 20.0


def test_latency_percentiles():
    rec = LatencyRecorder()
    for latency in range(1, 101):
        rec.record(0.0, float(latency))
    assert rec.percentile(50) == pytest.approx(50.5)
    assert rec.percentile(95) == pytest.approx(95.05)


def test_latency_summary_in_microseconds():
    rec = LatencyRecorder()
    rec.record(0.0, 5000.0)  # 5 us
    summary = rec.summary()
    assert summary["mean_us"] == pytest.approx(5.0)
    assert summary["p95_us"] == pytest.approx(5.0)


def test_latency_empty_summary_is_zero():
    assert LatencyRecorder().summary()["mean_us"] == 0.0
    assert LatencyRecorder().mean() == 0.0
    assert LatencyRecorder().percentile(95) == 0.0


def test_rate_meter_mops():
    meter = RateMeter(window_start=0.0, window_end=1e6)  # 1 ms window
    for i in range(1000):
        meter.record(float(i))
    assert meter.mops() == pytest.approx(1000 / 1e6 * 1e3)  # 1 Mops


def test_rate_meter_window_filter():
    meter = RateMeter(window_start=100.0, window_end=200.0)
    meter.record(50.0)
    meter.record(150.0)
    meter.record(150.0)
    meter.record(201.0)
    assert meter.count == 2
    assert meter.total == 4


def test_rate_meter_zero_window():
    meter = RateMeter(window_start=100.0, window_end=100.0)
    assert meter.mops() == 0.0


def test_rate_meter_override_end():
    meter = RateMeter(window_start=0.0, window_end=float("inf"))
    for _ in range(500):
        meter.record(10.0)
    assert meter.mops(window_end=1e3) == pytest.approx(500.0)


def test_rate_meter_windows_are_half_open():
    """An op completing exactly at a window boundary belongs to the
    *next* window — adjacent meters must not both count it."""
    first = RateMeter(window_start=0.0, window_end=100.0)
    second = RateMeter(window_start=100.0, window_end=200.0)
    for meter in (first, second):
        meter.record(100.0)
    assert first.count == 0
    assert second.count == 1


def test_latency_recorder_window_is_half_open():
    rec = LatencyRecorder(window_start=100.0, window_end=200.0)
    rec.record(100.0, 1.0)  # start boundary: included
    rec.record(200.0, 2.0)  # end boundary: excluded
    assert rec.count == 1
    assert rec.mean() == 1.0


def test_rate_meter_unbounded_window_raises():
    """mops() used to silently return 0.0 when the window never
    closed — a measurement bug that looked like zero throughput."""
    meter = RateMeter(window_start=0.0, window_end=float("inf"))
    meter.record(10.0)
    with pytest.raises(ValueError, match="unbounded"):
        meter.mops()
