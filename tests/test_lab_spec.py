"""Sweep-spec expansion, labels, and per-point seed derivation."""

import json

import pytest

from repro.faults.rng import derive_seed
from repro.lab import BUILTIN_SPECS, Axis, SweepSpec, resolve_spec


def test_grid_axes_cross_product_in_order():
    spec = SweepSpec(
        name="t", task="selftest",
        axes=[Axis("a", [1, 2]), Axis("b", ["x", "y"])],
    )
    combos = [(p.params["a"], p.params["b"]) for p in spec.points()]
    assert combos == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]
    assert [p.index for p in spec.points()] == [0, 1, 2, 3]


def test_zip_axes_advance_in_lockstep():
    spec = SweepSpec(
        name="t", task="selftest",
        axes=[
            Axis("a", [1, 2], mode="zip"),
            Axis("b", ["x", "y"], mode="zip"),
        ],
    )
    combos = [(p.params["a"], p.params["b"]) for p in spec.points()]
    assert combos == [(1, "x"), (2, "y")]


def test_grid_and_zip_compose():
    spec = SweepSpec(
        name="t", task="selftest",
        axes=[
            Axis("g", [10, 20]),
            Axis("a", [1, 2], mode="zip"),
            Axis("b", ["x", "y"], mode="zip"),
        ],
    )
    combos = [(p.params["g"], p.params["a"], p.params["b"]) for p in spec.points()]
    assert combos == [(10, 1, "x"), (10, 2, "y"), (20, 1, "x"), (20, 2, "y")]


def test_zip_axes_must_match_lengths():
    with pytest.raises(ValueError, match="zip axes"):
        SweepSpec(
            name="t", task="selftest",
            axes=[Axis("a", [1], mode="zip"), Axis("b", [1, 2], mode="zip")],
        )


def test_axis_validation():
    with pytest.raises(ValueError, match="mode"):
        Axis("a", [1], mode="diagonal")
    with pytest.raises(ValueError, match="no values"):
        Axis("a", [])
    with pytest.raises(ValueError, match="duplicate"):
        SweepSpec(name="t", task="selftest", axes=[Axis("a", [1]), Axis("a", [2])])
    with pytest.raises(ValueError, match="unknown task"):
        SweepSpec(name="t", task="teleport")


def test_base_params_flow_into_every_point():
    spec = SweepSpec(
        name="t", task="selftest", base={"value": 7.0}, axes=[Axis("a", [1, 2])]
    )
    assert all(p.params["value"] == 7.0 for p in spec.points())


def test_labels_are_stable_and_param_sorted():
    spec = SweepSpec(name="t", task="selftest", axes=[Axis("b", [1]), Axis("a", [2])])
    (point,) = spec.points()
    assert point.label == "selftest(a=2,b=1)"


def test_seeds_derive_from_spec_seed_and_label():
    spec = SweepSpec(name="t", task="selftest", axes=[Axis("a", [1, 2])], seed=5)
    points = spec.points()
    assert points[0].seed == derive_seed(5, points[0].label)
    assert points[0].seed != points[1].seed
    # a different spec seed reseeds every point
    reseeded = SweepSpec(
        name="t", task="selftest", axes=[Axis("a", [1, 2])], seed=6
    ).points()
    assert reseeded[0].seed != points[0].seed


def test_explicit_seed_param_wins():
    spec = SweepSpec(
        name="t", task="selftest", axes=[Axis("seed", [3, 4])], seed=99
    )
    assert [p.seed for p in spec.points()] == [3, 4]


def test_adding_an_axis_value_keeps_existing_seeds():
    # seeds key on the label, not the index, so growing a sweep never
    # invalidates the cached prefix
    small = SweepSpec(name="t", task="selftest", axes=[Axis("a", [1, 2])])
    grown = SweepSpec(name="t", task="selftest", axes=[Axis("a", [1, 2, 3])])
    by_label = {p.label: p.seed for p in grown.points()}
    for point in small.points():
        assert by_label[point.label] == point.seed


def test_dict_roundtrip(tmp_path):
    spec = SweepSpec(
        name="rt", task="selftest", base={"value": 2.0},
        axes=[Axis("a", [1, 2], mode="zip")], seed=3, description="d",
    )
    clone = SweepSpec.from_dict(spec.to_dict())
    assert [p.label for p in clone.points()] == [p.label for p in spec.points()]
    assert [p.seed for p in clone.points()] == [p.seed for p in spec.points()]
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    assert SweepSpec.from_file(str(path)).name == "rt"
    with pytest.raises(ValueError, match="missing required field"):
        SweepSpec.from_dict({"name": "x"})


def test_resolve_spec():
    assert resolve_spec("smoke").name == "smoke"
    with pytest.raises(ValueError, match="unknown spec"):
        resolve_spec("nope")


def test_builtin_specs_expand():
    for name, factory in BUILTIN_SPECS.items():
        spec = factory()
        points = spec.points()
        assert points, name
        assert len({p.label for p in points}) == len(points), name
