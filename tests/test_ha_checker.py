"""The linearizability checker against hand-built histories.

Each test constructs a tiny per-key history by hand — invocation and
response times chosen so exactly one verdict is defensible — and
asserts the checker reaches it.  These are the checker's ground truth:
if it cannot tell a lost update from a legal interleaving on five ops,
its verdict on a 10k-op chaos run means nothing.
"""

import pytest

from repro.ha import (
    HaOp,
    ReplicaMap,
    check_histories,
    check_key,
    lost_acked_writes,
    split_brain,
)
from repro.ha.checker import final_read

K = b"k" * 16
A, B, C = b"va", b"vb", b"vc"


def w(client, value, invoke, respond, ok=True):
    return HaOp(client=client, kind="w", value=value, invoke=invoke, respond=respond, ok=ok)


def r(client, value, invoke, respond):
    return HaOp(client=client, kind="r", value=value, invoke=invoke, respond=respond)


# -- check_key ---------------------------------------------------------


def test_sequential_history_linearizable():
    ops = [w(0, A, 0, 1), r(1, A, 2, 3), w(0, B, 4, 5), r(1, B, 6, 7)]
    assert check_key(ops, initial=None) is None


def test_read_of_initial_value():
    assert check_key([r(0, A, 0, 1)], initial=A) is None
    assert check_key([r(0, A, 0, 1)], initial=B) is not None


def test_overlapping_writes_either_order():
    # w(A) and w(B) overlap: both final values are explainable
    for last in (A, B):
        ops = [w(0, A, 0, 10), w(1, B, 5, 8), r(2, last, 20, 21)]
        assert check_key(ops, initial=None) is None


def test_lost_update_detected():
    # w(B) is invoked after w(A)'s value was already visible (the read
    # at 5..6 saw A), so B must linearize after A — yet later reads see
    # A again: B's acked update was lost
    ops = [
        w(0, A, 0, 10),
        r(2, A, 5, 6),
        w(1, B, 7, 9),
        r(2, A, 20, 21),
    ]
    assert check_key(ops, initial=None) is not None


def test_stale_read_detected():
    # a read strictly after w(B) completed must not return the older A
    ops = [w(0, A, 0, 1), w(1, B, 2, 3), r(2, A, 10, 11)]
    assert check_key(ops, initial=None) is not None


def test_stale_read_allowed_while_write_in_flight():
    # the same read is fine if it overlaps the write (linearizes first)
    ops = [w(0, A, 0, 1), w(1, B, 2, 30), r(2, A, 10, 11)]
    assert check_key(ops, initial=None) is None


def test_pending_write_may_or_may_not_take_effect():
    # w(B) never responded (primary died): both outcomes are legal
    assert check_key([w(0, A, 0, 1), w(1, B, 2, None), r(2, B, 10, 11)]) is None
    assert check_key([w(0, A, 0, 1), w(1, B, 2, None), r(2, A, 10, 11)]) is None
    # ...but it cannot take effect *before* its invocation
    assert check_key([r(2, B, 0, 1), w(1, B, 2, None)]) is not None


def test_failed_write_treated_as_pending():
    ops = [w(0, A, 0, 1), w(1, B, 2, 3, ok=False), r(2, A, 10, 11)]
    assert check_key(ops, initial=None) is None


def test_respond_before_invoke_rejected():
    assert "before it is invoked" in check_key([w(0, A, 5, 1)])


# -- check_histories and the synthetic final read ----------------------


def test_final_read_exposes_silently_lost_write():
    # no client ever reads after w(B), but the final store says A:
    # the synthetic final read turns that into a violation
    histories = {K: [w(0, A, 0, 1), w(1, B, 2, 3)]}
    assert check_histories(histories, {K: None}, {K: B}) == []
    bad = check_histories(histories, {K: None}, {K: A})
    assert len(bad) == 1 and "not linearizable" in bad[0]


def test_final_read_is_after_every_op():
    ops = [w(0, A, 0, 100), r(1, A, 5, 6)]
    synthetic = final_read(ops, A)
    assert synthetic.invoke > 100 and synthetic.respond > synthetic.invoke
    assert synthetic.client == -1


def test_check_histories_caps_violations():
    histories = {
        bytes([i]) * 16: [w(0, A, 0, 1), r(1, B, 2, 3)] for i in range(12)
    }
    out = check_histories(histories, {}, {k: A for k in histories}, max_violations=3)
    assert len(out) == 4 and out[-1].startswith("...")


# -- lost_acked_writes (the sound witness) -----------------------------


def test_lost_acked_writes_counts_provable_loss():
    histories = {K: [w(0, A, 0, 1), w(1, B, 5, 6)]}
    assert lost_acked_writes(histories, {K: B}) == 0
    assert lost_acked_writes(histories, {K: A}) == 1


def test_lost_acked_writes_is_conservative_about_overlap():
    # w(B) overlaps w(A): either could be last, so no provable loss
    histories = {K: [w(0, A, 0, 10), w(1, B, 5, 8)]}
    assert lost_acked_writes(histories, {K: A}) == 0
    assert lost_acked_writes(histories, {K: B}) == 0


# -- split_brain -------------------------------------------------------


def test_split_brain_flags_two_ackers_in_one_epoch():
    witness = {(0, 0): {0}, (0, 1): {1, 0}, (1, 0): {0}}
    out = split_brain(witness)
    assert len(out) == 1
    assert "partition 0" in out[0] and "epoch 1" in out[0]
    assert split_brain({(0, 0): {0}, (0, 1): {1}}) == []


# -- ReplicaMap --------------------------------------------------------


def test_replica_map_update_is_epoch_gated():
    m = ReplicaMap(n_partitions=2, replication_factor=3)
    assert m.primary == [0, 0] and m.epoch == [0, 0]
    assert m.update(0, primary=1, epoch=1) is True
    assert m.primary[0] == 1 and m.primary[1] == 0
    # stale config (epoch 0 again) must be ignored
    assert m.update(0, primary=2, epoch=1) is False
    assert m.primary[0] == 1
    # same primary, newer epoch: adopted but reports no routing change
    assert m.update(0, primary=1, epoch=2) is False
    assert m.epoch[0] == 2


def test_replica_map_lane_addressing():
    m = ReplicaMap(n_partitions=4, replication_factor=2)
    assert m.lane(2, 4) == 2  # replica 0: lane == partition
    m.update(2, primary=1, epoch=1)
    assert m.lane(2, 4) == 4 + 2  # replica r serves lanes r*n_partitions+p
    with pytest.raises(ValueError):
        m.update(0, primary=5, epoch=9)


def test_haop_rejects_unknown_kind():
    with pytest.raises(ValueError):
        HaOp(client=0, kind="x", value=None, invoke=0.0)
