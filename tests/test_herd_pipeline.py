"""Tests for HERD's prefetch pipeline bookkeeping."""

import pytest

from repro.herd.pipeline import RequestPipeline


def test_depth_validation():
    with pytest.raises(ValueError):
        RequestPipeline(depth=0)


def test_fills_before_completing():
    p = RequestPipeline(depth=2)
    assert p.push("a") is None      # stage 1
    assert p.push("b") is None      # a -> stage 2, b -> stage 1
    assert p.push("c") == "a"       # a completes
    assert p.push("d") == "b"


def test_completion_order_is_fifo():
    p = RequestPipeline(depth=2)
    out = [p.push(x) for x in "abcdef"]
    assert out == [None, None, "a", "b", "c", "d"]


def test_noop_flushes_held_requests():
    """Section 4.1.1: no-ops unblock the pipeline when no new requests
    arrive, avoiding the server/client window deadlock."""
    p = RequestPipeline(depth=2)
    p.push("a")
    p.push("b")
    assert p.push(None) == "a"
    assert p.push(None) == "b"
    assert p.push(None) is None
    assert p.noops == 3
    assert not p


def test_depth_one_passes_through_with_lag_one():
    p = RequestPipeline(depth=1)
    assert p.push("a") is None
    assert p.push("b") == "a"


def test_len_and_bool():
    p = RequestPipeline(depth=2)
    assert len(p) == 0 and not p
    p.push("a")
    assert len(p) == 1 and p
