"""Failure injection: HERD's unreliable transports under packet loss.

Section 2.2.3: IB/RoCE are lossless in normal operation (credit-based
flow control); loss comes only from bit errors and hardware failures.
HERD therefore "sacrifices transport-level retransmission for fast
common case performance at the cost of rare application-level retries".
These tests inject bit errors and exercise that recovery path.
"""

import pytest

from repro.herd import HerdCluster, HerdConfig
from repro.workloads import Workload


def lossy_cluster(retry_timeout_ns, loss_rate, toward_server_only=True):
    cluster = HerdCluster(
        HerdConfig(n_server_processes=2, window=2, retry_timeout_ns=retry_timeout_ns),
        n_client_machines=2,
        seed=11,
    )
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=256))
    cluster.preload(range(256), 32)

    if toward_server_only:
        cluster.fabric.loss_filter = (
            lambda src, dst: loss_rate if dst == "server" else 0.0
        )
    else:
        cluster.fabric.bit_error_rate = loss_rate
    return cluster


def test_lossless_run_never_retries():
    cluster = lossy_cluster(retry_timeout_ns=50_000.0, loss_rate=0.0)
    result = cluster.run(warmup_ns=0, measure_ns=150_000)
    assert result.ops > 100
    assert sum(c.retries for c in cluster.clients) == 0


def test_without_retries_lost_requests_stall_the_window():
    """UC drops are silent: with no application-level retry, every lost
    request permanently occupies a window slot."""
    cluster = lossy_cluster(retry_timeout_ns=None, loss_rate=0.05)
    result = cluster.run(warmup_ns=0, measure_ns=400_000)
    # 4 clients x window 2 = 8 slots; each has ~5% loss per op, so the
    # run grinds to a halt long before the horizon.
    stalled = [c for c in cluster.clients if c.outstanding == cluster.config.window]
    assert stalled, "expected at least one fully stalled client window"


def test_retries_recover_lost_requests():
    cluster = lossy_cluster(retry_timeout_ns=40_000.0, loss_rate=0.05)
    result = cluster.run(warmup_ns=0, measure_ns=600_000)
    retries = sum(c.retries for c in cluster.clients)
    assert retries > 0
    assert cluster.fabric.dropped > 0
    # Clients keep making progress through the loss.
    assert result.ops > 300
    assert sum(c.failures for c in cluster.clients) == 0


def test_retries_recover_lost_responses_too():
    """Responses (UD SENDs) can also be dropped; re-writing the request
    makes the server re-execute and respond again."""
    cluster = HerdCluster(
        HerdConfig(n_server_processes=2, window=2, retry_timeout_ns=40_000.0),
        n_client_machines=2,
        seed=13,
    )
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=256))
    cluster.preload(range(256), 32)
    cluster.fabric.loss_filter = (
        lambda src, dst: 0.05 if src == "server" else 0.0
    )
    result = cluster.run(warmup_ns=0, measure_ns=600_000)
    assert sum(c.retries for c in cluster.clients) > 0
    assert result.ops > 300


def test_stored_data_survives_loss_and_retries():
    """PUT retries are idempotent: the store ends up correct."""
    from repro.herd.config import partition_of
    from repro.workloads.ycsb import keyhash, value_for

    cluster = lossy_cluster(retry_timeout_ns=40_000.0, loss_rate=0.03)
    cluster.run(warmup_ns=0, measure_ns=600_000)
    checked = 0
    for item in range(256):
        kh = keyhash(item)
        server = cluster.servers[partition_of(kh, len(cluster.servers))]
        value = server.store.get(kh)
        if value is not None:
            assert value == value_for(item, 32)
            checked += 1
    assert checked > 200
