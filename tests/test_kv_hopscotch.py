"""Tests for the hopscotch table (FaRM-KV's backend)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv.hopscotch import HopscotchFullError, HopscotchTable


def key(i):
    return ("hs-%06d" % i).encode().ljust(16, b"\x00")


@pytest.fixture(params=[True, False], ids=["inline", "var"])
def table(request):
    return HopscotchTable(n_slots=1024, value_capacity=64, inline=request.param)


def test_put_get_roundtrip(table):
    table.put(key(1), b"hello")
    assert table.get(key(1)) == b"hello"


def test_missing_key(table):
    assert table.get(key(9)) is None


def test_overwrite(table):
    table.put(key(1), b"one")
    table.put(key(1), b"two")
    assert table.get(key(1)) == b"two"
    assert table.items == 1


def test_delete(table):
    table.put(key(1), b"v")
    assert table.delete(key(1))
    assert table.get(key(1)) is None
    assert not table.delete(key(1))


def test_neighborhood_is_six():
    """The paper sets the neighborhood size to 6 (Section 5.1.2)."""
    assert HopscotchTable.NEIGHBORHOOD == 6


def test_neighborhood_invariant_holds_under_load():
    """Every key must live within 6 slots of its home bucket — that is
    the guarantee that makes single-READ GETs possible."""
    t = HopscotchTable(n_slots=256, value_capacity=16, inline=True)
    stored = []
    try:
        for i in range(1000):
            t.put(key(i), b"v%03d" % (i % 1000))
            stored.append(i)
    except HopscotchFullError:
        pass
    assert len(stored) > 100
    for i in stored:
        home = t.home_of(key(i))
        found = False
        for d in range(t.NEIGHBORHOOD):
            skey, _vlen, occ, _ptr = t._load((home + d) % t.n_slots)
            if occ and skey == key(i):
                found = True
                break
        assert found, "key %d outside its neighborhood" % i


def test_displacement_counter_increments():
    t = HopscotchTable(n_slots=128, value_capacity=8, inline=True)
    try:
        for i in range(128):
            t.put(key(i), b"v")
    except HopscotchFullError:
        pass
    assert t.displacements > 0


def test_inline_get_is_single_access_var_is_two():
    """FaRM-em: 1 READ (inline); FaRM-em-VAR: 2 READs (Section 5.1.2)."""
    inline = HopscotchTable(inline=True)
    var = HopscotchTable(inline=False)
    inline.put(key(1), b"v")
    var.put(key(1), b"v")
    inline.get(key(1))
    var.get(key(1))
    assert inline.last_op_accesses == 1
    assert var.last_op_accesses == 2


def test_neighborhood_span_sizes_match_paper_formulas():
    """Inline neighborhood bytes ~ 6*(SK+SV); VAR ~ 6*(SK+SP)."""
    sv = 32
    inline = HopscotchTable(value_capacity=sv, inline=True)
    var = HopscotchTable(inline=False)
    _off, inline_len = inline.neighborhood_span(key(1))
    _off, var_len = var.neighborhood_span(key(1))
    assert inline_len == 6 * (20 + sv)  # 16B key + 4B header + value
    assert var_len == 6 * 24            # 16B key + 4B header + 4B pointer
    assert var_len < inline_len


def test_remote_parse_of_neighborhood_inline():
    """A FaRM client READs the 6 slots and decodes them locally."""
    t = HopscotchTable(n_slots=512, value_capacity=32, inline=True)
    t.put(key(3), b"inline-value")
    data = t.read_neighborhood(key(3))
    value, ptr = t.parse_neighborhood(key(3), data)
    assert value == b"inline-value"
    assert ptr == -1


def test_remote_parse_of_neighborhood_var_then_extent():
    t = HopscotchTable(n_slots=512, inline=False)
    t.put(key(3), b"out-of-table")
    data = t.read_neighborhood(key(3))
    value, ptr = t.parse_neighborhood(key(3), data)
    assert value == b""
    assert ptr >= 0
    assert t.read_extent(ptr, len(b"out-of-table")) == b"out-of-table"


def test_remote_parse_missing_key():
    t = HopscotchTable()
    assert t.parse_neighborhood(key(1), t.read_neighborhood(key(1))) is None


def test_oversized_inline_value_rejected():
    t = HopscotchTable(value_capacity=8, inline=True)
    with pytest.raises(ValueError):
        t.put(key(1), b"x" * 9)


def test_wrap_around_neighborhood():
    """Neighborhoods that straddle the end of the table still work."""
    t = HopscotchTable(n_slots=64, value_capacity=8, inline=True)
    # Find a key homed in the last few slots.
    k = next(key(i) for i in range(10000) if t.home_of(key(i)) >= t.n_slots - 2)
    t.put(k, b"wrap")
    assert t.get(k) == b"wrap"
    assert t.parse_neighborhood(k, t.read_neighborhood(k))[0] == b"wrap"


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=300),
        st.binary(min_size=1, max_size=16),
        min_size=1,
        max_size=150,
    )
)
def test_matches_dict_model(model_ops):
    t = HopscotchTable(n_slots=2048, value_capacity=16, inline=True)
    for i, value in model_ops.items():
        t.put(key(i), value)
    for i, value in model_ops.items():
        assert t.get(key(i)) == value
    assert t.items == len(model_ops)
