"""Regression tests: the server's response staging buffer.

Un-inlined responses are DMA-read out of a 64 KiB staging MR by the
NIC *after* ``post_send`` returns, and the sends are unsignaled — no
CQE ever says "fetched".  The cursor used to wrap blindly, silently
overwriting payloads still awaiting their DMA fetch.  Now the server
tracks in-flight extents, retires them from the NIC's fetch callback,
and raises a clear error instead of corrupting a response.
"""

import pytest

from repro.herd import HerdCluster, HerdConfig
from repro.herd.region import RequestRegion
from repro.herd.server import _STAGING_BYTES, HerdServerProcess
from repro.hw import APT, Fabric, Machine
from repro.sim import Simulator
from repro.verbs import RdmaDevice, RecvRequest, Transport
from repro.workloads import Workload


def make_server():
    sim = Simulator()
    fabric = Fabric(sim, APT)
    server_dev = RdmaDevice(Machine(sim, fabric, "server"))
    client_dev = RdmaDevice(Machine(sim, fabric, "cm0"))
    client_qp = client_dev.create_qp(Transport.UD)
    inbox = client_dev.register_memory(4096)
    client_dev.post_recv(client_qp, RecvRequest(wr_id=0, local=(inbox, 0, 4096)))
    config = HerdConfig(n_server_processes=1, window=4)
    region = RequestRegion(sim, server_dev, config, n_clients=1)
    proc = HerdServerProcess(
        0, server_dev, region, config, [("cm0", client_qp.qpn)]
    )
    return sim, proc


def test_wrap_into_inflight_extent_raises():
    """Pre-fix, the wrapped cursor silently reused offset 0 while the
    first response was still awaiting its DMA fetch."""
    _sim, proc = make_server()
    proc._stage(b"a" * 40_000)
    with pytest.raises(RuntimeError, match="staging buffer exhausted"):
        proc._stage(b"b" * 40_000)


def test_oversize_payload_raises_value_error():
    _sim, proc = make_server()
    with pytest.raises(ValueError, match="exceeds the %d B staging" % _STAGING_BYTES):
        proc._stage(b"x" * (_STAGING_BYTES + 1))


def test_retired_extent_can_be_reused():
    _sim, proc = make_server()
    offset = proc._stage(b"a" * 40_000)
    assert proc._staging_inflight == [(0, 40_000)]
    proc._staging_inflight.remove((offset, offset + 40_000))  # NIC fetched it
    assert proc._stage(b"b" * 40_000) == 0  # wraps onto the freed extent


def test_dma_fetch_releases_extent_end_to_end():
    """An un-inlined response's extent retires once the NIC snapshots
    the payload — without any CQE (the send is unsignaled)."""
    sim, proc = make_server()
    payload = b"v" * 300  # above the 144 B inline cutoff
    sim.process(proc._respond(0, payload))
    sim.run_until_idle()
    assert proc._staging_inflight == []
    assert proc._staging.read(0, 300) == payload


def test_cluster_with_large_values_wraps_and_releases():
    """A sustained run of >144 B values cycles the staging ring many
    times over; every extent must retire and no send may fail."""
    cluster = HerdCluster(
        HerdConfig(n_server_processes=2, window=2),
        n_client_machines=2,
        seed=7,
    )
    cluster.add_clients(
        4, Workload(get_fraction=0.5, value_size=900, n_keys=256)
    )
    cluster.preload(range(256), 900)
    result = cluster.run(warmup_ns=0, measure_ns=200_000)
    assert result.ops > 100
    assert sum(c.failures for c in cluster.clients) == 0
    for server in cluster.servers:
        assert server._staging_inflight == []
