"""Tests for the Pilaf-em-OPT and FaRM-em baseline systems."""

import pytest

from repro.baselines import FarmCluster, FarmConfig, PilafCluster, PilafConfig
from repro.workloads import Workload


def pilaf(get_fraction=0.95, n_clients=8, **cfg):
    config = PilafConfig(**cfg)
    return PilafCluster(
        config,
        Workload(get_fraction=get_fraction, value_size=config.value_bytes),
        n_clients=n_clients,
        n_client_machines=4,
    )


def farm(get_fraction=0.95, n_clients=8, **cfg):
    config = FarmConfig(**cfg)
    return FarmCluster(
        config,
        Workload(get_fraction=get_fraction, value_size=config.value_bytes),
        n_clients=n_clients,
        n_client_machines=4,
    )


# ---------------------------------------------------------------------------
# Pilaf
# ---------------------------------------------------------------------------


def test_pilaf_makes_progress_on_mixed_workload():
    cluster = pilaf(get_fraction=0.5)
    result = cluster.run(warmup_ns=0, measure_ns=80_000)
    assert result.ops > 50
    gets = sum(c.gets for c in cluster.clients)
    puts = sum(c.puts for c in cluster.clients)
    assert gets > 0 and puts > 0


def test_pilaf_average_probes_near_1_6():
    """Section 5.1.1: 1.6 bucket READs per GET on average."""
    cluster = pilaf(get_fraction=1.0)
    result = cluster.run(warmup_ns=0, measure_ns=120_000)
    assert 1.4 <= result.extra["avg_probes"] <= 1.8


def test_pilaf_gets_issue_reads_not_server_work():
    """GETs bypass the server CPU entirely: only PUTs are handled."""
    cluster = pilaf(get_fraction=1.0)
    cluster.run(warmup_ns=0, measure_ns=60_000)
    assert cluster.server_device.reads_served > 100
    assert sum(s.puts_handled for s in cluster.servers) == 0


def test_pilaf_puts_are_send_recv_roundtrips():
    cluster = pilaf(get_fraction=0.0)
    cluster.run(warmup_ns=0, measure_ns=60_000)
    assert cluster.server_device.sends_received > 50
    assert sum(s.puts_handled for s in cluster.servers) > 50
    # Every response found a pre-posted RECV.
    for client in cluster.clients:
        assert client.qp.rnr_drops == 0


def test_pilaf_server_never_runs_out_of_recvs():
    cluster = pilaf(get_fraction=0.0)
    cluster.run(warmup_ns=0, measure_ns=60_000)
    for qp in cluster.server_device.qps.values():
        assert qp.rnr_drops == 0


def test_pilaf_get_throughput_band():
    """Paper: 9.9 Mops GETs (2.6 READs each against a 26 Mops cap)."""
    cluster = PilafCluster(
        PilafConfig(value_bytes=32), Workload(get_fraction=1.0, value_size=32)
    )
    result = cluster.run()
    assert 8.0 < result.mops < 12.0


# ---------------------------------------------------------------------------
# FaRM
# ---------------------------------------------------------------------------


def test_farm_inline_get_is_one_read_var_is_two():
    em = farm(get_fraction=1.0, inline_values=True)
    em.run(warmup_ns=0, measure_ns=50_000)
    gets = sum(c.gets for c in em.clients)
    assert em.server_device.reads_served == pytest.approx(gets, abs=em.config.window * len(em.clients))

    var = farm(get_fraction=1.0, inline_values=False)
    var.run(warmup_ns=0, measure_ns=50_000)
    var_gets = sum(c.gets for c in var.clients)
    assert var.server_device.reads_served >= 1.9 * var_gets


def test_farm_neighborhood_read_sizes():
    """GET READ is 6*(SK+SV) inline, 6*(SK+SP) out-of-table."""
    assert FarmConfig(value_bytes=32).neighborhood_read_bytes == 6 * 48
    assert FarmConfig(value_bytes=32, inline_values=False).neighborhood_read_bytes == 6 * 24


def test_farm_put_uses_writes_both_ways():
    cluster = farm(get_fraction=0.0)
    cluster.run(warmup_ns=0, measure_ns=60_000)
    assert cluster.server_device.writes_received > 50   # requests in
    client_writes = sum(c.device.writes_received for c in cluster.clients)
    assert client_writes > 50                            # acks back
    assert cluster.server_device.sends_received == 0     # no SENDs at all


def test_farm_put_server_work_counted():
    cluster = farm(get_fraction=0.0)
    result = cluster.run(warmup_ns=0, measure_ns=60_000)
    assert result.extra["puts_handled"] > 50


def test_farm_em_beats_var_on_gets():
    """The second RTT costs VAR mode real throughput (Figure 9)."""
    em = FarmCluster(
        FarmConfig(value_bytes=32), Workload(get_fraction=1.0, value_size=32)
    ).run()
    var = FarmCluster(
        FarmConfig(value_bytes=32, inline_values=False),
        Workload(get_fraction=1.0, value_size=32),
    ).run()
    assert em.mops > 1.15 * var.mops


def test_farm_get_throughput_band():
    """Paper: 17.2 Mops for FaRM-em GETs with 48-byte items."""
    result = FarmCluster(
        FarmConfig(value_bytes=32), Workload(get_fraction=1.0, value_size=32)
    ).run()
    assert 14.0 < result.mops < 20.0


def test_farm_throughput_collapses_with_large_inline_values():
    """Figure 10: FaRM-em's READ size grows as 6*(SV+16), so large
    values crush its GET throughput."""
    small = FarmCluster(
        FarmConfig(value_bytes=16), Workload(get_fraction=1.0, value_size=16)
    ).run()
    large = FarmCluster(
        FarmConfig(value_bytes=256), Workload(get_fraction=1.0, value_size=256)
    ).run()
    assert small.mops > 2.0 * large.mops


def test_emulated_systems_put_faster_than_get():
    """Figure 9's surprise: emulated Pilaf/FaRM PUTs outpace their own
    GETs, because small messages beat multiple/large READs."""
    get_side = PilafCluster(
        PilafConfig(value_bytes=32), Workload(get_fraction=1.0, value_size=32)
    ).run()
    put_side = PilafCluster(
        PilafConfig(value_bytes=32), Workload(get_fraction=0.0, value_size=32)
    ).run()
    assert put_side.mops > get_side.mops
