"""The remote atomics verbs: semantics, per-device serialization, replay.

ATOMIC_CMP_AND_SWP and ATOMIC_FETCH_ADD are the primitives the
one-sided transaction dataplane (repro.txn) locks and tickets with, so
this file proves the properties that dataplane leans on: quadword
read-modify-writes are serialized across *all* requesters of a device,
the original value always comes back, and a lossy fabric cannot make
an atomic execute twice.
"""

import pytest

from repro.faults import FaultPlan
from repro.hw import APT, Fabric, Machine
from repro.sim import Simulator
from repro.verbs import (
    Opcode,
    RdmaDevice,
    Transport,
    VerbError,
    WorkRequest,
    connect_pair,
)


def make_world(n_clients=1, profile=APT):
    sim = Simulator()
    fabric = Fabric(sim, profile)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    clients = [RdmaDevice(Machine(sim, fabric, "c%d" % i)) for i in range(n_clients)]
    return sim, fabric, server, clients


def put_u64(mr, offset, value):
    mr.write(offset, value.to_bytes(8, "little"))


def get_u64(mr, offset):
    return int.from_bytes(mr.read(offset, 8), "little")


# ---------------------------------------------------------------------------
# single-op semantics
# ---------------------------------------------------------------------------


def test_cas_success_swaps_and_returns_original():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(64)
    sink = client.register_memory(64)
    put_u64(mr, 0, 41)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(
        cqp,
        WorkRequest.cmp_swap(
            raddr=mr.addr, rkey=mr.rkey, compare=41, swap=99, local=(sink, 0, 8)
        ),
    )
    sim.run_until_idle()
    assert get_u64(mr, 0) == 99          # swapped
    assert get_u64(sink, 0) == 41        # original returned
    (cqe,) = cqp.send_cq.poll()
    assert cqe.opcode is Opcode.ATOMIC_CS
    assert server.atomics_served == 1


def test_cas_mismatch_leaves_memory_untouched_but_still_returns_original():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(64)
    sink = client.register_memory(64)
    put_u64(mr, 0, 7)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(
        cqp,
        WorkRequest.cmp_swap(
            raddr=mr.addr, rkey=mr.rkey, compare=0, swap=99, local=(sink, 0, 8)
        ),
    )
    sim.run_until_idle()
    assert get_u64(mr, 0) == 7           # compare failed: no mutation
    assert get_u64(sink, 0) == 7         # loser still learns the value
    assert server.atomics_served == 1    # a failed CAS is still an RMW


def test_fetch_add_adds_and_wraps_at_u64():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(64)
    sink = client.register_memory(64)
    put_u64(mr, 0, 2**64 - 1)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(
        cqp,
        WorkRequest.fetch_add(raddr=mr.addr, rkey=mr.rkey, add=3, local=(sink, 0, 8)),
    )
    sim.run_until_idle()
    assert get_u64(mr, 0) == 2           # (2**64 - 1 + 3) mod 2**64
    assert get_u64(sink, 0) == 2**64 - 1


# ---------------------------------------------------------------------------
# operand validation and Table 1
# ---------------------------------------------------------------------------


def test_atomic_constructors_reject_bad_operands():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(64)
    sink = client.register_memory(64)
    with pytest.raises(VerbError, match="local sink"):
        WorkRequest.cmp_swap(raddr=mr.addr, rkey=mr.rkey, compare=0, swap=1, local=None)
    with pytest.raises(VerbError, match="exactly 8 bytes"):
        WorkRequest.fetch_add(raddr=mr.addr, rkey=mr.rkey, add=1, local=(sink, 0, 4))
    with pytest.raises(VerbError, match="aligned"):
        WorkRequest.cmp_swap(
            raddr=mr.addr + 3, rkey=mr.rkey, compare=0, swap=1, local=(sink, 0, 8)
        )


def test_hand_built_atomic_revalidated_at_post_time():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(64)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    wr = WorkRequest(Opcode.ATOMIC_FA, raddr=mr.addr, rkey=mr.rkey, local=None)
    with pytest.raises(VerbError, match="local sink"):
        client.post_send(cqp, wr)


def test_atomics_cannot_be_inlined():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(64)
    sink = client.register_memory(64)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    wr = WorkRequest.cmp_swap(
        raddr=mr.addr, rkey=mr.rkey, compare=0, swap=1, local=(sink, 0, 8)
    )
    wr.inline = True
    with pytest.raises(VerbError, match="inlined"):
        client.post_send(cqp, wr)


def test_atomics_need_a_reliable_transport():
    # Table 1: the responder must be able to replay a lost response
    # without re-executing the RMW, which needs reliable delivery.
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(64)
    sink = client.register_memory(64)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    wr = WorkRequest.fetch_add(raddr=mr.addr, rkey=mr.rkey, add=1, local=(sink, 0, 8))
    with pytest.raises(VerbError, match="Table 1"):
        client.post_send(cqp, wr)


# ---------------------------------------------------------------------------
# per-device serialization under concurrent issuers
# ---------------------------------------------------------------------------


def test_concurrent_fetch_adds_from_two_devices_never_lose_an_update():
    """2N FETCH_ADDs racing from two requesters yield 2N distinct originals.

    This is the atomicity proof: if any two RMWs overlapped, they would
    read the same original and the final counter would fall short.
    """
    n = 8
    sim, fabric, server, clients = make_world(n_clients=2)
    mr = server.register_memory(64)
    sinks, qps = [], []
    for client in clients:
        sink = client.register_memory(8 * n)
        _sqp, cqp = connect_pair(server, client, Transport.RC)
        sinks.append(sink)
        qps.append(cqp)
        for i in range(n):
            client.post_send(
                cqp,
                WorkRequest.fetch_add(
                    raddr=mr.addr, rkey=mr.rkey, add=1, local=(sink, 8 * i, 8)
                ),
            )
    sim.run_until_idle()
    assert get_u64(mr, 0) == 2 * n
    originals = [get_u64(sink, 8 * i) for sink in sinks for i in range(n)]
    assert sorted(originals) == list(range(2 * n))
    assert server.atomics_served == 2 * n


def test_concurrent_cas_elects_exactly_one_winner():
    sim, fabric, server, clients = make_world(n_clients=4)
    mr = server.register_memory(64)
    sinks = []
    for cid, client in enumerate(clients):
        sink = client.register_memory(8)
        _sqp, cqp = connect_pair(server, client, Transport.RC)
        sinks.append(sink)
        client.post_send(
            cqp,
            WorkRequest.cmp_swap(
                raddr=mr.addr, rkey=mr.rkey, compare=0, swap=cid + 1,
                local=(sink, 0, 8),
            ),
        )
    sim.run_until_idle()
    originals = [get_u64(sink, 0) for sink in sinks]
    winners = [cid for cid, orig in enumerate(originals) if orig == 0]
    assert len(winners) == 1             # the lock has exactly one holder
    assert get_u64(mr, 0) == winners[0] + 1
    # every loser observed some earlier holder, never a torn value
    held = {0, winners[0] + 1}
    assert all(orig in held for orig in originals)


def test_simultaneous_atomics_pay_the_locked_pcie_window_back_to_back():
    # Two RMWs posted at t=0 from different machines must not overlap
    # the responder's locked PCIe occupancy: their completions are at
    # least one pcie_atomic_ns apart.
    sim, fabric, server, clients = make_world(n_clients=2)
    mr = server.register_memory(64)
    stamps = []
    for client in clients:
        sink = client.register_memory(8)
        _sqp, cqp = connect_pair(server, client, Transport.RC)
        client.post_send(
            cqp,
            WorkRequest.fetch_add(raddr=mr.addr, rkey=mr.rkey, add=1, local=(sink, 0, 8)),
        )
        stamps.append(cqp.send_cq)
    sim.run_until_idle()
    times = sorted(cq.poll()[0].timestamp for cq in stamps)
    assert times[1] - times[0] >= APT.pcie_atomic_ns


def test_atomics_share_the_read_credit_window_and_drain():
    # More outstanding atomics than non-posted slots: the excess queues
    # behind returned credits and every RMW still lands exactly once.
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(64)
    n = 24  # > the 16 outstanding-READ credits
    sink = client.register_memory(8 * n)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    for i in range(n):
        client.post_send(
            cqp,
            WorkRequest.fetch_add(
                raddr=mr.addr, rkey=mr.rkey, add=1, local=(sink, 8 * i, 8)
            ),
        )
    sim.run_until_idle()
    assert get_u64(mr, 0) == n
    assert sorted(get_u64(sink, 8 * i) for i in range(n)) == list(range(n))


# ---------------------------------------------------------------------------
# lossy fabric: retransmits must not re-execute the RMW
# ---------------------------------------------------------------------------


def test_lost_atomic_response_is_replayed_not_reexecuted():
    sim, fabric, server, (client,) = make_world()
    FaultPlan(seed=3).drop(
        dst="c0", rate=1.0, end_ns=5_000.0, packet_kind="ATOMIC_RESP"
    ).install(fabric)
    mr = server.register_memory(64)
    sink = client.register_memory(8)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(
        cqp,
        WorkRequest.fetch_add(raddr=mr.addr, rkey=mr.rkey, add=5, local=(sink, 0, 8)),
    )
    sim.run_until_idle(limit=10_000_000)
    assert get_u64(mr, 0) == 5           # exactly once despite the retry
    assert get_u64(sink, 0) == 0         # original answered from the cache
    assert server.atomics_served == 1
    assert server.atomic_replays >= 1
    assert client.retransmits >= 1
    assert len(cqp.send_cq) == 1


def test_lost_atomic_request_is_retransmitted_and_served_once():
    sim, fabric, server, (client,) = make_world()
    FaultPlan(seed=3).drop(
        dst="server", rate=1.0, end_ns=5_000.0, packet_kind="ATOMIC_REQ"
    ).install(fabric)
    mr = server.register_memory(64)
    sink = client.register_memory(8)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(
        cqp,
        WorkRequest.cmp_swap(
            raddr=mr.addr, rkey=mr.rkey, compare=0, swap=77, local=(sink, 0, 8)
        ),
    )
    sim.run_until_idle(limit=10_000_000)
    assert get_u64(mr, 0) == 77
    assert server.atomics_served == 1
    assert server.atomic_replays == 0    # the first copy never arrived
    assert client.retransmits >= 1


def test_atomics_counter_reaches_the_metrics_registry():
    from repro.obs import capture

    with capture() as session:
        sim, fabric, server, (client,) = make_world()
        mr = server.register_memory(64)
        sink = client.register_memory(8)
        _sqp, cqp = connect_pair(server, client, Transport.RC)
        client.post_send(
            cqp,
            WorkRequest.fetch_add(raddr=mr.addr, rkey=mr.rkey, add=1, local=(sink, 0, 8)),
        )
        sim.run_until_idle()
    counters = session.metrics_dict()["runs"][0]["counters"]
    assert counters["verbs.server.atomics"] == 1
