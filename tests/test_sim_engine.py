"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Event, Simulator, Timeout
from repro.sim.engine import all_of


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_fires_at_requested_time():
    sim = Simulator()
    fired = []
    sim.timeout(100.0).add_callback(lambda e: fired.append(sim.now))
    sim.run(until=50.0)
    assert fired == []
    sim.run(until=100.0)
    assert fired == [100.0]


def test_run_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=500.0)
    assert sim.now == 500.0


def test_run_backwards_rejected():
    sim = Simulator()
    sim.run(until=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_schedule_order_at_same_instant():
    sim = Simulator()
    order = []
    for tag in ("a", "b", "c"):
        sim.timeout(10.0, tag).add_callback(lambda e: order.append(e.value))
    sim.run(until=10.0)
    assert order == ["a", "b", "c"]


def test_event_succeed_delivers_value():
    sim = Simulator()
    event = sim.event()
    got = []
    event.add_callback(lambda e: got.append(e.value))
    event.succeed(42)
    sim.run_until_idle()
    assert got == [42]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_callback_added_after_dispatch_still_runs():
    sim = Simulator()
    event = sim.event()
    event.succeed("late")
    sim.run_until_idle()
    got = []
    event.add_callback(lambda e: got.append(e.value))
    sim.run_until_idle()
    assert got == ["late"]


def test_process_waits_on_timeouts():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield sim.timeout(25.0)
        trace.append(("mid", sim.now))
        yield sim.timeout(75.0)
        trace.append(("end", sim.now))

    sim.process(proc())
    sim.run_until_idle()
    assert trace == [("start", 0.0), ("mid", 25.0), ("end", 100.0)]


def test_process_receives_event_value():
    sim = Simulator()
    seen = []

    def proc():
        value = yield sim.timeout(5.0, "payload")
        seen.append(value)

    sim.process(proc())
    sim.run_until_idle()
    assert seen == ["payload"]


def test_process_is_event_with_return_value():
    sim = Simulator()

    def inner():
        yield sim.timeout(10.0)
        return "done"

    def outer(results):
        value = yield sim.process(inner())
        results.append((sim.now, value))

    results = []
    sim.process(outer(results))
    sim.run_until_idle()
    assert results == [(10.0, "done")]


def test_process_yielding_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad(), name="bad")
    with pytest.raises(TypeError):
        sim.run_until_idle()


def test_call_in_runs_plain_callback():
    sim = Simulator()
    ticks = []
    sim.call_in(30.0, lambda: ticks.append(sim.now))
    sim.run_until_idle()
    assert ticks == [30.0]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(12.0)
    assert sim.peek() == 12.0


def test_all_of_waits_for_every_event():
    sim = Simulator()
    events = [sim.timeout(t, t) for t in (30.0, 10.0, 20.0)]
    done = []
    all_of(sim, events).add_callback(lambda e: done.append((sim.now, e.value)))
    sim.run_until_idle()
    assert done == [(30.0, [30.0, 10.0, 20.0])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    done = []
    all_of(sim, []).add_callback(lambda e: done.append(e.value))
    sim.run_until_idle()
    assert done == [[]]


def test_many_processes_interleave_deterministically():
    def run_once():
        sim = Simulator()
        log = []

        def worker(wid, period):
            for _ in range(5):
                yield sim.timeout(period)
                log.append((sim.now, wid))

        for wid, period in enumerate((7.0, 11.0, 13.0)):
            sim.process(worker(wid, period))
        sim.run_until_idle()
        return log

    assert run_once() == run_once()


def test_bounded_run_until_idle_advances_clock_to_limit():
    """Pre-fix the clock stopped at the last event, so back-to-back
    bounded drains drifted earlier than the requested horizon."""
    sim = Simulator()
    sim.timeout(10.0)
    sim.run_until_idle(limit=100.0)
    assert sim.now == 100.0


def test_bounded_run_until_idle_with_no_events_still_advances():
    sim = Simulator()
    sim.run_until_idle(limit=50.0)
    assert sim.now == 50.0


def test_unbounded_run_until_idle_ends_at_last_event():
    sim = Simulator()
    sim.timeout(10.0)
    sim.timeout(25.0)
    sim.run_until_idle()
    assert sim.now == 25.0


def test_run_until_idle_rejects_backwards_limit():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run_until_idle()
    with pytest.raises(ValueError):
        sim.run_until_idle(limit=5.0)
