"""Replicated partitions losing their primary mid-load.

The acceptance bar for repro.ha: with rf=3 and majority acks, killing a
partition's primary must lose zero acknowledged writes, the recorded
history must check out linearizable, availability must stay above 99%,
and the whole run — including failover timing — must be bit-for-bit
reproducible from the seed.
"""

import pytest

from repro.faults import FaultPlan, run_chaos
from repro.herd import HerdCluster, HerdConfig
from repro.workloads import Workload

#: the ha-smoke configuration (Makefile) — one primary kill at 35% of a
#: 300 us horizon, majority acks, background noise at half intensity
ACCEPTANCE = dict(
    seed=11,
    scenario="kill-primary",
    horizon_ns=300_000.0,
    n_clients=4,
    n_items=64,
    value_size=24,
    n_server_processes=2,
    intensity=0.5,
    replication_factor=3,
    ack_policy="majority",
)


@pytest.fixture(scope="module")
def acceptance_report():
    return run_chaos(**ACCEPTANCE)


def test_kill_primary_loses_no_acked_writes(acceptance_report):
    report = acceptance_report
    assert report.ok, report.violations
    assert report.checker == "linearizable"
    assert report.ops_lost == 0
    assert report.ops_acked > 0
    assert report.promotions >= 1


def test_kill_primary_availability_above_99_percent(acceptance_report):
    report = acceptance_report
    assert report.availability > 0.99, "availability %.4f" % report.availability
    assert report.availability <= 1.0
    # the outage is real: failover took measurable (but bounded) time
    assert 0.0 < report.failover_latency_ns < 0.1 * ACCEPTANCE["horizon_ns"]


def test_kill_primary_fingerprint_is_deterministic(acceptance_report):
    again = run_chaos(**ACCEPTANCE)
    assert again.ok, again.violations
    # the fingerprint covers the outage windows and failover timing,
    # not just op counts — equal fingerprints pin the whole schedule
    assert again.fingerprint == acceptance_report.fingerprint
    assert again.failover_latency_ns == acceptance_report.failover_latency_ns
    assert (again.promotions, again.replays, again.stale_nacks) == (
        acceptance_report.promotions,
        acceptance_report.replays,
        acceptance_report.stale_nacks,
    )


def test_partition_primary_scenario_keeps_the_history_linearizable():
    report = run_chaos(
        **dict(ACCEPTANCE, scenario="partition-primary", horizon_ns=150_000.0)
    )
    # the old primary comes back from the partition with a stale epoch:
    # fencing must turn its acks into nacks, never into split brain
    assert report.ok, report.violations
    assert report.checker == "linearizable"
    assert report.ops_lost == 0
    assert report.scenario == "partition-primary"


def test_replayed_put_applies_exactly_once():
    # Regression: this seed (an ha-failover sweep point) once lost an
    # acked write — a PUT committed, its ack was dropped by link noise,
    # and the client's retry was re-staged as a *new* update that
    # re-committed the old value over a newer one.  The request token in
    # the update record and the replica's completed-table turn that
    # retry into a plain re-ack.
    report = run_chaos(
        seed=15818362488815368293,
        scenario="kill-primary",
        horizon_ns=150_000.0,
        n_clients=4,
        n_items=64,
        value_size=24,
        n_server_processes=2,
        intensity=0.25,
        replication_factor=2,
        ack_policy="all",
    )
    assert report.ok, report.violations
    assert report.checker == "linearizable"
    assert report.ops_lost == 0


def test_ha_scenarios_require_replication():
    with pytest.raises(ValueError):
        run_chaos(scenario="kill-primary", replication_factor=1)
    with pytest.raises(ValueError):
        run_chaos(scenario="no-such-scenario")


def test_outcome_row_reports_the_verdict(acceptance_report):
    row = acceptance_report.outcome_row()
    assert row["scenario"] == "kill-primary"
    assert row["verdict"] == "OK"
    assert row["ops_lost"] == 0
    assert row["ops_acked"] == acceptance_report.ops_acked
    text = acceptance_report.summary()
    assert "kill-primary" in text and "linearizable" in text


# ---------------------------------------------------------------------------
# Lease-aware parking
# ---------------------------------------------------------------------------


def test_promotion_unparks_the_partition_before_the_old_primary_returns():
    """park -> promote -> un-park.

    With a tiny window the dead partition's slots fill instantly and
    clients park further ops for it.  The parked backlog must start
    draining at *promotion* (a backup adopted the partition), long
    before the crashed replica itself recovers — that gap is exactly
    what replication buys over single-copy crash recovery.
    """
    config = HerdConfig(
        n_server_processes=2,
        window=2,
        retry_timeout_ns=20_000.0,
        replication_factor=3,
        ack_policy="majority",
    )
    cluster = HerdCluster(config, n_client_machines=2, seed=9)
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=24, n_keys=64))
    cluster.wire()
    cluster.preload(range(64), 24)
    down_start, down_end = 60_000.0, 260_000.0
    cluster.install_faults(
        FaultPlan(seed=9).crash_server(
            0, at_ns=down_start, down_ns=down_end - down_start
        )
    )
    stamps = []
    for replica, servers in enumerate(cluster.ha.replica_servers):
        def hook(client_id, op, now, _r=replica):
            stamps.append((_r, now))

        servers[0].completion_hook = hook
    parked_high = [0]

    def probe():
        while True:
            yield cluster.sim.timeout(1_000.0)
            backlog = sum(len(c._parked[0]) for c in cluster.clients)
            parked_high[0] = max(parked_high[0], backlog)

    cluster.sim.process(probe(), name="park-probe")
    cluster.run(warmup_ns=0, measure_ns=300_000.0)

    monitor = cluster.ha.monitor
    assert monitor.promotions >= 1
    outages = [o for o in monitor.outages if o[0] == 0]
    assert outages, "the monitor never noticed the dead partition"
    adopted = outages[0][2]
    assert down_start < adopted < down_end
    assert parked_high[0] > 0, "the outage never forced an op to park"
    # completions for partition 0 resume between promotion and the old
    # primary's recovery, and none of them come from the dead replica
    resumed = [(r, t) for r, t in stamps if adopted <= t < down_end]
    assert resumed, "partition 0 stayed parked until the crashed replica returned"
    assert all(r != 0 for r, t in resumed)


def test_kill_primary_fingerprint_is_pinned(acceptance_report):
    """Recorded on the pre-overhaul single-heap calendar; the new
    engine must reproduce it byte for byte."""
    assert acceptance_report.fingerprint == (
        "5e41a96ad9f7c710ee5aa96d618454085eb6a3b852e1398f73ed8bb2b7f8d1c0"
    )
