"""Unit and property tests for FifoServer, Store, and Resource."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FifoServer, Resource, Simulator, Store


# ---------------------------------------------------------------------------
# FifoServer
# ---------------------------------------------------------------------------


def test_server_serves_immediately_when_idle():
    sim = Simulator()
    server = FifoServer(sim, "nic")
    done = []
    server.serve(10.0).add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    assert done == [10.0]


def test_server_queues_back_to_back_jobs():
    sim = Simulator()
    server = FifoServer(sim, "nic")
    done = []
    for _ in range(3):
        server.serve(10.0).add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    assert done == [10.0, 20.0, 30.0]


def test_server_idle_gap_resets_queue():
    sim = Simulator()
    server = FifoServer(sim, "nic")
    done = []
    server.serve(10.0).add_callback(lambda e: done.append(sim.now))
    sim.run(until=100.0)
    server.serve(10.0).add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    assert done == [10.0, 110.0]


def test_server_capacity_two_runs_jobs_in_parallel():
    sim = Simulator()
    server = FifoServer(sim, "dual", capacity=2)
    done = []
    for _ in range(4):
        server.serve(10.0).add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    assert done == [10.0, 10.0, 20.0, 20.0]


def test_server_delivers_value():
    sim = Simulator()
    server = FifoServer(sim, "nic")
    got = []
    server.serve(5.0, value="pkt").add_callback(lambda e: got.append(e.value))
    sim.run_until_idle()
    assert got == ["pkt"]


def test_server_rejects_negative_service():
    sim = Simulator()
    server = FifoServer(sim, "nic")
    with pytest.raises(ValueError):
        server.serve(-1.0)


def test_server_rejects_bad_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        FifoServer(sim, "nic", capacity=0)


def test_delay_until_free_tracks_backlog():
    sim = Simulator()
    server = FifoServer(sim, "nic")
    assert server.delay_until_free() == 0.0
    server.serve(40.0)
    assert server.delay_until_free() == 40.0


def test_utilization_counts_busy_fraction():
    sim = Simulator()
    server = FifoServer(sim, "nic")
    server.serve(30.0)
    sim.run(until=100.0)
    assert server.utilization(100.0) == pytest.approx(0.3)


def test_server_throughput_matches_service_rate():
    """A saturated deterministic server completes 1/service jobs per ns."""
    sim = Simulator()
    server = FifoServer(sim, "nic")
    done = []
    for _ in range(1000):
        server.serve(28.5).add_callback(lambda e: done.append(sim.now))
    sim.run_until_idle()
    assert done[-1] == pytest.approx(28.5 * 1000)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
def test_server_completions_are_fifo_and_work_conserving(services):
    """Property: completion order equals submission order, and the last
    completion equals the total work when all jobs arrive at time zero."""
    sim = Simulator()
    server = FifoServer(sim, "nic")
    completions = []
    for index, service in enumerate(services):
        server.serve(service, value=index).add_callback(
            lambda e: completions.append((sim.now, e.value))
        )
    sim.run_until_idle()
    order = [idx for _t, idx in completions]
    assert order == sorted(order)
    assert completions[-1][0] == pytest.approx(sum(services))


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_get_after_put():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = []
    store.get().add_callback(lambda e: got.append(e.value))
    sim.run_until_idle()
    assert got == ["x"]


def test_store_get_before_put_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(consumer())
    sim.call_in(50.0, lambda: store.put("late"))
    sim.run_until_idle()
    assert got == [(50.0, "late")]


def test_store_is_fifo_for_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(cid):
        item = yield store.get()
        got.append((cid, item))

    sim.process(consumer(0))
    sim.process(consumer(1))
    sim.call_in(1.0, lambda: store.put("first"))
    sim.call_in(2.0, lambda: store.put("second"))
    sim.run_until_idle()
    assert got == [(0, "first"), (1, "second")]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(7)
    assert store.try_get() == 7
    assert len(store) == 0


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def test_resource_mutual_exclusion():
    sim = Simulator()
    lock = Resource(sim)
    trace = []

    def holder(name, hold):
        yield lock.acquire()
        trace.append((name, "in", sim.now))
        yield sim.timeout(hold)
        trace.append((name, "out", sim.now))
        lock.release()

    sim.process(holder("a", 10.0))
    sim.process(holder("b", 10.0))
    sim.run_until_idle()
    assert trace == [
        ("a", "in", 0.0),
        ("a", "out", 10.0),
        ("b", "in", 10.0),
        ("b", "out", 20.0),
    ]


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    lock = Resource(sim)
    with pytest.raises(RuntimeError):
        lock.release()


def test_resource_counted_capacity():
    sim = Simulator()
    pool = Resource(sim, capacity=2)
    entered = []

    def holder(name):
        yield pool.acquire()
        entered.append((name, sim.now))
        yield sim.timeout(10.0)
        pool.release()

    for name in "abc":
        sim.process(holder(name))
    sim.run_until_idle()
    assert entered == [("a", 0.0), ("b", 0.0), ("c", 10.0)]
