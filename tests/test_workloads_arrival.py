"""Tests for the open-loop arrival processes (repro.workloads.arrival)."""

import math

import pytest

from repro.faults.rng import child_rng
from repro.workloads import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    HotKeyShiftStream,
    PoissonArrivals,
    StalledArrivals,
    Workload,
)
from repro.workloads.ycsb import OpType, keyhash


# ---------------------------------------------------------------------------
# Poisson
# ---------------------------------------------------------------------------


def test_poisson_gaps_match_rate():
    """Mean inter-arrival gap converges on 1000/rate ns."""
    arrivals = PoissonArrivals(2.0, child_rng(7, "arrival"))
    gaps = [arrivals.next_gap_ns(0.0) for _ in range(20_000)]
    mean = sum(gaps) / len(gaps)
    assert mean == pytest.approx(500.0, rel=0.05)
    assert all(g >= 0.0 for g in gaps)


def test_poisson_deterministic_per_child_stream():
    a = PoissonArrivals(1.0, child_rng(3, "c0"))
    b = PoissonArrivals(1.0, child_rng(3, "c0"))
    other = PoissonArrivals(1.0, child_rng(3, "c1"))
    seq_a = [a.next_gap_ns(0.0) for _ in range(32)]
    seq_b = [b.next_gap_ns(0.0) for _ in range(32)]
    seq_other = [other.next_gap_ns(0.0) for _ in range(32)]
    assert seq_a == seq_b
    assert seq_a != seq_other


def test_poisson_rejects_bad_rate():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0, child_rng(0, "x"))


# ---------------------------------------------------------------------------
# flash crowd
# ---------------------------------------------------------------------------


def test_flash_crowd_steps_rate_inside_window():
    arrivals = FlashCrowdArrivals(
        1.0,
        child_rng(5, "fc"),
        burst_factor=10.0,
        burst_start_ns=1_000.0,
        burst_end_ns=2_000.0,
    )
    assert arrivals.rate_at(0.0) == 1.0
    assert arrivals.rate_at(1_000.0) == 10.0  # half-open: start included
    assert arrivals.rate_at(1_999.0) == 10.0
    assert arrivals.rate_at(2_000.0) == 1.0  # end excluded
    # gaps drawn inside the burst are ~10x shorter on average
    inside = [arrivals.next_gap_ns(1_500.0) for _ in range(5_000)]
    outside = [arrivals.next_gap_ns(0.0) for _ in range(5_000)]
    ratio = (sum(outside) / len(outside)) / (sum(inside) / len(inside))
    assert ratio == pytest.approx(10.0, rel=0.15)


def test_flash_crowd_rejects_bad_window():
    with pytest.raises(ValueError):
        FlashCrowdArrivals(1.0, child_rng(0, "x"), burst_factor=0.0)
    with pytest.raises(ValueError):
        FlashCrowdArrivals(
            1.0, child_rng(0, "x"), burst_start_ns=2.0, burst_end_ns=1.0
        )


# ---------------------------------------------------------------------------
# diurnal
# ---------------------------------------------------------------------------


def test_diurnal_rate_is_sinusoidal():
    arrivals = DiurnalArrivals(
        2.0, child_rng(1, "d"), amplitude=0.5, period_ns=1_000.0
    )
    assert arrivals.rate_at(0.0) == pytest.approx(2.0)
    assert arrivals.rate_at(250.0) == pytest.approx(3.0)  # peak at T/4
    assert arrivals.rate_at(750.0) == pytest.approx(1.0)  # trough at 3T/4
    # amplitude < 1 keeps the rate strictly positive everywhere
    assert min(arrivals.rate_at(t) for t in range(0, 1000, 10)) > 0.0


def test_diurnal_rejects_bad_amplitude():
    with pytest.raises(ValueError):
        DiurnalArrivals(1.0, child_rng(0, "x"), amplitude=1.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(1.0, child_rng(0, "x"), period_ns=0.0)


# ---------------------------------------------------------------------------
# stalled client
# ---------------------------------------------------------------------------


def test_stalled_client_releases_backlog_as_burst():
    inner = PoissonArrivals(1.0, child_rng(9, "s"))
    arrivals = StalledArrivals(
        inner, stall_start_ns=1_000.0, stall_end_ns=10_000.0, flush_gap_ns=50.0
    )
    assert arrivals.rate_at(5_000.0) == 0.0  # silent during the stall
    assert arrivals.rate_at(500.0) == 1.0
    # walk arrivals from t=0; none may land inside the stall window
    now, stamps = 0.0, []
    for _ in range(64):
        now += arrivals.next_gap_ns(now)
        stamps.append(now)
    assert all(not (1_000.0 <= t < 10_000.0) for t in stamps)
    # the backlog (~9 us of 1 op/us arrivals) flushes at flush_gap pacing
    release = [t for t in stamps if 10_000.0 <= t < 11_000.0]
    assert len(release) >= 5
    gaps = [b - a for a, b in zip(release, release[1:])]
    assert all(g == pytest.approx(50.0) for g in gaps)


def test_stalled_rejects_bad_window():
    inner = PoissonArrivals(1.0, child_rng(0, "x"))
    with pytest.raises(ValueError):
        StalledArrivals(inner, stall_start_ns=2.0, stall_end_ns=1.0)
    with pytest.raises(ValueError):
        StalledArrivals(inner, 0.0, 1.0, flush_gap_ns=0.0)


# ---------------------------------------------------------------------------
# hot-key shift
# ---------------------------------------------------------------------------


def _stream(seed):
    workload = Workload(n_keys=1024, value_size=32, get_fraction=0.5)
    return workload.stream(seed)


def test_hot_key_shift_redirects_after_trigger():
    hot = [1, 2, 3]
    shifted = HotKeyShiftStream(
        _stream(4), hot, hot_fraction=1.0, rng=child_rng(4, "hot"),
        shift_after=100,
    )
    # the trigger compares generated *after* the draw, so the 100th op
    # (inner.generated == 100) is the first shifted one
    before = [shifted.next_op() for _ in range(99)]
    after = [shifted.next_op() for _ in range(200)]
    hot_keys = {keyhash(i) for i in hot}
    assert not all(op.key in hot_keys for op in before)
    assert all(op.key in hot_keys for op in after)
    assert shifted.redirected == 200
    # redirected PUTs still carry well-formed values for store checks
    puts = [op for op in after if op.op is OpType.PUT]
    assert puts and all(len(op.value) == 32 for op in puts)


def test_hot_key_shift_does_not_perturb_inner_stream():
    """The redirect RNG is private: the inner op sequence is the trace
    an unwrapped stream would produce."""
    inner = _stream(8)
    plain = [inner.next_op() for _ in range(300)]
    shifted = HotKeyShiftStream(
        _stream(8), [5], hot_fraction=0.5, rng=child_rng(8, "hot"),
        shift_after=0,
    )
    wrapped = [shifted.next_op() for _ in range(300)]
    hot_key = keyhash(5)
    # every non-redirected op matches the plain trace position-for-position
    mismatches = [
        i for i, (a, b) in enumerate(zip(plain, wrapped))
        if b.key != hot_key and (a.op, a.key) != (b.op, b.key)
    ]
    assert mismatches == []
    assert 0 < shifted.redirected < 300


def test_hot_key_shift_time_trigger_requires_clock():
    with pytest.raises(ValueError):
        HotKeyShiftStream(
            _stream(1), [1], 0.5, child_rng(1, "h"), shift_ns=100.0
        )
    clock = [0.0]
    shifted = HotKeyShiftStream(
        _stream(1), [1], 1.0, child_rng(1, "h"),
        shift_ns=100.0, clock=lambda: clock[0],
    )
    shifted.next_op()
    assert shifted.redirected == 0
    clock[0] = 100.0
    shifted.next_op()
    assert shifted.redirected == 1

def test_hot_key_shift_validates_args():
    with pytest.raises(ValueError):
        HotKeyShiftStream(_stream(1), [], 0.5, child_rng(1, "h"))
    with pytest.raises(ValueError):
        HotKeyShiftStream(_stream(1), [1], 1.5, child_rng(1, "h"))
