"""Tests for the QP-context cache: the connection-scalability mechanism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import APT, QpContextCache


def test_first_access_is_a_miss_then_hits():
    cache = QpContextCache(APT)
    assert cache.access("qp1", requester=False) is False
    assert cache.access("qp1", requester=False) is True
    assert cache.hits == 1
    assert cache.misses == 1


def test_fits_within_capacity_no_evictions():
    cache = QpContextCache(APT)
    for i in range(APT.qp_cache_units):  # responder ctx = 1 unit each
        cache.access(i, requester=False)
    assert cache.evictions == 0
    # Second pass: all hits.
    for i in range(APT.qp_cache_units):
        assert cache.access(i, requester=False) is True


def test_requester_contexts_are_heavier():
    """Requester state is larger (the paper's reason inbound scales but
    outbound does not), so fewer requester contexts fit."""
    cache = QpContextCache(APT)
    n_fit = APT.qp_cache_units // APT.qp_requester_units
    for i in range(n_fit):
        cache.access(("req", i), requester=True)
    assert cache.evictions == 0
    cache.access(("req", n_fit), requester=True)
    assert cache.evictions > 0


def test_cyclic_overflow_degrades_gracefully():
    """Random replacement gives a hit rate ~ capacity/working-set under
    cyclic access, not LRU's 0% — matching Figure 12's linear decline."""
    cache = QpContextCache(APT, seed=7)
    working_set = APT.qp_cache_units * 2
    for _round in range(20):
        for i in range(working_set):
            cache.access(i, requester=False)
    rate = cache.hit_rate()
    # Steady state for cyclic access at 2x capacity is the fixed point of
    # h = exp(-2(1-h)) ~= 0.20; crucially it is neither ~0 (LRU thrash)
    # nor ~1.
    assert 0.10 < rate < 0.35


def test_miss_penalty_values():
    cache = QpContextCache(APT)
    assert cache.miss_penalty_ns(hit=True) == 0.0
    assert cache.miss_penalty_ns(hit=True, requester=True) == 0.0
    responder = cache.miss_penalty_ns(hit=False)
    requester = cache.miss_penalty_ns(hit=False, requester=True)
    assert responder == APT.qp_responder_units * APT.qp_cache_miss_ns_per_unit
    # Requester contexts are larger, so their misses cost more.
    assert requester == APT.qp_requester_units * APT.qp_cache_miss_ns_per_unit
    assert requester > responder


def test_used_units_accounting():
    cache = QpContextCache(APT)
    cache.access("a", requester=False)
    cache.access("b", requester=True)
    assert cache.used_units == APT.qp_responder_units + APT.qp_requester_units
    assert cache.resident_contexts == 2


def test_deterministic_for_fixed_seed():
    def run(seed):
        cache = QpContextCache(APT, seed=seed)
        for i in range(APT.qp_cache_units * 3):
            cache.access(i % (APT.qp_cache_units + 50), requester=False)
        return (cache.hits, cache.misses, cache.evictions)

    assert run(3) == run(3)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=500))
def test_cache_invariants_under_arbitrary_access(keys):
    """Property: usage never exceeds capacity; hits+misses == accesses;
    a key just inserted is resident."""
    cache = QpContextCache(APT, seed=1)
    for key in keys:
        cache.access(key, requester=bool(key % 2))
        assert cache.used_units <= cache.capacity
        assert cache.access(key, requester=bool(key % 2)) is True  # now resident
    assert cache.hits + cache.misses == 2 * len(keys)
