"""Tests for the Dynamically Connected (DC) transport extension."""

import pytest

from repro.hw import APT, Fabric, Machine
from repro.sim import Simulator
from repro.verbs import (
    Opcode,
    RdmaDevice,
    RecvRequest,
    Transport,
    VerbError,
    WorkRequest,
    connect_pair,
    transport_supports,
)


def make_world(n=2):
    sim = Simulator()
    fabric = Fabric(sim, APT)
    devices = [RdmaDevice(Machine(sim, fabric, "m%d" % i)) for i in range(n)]
    return sim, fabric, devices


def test_dc_is_reliable_and_unconnected():
    assert Transport.DC.reliable
    assert not Transport.DC.connected


def test_dc_supports_all_verbs():
    for op in (Opcode.SEND, Opcode.RECV, Opcode.WRITE, Opcode.READ):
        assert transport_supports(Transport.DC, op)


def test_dc_cannot_connect_or_pair():
    sim, _fabric, (a, b) = make_world()
    qp = a.create_qp(Transport.DC)
    with pytest.raises(VerbError):
        qp.connect("m1", 1)
    with pytest.raises(VerbError):
        connect_pair(a, b, Transport.DC)


def test_dc_write_requires_address_handle():
    sim, _fabric, (a, b) = make_world()
    qp = a.create_qp(Transport.DC)
    mr = b.register_memory(128)
    a.post_send(
        qp, WorkRequest.write(raddr=mr.addr, rkey=mr.rkey, payload=b"x", inline=True)
    )
    with pytest.raises(VerbError):
        sim.run_until_idle()


def test_one_dc_qp_writes_to_many_targets():
    """The whole point of DC: one initiator context, many remotes."""
    sim, _fabric, devices = make_world(n=4)
    initiator = devices[0]
    qp = initiator.create_qp(Transport.DC)
    targets = []
    for dev in devices[1:]:
        dct = dev.create_qp(Transport.DC)
        mr = dev.register_memory(128)
        targets.append((dev, dct, mr))
    for i, (dev, dct, mr) in enumerate(targets):
        initiator.post_send(
            qp,
            WorkRequest.write(
                raddr=mr.addr, rkey=mr.rkey, payload=b"dc-%d" % i,
                inline=True, signaled=False,
                ah=(dev.machine.name, dct.qpn),
            ),
        )
    sim.run_until_idle()
    for i, (_dev, _dct, mr) in enumerate(targets):
        assert mr.read(0, 4) == b"dc-%d" % i


def test_dc_write_is_acknowledged():
    """DC is reliable: signaled WRITEs complete only after the ACK."""
    sim, _fabric, (a, b) = make_world()
    qp = a.create_qp(Transport.DC)
    dct = b.create_qp(Transport.DC)
    mr = b.register_memory(128)
    a.post_send(
        qp,
        WorkRequest.write(
            raddr=mr.addr, rkey=mr.rkey, payload=b"y", inline=True,
            signaled=True, ah=("m1", dct.qpn),
        ),
    )
    sim.run(until=APT.wire_delay_ns * 1.5)
    assert len(qp.send_cq) == 0  # not before the round trip
    sim.run_until_idle()
    assert len(qp.send_cq) == 1
    assert a.acks_received == 1


def test_dc_read_roundtrip():
    sim, _fabric, (a, b) = make_world()
    qp = a.create_qp(Transport.DC)
    dct = b.create_qp(Transport.DC)
    remote = b.register_memory(128)
    remote.write(0, b"dc-read-data")
    sink = a.register_memory(128)
    a.post_send(
        qp,
        WorkRequest.read(
            raddr=remote.addr, rkey=remote.rkey, local=(sink, 0, 12),
        ),
    )
    # READ needs the ah too; attach it via the wr field.
    # (Constructed without ah above: expect a VerbError at transmit.)
    with pytest.raises(VerbError):
        sim.run_until_idle()


def test_dc_retransmits_through_bit_errors():
    sim, fabric, (a, b) = make_world()
    fabric.bit_error_rate = 0.5
    qp = a.create_qp(Transport.DC)
    dct = b.create_qp(Transport.DC)
    mr = b.register_memory(128)
    a.post_send(
        qp,
        WorkRequest.write(
            raddr=mr.addr, rkey=mr.rkey, payload=b"durable", inline=True,
            signaled=False, ah=("m1", dct.qpn),
        ),
    )
    sim.run_until_idle(limit=50_000_000)
    assert mr.read(0, 7) == b"durable"


def test_herd_over_dc_matches_uc_at_moderate_scale():
    from repro.herd import HerdCluster, HerdConfig
    from repro.workloads import Workload

    def run(transport):
        cluster = HerdCluster(
            HerdConfig(n_server_processes=2, window=2, request_transport=transport),
            n_client_machines=2,
            seed=4,
        )
        cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=256))
        cluster.preload(range(256), 32)
        result = cluster.run(warmup_ns=0, measure_ns=100_000)
        assert sum(c.failures for c in cluster.clients) == 0
        return result.mops

    uc = run("UC")
    dc = run("DC")
    assert abs(uc - dc) / uc < 0.15
