"""Determinism and seed robustness of whole-system experiments."""

import pytest

from repro.bench.microbench import inbound_throughput, tune_window
from repro.herd import HerdCluster, HerdConfig
from repro.verbs import Transport
from repro.workloads import Workload


def run_herd_cell(seed: int) -> float:
    cluster = HerdCluster(
        HerdConfig(n_server_processes=4, window=4), n_client_machines=6, seed=seed
    )
    cluster.add_clients(12, Workload(get_fraction=0.9, value_size=32, n_keys=1 << 10))
    cluster.preload(range(1 << 10), 32)
    return cluster.run(warmup_ns=20_000, measure_ns=80_000).mops


def test_identical_seeds_reproduce_bit_identical_results():
    """The whole stack — RNGs, event ordering, caches — is
    deterministic given a seed."""
    assert run_herd_cell(seed=42) == run_herd_cell(seed=42)


def test_different_seeds_agree_within_noise():
    """No result in this repo hinges on a lucky seed."""
    results = [run_herd_cell(seed=s) for s in (1, 2, 3)]
    assert max(results) - min(results) < 0.1 * max(results)


def test_fault_injection_does_not_perturb_workload_streams():
    """Satellite of the fault-injection PR: every randomness source has
    a named child stream of the cluster seed, so turning faults on must
    not change which keys the workload draws — only how many draws fit
    in the horizon.  The faulty run's key sequence per client must be a
    prefix-compatible match of the clean run's."""
    from repro.faults import FaultPlan

    def record_keys(with_faults: bool):
        cluster = HerdCluster(
            HerdConfig(
                n_server_processes=2, window=4, retry_timeout_ns=30_000.0
            ),
            n_client_machines=2,
            seed=77,
        )
        cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=256))
        cluster.preload(range(256), 32)
        if with_faults:
            cluster.install_faults(
                FaultPlan(seed=77).drop(rate=0.05).duplicate(rate=0.02)
            )
        keys = [[] for _ in cluster.clients]
        for client in cluster.clients:
            def next_op(_orig=client.stream.next_op, _log=keys[client.client_id]):
                op = _orig()
                _log.append(op.key)
                return op

            client.stream.next_op = next_op
        cluster.run(warmup_ns=0, measure_ns=150_000)
        return keys

    clean = record_keys(with_faults=False)
    faulty = record_keys(with_faults=True)
    for c_keys, f_keys in zip(clean, faulty):
        n = min(len(c_keys), len(f_keys))
        assert n > 20
        assert c_keys[:n] == f_keys[:n]


def test_microbenchmarks_are_deterministic():
    a = inbound_throughput("WRITE", Transport.UC, 32)
    b = inbound_throughput("WRITE", Transport.UC, 32)
    assert a == b


def test_tune_window_finds_the_saturating_window():
    """Section 3.1: windows are tuned per experiment.  Tiny windows
    cannot cover the round trip; tuning finds one that can."""
    def measure(window):
        return inbound_throughput("WRITE", Transport.UC, 32, n_clients=2, window=window)

    best_window, best_mops = tune_window(measure, candidates=(1, 4, 16, 48))
    assert best_window >= 16
    assert best_mops > measure(1)
