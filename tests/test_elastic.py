"""Elastic resharding: shard maps, live migration, membership under chaos.

The acceptance bar for repro.elastic: joining a spare partition while a
kill-primary fault lands mid-migration must complete the reshard (after
an abort and restart), lose zero acknowledged writes, keep the history
linearizable, and reproduce bit-for-bit from the seed.
"""

import pytest

from repro.elastic import HASH_SPACE, ShardMap
from repro.faults import run_chaos
from repro.herd import HerdConfig
from repro.herd import wire
from repro.herd.config import partition_of, route_key

#: the elastic-smoke configuration (Makefile) — a 3-partition cluster
#: born with 2 active, the spare joining at 25% of the horizon and the
#: first migration source's primary crashing at 27%
ACCEPTANCE = dict(
    seed=11,
    scenario="migrate-under-kill",
    horizon_ns=300_000.0,
    n_clients=4,
    n_items=64,
    value_size=24,
    n_server_processes=3,
    intensity=0.5,
    replication_factor=3,
    ack_policy="majority",
)


@pytest.fixture(scope="module")
def acceptance_report():
    return run_chaos(**ACCEPTANCE)


# ---------------------------------------------------------------------------
# ShardMap
# ---------------------------------------------------------------------------


def test_striped_map_covers_the_hash_space_equally():
    shard_map = ShardMap.striped(4)
    assert shard_map.version == 0
    assert shard_map.owners() == (0, 1, 2, 3)
    ranges = shard_map.ranges()
    assert ranges[0][0] == 0 and ranges[-1][1] == HASH_SPACE
    for (_lo, hi, _who), (lo2, _hi2, _who2) in zip(ranges, ranges[1:]):
        assert hi == lo2  # gap-free
    for owner in range(4):
        assert shard_map.share_of(owner) == pytest.approx(0.25)


def test_owner_lookup_respects_range_boundaries():
    shard_map = ShardMap.striped(2)
    (lo0, hi0, own0), (lo1, hi1, own1) = shard_map.ranges()
    assert shard_map.owner_of_hash(lo0) == own0
    assert shard_map.owner_of_hash(hi0 - 1) == own0
    assert shard_map.owner_of_hash(lo1) == own1
    assert shard_map.owner_of_hash(HASH_SPACE - 1) == own1
    with pytest.raises(ValueError):
        shard_map.owner_of_hash(HASH_SPACE)
    with pytest.raises(ValueError):
        shard_map.owner_of_hash(-1)
    # owner_of hashes the same 8-byte little-endian prefix partition_of uses
    keyhash = (123456789).to_bytes(8, "little")
    assert shard_map.owner_of(keyhash) == shard_map.owner_of_hash(123456789)


def test_assign_splits_bumps_version_and_leaves_the_old_map_alone():
    before = ShardMap.striped(2)
    lo, hi = HASH_SPACE // 4, HASH_SPACE // 2
    after = before.assign(lo, hi, 2)
    assert after.version == before.version + 1
    assert after.owner_of_hash(lo) == 2
    assert after.owner_of_hash(hi - 1) == 2
    assert after.owner_of_hash(lo - 1) == 0
    assert after.owner_of_hash(hi) == 1
    # immutability: the source map still routes the old way
    assert before.owner_of_hash(lo) == 0
    # giving the slice back merges the split ranges again
    restored = after.assign(lo, hi, 0)
    assert restored.entries == before.entries
    assert restored.version == before.version + 2


def test_plan_join_grants_an_equal_share():
    shard_map = ShardMap.striped(2)
    moves = shard_map.plan_join(2)
    assert moves and all(src in (0, 1) and dst == 2 for _l, _h, src, dst in moves)
    for lo, hi, src, _dst in moves:
        assert shard_map.owner_of_hash(lo) == src
        assert shard_map.owner_of_hash(hi - 1) == src
    for lo, hi, _src, dst in moves:
        shard_map = shard_map.assign(lo, hi, dst)
    assert shard_map.owners() == (0, 1, 2)
    for owner in range(3):
        assert shard_map.share_of(owner) == pytest.approx(1 / 3, abs=1e-9)
    with pytest.raises(ValueError):
        shard_map.plan_join(2)  # already an owner


def test_plan_leave_evacuates_everything_to_the_survivors():
    shard_map = ShardMap.striped(3)
    moves = shard_map.plan_leave(1)
    assert moves and all(src == 1 for _l, _h, src, _d in moves)
    for lo, hi, _src, dst in moves:
        shard_map = shard_map.assign(lo, hi, dst)
    assert 1 not in shard_map.owners()
    assert shard_map.share_of(1) == 0.0
    with pytest.raises(ValueError):
        ShardMap.striped(1).plan_leave(0)  # cannot evacuate the last owner


def test_shard_map_validation():
    with pytest.raises(ValueError):
        ShardMap(0, [])
    with pytest.raises(ValueError):
        ShardMap(0, [(1, 0)])  # first range must start at 0
    with pytest.raises(ValueError):
        ShardMap(0, [(0, 0), (5, 1), (5, 2)])  # duplicate start
    with pytest.raises(ValueError):
        ShardMap(0, [(0, 0), (HASH_SPACE, 1)])  # start beyond the space
    with pytest.raises(ValueError):
        ShardMap.striped(0)


def test_shard_map_wire_roundtrip():
    shard_map = ShardMap.striped(3, version=7).assign(
        HASH_SPACE // 2, HASH_SPACE, 0
    )
    payload = wire.encode_shard_map(shard_map.version, shard_map.entries)
    version, entries = wire.decode_shard_map(payload)
    assert version == shard_map.version
    assert ShardMap(version, entries) == shard_map


# ---------------------------------------------------------------------------
# route_key (the consolidated routing helper)
# ---------------------------------------------------------------------------


def test_route_key_matches_the_static_mapping_without_a_map():
    keyhash = (99).to_bytes(8, "little") + b"\x00" * 8
    assert route_key(keyhash, 4) == partition_of(keyhash, 4)


def test_route_key_follows_the_shard_map_when_given_one():
    shard_map = ShardMap.striped(2).assign(0, HASH_SPACE, 1)
    keyhash = (99).to_bytes(8, "little") + b"\x00" * 8
    assert route_key(keyhash, 2, shard_map) == 1


def test_route_key_rejects_nonpositive_partition_counts():
    keyhash = bytes(16)
    with pytest.raises(ValueError):
        route_key(keyhash, 0)
    with pytest.raises(ValueError):
        partition_of(keyhash, 0)


def test_elastic_config_validation():
    with pytest.raises(ValueError):
        HerdConfig(n_server_processes=2, n_active_partitions=0,
                   replication_factor=3)
    with pytest.raises(ValueError):
        HerdConfig(n_server_processes=2, n_active_partitions=3,
                   replication_factor=3)
    with pytest.raises(ValueError):
        HerdConfig(n_server_processes=2, n_active_partitions=1)  # rf == 1


# ---------------------------------------------------------------------------
# migrate-under-kill acceptance
# ---------------------------------------------------------------------------


def test_migrate_under_kill_loses_no_acked_writes(acceptance_report):
    report = acceptance_report
    assert report.ok, report.violations
    assert report.checker == "linearizable"
    assert report.ops_lost == 0
    assert report.ops_acked > 0
    assert report.promotions >= 1  # the kill really forced a failover


def test_migrate_under_kill_completes_the_reshard(acceptance_report):
    report = acceptance_report
    # both planned moves (one from each original owner) must land, and
    # the pinned crash must have aborted at least one attempt on the way
    assert report.migrations_done == 2
    assert report.migrations_aborted >= 1
    assert report.map_version == 2
    assert report.records_migrated > 0
    # clients really re-routed through RESP_NOT_OWNER nacks
    assert report.not_owner_nacks > 0
    assert report.reroutes > 0
    assert report.tail_completed > 0


def test_migrate_under_kill_fingerprint_is_deterministic(acceptance_report):
    again = run_chaos(**ACCEPTANCE)
    assert again.ok, again.violations
    # the fingerprint covers the final map, every migration, and each
    # client's re-routing — equal fingerprints pin the whole reshard
    assert again.fingerprint == acceptance_report.fingerprint
    assert again.map_version == acceptance_report.map_version
    assert (again.migrations_done, again.migrations_aborted) == (
        acceptance_report.migrations_done,
        acceptance_report.migrations_aborted,
    )
    assert again.reroutes == acceptance_report.reroutes


def test_migrate_under_kill_requires_an_elastic_config():
    with pytest.raises(ValueError):
        run_chaos(
            scenario="migrate-under-kill",
            config=HerdConfig(
                n_server_processes=2,
                retry_timeout_ns=10_000.0,
                replication_factor=3,
            ),
        )


def test_elastic_summary_reports_the_reshard(acceptance_report):
    text = acceptance_report.summary()
    assert "migrate-under-kill" in text
    assert "shard map v2" in text
    row = acceptance_report.outcome_row()
    assert row["verdict"] == "OK"
    assert row["ops_lost"] == 0


def test_migrate_under_kill_fingerprint_is_pinned(acceptance_report):
    """Recorded on the pre-overhaul single-heap calendar; the new
    engine must reproduce it byte for byte."""
    assert acceptance_report.fingerprint == (
        "552896d0c27ca411b20eb5a664b57a00855513e1927b24f4f8bf72788c5a17b7"
    )
