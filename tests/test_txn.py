"""End-to-end repro.txn: both commit dataplanes against the checker.

Every cluster run here finishes with the full audit pipeline — a
Wing-Gong strict-serializability check over the recorded transaction
history, a torn-write scan of the final store bytes, and a determinism
fingerprint — so these tests are the executable form of the subsystem's
correctness claims.
"""

import pytest

from repro.obs import capture
from repro.txn import (
    DATAPLANES,
    QueueConfig,
    TxnCluster,
    TxnConfig,
    TxnQueueCluster,
    make_value,
    parse_value,
)
from repro.txn import wire

QUICK = dict(warmup_ns=10_000.0, measure_ns=80_000.0)


def run_cluster(seed=0, n_clients=6, **cfg):
    cluster = TxnCluster(TxnConfig(**cfg), n_clients=n_clients, seed=seed)
    return cluster.run(**QUICK)


# ---------------------------------------------------------------------------
# configuration and value tagging
# ---------------------------------------------------------------------------


def test_unknown_dataplane_rejected_with_the_valid_choices():
    with pytest.raises(ValueError, match="rpc, onesided"):
        TxnConfig(dataplane="dcqcn")
    with pytest.raises(ValueError, match="unknown dataplane"):
        QueueConfig(dataplane="rdma")


def test_write_set_cannot_exceed_the_key_set():
    with pytest.raises(ValueError):
        TxnConfig(keys_per_txn=2, writes_per_txn=3)
    with pytest.raises(ValueError, match="n_hot"):
        TxnConfig(keys_per_txn=3, n_hot=2, hot_fraction=0.5)


def test_value_tag_roundtrip():
    value = make_value(client=3, seq=41, key=7, value_bytes=24)
    assert len(value) == 24
    assert parse_value(value) == (3, 41, 7)
    assert parse_value(b"\x00" * 24) is None


def test_wire_roundtrips():
    body = wire.encode_prepare([(1, 9), (2, 0)], [(3, b"x" * 8)])
    reads, writes = wire.decode_prepare(body, value_bytes=8)
    assert reads == [(1, 9), (2, 0)]
    assert writes == [(3, b"x" * 8)]
    buf = wire.encode_request(wire.TXN_PREPARE, 7, body)
    kind, seq, decoded = wire.decode_request(buf)
    assert (kind, seq, decoded) == (wire.TXN_PREPARE, 7, body)
    resp = wire.encode_response(wire.TXN_COMMIT, 7, wire.ST_OK, 1, b"zz")
    assert wire.decode_response(resp) == (wire.TXN_COMMIT, 7, wire.ST_OK, 1, b"zz")


# ---------------------------------------------------------------------------
# serializability across dataplanes and seeds
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dataplane", DATAPLANES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dataplane_serializable_across_seeds(dataplane, seed):
    report = run_cluster(seed=seed, dataplane=dataplane)
    assert report.commits > 0
    assert report.violation is None, report.violation
    assert report.torn_writes == 0
    assert report.ok


@pytest.mark.parametrize("dataplane", DATAPLANES)
def test_contended_hot_keys_stay_serializable(dataplane):
    report = run_cluster(
        seed=5, dataplane=dataplane, hot_fraction=0.8, n_hot=3, n_keys=64
    )
    assert report.ok, report.violation
    if dataplane == "onesided":
        # CAS lock races must show up as aborts, not as anomalies
        assert report.aborts > 0


def test_contention_hurts_onesided_more_than_rpc():
    # The crossover mechanic: hot single-partition txns are one-shot
    # RPCs (zero aborts) but CAS abort storms one-sided.
    cold = run_cluster(seed=4, dataplane="onesided", hot_fraction=0.0)
    hot = run_cluster(seed=4, dataplane="onesided", hot_fraction=0.9, n_hot=3)
    assert hot.abort_rate > cold.abort_rate
    hot_rpc = run_cluster(seed=4, dataplane="rpc", hot_fraction=0.9, n_hot=3)
    assert hot_rpc.abort_rate < hot.abort_rate


def test_read_only_workload_never_aborts_onesided():
    report = run_cluster(seed=2, dataplane="onesided", read_only_fraction=1.0)
    assert report.ok
    assert report.commits > 0
    assert report.aborts == 0


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dataplane", DATAPLANES)
def test_fingerprint_reproducible(dataplane):
    first = run_cluster(seed=7, dataplane=dataplane)
    second = run_cluster(seed=7, dataplane=dataplane)
    assert first.fingerprint == second.fingerprint
    third = run_cluster(seed=8, dataplane=dataplane)
    assert third.fingerprint != first.fingerprint


# ---------------------------------------------------------------------------
# crash-pause: the CPU-bypass contrast
# ---------------------------------------------------------------------------


def test_rpc_rides_out_a_server_pause_with_zero_torn_commits():
    report = run_cluster(
        seed=3, dataplane="rpc", crash=(0, 30_000.0, 40_000.0)
    )
    assert report.ok, report.violation
    assert report.torn_writes == 0
    assert report.commits > 0


def test_onesided_commits_through_the_outage():
    report = run_cluster(
        seed=3, dataplane="onesided", crash=(0, 30_000.0, 40_000.0)
    )
    assert report.ok, report.violation
    # one-sided commit never touches the server CPU: progress continues
    # while the RPC dataplane's partition-0 poller is dead
    assert report.commits_in_outage > 0


# ---------------------------------------------------------------------------
# observability counters
# ---------------------------------------------------------------------------


def test_txn_counters_reach_the_run_report():
    with capture() as session:
        rpc = run_cluster(seed=1, dataplane="rpc", hot_fraction=0.5, n_hot=4)
        onesided = run_cluster(seed=1, dataplane="onesided", hot_fraction=0.5, n_hot=4)
    runs = session.metrics_dict()["runs"]
    assert len(runs) == 2
    for report, counters in zip((rpc, onesided), (r["counters"] for r in runs)):
        assert counters["txn.commits"] == report.commits
        assert counters.get("txn.aborts", 0) == report.aborts
    # the one-sided dataplane locks with remote atomics; RPC never does
    assert runs[1]["counters"]["verbs.server.atomics"] > 0
    assert "verbs.server.atomics" not in runs[0]["counters"]
    assert onesided.server_counters["atomics_served"] > 0


# ---------------------------------------------------------------------------
# the FIFO queue both ways
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "dataplane,ticket_mode",
    [("rpc", "cas"), ("onesided", "cas"), ("onesided", "faa")],
)
def test_queue_conserves_items(dataplane, ticket_mode):
    cluster = TxnQueueCluster(
        QueueConfig(dataplane=dataplane, ticket_mode=ticket_mode), seed=4
    )
    report = cluster.run()
    assert report.ok, report.violations
    assert report.enqueued == report.dequeued > 0


def test_queue_faa_tickets_never_lose_the_claim_race():
    cas = TxnQueueCluster(QueueConfig(dataplane="onesided", ticket_mode="cas"), seed=4).run()
    faa = TxnQueueCluster(QueueConfig(dataplane="onesided", ticket_mode="faa"), seed=4).run()
    assert cas.enq_retries > 0       # CAS ticket claims lose races
    assert faa.enq_retries == 0      # FETCH_ADD cannot lose
    assert faa.ok and cas.ok


def test_queue_determinism():
    runs = [
        TxnQueueCluster(QueueConfig(dataplane="onesided"), seed=9).run().result.ops
        for _ in range(2)
    ]
    assert runs[0] == runs[1]
