"""Baseline capture and regression-gate verdicts."""

import json

import pytest

from repro.lab import (
    Axis,
    SweepSpec,
    capture_baseline,
    check,
    load_baseline,
    metric_direction,
    write_baseline,
    write_bench_json,
)
from repro.lab.gate import DEFAULT_TOLERANCES, bench_json, tolerance_for


def spec_and_results(n=2):
    spec = SweepSpec(
        name="g", task="herd", axes=[Axis("value_size", [32 * (i + 1) for i in range(n)])]
    )
    results = {}
    for point in spec.points():
        results[point.label] = {
            "label": point.label,
            "task": "herd",
            "status": "ok",
            "metrics": {
                "mops": 10.0,
                "p50_us": 3.0,
                "p99_us": 5.0,
                "mean_us": 3.2,
                "obs/sim_time_ns": 1e5,
            },
        }
    return spec, results


def perturbed(results, metric, factor):
    out = {}
    for label, record in results.items():
        clone = dict(record)
        clone["metrics"] = dict(record["metrics"])
        out[label] = clone
    first = sorted(out)[0]
    out[first]["metrics"][metric] *= factor
    return out


def test_metric_directions():
    assert metric_direction("mops") == 1
    assert metric_direction("ok") == 1
    assert metric_direction("p99_us") == -1
    assert metric_direction("obs/sim_time_ns") == -1
    assert metric_direction("HERD Mops/32") == 0
    assert metric_direction("retries") == -1


def test_baseline_captures_headline_metrics_only():
    spec, results = spec_and_results()
    baseline = capture_baseline(spec, results)
    for label, metrics in baseline["points"].items():
        assert set(metrics) == {"mops", "p50_us", "p99_us"}
    assert baseline["spec"] == "g"
    assert baseline["tolerances"]["mops"] == DEFAULT_TOLERANCES["mops"]


def test_baseline_requires_every_point():
    spec, results = spec_and_results()
    results.pop(sorted(results)[0])
    with pytest.raises(ValueError, match="no stored result"):
        capture_baseline(spec, results)


def test_gate_passes_on_identical_results():
    spec, results = spec_and_results()
    report = check(spec, results, capture_baseline(spec, results))
    assert report.passed
    assert not report.regressions and not report.improvements
    assert len(report.entries) == 6  # 2 points x 3 headline metrics
    assert "PASS" in report.summary()


def test_gate_fails_on_throughput_drop_beyond_tolerance():
    spec, results = spec_and_results()
    baseline = capture_baseline(spec, results)
    report = check(spec, perturbed(results, "mops", 0.9), baseline)
    assert not report.passed
    (bad,) = report.regressions
    assert bad.metric == "mops" and bad.status == "regression"
    assert bad.worse_by == pytest.approx(0.1)
    assert "FAIL" in report.summary()


def test_gate_ignores_drop_within_tolerance():
    spec, results = spec_and_results()
    baseline = capture_baseline(spec, results)
    report = check(spec, perturbed(results, "mops", 0.97), baseline)
    assert report.passed


def test_gate_fails_on_latency_rise_but_not_fall():
    spec, results = spec_and_results()
    baseline = capture_baseline(spec, results)
    worse = check(spec, perturbed(results, "p99_us", 1.5), baseline)
    assert not worse.passed and worse.regressions[0].metric == "p99_us"
    better = check(spec, perturbed(results, "p99_us", 0.5), baseline)
    assert better.passed
    assert better.improvements and better.improvements[0].metric == "p99_us"


def test_throughput_gain_is_an_improvement_not_a_failure():
    spec, results = spec_and_results()
    baseline = capture_baseline(spec, results)
    report = check(spec, perturbed(results, "mops", 1.5), baseline)
    assert report.passed
    assert report.improvements and report.improvements[0].metric == "mops"


def test_missing_point_fails_the_gate():
    spec, results = spec_and_results()
    baseline = capture_baseline(spec, results)
    partial = dict(results)
    partial.pop(sorted(partial)[0])
    report = check(spec, partial, baseline)
    assert not report.passed
    assert all(e.status == "missing" for e in report.regressions)


def test_extra_points_are_listed_but_not_gated():
    spec, results = spec_and_results()
    baseline = capture_baseline(spec, results)
    extra = dict(results)
    extra["herd(value_size=999)"] = dict(sorted(results.items())[0][1])
    report = check(spec, extra, baseline)
    assert report.passed
    assert report.ungated == ["herd(value_size=999)"]


def test_tolerance_override_in_baseline():
    spec, results = spec_and_results()
    baseline = capture_baseline(spec, results, tolerances={"default": 0.5, "mops": 0.5})
    report = check(spec, perturbed(results, "mops", 0.7), baseline)
    assert report.passed


def test_tolerance_lookup_prefers_exact_then_suffix():
    tolerances = {"default": 0.1, "mops": 0.2, "HERD/mops": 0.3}
    assert tolerance_for("HERD/mops", tolerances) == 0.3
    assert tolerance_for("other/mops", tolerances) == 0.2
    assert tolerance_for("whatever", tolerances) == 0.1


def test_zero_baseline_uses_absolute_worseness():
    spec, results = spec_and_results(n=1)
    baseline = capture_baseline(spec, results)
    label = sorted(results)[0]
    baseline["points"][label] = {"violations": 0.0}
    ok = check(spec, dict(results), baseline)  # current has no 'violations'
    assert not ok.passed  # missing metric fails
    results[label]["metrics"]["violations"] = 0.0
    assert check(spec, results, baseline).passed
    results[label]["metrics"]["violations"] = 1.0
    assert not check(spec, results, baseline).passed


def test_baseline_roundtrip_and_bench_json(tmp_path):
    spec, results = spec_and_results()
    baseline = capture_baseline(spec, results)
    path = tmp_path / "base.json"
    write_baseline(baseline, str(path))
    loaded = load_baseline(str(path))
    assert loaded["points"] == baseline["points"]
    report = check(spec, perturbed(results, "mops", 0.5), loaded)
    payload = bench_json(report, loaded)
    assert payload["pass"] is False
    assert payload["n_regressed"] == 1
    label = sorted(results)[0]
    assert payload["metrics"][label]["mops"]["status"] == "regression"
    out = tmp_path / "BENCH_lab.json"
    write_bench_json(report, loaded, str(out))
    written = json.loads(out.read_text())
    assert written["version"] == 2
    assert written["specs"]["g"]["spec"] == "g"
    assert written["pass"] is False
    with pytest.raises(ValueError, match="not a lab baseline"):
        json.dump({"x": 1}, open(tmp_path / "bad.json", "w")) or load_baseline(
            str(tmp_path / "bad.json")
        )


def test_bench_json_merges_specs_and_upgrades_v1(tmp_path):
    spec, results = spec_and_results()
    baseline = capture_baseline(spec, results)
    good = check(spec, results, baseline)
    out = tmp_path / "BENCH_lab.json"
    # a v1 file from an older gate run for a *different* spec...
    v1 = bench_json(check(spec, results, baseline), baseline)
    v1["spec"] = "older"
    out.write_text(json.dumps(v1))
    # ...is upgraded in place and kept alongside the new spec's entry
    write_bench_json(good, baseline, str(out))
    merged = json.loads(out.read_text())
    assert merged["version"] == 2
    assert set(merged["specs"]) == {"older", "g"}
    assert merged["pass"] is True
    # a failing spec flips the conjunction without erasing the others
    bad = check(spec, perturbed(results, "mops", 0.5), baseline)
    write_bench_json(bad, baseline, str(out))
    merged = json.loads(out.read_text())
    assert set(merged["specs"]) == {"older", "g"}
    assert merged["specs"]["g"]["pass"] is False
    assert merged["pass"] is False


def test_ha_metric_directions_and_tolerances():
    assert metric_direction("availability") == 1
    assert metric_direction("ops_acked") == 1
    assert metric_direction("ops_lost") == -1
    assert metric_direction("goodput_overhead_pct") == -1
    assert metric_direction("failover_latency_us") == -1
    assert DEFAULT_TOLERANCES["ops_lost"] == 0.0
    assert tolerance_for("availability", DEFAULT_TOLERANCES) == 0.005
