"""The multi-key serializability checker against ground-truth histories.

Mirrors test_ha_checker.py one level up: each case hand-builds a tiny
transaction history with exactly one defensible verdict.  If the
checker cannot reject textbook write skew or a torn commit on three
transactions, its verdict on a full repro.txn run means nothing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ha import TxnRecord, check_serializable
from repro.ha.checker import final_read_txn

A, B, C = b"va" * 8, b"vb" * 8, b"vc" * 8
ZERO = b"\x00" * 16


def txn(tid, reads, writes, invoke, respond, status="committed", client=None):
    return TxnRecord(
        txn_id=tid,
        client=tid if client is None else client,
        reads=tuple(reads),
        writes=tuple(writes),
        invoke=invoke,
        respond=respond,
        status=status,
    )


def test_sequential_history_serializable():
    history = [
        txn(1, [], [(0, A)], 0, 1),
        txn(2, [(0, A)], [(1, B)], 2, 3),
        txn(3, [(0, A), (1, B)], [], 4, 5),
    ]
    assert check_serializable(history, initial={0: ZERO, 1: ZERO}) is None


def test_read_of_initial_state():
    assert check_serializable([txn(1, [(0, ZERO)], [], 0, 1)], initial={0: ZERO}) is None
    assert check_serializable([txn(1, [(0, A)], [], 0, 1)], initial={0: ZERO}) is not None


def test_write_skew_rejected():
    # The canonical non-serializable OCC outcome: T1 reads x and writes
    # y, T2 reads y and writes x, both reads observe the initial state.
    # Either serial order forces one of them to see the other's write.
    history = [
        txn(1, [(0, ZERO)], [(1, A)], 0, 10),
        txn(2, [(1, ZERO)], [(0, B)], 0, 10),
    ]
    assert check_serializable(history, initial={0: ZERO, 1: ZERO}) is not None


def test_overlapping_transactions_commute_in_either_order():
    # Same shape as write skew but the reads admit one serial order
    # (T2 saw T1's write), so the history is fine.
    history = [
        txn(1, [(0, ZERO)], [(1, A)], 0, 10),
        txn(2, [(1, A)], [(0, B)], 0, 10),
    ]
    assert check_serializable(history, initial={0: ZERO, 1: ZERO}) is None


def test_real_time_order_enforced():
    # T2 starts strictly after T1's commit was acknowledged, so T2 must
    # serialize after T1 — reading the pre-T1 value is a strict
    # serializability violation even though a serial order exists.
    history = [
        txn(1, [], [(0, A)], 0, 5),
        txn(2, [(0, ZERO)], [], 10, 12),
    ]
    assert check_serializable(history, initial={0: ZERO}) is not None


def test_stale_read_fine_while_concurrent():
    # Same stale read, but T2 overlaps T1: it may serialize first.
    history = [
        txn(1, [], [(0, A)], 0, 5),
        txn(2, [(0, ZERO)], [], 3, 12),
    ]
    assert check_serializable(history, initial={0: ZERO}) is None


def test_pending_transaction_may_apply_or_not():
    # The commit ack was lost: both final states are explainable.
    history = [txn(1, [(0, ZERO)], [(0, A)], 0, None, status="pending")]
    for final in ({0: ZERO}, {0: A}):
        assert check_serializable(history, initial={0: ZERO}, final=final) is None
    # ... but the store can't hold a value nobody wrote.
    assert check_serializable(history, initial={0: ZERO}, final={0: B}) is not None


def test_torn_commit_caught_by_final_state():
    # One transaction wrote both keys; only one write landed.  No
    # client ever read the keys again — the final store scan is what
    # catches it.
    history = [txn(1, [], [(0, A), (1, A)], 0, 1)]
    assert check_serializable(history, initial={0: ZERO, 1: ZERO},
                              final={0: A, 1: A}) is None
    assert check_serializable(history, initial={0: ZERO, 1: ZERO},
                              final={0: A, 1: ZERO}) is not None


def test_aborted_writes_must_not_leak():
    history = [
        txn(1, [], [(0, A)], 0, 1),
        txn(2, [], [(0, B)], 2, 3, status="aborted"),
    ]
    assert check_serializable(history, initial={0: ZERO}, final={0: A}) is None
    # the aborted transaction's value in the store is a leak
    assert check_serializable(history, initial={0: ZERO}, final={0: B}) is not None


def test_response_before_invoke_rejected():
    assert check_serializable([txn(1, [], [(0, A)], 5, 1)]) is not None


def test_final_read_txn_serializes_after_everything():
    history = [txn(1, [], [(0, A)], 0, 1)]
    probe = final_read_txn(history, {0: A})
    assert probe.invoke > 1
    assert probe.writes == ()
    assert dict(probe.reads) == {0: A}


def test_disjoint_key_transactions_verify_without_search_blowup():
    # 200 transactions, each on its own key, all mutually concurrent:
    # naive Wing-Gong explores permutations; the partial-order
    # reduction must commit each solo transaction as a forced step.
    history = [txn(i, [(i, ZERO)], [(i, A)], 0, 1000) for i in range(200)]
    final = {i: A for i in range(200)}
    assert check_serializable(
        history, initial={i: ZERO for i in range(200)}, final=final
    ) is None


def test_forced_step_still_detects_a_bad_solo_read():
    # The reduction must not skip read validation on forced steps.
    history = [
        txn(1, [(0, B)], [(0, A)], 0, 1000),          # read nobody wrote
        txn(2, [(5, ZERO)], [(5, C)], 0, 1000),
    ]
    assert check_serializable(history, initial={0: ZERO, 5: ZERO}) is not None


# -- property: serial executions are always accepted -----------------------


@st.composite
def serial_history(draw):
    """Execute random transactions truly one-at-a-time and log them."""
    n_keys = draw(st.integers(2, 5))
    store = {k: ZERO for k in range(n_keys)}
    history = []
    values = [A, B, C]
    for i in range(draw(st.integers(1, 12))):
        keys = draw(
            st.lists(st.integers(0, n_keys - 1), min_size=1, max_size=3, unique=True)
        )
        wkeys = [k for k in keys if draw(st.booleans())]
        reads = tuple((k, store[k]) for k in keys)
        writes = tuple((k, values[draw(st.integers(0, 2))]) for k in wkeys)
        for k, v in writes:
            store[k] = v
        history.append(txn(i, reads, writes, i * 10.0, i * 10.0 + 1.0))
    return history, {k: store[k] for k in range(n_keys)}, n_keys


@settings(max_examples=60, deadline=None)
@given(serial_history())
def test_serial_executions_always_serializable(case):
    history, final, n_keys = case
    initial = {k: ZERO for k in range(n_keys)}
    assert check_serializable(history, initial=initial, final=final) is None


@settings(max_examples=60, deadline=None)
@given(serial_history(), st.randoms(use_true_random=False))
def test_serial_executions_survive_concurrent_timestamps(case, rnd):
    # Blur the real-time order: make every transaction concurrent with
    # every other.  A valid serial execution must stay accepted no
    # matter which permutation the checker has to discover.
    history, final, n_keys = case
    blurred = [
        TxnRecord(
            txn_id=t.txn_id, client=t.client, reads=t.reads, writes=t.writes,
            invoke=0.0, respond=1000.0, status=t.status,
        )
        for t in history
    ]
    rnd.shuffle(blurred)
    initial = {k: ZERO for k in range(n_keys)}
    assert check_serializable(blurred, initial=initial, final=final) is None
