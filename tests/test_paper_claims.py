"""Direct checks of claims made in the paper's prose (Sections 4-5.7).

Figure-level claims live in benchmarks/; these are the sentence-level
quantitative claims scattered through the text.
"""

import pytest

from repro.baselines import EchoCluster, EchoConfig
from repro.bench.figures import run_herd
from repro.bench.microbench import inbound_throughput
from repro.herd import HerdConfig
from repro.verbs import Transport
from repro.workloads import ZipfianGenerator


@pytest.fixture(scope="module")
def herd_peak():
    return run_herd(value_size=32, get_fraction=0.95, measure_ns=150_000.0)


def test_herd_supports_up_to_26_mops(herd_peak):
    """Abstract: 'supports up to 26 million key-value operations per
    second with 5 us average latency'."""
    assert 22.0 < herd_peak.mops < 28.0
    assert herd_peak.latency["mean_us"] < 10.0


def test_herd_throughput_close_to_native_read_throughput(herd_peak):
    """Abstract: 'full system throughput is similar to native RDMA read
    throughput' (26 Mops)."""
    native_read = inbound_throughput("READ", Transport.RC, 32)
    assert herd_peak.mops > 0.9 * native_read


def test_herd_at_peak_is_pio_bound(herd_peak):
    """Section 5.7: 'the server processes saturate the PCIe PIO
    throughput' — the PIO path is the busiest server resource."""
    util = {
        name: herd_peak.extra["util_%s" % name]
        for name in ("nic_ingress", "nic_egress", "pio", "dma")
    }
    assert util["pio"] == max(util.values())
    assert util["pio"] > 0.9


def test_echo_rate_upper_bounds_herd(herd_peak):
    """Section 3.2.2: ECHO throughput 'provides an upper bound on the
    throughput of a key-value cache based on one round trip'."""
    echo = EchoCluster(
        EchoConfig.wr_send(), n_clients=48, n_client_machines=16
    ).run().mops
    assert herd_peak.mops <= echo * 1.02


def test_single_core_herd_delivers_about_6_mops():
    """Section 5.7: 'using only a single core, HERD can deliver 6.3
    Mops'."""
    result = run_herd(
        value_size=32, get_fraction=0.95, n_server_processes=1, measure_ns=120_000.0
    )
    assert 4.5 < result.mops < 8.0


def test_five_cores_reach_95_percent_of_peak(herd_peak):
    """Section 5.6: 'HERD is able to deliver over 95% of its maximum
    throughput with 5 CPU cores'."""
    five = run_herd(
        value_size=32, get_fraction=0.95, n_server_processes=5, measure_ns=120_000.0
    )
    assert five.mops > 0.95 * herd_peak.mops


def test_per_core_throughput_at_six_cores_near_4_3(herd_peak):
    """Section 5.7: 'the system delivers 4.32 Mops per core' at 6."""
    per_core = herd_peak.mops / 6.0
    assert 3.5 < per_core < 5.0


def test_request_region_fits_in_l3():
    """Section 4.2: with NC = 200, NS = 16, W = 2 the request region is
    about 6 MB and fits inside the server's L3 cache."""
    config = HerdConfig(n_server_processes=16, window=2)
    size = config.region_bytes(n_clients=200)
    assert size == 200 * 16 * 2 * 1024
    assert size < 20 * (1 << 20)  # a Xeon E5-2450 has a 20 MB L3


def test_hottest_key_is_1e5_times_average():
    """Section 5.7: 'the most popular key is over 1e5 times more
    popular than the average' (8M-key universe, Zipf .99)."""
    gen = ZipfianGenerator(8_000_000, theta=0.99)
    assert gen.probability_of_rank(0) * 8_000_000 > 1e5


def test_workload_mix_does_not_change_herd_throughput():
    """Section 5.3: 'the throughput does not depend on the workload
    composition' for small items."""
    read_heavy = run_herd(get_fraction=0.95, measure_ns=100_000.0).mops
    write_heavy = run_herd(get_fraction=0.5, measure_ns=100_000.0).mops
    assert abs(read_heavy - write_heavy) / read_heavy < 0.05
