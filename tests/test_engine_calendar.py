"""The sorted-run calendar against the reference heap calendar.

The event-engine overhaul replaced the single-heap calendar inside
:class:`~repro.sim.engine.Simulator` with a sorted-run design.  The
dispatch contract — strict (time, seq) order — is what every
deterministic fingerprint in this repo rests on, so these tests drive
the new calendar and :class:`~repro.sim.engine.HeapSimulator` (the old
algorithm, kept as a reference oracle) side by side through adversarial
schedules and demand *identical* dispatch sequences.

They also pin the regressions fixed alongside the overhaul: late
``add_callback`` ordering, per-simulator anonymous store names, and the
``FifoServer.utilization`` overhang clamp.
"""

import random

import pytest

from repro.obs import MetricsRegistry
from repro.sim import FifoServer, HeapSimulator, Simulator, Store

#: delays with deliberate repeats: same-instant ties and zero-delay
#: (immediate) events are where calendar designs usually break
DELAYS = (0.0, 0.0, 0.5, 1.0, 1.0, 2.25, 3.0, 7.5)


def _drive(sim, seed, n_seed_events=40, max_spawn=300):
    """Seed a cascading schedule; callbacks keep scheduling more events.

    Returns the dispatch log.  The RNG draws happen inside callbacks,
    so the log (and the schedule itself) is a faithful trace of the
    calendar's dispatch order — any ordering divergence between two
    engines snowballs and is caught by a plain list comparison.
    """
    rng = random.Random(seed)
    log = []
    budget = [max_spawn]

    def cb(event):
        log.append((sim.now, event.value))
        if budget[0] > 0:
            budget[0] -= 1
            for _ in range(rng.randrange(3)):
                tag = budget[0] * 1000 + rng.randrange(100)
                sim.timeout(rng.choice(DELAYS), tag).add_callback(cb)

    for i in range(n_seed_events):
        sim.timeout(rng.choice(DELAYS), i).add_callback(cb)
    return log


def _run_scenario(sim_cls, seed, chunk=None, steps=()):
    sim = sim_cls()
    if chunk is not None:
        sim.RUN_CHUNK = chunk
    log = _drive(sim, seed)
    for until in steps:
        sim.run(until=until)
        log.append(("ran-until", until, sim.now))
    sim.run_until_idle()
    log.append(("idle", sim.now))
    return log


def test_dispatch_order_matches_heap_reference():
    for seed in range(10):
        assert _run_scenario(Simulator, seed) == _run_scenario(HeapSimulator, seed)


def test_dispatch_order_matches_with_tiny_run_chunks():
    # Shrinking RUN_CHUNK forces many window boundaries (including
    # boundaries that would split a timestamp tie without the tie
    # extension) through the same schedule.
    for chunk in (1, 2, 3, 5):
        for seed in (0, 1, 2):
            assert _run_scenario(Simulator, seed, chunk=chunk) == _run_scenario(
                HeapSimulator, seed
            )


def test_dispatch_order_matches_across_stepped_runs():
    steps = (0.0, 1.0, 1.0, 2.5, 9.0)
    for seed in (3, 4, 5):
        assert _run_scenario(Simulator, seed, steps=steps) == _run_scenario(
            HeapSimulator, seed, steps=steps
        )


def _producer_consumer(sim_cls):
    sim = sim_cls()
    store = Store(sim)
    log = []

    def producer():
        for i in range(50):
            yield sim.timeout(1.0 if i % 3 else 0.0)
            store.put(i)

    def consumer(tag):
        while True:
            item = yield store.get()
            log.append((sim.now, tag, item))
            if item == 49:
                return

    sim.process(producer())
    sim.process(consumer("a"))
    sim.process(consumer("b"))
    sim.run_until_idle()
    return log


def test_process_and_store_handoff_matches_heap_reference():
    assert _producer_consumer(Simulator) == _producer_consumer(HeapSimulator)


# ---------------------------------------------------------------------------
# late add_callback (post-dispatch) regression
# ---------------------------------------------------------------------------


def test_late_callbacks_batch_and_preserve_add_order():
    sim = Simulator()
    event = sim.event()
    event.succeed("v")
    sim.run_until_idle()
    got = []
    event.add_callback(lambda e: got.append(("a", e.value)))
    event.add_callback(lambda e: got.append(("b", e.value)))
    # both ride one deferred dispatch; neither runs synchronously
    assert got == []
    sim.run_until_idle()
    assert got == [("a", "v"), ("b", "v")]


def test_late_callback_runs_before_later_scheduled_events():
    sim = Simulator()
    event = sim.event()
    event.succeed("late")
    sim.run_until_idle()
    order = []
    sim.timeout(5.0, "future").add_callback(lambda e: order.append(e.value))
    event.add_callback(lambda e: order.append(e.value))
    sim.run_until_idle()
    assert order == ["late", "future"]


def test_late_callback_added_during_its_own_flush_still_runs():
    sim = Simulator()
    event = sim.event()
    event.succeed("x")
    sim.run_until_idle()
    got = []

    def first(e):
        got.append("first")
        e.add_callback(lambda _e: got.append("second"))

    event.add_callback(first)
    sim.run_until_idle()
    assert got == ["first", "second"]


# ---------------------------------------------------------------------------
# Store: anonymous metric names are per simulator
# ---------------------------------------------------------------------------


def test_anonymous_store_names_restart_per_simulator():
    # Pre-fix a process-global class counter kept incrementing, so the
    # metric names a run emitted depended on how many simulators had
    # already run in the same process.
    def build():
        sim = Simulator()
        sim.metrics = MetricsRegistry(sim)
        return [Store(sim).name for _ in range(3)]

    first = build()
    second = build()
    assert first == second == ["store1", "store2", "store3"]


def test_named_stores_do_not_consume_anonymous_numbers():
    sim = Simulator()
    sim.metrics = MetricsRegistry(sim)
    assert Store(sim, "cq").name == "cq"
    assert Store(sim).name == "store1"


# ---------------------------------------------------------------------------
# FifoServer.utilization: clamp service not yet performed
# ---------------------------------------------------------------------------


def test_utilization_clamps_in_flight_overhang():
    sim = Simulator()
    server = FifoServer(sim, "s")
    server.serve(100.0)
    sim.run(until=50.0)
    # 50 of the 100 ns have actually been worked; pre-fix this said 2.0
    assert server.utilization(50.0) == pytest.approx(1.0)


def test_utilization_clamps_each_busy_slot():
    sim = Simulator()
    server = FifoServer(sim, "s", capacity=2)
    server.serve(100.0)
    server.serve(60.0)
    sim.run(until=20.0)
    # each slot has worked 20 ns of its job: 40 / (20 * 2)
    assert server.utilization(20.0) == pytest.approx(1.0)


def test_utilization_unchanged_once_jobs_finish():
    sim = Simulator()
    server = FifoServer(sim, "s")
    server.serve(30.0)
    sim.run(until=60.0)
    assert server.utilization(60.0) == pytest.approx(0.5)
