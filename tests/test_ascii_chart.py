"""Tests for the terminal chart renderer."""

from repro.bench.ascii_chart import GLYPHS, chart
from repro.bench.report import FigureData, Series


def numeric_fig():
    return FigureData(
        "figN", "Numeric", "payload", "Mops",
        [
            Series("up", [(1, 1.0), (2, 2.0), (4, 4.0)]),
            Series("down", [(1, 4.0), (2, 2.0), (4, 1.0)]),
        ],
    )


def categorical_fig():
    return FigureData(
        "figC", "Categorical", "mix", "Mops",
        [
            Series("sysA", [("5% PUT", 10.0), ("50% PUT", 12.0)]),
            Series("sysB", [("5% PUT", 5.0)]),
        ],
    )


def test_numeric_figures_render_as_line_charts():
    out = chart(numeric_fig())
    assert "figN — Numeric" in out
    assert "* = up" in out and "o = down" in out
    # Axis runs from first to last x.
    assert "1" in out and "4" in out
    # The top row holds the max (4.0) and some glyph reaches it.
    top_row = out.splitlines()[1]
    assert top_row.strip().startswith("4.0")
    assert any(g in top_row for g in GLYPHS)


def test_line_chart_is_monotone_for_monotone_series():
    out = chart(
        FigureData("f", "t", "x", "y", [Series("s", [(1, 1.0), (2, 2.0), (3, 3.0)])])
    )
    rows = [line for line in out.splitlines() if "|" in line]
    positions = []
    for r, row in enumerate(rows):
        body = row.split("|", 1)[1]
        if "*" in body:
            positions.append((r, body.index("*")))
    # As the row index grows (y falls), the column must shrink.
    assert positions == sorted(positions, key=lambda rc: -rc[1])


def test_categorical_figures_render_as_bars():
    out = chart(categorical_fig())
    assert "5% PUT" in out and "50% PUT" in out
    assert "#" in out
    # Bars scale with value: sysA's 10.0 bar longer than sysB's 5.0.
    lines = out.splitlines()
    a_bar = next(l for l in lines if "sysA" in l and "10.00" in l)
    b_bar = next(l for l in lines if "sysB" in l)
    assert a_bar.count("#") > b_bar.count("#")


def test_missing_points_are_skipped_in_bars():
    out = chart(categorical_fig())
    # sysB has no 50% PUT point: exactly one sysB row.
    assert sum(1 for l in out.splitlines() if "sysB" in l) == 1


def test_all_zero_series_do_not_crash():
    out = chart(
        FigureData("z", "zeros", "x", "y", [Series("s", [(1, 0.0), (2, 0.0)])])
    )
    assert "zeros" in out
