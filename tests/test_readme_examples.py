"""The README's code must actually run (and the examples must parse)."""

import ast
import pathlib
import re

ROOT = pathlib.Path(__file__).parent.parent


def test_readme_quickstart_snippet_runs():
    readme = (ROOT / "README.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
    assert blocks, "README lost its quickstart snippet"
    namespace = {}
    exec(compile(blocks[0], "<readme>", "exec"), namespace)  # noqa: S102


def test_every_example_parses_and_has_a_main():
    examples = sorted((ROOT / "examples").glob("*.py"))
    assert len(examples) >= 8
    for path in examples:
        tree = ast.parse(path.read_text())
        names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in names, path.name
        # Runnable as a script.
        assert 'if __name__ == "__main__":' in path.read_text(), path.name


def test_docs_reference_real_modules():
    """DESIGN.md's experiment index must not drift from the code."""
    import importlib

    design = (ROOT / "DESIGN.md").read_text()
    for module in re.findall(r"`repro\.[a-z_.]+`", design):
        name = module.strip("`")
        # Strip a trailing attribute if it isn't importable as a module.
        try:
            importlib.import_module(name)
        except ImportError:
            parent, _, attr = name.rpartition(".")
            mod = importlib.import_module(parent)
            assert hasattr(mod, attr), name


def test_bench_targets_in_design_exist():
    design = (ROOT / "DESIGN.md").read_text()
    for target in re.findall(r"`benchmarks/(bench_[a-z0-9_]+\.py)`", design):
        assert (ROOT / "benchmarks" / target).exists(), target
