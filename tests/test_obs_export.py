"""Trace exporters (Chrome trace JSON, JSONL), ring buffer, capture."""

import json

from repro.bench.trace import Tracer
from repro.obs import capture, chrome_trace, write_chrome_trace, write_jsonl
from repro.sim import FifoServer, Simulator


def make_tracer():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.span("alpha", 1000.0, 3000.0, "work")
    tracer.mark("beta", "tick")
    return tracer


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------


def test_chrome_trace_schema():
    trace = chrome_trace(make_tracer(), pid=3, process_name="run3")
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    events = trace["traceEvents"]
    for event in events:
        assert {"ph", "name", "pid", "tid"} <= set(event)
        assert event["pid"] == 3
    # metadata names the process and each station-thread
    metas = [e for e in events if e["ph"] == "M"]
    assert metas[0]["args"]["name"] == "run3"
    thread_names = {e["args"]["name"] for e in metas[1:]}
    assert thread_names == {"alpha", "beta"}


def test_chrome_trace_span_is_complete_event_in_microseconds():
    trace = chrome_trace(make_tracer())
    span = next(e for e in trace["traceEvents"] if e["ph"] == "X")
    assert span["ts"] == 1.0  # 1000 ns
    assert span["dur"] == 2.0  # 2000 ns
    assert span["name"] == "work"


def test_chrome_trace_mark_is_instant_event():
    trace = chrome_trace(make_tracer())
    instant = next(e for e in trace["traceEvents"] if e["ph"] == "i")
    assert instant["s"] == "t"
    assert "dur" not in instant


def test_write_chrome_trace_is_loadable_json(tmp_path):
    path = tmp_path / "t.json"
    write_chrome_trace(make_tracer(), str(path))
    loaded = json.loads(path.read_text())
    assert isinstance(loaded["traceEvents"], list)


def test_write_jsonl(tmp_path):
    path = tmp_path / "t.jsonl"
    n = write_jsonl(make_tracer(), str(path), run="r0")
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert n == len(lines) == 2
    assert lines[0] == {
        "station": "alpha",
        "start_ns": 1000.0,
        "end_ns": 3000.0,
        "label": "work",
        "run": "r0",
    }


# ---------------------------------------------------------------------------
# Ring-buffer tracer mode
# ---------------------------------------------------------------------------


def test_tracer_ring_buffer_keeps_most_recent():
    sim = Simulator()
    tracer = Tracer(sim, max_events=10)
    for i in range(25):
        tracer.span("s", float(i), float(i) + 1.0)
    assert len(tracer.events) == 10
    assert tracer.events[0].start_ns == 15.0
    assert tracer.events[-1].start_ns == 24.0


def test_unbounded_tracer_unchanged():
    sim = Simulator()
    tracer = Tracer(sim)
    for i in range(25):
        tracer.span("s", float(i), float(i) + 1.0)
    assert len(tracer.events) == 25


# ---------------------------------------------------------------------------
# Ambient capture sessions
# ---------------------------------------------------------------------------


def test_capture_instruments_simulators_inside_scope():
    with capture(trace=True) as session:
        session.label = "expA"
        sim = Simulator()
        server = FifoServer(sim, "unit")
        server.serve(5.0)
        sim.run_until_idle()
    outside = Simulator()
    assert not hasattr(outside, "metrics")
    assert not hasattr(outside, "tracer")
    assert len(session.runs) == 1
    run = session.runs[0]
    assert run.label == "expA"
    assert run.registry.snapshot()["stations"]["unit"]["jobs"] == 1
    assert len(run.tracer.events) == 1


def test_capture_exports_metrics_and_trace_dicts():
    with capture(trace=True) as session:
        session.label = "expB"
        sim = Simulator()
        FifoServer(sim, "unit").serve(5.0)
        sim.run_until_idle()
    metrics = session.metrics_dict()
    assert metrics["version"] == 1
    assert metrics["runs"][0]["experiment"] == "expB"
    assert "unit" in metrics["runs"][0]["stations"]
    trace = session.trace_dict()
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_capture_nests_and_restores_previous_hook():
    with capture() as outer:
        Simulator()
        with capture() as inner:
            Simulator()
        Simulator()
    assert len(outer.runs) == 2
    assert len(inner.runs) == 1
    assert Simulator._obs_hook is None


def test_capture_trace_ring_limit_applies():
    with capture(trace=True, trace_limit=3) as session:
        sim = Simulator()
        server = FifoServer(sim, "unit")
        for _ in range(9):
            server.serve(1.0)
        sim.run_until_idle()
    assert len(session.runs[0].tracer.events) == 3
