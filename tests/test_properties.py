"""Cross-layer property tests (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.herd.config import partition_of
from repro.herd.wire import decode_request, encode_put, request_write_offset
from repro.hw import APT, Fabric, Machine
from repro.sim import Simulator
from repro.verbs import (
    Opcode,
    RdmaDevice,
    RecvRequest,
    Transport,
    VerbError,
    WorkRequest,
    connect_pair,
)
from repro.verbs.mr import MrTable
from repro.workloads.ycsb import keyhash


# ---------------------------------------------------------------------------
# memory registration
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=30))
def test_registered_regions_never_overlap(lengths):
    table = MrTable()
    regions = [table.register(length) for length in lengths]
    spans = sorted((mr.addr, mr.addr + mr.length) for mr in regions)
    for (a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:]):
        assert a_end <= b_start
    # And rkeys are unique.
    assert len({mr.rkey for mr in regions}) == len(regions)


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31), st.integers(min_value=1, max_value=16))
def test_partition_stable_and_in_range(item, n_partitions):
    kh = keyhash(item)
    p = partition_of(kh, n_partitions)
    assert 0 <= p < n_partitions
    assert p == partition_of(kh, n_partitions)


# ---------------------------------------------------------------------------
# HERD wire format
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=2 ** 31),
    st.binary(min_size=0, max_size=1000),
)
def test_put_roundtrips_through_a_slot(item, value):
    kh = keyhash(item)
    payload = encode_put(kh, value)
    slot = bytearray(1024)
    slot[request_write_offset(1024, payload):] = payload
    op = decode_request(bytes(slot))
    assert op is not None
    assert op.key == kh
    assert op.value == value


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=1024, max_size=1024))
def test_decode_request_never_crashes_unexpectedly(slot):
    """Random slot contents either decode, report a free slot, or raise
    ValueError (corrupt LEN) — never anything else."""
    try:
        decode_request(slot)
    except ValueError:
        pass


# ---------------------------------------------------------------------------
# verbs conservation laws
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["WRITE-UC", "WRITE-RC", "READ", "SEND-UC"]),
            st.integers(min_value=1, max_value=200),
            st.booleans(),
        ),
        min_size=1,
        max_size=25,
    )
)
def test_signaled_posts_equal_completions(batch):
    """Property: after quiescence, every signaled send-queue verb has
    exactly one completion, unsignaled ones have none, and all data
    landed where it was aimed."""
    sim = Simulator()
    fabric = Fabric(sim, APT)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    client = RdmaDevice(Machine(sim, fabric, "client"))
    target = server.register_memory(1 << 16)
    sink = client.register_memory(1 << 16)
    _suc, uc = connect_pair(server, client, Transport.UC)
    src_rc, rc = connect_pair(server, client, Transport.RC)

    del src_rc  # server-side RC endpoint is driven implicitly

    def source_kwargs(data, offset, size):
        if size <= 256:
            return {"payload": data, "inline": True}
        sink.write(offset, data)
        return {"local": (sink, offset, size)}

    expected_completions = 0
    recv_mr = server.register_memory(1 << 16)
    for i, (kind, size, signaled) in enumerate(batch):
        data = bytes([i % 255 + 1]) * size
        offset = (i * 256) % ((1 << 16) - 1024)
        if kind in ("WRITE-UC", "WRITE-RC"):
            qp = uc if kind == "WRITE-UC" else rc
            client.post_send(
                qp,
                WorkRequest.write(
                    raddr=target.addr + offset, rkey=target.rkey,
                    signaled=signaled, **source_kwargs(data, offset, size),
                ),
            )
        elif kind == "READ":
            signaled = True  # READs complete via their response
            client.post_send(
                rc,
                WorkRequest.read(
                    raddr=target.addr + offset, rkey=target.rkey,
                    local=(sink, offset, size),
                ),
            )
        else:  # SEND-UC
            server.post_recv(
                _suc, RecvRequest(wr_id=i, local=(recv_mr, offset, size + 64))
            )
            client.post_send(
                uc,
                WorkRequest.send(
                    signaled=signaled, **source_kwargs(data, offset, size)
                ),
            )
        if signaled:
            expected_completions += 1
    sim.run_until_idle()
    got = len(uc.send_cq) + len(rc.send_cq)
    assert got == expected_completions
