"""End-to-end ``herd-lab`` CLI flows on a selftest sweep."""

import json

import pytest

from repro.lab import Axis, SweepSpec
from repro.lab.cli import main as lab_main


@pytest.fixture
def spec_file(tmp_path):
    spec = SweepSpec(
        name="clitest",
        task="selftest",
        axes=[Axis("value", [1.0, 2.0]), Axis("flavor", ["a", "b"])],
        description="cli fixture sweep",
    )
    path = tmp_path / "clitest.json"
    path.write_text(json.dumps(spec.to_dict()))
    return str(path)


def store_args(tmp_path):
    return ["--store", str(tmp_path / "labstore")]


def test_list_exits_zero(capsys):
    assert lab_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "smoke" in out and "chaos" in out and "selftest" in out


def test_no_command_prints_help(capsys):
    assert lab_main([]) == 0
    assert "herd-lab" in capsys.readouterr().out


def test_unknown_spec_exits_two(tmp_path, capsys):
    assert lab_main(["run", "no-such-sweep"] + store_args(tmp_path)) == 2
    assert "unknown spec" in capsys.readouterr().err


def test_run_show_baseline_gate_roundtrip(tmp_path, capsys, spec_file):
    base = str(tmp_path / "base.json")
    bench = str(tmp_path / "BENCH_lab.json")

    assert lab_main(["run", spec_file, "--quiet"] + store_args(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "4 points (0 cached, 4 ran, 0 failed)" in out

    # second run: fully cached
    assert lab_main(["run", spec_file, "--quiet", "--workers", "2"]
                    + store_args(tmp_path)) == 0
    assert "(4 cached, 0 ran, 0 failed)" in capsys.readouterr().out

    assert lab_main(["show", spec_file] + store_args(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "4 stored points" in out and "mops=" in out

    assert lab_main(["baseline", spec_file, "--out", base] + store_args(tmp_path)) == 0
    capsys.readouterr()

    assert lab_main(
        ["gate", spec_file, "--baseline", base, "--bench-json", bench]
        + store_args(tmp_path)
    ) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    payload = json.loads(open(bench).read())
    assert payload["pass"] is True and payload["version"] == 2
    assert payload["specs"]["clitest"]["spec"] == "clitest"

    # perturb one stored metric beyond tolerance: the gate must fail
    perturbed = json.load(open(base))
    label = sorted(perturbed["points"])[0]
    perturbed["points"][label]["mops"] *= 2.0
    bad = str(tmp_path / "bad.json")
    json.dump(perturbed, open(bad, "w"))
    assert lab_main(
        ["gate", spec_file, "--baseline", bad, "--bench-json", bench]
        + store_args(tmp_path)
    ) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "REGRESSED" in out
    assert json.loads(open(bench).read())["pass"] is False


def test_show_without_results_exits_one(tmp_path, capsys, spec_file):
    assert lab_main(["show", spec_file] + store_args(tmp_path)) == 1
    assert "no results" in capsys.readouterr().err


def test_baseline_without_results_exits_one(tmp_path, capsys, spec_file):
    out = str(tmp_path / "base.json")
    assert lab_main(["baseline", spec_file, "--out", out] + store_args(tmp_path)) == 1
    assert "run `herd-lab run" in capsys.readouterr().err


def test_gate_with_missing_baseline_exits_two(tmp_path, capsys, spec_file):
    assert lab_main(
        ["gate", spec_file, "--baseline", str(tmp_path / "nope.json")]
        + store_args(tmp_path)
    ) == 2
    assert "cannot load baseline" in capsys.readouterr().err


def test_run_reports_failures_and_exits_one(tmp_path, capsys):
    spec = SweepSpec(
        name="failing", task="selftest", axes=[Axis("behavior", ["ok", "raise"])]
    )
    path = tmp_path / "failing.json"
    path.write_text(json.dumps(spec.to_dict()))
    assert lab_main(["run", str(path), "--quiet"] + store_args(tmp_path)) == 1
    captured = capsys.readouterr()
    assert "1 failed" in captured.out
    assert "RuntimeError" in captured.err
