"""Tests for the full (non-emulated) Pilaf and FaRM systems.

These go beyond the paper: the hash tables live inside registered
memory regions and clients traverse the real bytes with READs.
"""

import pytest

from repro.baselines.full_systems import (
    FarmFullCluster,
    FarmFullConfig,
    PilafFullCluster,
    PilafFullConfig,
)
from repro.workloads import Workload


def pilaf_full(n_keys=2000, get_fraction=0.95, clients=8, **cfg):
    config = PilafFullConfig(**cfg)
    cluster = PilafFullCluster(
        config,
        Workload(get_fraction=get_fraction, value_size=config.value_bytes, n_keys=n_keys),
        n_clients=clients,
        n_client_machines=4,
    )
    cluster.preload(range(n_keys))
    return cluster


def farm_full(n_keys=2000, get_fraction=0.95, clients=8, **cfg):
    config = FarmFullConfig(**cfg)
    cluster = FarmFullCluster(
        config,
        Workload(get_fraction=get_fraction, value_size=config.value_bytes, n_keys=n_keys),
        n_clients=clients,
        n_client_machines=4,
    )
    cluster.preload(range(n_keys))
    return cluster


# ---------------------------------------------------------------------------
# Pilaf full
# ---------------------------------------------------------------------------


def test_pilaf_full_gets_return_correct_bytes():
    """Every GET hit decodes to the exact stored value, end to end
    through remote bucket parsing and extent checksums."""
    cluster = pilaf_full(get_fraction=1.0)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 100
    assert result.extra["get_misses"] == 0
    assert result.extra["wrong_values"] == 0


def test_pilaf_full_probe_count_is_emergent():
    """The client probes exactly as many buckets as the real cuckoo
    placement requires — between 1 and 3, averaging in the paper's
    regime."""
    cluster = pilaf_full(get_fraction=1.0, n_keys=2000)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert 1.0 < result.extra["avg_probes"] < 2.0


def test_pilaf_full_table_lives_in_registered_region():
    cluster = pilaf_full()
    assert cluster.table.table is cluster.table_mr.buf
    assert cluster.table.extents is cluster.extents_mr.buf


def test_pilaf_full_puts_update_the_real_table():
    from repro.workloads.ycsb import keyhash, value_for

    cluster = pilaf_full(get_fraction=0.0, n_keys=64)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 30
    hits = 0
    for item in range(64):
        value = cluster.table.get(keyhash(item))
        if value is not None:
            assert value == value_for(item, 32)
            hits += 1
    assert hits > 32


def test_pilaf_full_throughput_close_to_emulated():
    """The paper's emulation claims to upper-bound the real system; our
    full build lands within ~25% of the emulated numbers (slightly
    above, in fact, because real probe counts at moderate load are
    below the assumed 1.6)."""
    from repro.baselines import PilafCluster, PilafConfig

    full = PilafFullCluster(
        PilafFullConfig(value_bytes=32),
        Workload(get_fraction=1.0, value_size=32, n_keys=4000),
    )
    full.preload(range(4000))
    full_mops = full.run().mops
    emulated = PilafCluster(
        PilafConfig(value_bytes=32), Workload(get_fraction=1.0, value_size=32)
    ).run().mops
    assert abs(full_mops - emulated) / emulated < 0.35


# ---------------------------------------------------------------------------
# FaRM full
# ---------------------------------------------------------------------------


def test_farm_full_gets_return_correct_bytes():
    cluster = farm_full(get_fraction=1.0)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 100
    assert result.extra["get_misses"] == 0
    assert result.extra["wrong_values"] == 0


def test_farm_full_table_lives_in_registered_region():
    cluster = farm_full()
    assert cluster.table.table is cluster.table_mr.buf


def test_farm_full_puts_update_the_real_table():
    from repro.workloads.ycsb import keyhash, value_for

    cluster = farm_full(get_fraction=0.0, n_keys=64)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 30
    assert result.extra["failed_inserts"] == 0
    found = sum(
        1 for item in range(64)
        if cluster.table.get(keyhash(item)) == value_for(item, 32)
    )
    assert found > 32


def test_farm_full_wrapped_neighborhoods_need_two_reads():
    """Keys homed near the table's end wrap; the client issues a second
    READ and still decodes correctly (the emulation prices this as one
    read — a documented simplification)."""
    cluster = farm_full(get_fraction=1.0, n_keys=4000)
    result = cluster.run(warmup_ns=0, measure_ns=150_000)
    gets = sum(c.gets for c in cluster.clients)
    reads = cluster.server_device.reads_served
    # Mostly one READ per GET, occasionally two for wrapped homes (up
    # to clients*window GETs are still mid-flight when the run stops).
    in_flight = len(cluster.clients) * cluster.config.window
    assert gets - in_flight <= reads <= gets * 1.2
    assert result.extra["wrong_values"] == 0


def test_farm_full_var_mode_two_real_reads():
    """VAR mode: the second READ follows the *actual* extent pointer
    stored in the slot, and the bytes come back right."""
    cluster = farm_full(get_fraction=1.0, n_keys=1500, inline_values=False)
    result = cluster.run(warmup_ns=0, measure_ns=100_000)
    assert result.ops > 100
    assert result.extra["get_misses"] == 0
    assert result.extra["wrong_values"] == 0
    gets = sum(c.gets for c in cluster.clients)
    # Two READs per GET (plus in-flight slack).
    assert cluster.server_device.reads_served > 1.8 * (gets - 64)


def test_farm_full_var_extents_live_in_registered_region():
    cluster = farm_full(inline_values=False)
    assert cluster.table.extents is cluster.extents_mr.buf


def test_farm_full_inline_beats_var_like_the_emulation():
    em = farm_full(get_fraction=1.0, n_keys=1500, inline_values=True)
    var = farm_full(get_fraction=1.0, n_keys=1500, inline_values=False)
    em_mops = em.run().mops
    var_mops = var.run().mops
    assert em_mops > 1.1 * var_mops


def test_farm_full_throughput_close_to_emulated():
    from repro.baselines import FarmCluster, FarmConfig

    full = FarmFullCluster(
        FarmFullConfig(value_bytes=32),
        Workload(get_fraction=1.0, value_size=32, n_keys=4000),
    )
    full.preload(range(4000))
    full_mops = full.run().mops
    emulated = FarmCluster(
        FarmConfig(value_bytes=32), Workload(get_fraction=1.0, value_size=32)
    ).run().mops
    assert abs(full_mops - emulated) / emulated < 0.25
