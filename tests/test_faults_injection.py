"""The fault injector against live verbs hardware and HERD clusters."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.herd import HerdCluster, HerdConfig
from repro.hw import APT, Fabric, Machine
from repro.sim import Simulator
from repro.verbs import (
    CqeStatus,
    QpState,
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
    connect_pair,
)
from repro.workloads import Workload


def make_world(n_clients=1):
    sim = Simulator()
    fabric = Fabric(sim, APT)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    clients = [RdmaDevice(Machine(sim, fabric, "c%d" % i)) for i in range(n_clients)]
    return sim, fabric, server, clients


def write_wr(mr, payload=b"hello"):
    return WorkRequest.write(
        raddr=mr.addr, rkey=mr.rkey, payload=payload, inline=True, signaled=False
    )


# ---------------------------------------------------------------------------
# Link-level faults on a bare fabric
# ---------------------------------------------------------------------------


def test_plan_drop_loses_the_write():
    sim, fabric, server, (client,) = make_world()
    plan = FaultPlan(seed=1).drop(dst="server", rate=1.0)
    injector = plan.install(fabric)
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(cqp, write_wr(mr))
    sim.run_until_idle(limit=10_000_000)
    assert mr.read(0, 5) == b"\x00" * 5
    assert injector.counts["link.drop"] == 1
    assert fabric.dropped == 1


def test_corruption_burns_ingress_capacity_then_discards():
    """A corrupted packet is not a drop: it crosses the wire, occupies
    the receiving NIC's ingress engine, and only then fails the ICRC."""
    sim, fabric, server, (client,) = make_world()
    injector = FaultPlan(seed=1).corrupt(dst="server", rate=1.0).install(fabric)
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(cqp, write_wr(mr))
    sim.run_until_idle(limit=10_000_000)
    assert mr.read(0, 5) == b"\x00" * 5   # payload never landed
    assert server.icrc_drops == 1          # ...but the NIC saw it
    assert fabric.corrupted == 1
    assert injector.counts["link.corrupt"] == 1


def test_corrupt_packets_count_against_the_wire():
    sim, fabric, server, (client,) = make_world()
    FaultPlan(seed=1).corrupt(rate=1.0).install(fabric)
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    before = fabric.ports["c0"].tx_packets
    client.post_send(cqp, write_wr(mr))
    sim.run_until_idle(limit=10_000_000)
    assert fabric.ports["c0"].tx_packets == before + 1


def test_duplicate_delivers_extra_copies():
    sim, fabric, server, (client,) = make_world()
    injector = (
        FaultPlan(seed=1).duplicate(dst="server", rate=1.0, copies=1).install(fabric)
    )
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(cqp, write_wr(mr))
    sim.run_until_idle(limit=10_000_000)
    assert server.writes_received == 2
    assert fabric.duplicated == 1
    assert injector.counts["link.duplicate"] == 1


def test_delay_postpones_delivery():
    sim, fabric, server, (client,) = make_world()
    FaultPlan(seed=1).delay(50_000.0, dst="server").install(fabric)
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(cqp, write_wr(mr))
    sim.run(until=40_000.0)
    assert mr.read(0, 5) == b"\x00" * 5   # still in flight
    sim.run_until_idle(limit=10_000_000)
    assert mr.read(0, 5) == b"hello"


def test_windowed_rule_stops_matching_after_end():
    sim, fabric, server, (client,) = make_world()
    FaultPlan(seed=1).drop(dst="server", rate=1.0, end_ns=1_000.0).install(fabric)
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    sim.call_in(5_000.0, lambda: client.post_send(cqp, write_wr(mr)))
    sim.run_until_idle(limit=10_000_000)
    assert mr.read(0, 5) == b"hello"


def test_legacy_knobs_still_work_without_a_hook():
    sim, fabric, server, (client,) = make_world()
    fabric.bit_error_rate = 1.0
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(cqp, write_wr(mr))
    sim.run_until_idle(limit=10_000_000)
    assert mr.read(0, 5) == b"\x00" * 5
    assert fabric.dropped == 1


def test_second_injector_on_same_fabric_is_rejected():
    sim, fabric, server, clients = make_world()
    FaultPlan(seed=1).drop(rate=0.5).install(fabric)
    with pytest.raises(RuntimeError):
        FaultPlan(seed=2).drop(rate=0.5).install(fabric)


def test_deactivate_stops_injection():
    sim, fabric, server, (client,) = make_world()
    injector = FaultPlan(seed=1).drop(dst="server", rate=1.0).install(fabric)
    injector.deactivate()
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(cqp, write_wr(mr))
    sim.run_until_idle(limit=10_000_000)
    assert mr.read(0, 5) == b"hello"


# ---------------------------------------------------------------------------
# NIC / QP faults
# ---------------------------------------------------------------------------


def test_nic_stall_delays_ingress_processing():
    sim, fabric, server, (client,) = make_world()
    plan = FaultPlan(seed=1).nic_stall(
        "server", engine="ingress", at_ns=0.0, duration_ns=80_000.0
    )
    injector = FaultInjector(plan, fabric, devices={"server": server, "c0": client})
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    client.post_send(cqp, write_wr(mr))
    sim.run(until=40_000.0)
    assert mr.read(0, 5) == b"\x00" * 5   # stuck behind the stalled engine
    sim.run_until_idle(limit=10_000_000)
    assert mr.read(0, 5) == b"hello"
    assert injector.counts["nic_stall"] == 1


def test_qp_error_flushes_sends_and_drops_inbound():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    cqp.transition_to_error()
    assert cqp.state is QpState.ERROR
    wr = WorkRequest.write(
        raddr=mr.addr, rkey=mr.rkey, payload=b"x", inline=True, signaled=True, wr_id=9
    )
    client.post_send(cqp, wr)
    sim.run_until_idle(limit=10_000_000)
    (cqe,) = cqp.send_cq.poll()
    assert cqe.status is CqeStatus.FLUSH_ERROR and cqe.wr_id == 9
    assert cqp.flushed_wrs == 1
    assert mr.read(0, 1) == b"\x00"


def test_qp_error_rule_fires_and_recovers():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.UC)
    plan = FaultPlan(seed=1).qp_error(
        "c0", qpn=cqp.qpn, at_ns=0.0, recover_after_ns=50_000.0
    )
    injector = FaultInjector(plan, fabric, devices={"server": server, "c0": client})
    sim.run(until=10_000.0)
    assert cqp.state is QpState.ERROR
    sim.run(until=60_000.0)
    assert cqp.state is QpState.RTS
    assert injector.counts == {"qp_error": 1, "qp_recovery": 1}
    client.post_send(cqp, write_wr(mr))
    sim.run_until_idle(limit=10_000_000)
    assert mr.read(0, 5) == b"hello"


def test_inbound_packets_to_error_qp_are_discarded():
    sim, fabric, server, (client,) = make_world()
    mr = server.register_memory(4096)
    sqp, cqp = connect_pair(server, client, Transport.UC)
    sqp.transition_to_error()
    client.post_send(cqp, write_wr(mr))
    sim.run_until_idle(limit=10_000_000)
    assert mr.read(0, 5) == b"\x00" * 5
    assert server.qp_error_drops == 1


def test_rnr_rule_drops_sends_without_consuming_the_recv():
    sim, fabric, server, (client,) = make_world()
    plan = FaultPlan(seed=1).rnr("c0", rate=1.0, end_ns=50_000.0)
    injector = FaultInjector(plan, fabric, devices={"server": server, "c0": client})
    rq = client.create_qp(Transport.UD)
    rmr = client.register_memory(4096)
    client.post_recv(rq, RecvRequest(wr_id=1, local=(rmr, 0, 1024)))
    sq = server.create_qp(Transport.UD)
    server.post_send(
        sq,
        WorkRequest.send(payload=b"resp", inline=True, signaled=False, ah=("c0", rq.qpn)),
    )
    sim.run_until_idle(limit=10_000_000)
    assert rq.rnr_drops == 1
    assert injector.counts["rnr_drop"] == 1
    assert len(rq.recv_queue) == 1  # the posted RECV survived
    # After the window, a retried SEND lands in that same RECV.
    server.post_send(
        sq,
        WorkRequest.send(payload=b"resp", inline=True, signaled=False, ah=("c0", rq.qpn)),
    )
    sim.run_until_idle(limit=100_000_000)
    assert len(rq.recv_cq) == 1


# ---------------------------------------------------------------------------
# RC retransmission under injected loss (satellite: duplicate-ACK branch)
# ---------------------------------------------------------------------------


def test_rc_retransmits_through_plan_injected_loss():
    sim, fabric, server, (client,) = make_world()
    FaultPlan(seed=5).drop(dst="server", rate=0.5, packet_kind="WRITE").install(fabric)
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(cqp, write_wr(mr, b"durable"))
    sim.run_until_idle(limit=100_000_000)
    assert mr.read(0, 7) == b"durable"


def test_duplicated_acks_hit_the_duplicate_ack_branch():
    """An ACK delivered twice: the second finds nothing unacked and is
    counted, not misapplied to the next WR."""
    sim, fabric, server, (client,) = make_world()
    FaultPlan(seed=5).duplicate(src="server", rate=1.0, packet_kind="ACK").install(
        fabric
    )
    mr = server.register_memory(4096)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    client.post_send(
        cqp,
        WorkRequest.write(
            raddr=mr.addr, rkey=mr.rkey, payload=b"x", inline=True, signaled=True
        ),
    )
    sim.run_until_idle(limit=100_000_000)
    assert mr.read(0, 1) == b"x"
    assert client.duplicate_acks == 1
    assert len(cqp.send_cq.poll()) == 1  # exactly one completion
    assert not cqp.unacked


# ---------------------------------------------------------------------------
# HERD client under duplication (satellite: RECV-replenish accounting)
# ---------------------------------------------------------------------------


def duplicating_cluster(seed=21):
    cluster = HerdCluster(
        HerdConfig(n_server_processes=2, window=2, retry_timeout_ns=40_000.0),
        n_client_machines=2,
        seed=seed,
    )
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=256))
    cluster.preload(range(256), 32)
    cluster.install_faults(
        FaultPlan(seed=seed).duplicate(src="server", rate=0.1, dup_delay_ns=2_000.0)
    )
    return cluster


def test_duplicate_responses_are_absorbed_and_recvs_replenished():
    cluster = duplicating_cluster()
    result = cluster.run(warmup_ns=0, measure_ns=400_000)
    dupes = sum(c.duplicate_responses for c in cluster.clients)
    assert dupes > 0
    assert result.ops > 300
    assert sum(c.failures for c in cluster.clients) == 0
    # RECV accounting: one posted RECV per pending (or quarantined) op,
    # per server — a leak here would strand the next response.
    for client in cluster.clients:
        for s in range(cluster.config.n_server_processes):
            assert len(client._recv_order[s]) == len(client._pending[s]) + len(
                client._quarantined[s]
            )


def test_duplication_never_completes_an_op_twice():
    cluster = duplicating_cluster(seed=22)
    cluster.run(warmup_ns=0, measure_ns=400_000)
    for client in cluster.clients:
        assert client.completed + client.outstanding + client.abandoned == client.issued


def test_multi_burst_rnr_keeps_recv_accounting_balanced():
    """Repeated RECV-exhaustion bursts at the clients must not leak or
    strand RECVs.

    An RNR drop discards the server's response SEND *without* consuming
    the client's posted RECV, so the retry path re-WRITEs the request
    while the original RECV is still outstanding — the redelivered
    response must land in a rotation-allocated slot and the
    posted-RECV-per-pending-op invariant must survive arbitrarily many
    bursts (a single-window version of this shipped with the RNR rule;
    the multi-burst variant catches state that only corrupts when the
    window *re-opens* after recovery).
    """
    cluster = HerdCluster(
        HerdConfig(n_server_processes=2, window=2, retry_timeout_ns=40_000.0),
        n_client_machines=2,
        seed=31,
    )
    cluster.add_clients(4, Workload(get_fraction=0.5, value_size=32, n_keys=256))
    cluster.preload(range(256), 32)
    plan = FaultPlan(seed=31)
    # three separate exhaustion bursts on each client machine, with
    # recovery gaps between them
    for machine in ("cm0", "cm1"):
        plan.rnr(machine, rate=0.8, start_ns=50_000.0, end_ns=90_000.0)
        plan.rnr(machine, rate=0.8, start_ns=150_000.0, end_ns=190_000.0)
        plan.rnr(machine, rate=0.8, start_ns=250_000.0, end_ns=290_000.0)
    cluster.install_faults(plan)
    result = cluster.run(warmup_ns=0, measure_ns=400_000)
    assert cluster.injector.counts.get("rnr_drop", 0) > 0
    # the cluster still makes progress through the bursts...
    assert result.ops > 200
    assert sum(c.failures for c in cluster.clients) == 0
    for client in cluster.clients:
        # ...the op accounting identity holds...
        assert client.completed + client.outstanding + client.abandoned == client.issued
        # ...and no RECV was leaked or stranded by any burst
        for s in range(cluster.config.n_server_processes):
            assert len(client._recv_order[s]) == len(client._pending[s]) + len(
                client._quarantined[s]
            )


# ---------------------------------------------------------------------------
# Overlapping fault windows
# ---------------------------------------------------------------------------


def test_overlapping_crash_windows_recover_at_the_union_end():
    # Regression: two overlapping crash windows on the same server used
    # to revive it when the *first* window's recovery fired, shrinking
    # the outage to whichever window ended earliest.  The injector now
    # holds the server down until the union of all windows has passed.
    cluster = HerdCluster(
        HerdConfig(n_server_processes=2, retry_timeout_ns=40_000.0),
        n_client_machines=1,
        seed=3,
    )
    cluster.add_clients(2, Workload(get_fraction=0.5, value_size=32, n_keys=64))
    cluster.wire()
    cluster.preload(range(64), 32)
    plan = (
        FaultPlan(seed=3)
        .crash_server(0, at_ns=40_000.0, down_ns=100_000.0)   # [40k, 140k)
        .crash_server(0, at_ns=80_000.0, down_ns=100_000.0)   # [80k, 180k)
    )
    cluster.install_faults(plan)
    for client in cluster.clients:
        client.start()
    for server in cluster.servers:
        server.start()
    server = cluster.servers[0]
    sim = cluster.sim
    sim.run(until=150_000.0)
    # past the first window's end, still inside the second: the first
    # recovery event must have been suppressed
    assert not server.alive
    sim.run(until=185_000.0)
    assert server.alive
    # the second crash event found the server already dead, so exactly
    # one crash and one recovery are counted
    assert (server.crashes, server.recoveries) == (1, 1)
    assert cluster.injector.counts.get("server_crash", 0) == 1
    assert cluster.injector.counts.get("server_recovery", 0) == 1
