"""Tests for workload generation: mixes, key hashing, Zipfian skew."""

import collections

import pytest

from repro.kv.hashing import hash_key, mix64
from repro.workloads import OpType, Workload, ZipfianGenerator
from repro.workloads.ycsb import Operation, keyhash, value_for
from repro.workloads.zipf import zeta


# ---------------------------------------------------------------------------
# hashing
# ---------------------------------------------------------------------------


def test_mix64_deterministic_and_avalanching():
    assert mix64(42) == mix64(42)
    # Flipping one input bit flips many output bits.
    diff = mix64(42) ^ mix64(43)
    assert bin(diff).count("1") > 16


def test_hash_key_salts_are_independent():
    key = b"k" * 16
    values = {hash_key(key, salt) for salt in range(8)}
    assert len(values) == 8


def test_hash_key_handles_wide_keys():
    assert hash_key(b"x" * 64) != hash_key(b"y" * 64)


# ---------------------------------------------------------------------------
# keyhash / values
# ---------------------------------------------------------------------------


def test_keyhash_is_16_bytes_and_nonzero():
    """HERD forbids the all-zero keyhash (Section 4.2: zero means
    'empty slot')."""
    for item in range(1000):
        kh = keyhash(item)
        assert len(kh) == 16
        assert kh != b"\x00" * 16


def test_keyhash_distinct():
    hashes = {keyhash(i) for i in range(10_000)}
    assert len(hashes) == 10_000


def test_value_for_deterministic_and_sized():
    assert value_for(7, 32) == value_for(7, 32)
    assert len(value_for(7, 32)) == 32
    assert len(value_for(7, 5)) == 5
    assert value_for(7, 32) != value_for(8, 32)
    assert value_for(7, 32, version=1) != value_for(7, 32, version=0)


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


def test_workload_validation():
    with pytest.raises(ValueError):
        Workload(get_fraction=1.5)
    with pytest.raises(ValueError):
        Workload(distribution="pareto")
    with pytest.raises(ValueError):
        Workload(value_size=1025)  # 1 KB is every system's max item


def test_ycsb_presets():
    a = Workload.ycsb("A")
    b = Workload.ycsb("b")
    c = Workload.ycsb("C", value_size=100)
    assert a.get_fraction == 0.50 and a.distribution == "zipfian"
    assert b.get_fraction == 0.95
    assert c.get_fraction == 1.00 and c.value_size == 100
    with pytest.raises(ValueError):
        Workload.ycsb("F")


def test_read_intensive_mix():
    """95% GET / 5% PUT within statistical tolerance."""
    stream = Workload(get_fraction=0.95).stream(seed=1)
    ops = [stream.next_op() for _ in range(20_000)]
    gets = sum(1 for o in ops if o.op is OpType.GET)
    assert 0.94 <= gets / len(ops) <= 0.96


def test_write_intensive_mix():
    stream = Workload(get_fraction=0.50).stream(seed=1)
    ops = [stream.next_op() for _ in range(20_000)]
    gets = sum(1 for o in ops if o.op is OpType.GET)
    assert 0.48 <= gets / len(ops) <= 0.52


def test_puts_carry_values_gets_do_not():
    stream = Workload(get_fraction=0.5, value_size=48).stream(seed=2)
    for _ in range(100):
        op = stream.next_op()
        if op.op is OpType.PUT:
            assert op.value is not None and len(op.value) == 48
        else:
            assert op.value is None


def test_streams_are_deterministic_per_seed():
    w = Workload()
    a = [w.stream(seed=5).next_op() for _ in range(1)]
    b = [w.stream(seed=5).next_op() for _ in range(1)]
    assert a == b
    ops_a = list(zip(range(50), w.stream(seed=5)))
    ops_b = list(zip(range(50), w.stream(seed=5)))
    assert ops_a == ops_b


def test_streams_differ_across_seeds():
    w = Workload()
    a = [w.stream(seed=1).next_op() for _ in range(10)]
    b = [w.stream(seed=2).next_op() for _ in range(10)]
    assert a != b


# ---------------------------------------------------------------------------
# Zipf
# ---------------------------------------------------------------------------


def test_zeta_small_values():
    assert zeta(1, 0.99) == pytest.approx(1.0)
    assert zeta(2, 0.99) == pytest.approx(1.0 + 0.5 ** 0.99)


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfianGenerator(1)
    with pytest.raises(ValueError):
        ZipfianGenerator(100, theta=1.5)


def test_zipf_rank_zero_is_most_popular():
    gen = ZipfianGenerator(100_000, theta=0.99, seed=3, scrambled=False)
    counts = collections.Counter(gen.next_rank() for _ in range(50_000))
    assert counts[0] > counts.get(10, 0) > counts.get(1000, 0)


def test_zipf_matches_analytic_head_probabilities():
    gen = ZipfianGenerator(10_000, theta=0.99, seed=4, scrambled=False)
    n = 200_000
    counts = collections.Counter(gen.next_rank() for _ in range(n))
    # Gray's sampler is exact for ranks 0 and 1 and approximates the
    # continuous tail elsewhere (rank 2-4 carry a known ~15-25% bias;
    # YCSB inherits the same behaviour).
    for rank in (0, 1, 10):
        expect = gen.probability_of_rank(rank)
        got = counts[rank] / n
        assert abs(got - expect) / expect < 0.15


def test_zipf_hot_key_dominates_average_as_in_section_5_7():
    """Section 5.7: the most popular key is over 1e5 times more popular
    than the average key (with an 8M-key universe)."""
    n = 8_000_000
    gen = ZipfianGenerator(n, theta=0.99, seed=0)
    top = gen.probability_of_rank(0)
    average = 1.0 / n
    assert top / average > 1e5


def test_scrambling_spreads_hot_ranks_across_partitions():
    """Section 5.7: with 6 partitions, skewed load spreads well —
    the most loaded partition stays within ~1.5x of the least."""
    gen = ZipfianGenerator(1 << 20, theta=0.99, seed=5, scrambled=True)
    loads = collections.Counter(gen.next_item() % 6 for _ in range(60_000))
    most, least = max(loads.values()), min(loads.values())
    assert most / least < 1.6


def test_unscrambled_ranks_stay_in_range():
    gen = ZipfianGenerator(1000, seed=6, scrambled=False)
    assert all(0 <= gen.next_rank() < 1000 for _ in range(10_000))


def test_scrambled_items_stay_in_range():
    gen = ZipfianGenerator(1000, seed=7, scrambled=True)
    assert all(0 <= gen.next_item() < 1000 for _ in range(10_000))


# ---------------------------------------------------------------------------
# batched generation: bit-for-bit the scalar trace
# ---------------------------------------------------------------------------
#
# WorkloadStream synthesises operations in numpy batches.  The oracle
# below replays the *scalar* semantics — one RNG draw at a time through
# the public scalar helpers — so these tests fail if batching ever
# reorders a draw or the vectorised mix64 drifts by a bit.


def _scalar_ops(workload, seed, count):
    import random as _random

    rng = _random.Random(mix64(seed ^ 0xC0FFEE))
    zipf = None
    if workload.distribution == "zipfian":
        zipf = ZipfianGenerator(
            workload.n_keys, theta=workload.zipf_theta, seed=seed, scrambled=True
        )
    ops = []
    for _ in range(count):
        item = zipf.next_item() if zipf is not None else rng.randrange(workload.n_keys)
        if rng.random() < workload.get_fraction:
            ops.append(Operation(OpType.GET, keyhash(item), None, item=item))
        else:
            ops.append(
                Operation(
                    OpType.PUT,
                    keyhash(item),
                    value_for(item, workload.value_size),
                    item=item,
                )
            )
    return ops


def test_batched_stream_matches_scalar_oracle_uniform():
    workload = Workload(get_fraction=0.7, value_size=24, n_keys=5000)
    stream = workload.stream(seed=42)
    expected = _scalar_ops(workload, 42, 1000)
    assert [stream.next_op() for _ in range(1000)] == expected


def test_batched_stream_matches_scalar_oracle_zipfian():
    workload = Workload(
        get_fraction=0.5, value_size=32, n_keys=10_000, distribution="zipfian"
    )
    stream = workload.stream(seed=9)
    expected = _scalar_ops(workload, 9, 1000)
    assert [stream.next_op() for _ in range(1000)] == expected


def test_batch_size_does_not_change_the_trace():
    workload = Workload(get_fraction=0.5, value_size=16, n_keys=512)
    reference_stream = workload.stream(seed=3)
    reference = [reference_stream.next_op() for _ in range(50)]
    for batch in (1, 2, 7, 50, 64):
        stream = workload.stream(seed=3)
        stream.BATCH = batch  # instance override, exercises refills
        assert [stream.next_op() for _ in range(50)] == reference


def test_zipf_next_items_matches_scalar_draws():
    a = ZipfianGenerator(4096, theta=0.99, seed=13, scrambled=True)
    b = ZipfianGenerator(4096, theta=0.99, seed=13, scrambled=True)
    assert a.next_items(500) == [b.next_item() for _ in range(500)]
    # and the RNG streams stay aligned afterwards
    assert a.next_item() == b.next_item()


def test_batched_operations_support_dataclass_replace():
    import dataclasses

    stream = Workload(get_fraction=0.0, value_size=8).stream(seed=1)
    op = stream.next_op()
    clone = dataclasses.replace(op, item=123)
    assert clone.item == 123
    assert clone.key == op.key and clone.value == op.value
