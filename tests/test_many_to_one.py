"""Section 3.3's many-to-one experiment.

"In a different experiment, we used 1600 client processes spread over
16 machines to issue WRITEs over UC to one server process. ... This
configuration also achieves 30 Mops."  The point: *responder-side*
state is small, so one polling target scales to a huge inbound fan-in.
We run a scaled version (hundreds of client processes on 16 machines,
all writing to one region) and check the rate stays at the NIC's peak.
"""

import pytest

from repro.hw import APT, Fabric, Machine
from repro.sim import RateMeter, Simulator
from repro.verbs import RdmaDevice, Transport, WorkRequest, connect_pair


def many_to_one(n_client_processes: int, n_machines: int = 16, payload: int = 32):
    sim = Simulator()
    fabric = Fabric(sim, APT)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    warm, end = 40_000.0, 200_000.0
    meter = RateMeter(warm, end)
    server.write_done_hook = lambda pkt: meter.record(sim.now)
    region = server.register_memory(1 << 20)
    machines = [
        RdmaDevice(Machine(sim, fabric, "cm%d" % i)) for i in range(n_machines)
    ]
    data = b"m" * payload
    for proc in range(n_client_processes):
        client = machines[proc % n_machines]
        _sqp, cqp = connect_pair(server, client, Transport.UC)

        def loop(dev=client, qp=cqp):
            posted = 0
            outstanding = 0
            while True:
                while outstanding < 4:
                    posted += 1
                    signaled = posted % 4 == 0
                    wr = WorkRequest.write(
                        raddr=region.addr, rkey=region.rkey,
                        payload=data, inline=True, signaled=signaled,
                    )
                    yield from dev.post_send_timed(qp, wr)
                    outstanding += 1
                yield qp.send_cq.pop()
                yield sim.timeout(APT.cq_poll_ns)
                outstanding -= 4

        sim.process(loop())
    sim.run(until=end)
    return meter.mops(), server.machine.qp_cache.hit_rate()


@pytest.mark.slow
def test_hundreds_of_writers_to_one_target_sustain_peak():
    mops, hit_rate = many_to_one(200)
    assert mops > 30.0
    # 200 responder contexts fit the NIC cache comfortably.
    assert hit_rate > 0.95


@pytest.mark.slow
def test_fan_in_beyond_cache_capacity_degrades_but_does_not_collapse():
    mops_small, _ = many_to_one(100)
    mops_large, hit_rate = many_to_one(400)
    assert hit_rate < 0.95                # cache is overflowing
    assert mops_large > 0.4 * mops_small  # random replacement: graceful
