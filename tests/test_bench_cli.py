"""CLI regression tests: up-front validation, ``all`` expansion, and
the ``--metrics`` / ``--trace`` export flags."""

import json

import pytest

from repro.bench import cli
from repro.bench.report import FigureData, Series
from repro.sim import FifoServer, Simulator


def fake_figure(scale="bench"):
    sim = Simulator()
    FifoServer(sim, "unit").serve(5.0)
    sim.run_until_idle()
    return FigureData(
        exp_id="figx",
        title="fake",
        x_label="x",
        y_label="y",
        series=[Series("s", [(1, 2.0)])],
    )


# ---------------------------------------------------------------------------
# experiment-id resolution
# ---------------------------------------------------------------------------


def test_unknown_id_rejected_before_any_work(monkeypatch, capsys):
    """Pre-fix, ``herd-bench fig5 fig99`` ran fig5 (minutes of sweep)
    and only then exited 2."""
    ran = []
    monkeypatch.setitem(cli.FIGURES, "fig5", lambda scale: ran.append(scale))
    assert cli.main(["fig5", "fig99"]) == 2
    assert ran == []
    assert "fig99" in capsys.readouterr().err


def test_resolve_names_every_unknown_id():
    with pytest.raises(ValueError) as excinfo:
        cli.resolve_experiments(["fig99", "fig2", "bogus"])
    assert "'fig99'" in str(excinfo.value)
    assert "'bogus'" in str(excinfo.value)


def test_resolve_expands_all_anywhere():
    """``all`` used to be honoured only as the sole argument."""
    everything = sorted(cli.TABLES) + sorted(cli.FIGURES)
    assert cli.resolve_experiments(["all"]) == everything
    mixed = cli.resolve_experiments(["table1", "all"])
    assert mixed == ["table1"] + [e for e in everything if e != "table1"]
    assert len(mixed) == len(set(mixed))


# ---------------------------------------------------------------------------
# --metrics / --trace export
# ---------------------------------------------------------------------------


def test_metrics_and_trace_flags_write_valid_json(monkeypatch, tmp_path):
    monkeypatch.setitem(cli.FIGURES, "figx", fake_figure)
    m_path = tmp_path / "m.json"
    t_path = tmp_path / "t.json"
    rc = cli.main(["figx", "--metrics", str(m_path), "--trace", str(t_path)])
    assert rc == 0

    metrics = json.loads(m_path.read_text())
    assert metrics["version"] == 1
    (run,) = metrics["runs"]
    assert run["experiment"] == "figx"
    station = run["stations"]["unit"]
    assert station["jobs"] == 1
    assert station["queue_delay_ns"]["count"] == 1

    trace = json.loads(t_path.read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_trace_jsonl_suffix_writes_json_lines(monkeypatch, tmp_path):
    monkeypatch.setitem(cli.FIGURES, "figx", fake_figure)
    t_path = tmp_path / "t.jsonl"
    assert cli.main(["figx", "--trace", str(t_path)]) == 0
    lines = [json.loads(line) for line in t_path.read_text().splitlines()]
    assert lines and lines[0]["station"] == "unit"
    assert lines[0]["run"] == "figx#0"


def test_unwritable_output_path_fails_before_any_work(monkeypatch, capsys, tmp_path):
    ran = []
    monkeypatch.setitem(cli.FIGURES, "figx", lambda scale: ran.append(scale))
    bad = str(tmp_path / "no" / "such" / "dir" / "m.json")
    assert cli.main(["figx", "--metrics", bad]) == 2
    assert ran == []
    assert "cannot write" in capsys.readouterr().err


def test_no_flags_leaves_simulators_uninstrumented(monkeypatch):
    seen = []
    monkeypatch.setitem(
        cli.FIGURES,
        "figx",
        lambda scale: (seen.append(Simulator()), fake_figure(scale))[1],
    )
    assert cli.main(["figx"]) == 0
    assert not hasattr(seen[0], "metrics")
    assert not hasattr(seen[0], "tracer")


# ---------------------------------------------------------------------------
# txn experiments
# ---------------------------------------------------------------------------


def test_txn_experiments_listed(capsys):
    assert cli.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "figtxn" in out
    assert "figtxnq" in out


def test_run_txn_rejects_unknown_dataplane_naming_the_choices():
    from repro.bench.figures import run_txn

    with pytest.raises(ValueError) as excinfo:
        run_txn(dataplane="dcqcn")
    message = str(excinfo.value)
    assert "dcqcn" in message
    assert "rpc" in message and "onesided" in message
