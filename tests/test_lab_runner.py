"""Runner behavior: determinism, caching, and the failure paths."""

import json

import pytest

from repro.lab import Axis, ResultStore, SweepSpec, resolve_spec, run_sweep
from repro.lab.store import canonical_record


def selftest_spec(n=6, name="st"):
    return SweepSpec(
        name=name, task="selftest",
        axes=[Axis("value", [float(i + 1) for i in range(n)])],
    )


def canonical_store(store, spec_name):
    return [canonical_record(r) for r in store.records(spec_name)]


def sweep(spec, tmp_path, sub, **kw):
    store = ResultStore(str(tmp_path / sub))
    outcome = run_sweep(spec, store=store, progress=False, **kw)
    return store, outcome


def test_parallel_matches_serial_bit_for_bit(tmp_path):
    spec = selftest_spec()
    serial_store, serial = sweep(spec, tmp_path, "serial", workers=1)
    parallel_store, parallel = sweep(spec, tmp_path, "parallel", workers=3)
    assert serial.ok and parallel.ok
    assert canonical_store(serial_store, "st") == canonical_store(parallel_store, "st")


@pytest.mark.slow
def test_smoke_sweep_parallel_matches_serial(tmp_path):
    # the acceptance-criteria determinism check on real HERD points
    spec = resolve_spec("smoke")
    serial_store, serial = sweep(spec, tmp_path, "serial", workers=1)
    parallel_store, parallel = sweep(spec, tmp_path, "parallel", workers=4)
    assert serial.ok and parallel.ok
    assert canonical_store(serial_store, "smoke") == canonical_store(
        parallel_store, "smoke"
    )


def test_rerun_serves_everything_from_cache(tmp_path):
    spec = selftest_spec()
    store = ResultStore(str(tmp_path / "lab"))
    first = run_sweep(spec, store=store, progress=False)
    assert first.n_ran == len(spec.points())
    lines_before = open(store.path("st")).read()
    again = run_sweep(spec, store=store, progress=False, workers=2)
    assert again.n_ran == 0
    assert again.n_cached == len(spec.points())
    # zero recomputation also means zero new store lines
    assert open(store.path("st")).read() == lines_before
    assert again.results.keys() == first.results.keys()


def test_force_recomputes_every_point(tmp_path):
    spec = selftest_spec(n=2)
    store = ResultStore(str(tmp_path / "lab"))
    run_sweep(spec, store=store, progress=False)
    forced = run_sweep(spec, store=store, progress=False, force=True)
    assert forced.n_ran == 2 and forced.n_cached == 0


def test_growing_a_sweep_only_runs_new_points(tmp_path):
    store = ResultStore(str(tmp_path / "lab"))
    run_sweep(selftest_spec(n=2), store=store, progress=False)
    grown = run_sweep(selftest_spec(n=3), store=store, progress=False)
    assert grown.n_cached == 2 and grown.n_ran == 1


def test_raising_point_is_recorded_and_retried_next_run(tmp_path):
    spec = SweepSpec(
        name="st", task="selftest",
        axes=[Axis("behavior", ["ok", "raise"])],
    )
    store = ResultStore(str(tmp_path / "lab"))
    outcome = run_sweep(spec, store=store, progress=False)
    assert outcome.n_ran == 1 and outcome.n_failed == 1
    assert any("RuntimeError" in f for f in outcome.failures)
    records = {r["label"]: r for r in store.records("st")}
    bad = records["selftest(behavior=\"raise\")"]
    assert bad["status"] == "error" and "selftest point asked to fail" in bad["error"]
    # errors are not cached: the next run retries exactly the failed point
    retry = run_sweep(spec, store=store, progress=False)
    assert retry.n_cached == 1 and retry.n_failed == 1


def test_worker_crash_is_retried_then_reported(tmp_path):
    spec = SweepSpec(
        name="st", task="selftest", axes=[Axis("behavior", ["exit"])]
    )
    store = ResultStore(str(tmp_path / "lab"))
    outcome = run_sweep(
        spec, store=store, progress=False, workers=2, max_attempts=2
    )
    assert outcome.n_failed == 1
    (record,) = store.records("st")
    assert record["status"] == "crashed"
    assert record["attempts"] == 2
    assert "worker process died" in record["error"]


def test_timeout_kills_the_point_but_not_the_sweep(tmp_path):
    spec = SweepSpec(
        name="st", task="selftest",
        axes=[
            Axis("behavior", ["sleep", "ok", "ok2"], mode="zip"),
            Axis("value", [1.0, 2.0, 3.0], mode="zip"),
            Axis("sleep_s", [30.0, 0.0, 0.0], mode="zip"),
        ],
    )
    store = ResultStore(str(tmp_path / "lab"))
    outcome = run_sweep(
        spec, store=store, progress=False, workers=2, timeout_s=0.5
    )
    records = {r["params"]["behavior"]: r for r in store.records("st")}
    assert records["sleep"]["status"] == "timeout"
    assert records["ok"]["status"] == "ok"
    assert records["ok2"]["status"] == "ok"
    assert outcome.n_failed == 1 and outcome.n_ran == 2


def test_serial_timeout_is_reported_after_the_fact(tmp_path):
    spec = SweepSpec(
        name="st", task="selftest",
        base={"behavior": "sleep", "sleep_s": 0.2},
        axes=[Axis("value", [1.0])],
    )
    store = ResultStore(str(tmp_path / "lab"))
    outcome = run_sweep(spec, store=store, progress=False, timeout_s=0.05)
    (record,) = store.records("st")
    assert record["status"] == "timeout"
    assert "cannot preempt" in record["error"]
    assert outcome.n_failed == 1


def test_records_are_written_in_point_order(tmp_path):
    spec = selftest_spec(n=5)
    store = ResultStore(str(tmp_path / "lab"))
    run_sweep(spec, store=store, progress=False, workers=3)
    indexes = [r["point"] for r in store.records("st")]
    assert indexes == sorted(indexes)


def test_run_sweep_validates_arguments(tmp_path):
    store = ResultStore(str(tmp_path / "lab"))
    with pytest.raises(ValueError, match="workers"):
        run_sweep(selftest_spec(1), store=store, workers=0)
    with pytest.raises(ValueError, match="timeout"):
        run_sweep(selftest_spec(1), store=store, timeout_s=0.0)


def test_selftest_metrics_depend_on_seed(tmp_path):
    spec_a = SweepSpec(name="a", task="selftest", axes=[Axis("value", [1.0])])
    spec_b = SweepSpec(
        name="b", task="selftest", axes=[Axis("value", [1.0])], seed=1
    )
    store = ResultStore(str(tmp_path / "lab"))
    ra = run_sweep(spec_a, store=store, progress=False)
    rb = run_sweep(spec_b, store=store, progress=False)
    (a,) = ra.results.values()
    (b,) = rb.results.values()
    assert a["metrics"]["seed_draw"] != b["metrics"]["seed_draw"]
    assert a["metrics"]["value"] == b["metrics"]["value"]
