"""Susitna / RoCE profile behaviour (Table 2, Figures 9-10's right side)."""

import pytest

from repro.bench.figures import run_farm, run_herd, run_pilaf
from repro.bench.microbench import inbound_throughput, verb_latency
from repro.hw import APT, SUSITNA, Fabric, Machine
from repro.sim import Simulator
from repro.verbs import RdmaDevice, RecvRequest, Transport, WorkRequest


def test_roce_ud_packets_carry_grh_on_the_wire():
    """RoCE datagrams carry a 40-byte GRH; IB within a subnet does not."""
    sim = Simulator()
    fabric = Fabric(sim, SUSITNA)
    a = RdmaDevice(Machine(sim, fabric, "a"))
    b = RdmaDevice(Machine(sim, fabric, "b"))
    qb = b.create_qp(Transport.UD)
    mr = b.register_memory(2048)
    b.post_recv(qb, RecvRequest(wr_id=0, local=(mr, 0, 2048)))
    qa = a.create_qp(Transport.UD)
    a.post_send(
        qa, WorkRequest.send(payload=b"x" * 32, inline=True, signaled=False, ah=("b", qb.qpn))
    )
    sim.run_until_idle()
    expected = SUSITNA.wire_bytes(32, ud=True)
    assert a.machine.port.tx_bytes == expected
    assert expected > APT.wire_bytes(32, ud=True)


def test_susitna_inbound_rates_below_apt():
    """PCIe 2.0 x8 throttles the NIC's DMA engines (Section 5)."""
    apt_write = inbound_throughput("WRITE", Transport.UC, 32, profile=APT)
    sus_write = inbound_throughput("WRITE", Transport.UC, 32, profile=SUSITNA)
    assert sus_write < apt_write
    apt_read = inbound_throughput("READ", Transport.RC, 128, profile=APT)
    sus_read = inbound_throughput("READ", Transport.RC, 128, profile=SUSITNA)
    assert sus_read < apt_read


def test_susitna_latency_slightly_higher():
    assert verb_latency("READ", 32, profile=SUSITNA) > verb_latency("READ", 32, profile=APT)


@pytest.mark.slow
def test_susitna_end_to_end_ordering_matches_apt():
    """The systems' relative order is cluster-independent (Figure 9):
    HERD > FaRM-em ~ FaRM-em-VAR > Pilaf-em on read-intensive 48 B."""
    herd = run_herd(profile=SUSITNA, measure_ns=120_000.0).mops
    pilaf = run_pilaf(profile=SUSITNA, measure_ns=120_000.0).mops
    farm = run_farm(profile=SUSITNA, measure_ns=120_000.0).mops
    assert herd > farm > pilaf
    # And everything is well below the Apt numbers.
    assert herd < run_herd(profile=APT, measure_ns=120_000.0).mops


def test_susitna_herd_inline_cutoff_is_192():
    assert SUSITNA.herd_inline_cutoff == 192
    result = run_herd(profile=SUSITNA, value_size=180, measure_ns=100_000.0)
    assert result.ops > 50  # 180 B values still inlined on Susitna
