"""Result-store semantics: cache keys, append-only files, volatility."""

import json

import pytest

from repro.lab import Axis, ResultStore, SweepSpec, code_version, point_key
from repro.lab.store import VOLATILE_FIELDS, canonical_record


def two_points():
    return SweepSpec(
        name="t", task="selftest", axes=[Axis("value", [1.0, 2.0])]
    ).points()


def test_point_key_depends_on_identity_and_code():
    a, b = two_points()
    assert point_key(a) != point_key(b)
    assert point_key(a) == point_key(a)
    # a code change invalidates every key; same identity, same code -> same key
    assert point_key(a, code="cafe") != point_key(a, code="beef")
    reseeded = SweepSpec(
        name="t", task="selftest", axes=[Axis("value", [1.0, 2.0])], seed=1
    ).points()[0]
    assert point_key(reseeded) != point_key(a)


def test_code_version_is_stable_and_hexish():
    assert code_version() == code_version()
    assert len(code_version()) == 16
    int(code_version(), 16)


def record_for(point, status="ok", **extra):
    record = {
        "key": point_key(point),
        "label": point.label,
        "spec": "t",
        "point": point.index,
        "task": point.task,
        "params": point.params,
        "seed": point.seed,
        "status": status,
        "metrics": {"value": 1.0},
        "error": None,
        "wall_s": 0.1,
    }
    record.update(extra)
    return record


def test_append_load_and_newest_wins(tmp_path):
    store = ResultStore(str(tmp_path / "lab"))
    a, b = two_points()
    store.append("t", [record_for(a)])
    store.append("t", [record_for(b, status="error")])
    assert set(store.load("t")) == {point_key(a), point_key(b)}
    assert set(store.completed("t")) == {point_key(a)}
    # append-only: a newer record with the same key supersedes at load
    newer = record_for(a)
    newer["metrics"] = {"value": 9.0}
    store.append("t", [newer])
    assert store.load("t")[point_key(a)]["metrics"]["value"] == 9.0
    assert len(list(store.records("t"))) == 3


def test_latest_by_label_keeps_only_successes(tmp_path):
    store = ResultStore(str(tmp_path / "lab"))
    a, b = two_points()
    store.append("t", [record_for(a), record_for(b, status="timeout")])
    by_label = store.latest_by_label("t")
    assert a.label in by_label and b.label not in by_label


def test_missing_store_is_empty(tmp_path):
    store = ResultStore(str(tmp_path / "lab"))
    assert store.load("never-ran") == {}


def test_corrupt_line_raises_with_location(tmp_path):
    store = ResultStore(str(tmp_path / "lab"))
    (a, _b) = two_points()
    store.append("t", [record_for(a)])
    with open(store.path("t"), "a") as fh:
        fh.write("{not json\n")
    with pytest.raises(ValueError, match="line 2"):
        list(store.records("t"))


def test_canonical_record_strips_volatile_fields():
    a, _b = two_points()
    fast = record_for(a, wall_s=0.1, finished_at="x", worker=1, attempts=1)
    slow = record_for(a, wall_s=9.9, finished_at="y", worker=4, attempts=2)
    assert canonical_record(fast) == canonical_record(slow)
    for volatile in VOLATILE_FIELDS:
        assert '"%s"' % volatile not in canonical_record(fast)
    # but a metric difference shows through
    other = record_for(a)
    other["metrics"] = {"value": 2.0}
    assert canonical_record(other) != canonical_record(fast)


def test_store_lines_are_sorted_json(tmp_path):
    store = ResultStore(str(tmp_path / "lab"))
    a, _b = two_points()
    store.append("t", [record_for(a)])
    (line,) = open(store.path("t")).read().splitlines()
    assert line == json.dumps(json.loads(line), sort_keys=True)
