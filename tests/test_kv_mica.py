"""Tests for the MICA-style cache (HERD's backend)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv.mica import CircularLog, MicaCache


def key(i):
    return ("key-%06d" % i).encode().ljust(16, b"\x00")


# ---------------------------------------------------------------------------
# CircularLog
# ---------------------------------------------------------------------------


def test_log_append_and_read():
    log = CircularLog(1024)
    pos = log.append(b"k1", b"v1")
    assert log.read(pos) == (b"k1", b"v1")


def test_log_positions_are_monotonic():
    log = CircularLog(1024)
    p1 = log.append(b"a", b"1")
    p2 = log.append(b"b", b"2")
    assert p2 > p1


def test_log_wrap_overwrites_oldest():
    log = CircularLog(64)
    first = log.append(b"k" * 8, b"v" * 21)
    positions = [log.append(b"K" * 8, b"V" * 21) for _ in range(3)]
    assert log.read(first) is None          # overwritten
    assert log.read(positions[-1]) is not None
    assert log.wraps >= 1


def test_log_wrapped_entry_reads_back_correctly():
    """An entry split across the physical end must reassemble."""
    log = CircularLog(50)
    log.append(b"x" * 10, b"y" * 10)  # tail at 24
    pos = log.append(b"A" * 10, b"B" * 30)  # 44 bytes, wraps
    assert log.read(pos) == (b"A" * 10, b"B" * 30)


def test_log_rejects_oversized_entry():
    log = CircularLog(32)
    with pytest.raises(ValueError):
        log.append(b"k" * 16, b"v" * 64)


def test_log_rejects_tiny_capacity():
    with pytest.raises(ValueError):
        CircularLog(4)


# ---------------------------------------------------------------------------
# MicaCache
# ---------------------------------------------------------------------------


def test_put_get_roundtrip():
    cache = MicaCache()
    assert cache.put(key(1), b"value-1")
    assert cache.get(key(1)) == b"value-1"


def test_get_missing_returns_none():
    cache = MicaCache()
    assert cache.get(key(42)) is None
    assert cache.misses == 1


def test_put_overwrites():
    cache = MicaCache()
    cache.put(key(1), b"old")
    cache.put(key(1), b"new")
    assert cache.get(key(1)) == b"new"


def test_delete():
    cache = MicaCache()
    cache.put(key(1), b"v")
    assert cache.delete(key(1)) is True
    assert cache.get(key(1)) is None
    assert cache.delete(key(1)) is False


def test_get_costs_at_most_two_accesses():
    """Section 4.1: each GET requires up to two random memory lookups."""
    cache = MicaCache()
    cache.put(key(1), b"v")
    cache.get(key(1))
    assert cache.last_op_accesses == 2
    cache.get(key(999))  # miss in the index: one access
    assert cache.last_op_accesses == 1


def test_put_costs_one_access():
    """Section 4.1: each PUT requires one random memory lookup."""
    cache = MicaCache()
    cache.put(key(1), b"v")
    assert cache.last_op_accesses == 1


def test_lossy_index_evicts_on_full_bucket():
    """The index may evict items on insertion — that is what makes it a
    cache rather than a store."""
    cache = MicaCache(index_entries=MicaCache.SLOTS_PER_BUCKET, log_bytes=1 << 16)
    assert cache.n_buckets == 1
    n = MicaCache.SLOTS_PER_BUCKET + 3
    for i in range(n):
        cache.put(key(i), b"v%d" % i)
    assert cache.index_evictions == 3
    # The newest items survive.
    assert cache.get(key(n - 1)) == b"v%d" % (n - 1)
    assert cache.get(key(0)) is None


def test_log_wrap_invalidates_index_entries():
    """FIFO log eviction: old values disappear when the log wraps and
    the stale index slot is cleaned up on access."""
    cache = MicaCache(index_entries=2 ** 12, log_bytes=256)
    cache.put(key(1), b"a" * 50)
    for i in range(2, 8):
        cache.put(key(i), b"b" * 50)
    assert cache.get(key(1)) is None
    assert cache.lost_to_wrap >= 1


def test_values_up_to_1000_bytes():
    """HERD's maximum item size is 1 KB (Section 4.2)."""
    cache = MicaCache()
    cache.put(key(1), b"x" * 1000)
    assert cache.get(key(1)) == b"x" * 1000


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=50), st.binary(min_size=1, max_size=32)),
        min_size=1,
        max_size=200,
    )
)
def test_matches_dict_model_when_not_evicting(ops):
    """Property: with ample capacity, MicaCache behaves as a dict."""
    cache = MicaCache(index_entries=2 ** 16, log_bytes=1 << 20)
    model = {}
    for i, value in ops:
        cache.put(key(i), value)
        model[key(i)] = value
    for k, expect in model.items():
        assert cache.get(k) == expect


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=100))
def test_cache_never_returns_wrong_value(ids):
    """Property: even under heavy eviction the cache returns either the
    latest value or nothing — never a stale or foreign value."""
    cache = MicaCache(index_entries=16, log_bytes=512)
    latest = {}
    for i in ids:
        value = b"val-%d-%d" % (i, len(latest))
        cache.put(key(i), value)
        latest[key(i)] = value
    for k, expect in latest.items():
        got = cache.get(k)
        assert got is None or got == expect
