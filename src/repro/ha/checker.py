"""Per-key linearizability checking over chaos histories.

The chaos harness records, per key, every client invocation and
response (:class:`HaOp`).  Because HERD keys are independent (each PUT
replaces the whole value, there are no multi-key transactions), a
history is linearizable iff every *per-key* sub-history is — which
keeps the NP-hard general problem tractable: per-key histories under a
closed-loop window of a few clients stay small.

:func:`check_key` runs a Wing–Gong style search: repeatedly pick a
*minimal* operation (one that was invoked before every remaining
completed operation's response — any legal linearization must start
with one of these), apply it to the simulated register, and recurse.
Memoisation on (remaining-set, register-state) keeps the search
polynomial in practice.

Operations that never got a response (client abandoned, primary died)
are *pending*: a pending write may be linearized at any point after
its invocation or omitted entirely (the update may or may not have
reached a surviving replica); a pending read constrains nothing and is
ignored.

On top of per-key linearizability the module checks the global HA
invariants the replication design promises:

* :func:`lost_acked_writes` — an acked write that provably ran last on
  its key must be the value a final read observes;
* :func:`split_brain` — at most one replica acks client operations in
  any (partition, epoch);
* monotonic backup high-water marks are counted at the source (see
  ``ReplicaRole.hwm_regressions``) and surfaced by the chaos report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: cap on the memo table per key — a pathological history degenerates
#: to an error rather than unbounded memory
_MEMO_LIMIT = 200_000


@dataclass
class HaOp:
    """One client operation against one key, with sim-time bounds."""

    client: int
    kind: str  # "r" | "w"
    #: for writes: the value written; for reads: the value returned
    #: (None = miss), filled in at response time
    value: Optional[bytes]
    invoke: float
    respond: Optional[float] = None
    #: False only for a failed completed write (treated like pending)
    ok: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("r", "w"):
            raise ValueError("HaOp.kind must be 'r' or 'w'; got %r" % (self.kind,))


def check_key(
    ops: Iterable[HaOp], initial: Optional[bytes] = None
) -> Optional[str]:
    """None if the per-key history is linearizable, else a reason."""
    ops = list(ops)
    completed: List[HaOp] = []
    pending_writes: List[HaOp] = []
    for op in ops:
        if op.respond is not None and op.respond < op.invoke:
            return "op responds before it is invoked (invoke=%r respond=%r)" % (
                op.invoke,
                op.respond,
            )
        if op.respond is not None and (op.kind == "r" or op.ok):
            completed.append(op)
        elif op.kind == "w":
            pending_writes.append(op)
        # a pending read constrains nothing
    if not completed:
        return None

    # Most histories are already in a legal order: a greedy fast path
    # (linearize completed ops by response time, pending writes eagerly
    # whenever the next read needs their value) is attempted first by
    # the search's child ordering, so the exponential worst case is
    # only reached by genuinely contended interleavings.
    memo: Set[Tuple[frozenset, frozenset, Optional[bytes]]] = set()

    def search(
        remaining: frozenset, pend: frozenset, state: Optional[bytes]
    ) -> bool:
        if not remaining:
            return True
        key = (remaining, pend, state)
        if key in memo:
            return False
        if len(memo) > _MEMO_LIMIT:
            raise RuntimeError("linearizability search exceeded the memo limit")
        memo.add(key)
        horizon = min(completed[i].respond for i in remaining)
        for i in sorted(remaining, key=lambda i: completed[i].respond):
            op = completed[i]
            if op.invoke > horizon:
                continue
            if op.kind == "r":
                if op.value == state:
                    if search(remaining - {i}, pend, state):
                        return True
            else:
                if search(remaining - {i}, pend, op.value):
                    return True
        for j in sorted(pend):
            op = pending_writes[j]
            if op.invoke > horizon:
                continue
            if search(remaining, pend - {j}, op.value):
                return True
        return False

    if search(
        frozenset(range(len(completed))),
        frozenset(range(len(pending_writes))),
        initial,
    ):
        return None
    reads = [o for o in completed if o.kind == "r"]
    return (
        "no linearization of %d completed ops (%d reads, %d pending writes) "
        "explains the observed values" % (len(completed), len(reads), len(pending_writes))
    )


def final_read(ops: Iterable[HaOp], value: Optional[bytes]) -> HaOp:
    """A synthetic read of the surviving primary's final state.

    Appending it to the history forces the checker to also prove the
    final store contents are explainable — this is what turns "an acked
    write vanished during failover" into a checker failure even when no
    real client happened to read the key again.
    """
    horizon = 0.0
    for op in ops:
        horizon = max(horizon, op.invoke, op.respond or 0.0)
    return HaOp(
        client=-1, kind="r", value=value, invoke=horizon + 1.0, respond=horizon + 2.0
    )


def check_histories(
    histories: Dict[bytes, List[HaOp]],
    initial: Dict[bytes, Optional[bytes]],
    final: Dict[bytes, Optional[bytes]],
    max_violations: int = 8,
) -> List[str]:
    """Check every per-key history; returns violation strings (empty = pass)."""
    violations: List[str] = []
    for keyhash in sorted(histories):
        ops = list(histories[keyhash])
        ops.append(final_read(ops, final.get(keyhash)))
        reason = check_key(ops, initial.get(keyhash))
        if reason is not None:
            violations.append(
                "key %s not linearizable: %s" % (keyhash.hex()[:16], reason)
            )
            if len(violations) >= max_violations:
                violations.append("... further keys not checked")
                break
    return violations


def lost_acked_writes(
    histories: Dict[bytes, List[HaOp]], final: Dict[bytes, Optional[bytes]]
) -> int:
    """Acked writes that provably ran last on their key yet are not the
    final value.

    This is a *sound witness* (never a false positive): a write counts
    only when every other write on the key completed strictly before it
    was invoked, so no interleaving could order another write after it.
    The full checker catches subtler losses; this counter exists so the
    chaos report can say "N acked writes lost" in plain numbers.
    """
    lost = 0
    for keyhash, ops in histories.items():
        writes = [o for o in ops if o.kind == "w"]
        acked = [o for o in writes if o.respond is not None and o.ok]
        for w in acked:
            others = [o for o in writes if o is not w]
            if all(o.respond is not None and o.respond <= w.invoke for o in others):
                if final.get(keyhash) != w.value:
                    lost += 1
                break  # at most one provably-last write per key
    return lost


# ---------------------------------------------------------------------------
# Multi-key transactions (repro.txn): strict serializability
# ---------------------------------------------------------------------------


@dataclass
class TxnRecord:
    """One client transaction over multiple keys, with sim-time bounds.

    ``reads`` are the (key, observed value) pairs the transaction saw
    *before* its own writes; ``writes`` are the (key, new value) pairs
    it installed.  ``status`` is ``"committed"`` (the client got a
    commit acknowledgement), ``"aborted"`` (the transaction provably
    installed nothing), or ``"pending"`` (the outcome is unknown — e.g.
    a commit whose acknowledgement was lost; it may or may not have
    applied).
    """

    txn_id: int
    client: int
    reads: Tuple[Tuple[int, bytes], ...]
    writes: Tuple[Tuple[int, bytes], ...]
    invoke: float
    respond: Optional[float] = None
    status: str = "committed"

    def __post_init__(self) -> None:
        if self.status not in ("committed", "aborted", "pending"):
            raise ValueError("TxnRecord.status must be committed/aborted/pending")


def final_read_txn(txns: Iterable[TxnRecord], final: Dict[int, bytes]) -> TxnRecord:
    """A synthetic read-only transaction observing the final store state.

    The multi-key analogue of :func:`final_read`: appending it forces
    the checker to prove the final store contents are explainable, so a
    torn commit (half a transaction's writes applied) fails the check
    even if no client read those keys again.
    """
    horizon = 0.0
    for txn in txns:
        horizon = max(horizon, txn.invoke, txn.respond or 0.0)
    return TxnRecord(
        txn_id=-1,
        client=-1,
        reads=tuple(sorted(final.items())),
        writes=(),
        invoke=horizon + 1.0,
        respond=horizon + 2.0,
    )


def check_serializable(
    txns: Iterable[TxnRecord],
    initial: Optional[Dict[int, bytes]] = None,
    final: Optional[Dict[int, bytes]] = None,
) -> Optional[str]:
    """None if the history is strictly serializable, else a reason.

    The Wing–Gong search generalised from a single register to a keyed
    store: repeatedly pick a *minimal* committed transaction (invoked
    before every remaining committed transaction's response — real-time
    order is respected, so this checks strict serializability), require
    its reads to match the simulated store, apply its writes, recurse.
    Pending transactions may serialise at any point after their
    invocation (their reads must still have been valid — both commit
    dataplanes validate before installing) or never.  Aborted
    transactions are excluded; that their writes leaked is caught by
    the ``final`` read (pass the post-run store scan).
    """
    base: Dict[int, bytes] = dict(initial or {})
    completed: List[TxnRecord] = []
    pending: List[TxnRecord] = []
    for txn in txns:
        if txn.respond is not None and txn.respond < txn.invoke:
            return "txn %d responds before it is invoked" % txn.txn_id
        if txn.status == "committed" and txn.respond is not None:
            completed.append(txn)
        elif txn.status == "pending":
            pending.append(txn)
        elif txn.status == "committed":
            # committed but no response time recorded: treat as pending
            pending.append(txn)
    final_idx: Optional[int] = None
    if final is not None:
        final_idx = len(completed)
        completed.append(final_read_txn(completed + pending, final))
    if not completed:
        return None

    # Partial-order reduction: a committed transaction is a *forced*
    # step — committed greedily, no choice point — when every other
    # still-active transaction touching one of its keys was invoked
    # after its response.  Real-time order already pins all those
    # touchers after it, and key-disjoint transactions commute with it,
    # so in any valid serialization it can be moved to the front: if
    # its reads match the current store it is safe to commit now, and
    # if they mismatch no other order can fix it.  A key contended
    # *concurrently* still branches, but a key merely reused later in
    # the run no longer blocks the reduction — low-contention histories
    # verify in near-linear time and the exponential search only runs
    # over genuinely overlapping conflict clusters.  The synthetic
    # final read (which touches every key but starts after every
    # response) is excluded from the toucher index: it can never
    # precede anything, so it never blocks a forced step.
    keyset = [
        frozenset(k for k, _ in txn.reads) | frozenset(k for k, _ in txn.writes)
        for txn in completed
    ]
    pend_keyset = [
        frozenset(k for k, _ in txn.reads) | frozenset(k for k, _ in txn.writes)
        for txn in pending
    ]
    n_completed = len(completed)
    invoke_of = [txn.invoke for txn in completed] + [txn.invoke for txn in pending]
    touchers: Dict[int, Set[int]] = {}
    for i, ks in enumerate(keyset):
        if i == final_idx:
            continue
        for k in ks:
            touchers.setdefault(k, set()).add(i)
    for j, ks in enumerate(pend_keyset):
        for k in ks:
            touchers.setdefault(k, set()).add(n_completed + j)

    def forced_eligible(i: int) -> bool:
        bound = completed[i].respond
        for k in keyset[i]:
            for t in touchers.get(k, ()):
                if t != i and invoke_of[t] < bound:
                    return False
        return True

    memo: Set[Tuple[frozenset, frozenset, frozenset]] = set()

    def lookup(state: Dict[int, bytes], key: int) -> Optional[bytes]:
        if key in state:
            return state[key]
        return base.get(key)

    def reads_match(txn: TxnRecord, state: Dict[int, bytes]) -> bool:
        return all(lookup(state, k) == v for k, v in txn.reads)

    def search(
        remaining: frozenset, pend: frozenset, state: Dict[int, bytes]
    ) -> bool:
        # the toucher index is shared and mutated along the current
        # search path; every False exit must undo this frame's removals
        # so sibling branches in the caller see accurate conflicts.
        forced_taken: List[int] = []

        def fail() -> bool:
            for i in forced_taken:
                for k in keyset[i]:
                    touchers[k].add(i)
            return False

        while remaining:
            forced = None
            for i in remaining:
                if i == final_idx:
                    continue
                if forced_eligible(i):
                    forced = i
                    break
            if forced is None:
                break
            if not reads_match(completed[forced], state):
                return fail()  # no order puts a concurrent toucher first
            state = dict(state)
            state.update(completed[forced].writes)
            remaining = remaining - {forced}
            forced_taken.append(forced)
            for k in keyset[forced]:
                touchers[k].discard(forced)
        if not remaining:
            return True
        key = (remaining, pend, frozenset(state.items()))
        if key in memo:
            return fail()
        if len(memo) > _MEMO_LIMIT:
            raise RuntimeError("serializability search exceeded the memo limit")
        memo.add(key)
        horizon = min(completed[i].respond for i in remaining)
        for i in sorted(remaining, key=lambda i: completed[i].respond):
            txn = completed[i]
            if txn.invoke > horizon:
                continue
            if reads_match(txn, state):
                child = dict(state)
                child.update(txn.writes)
                if i != final_idx:
                    for k in keyset[i]:
                        touchers[k].discard(i)
                hit = search(remaining - {i}, pend, child)
                if i != final_idx:
                    for k in keyset[i]:
                        touchers[k].add(i)
                if hit:
                    return True
        for j in sorted(pend):
            txn = pending[j]
            if txn.invoke > horizon:
                continue
            if reads_match(txn, state):
                child = dict(state)
                child.update(txn.writes)
                for k in pend_keyset[j]:
                    touchers[k].discard(n_completed + j)
                hit = search(remaining, pend - {j}, child)
                for k in pend_keyset[j]:
                    touchers[k].add(n_completed + j)
                if hit:
                    return True
        return fail()

    if search(
        frozenset(range(len(completed))),
        frozenset(range(len(pending))),
        {},
    ):
        return None
    return (
        "no serial order of %d committed txns (%d pending) respects the "
        "real-time order and explains the observed reads"
        % (len(completed), len(pending))
    )


def split_brain(ack_witness: Dict[Tuple[int, int], Set[int]]) -> List[str]:
    """Violations for ``{(partition, epoch): {replicas that acked}}``.

    The fencing design guarantees at most one replica acks client
    operations within a (partition, epoch); two ackers means a stale
    primary slipped an acknowledgement past its demotion.
    """
    out = []
    for (partition, epoch), replicas in sorted(ack_witness.items()):
        if len(replicas) > 1:
            out.append(
                "split brain: replicas %s all acked ops for partition %d "
                "in epoch %d" % (sorted(replicas), partition, epoch)
            )
    return out
