"""Client-side failover state: which replica currently owns a partition.

:class:`ReplicaMap` is the client's view of the monitor's configuration
(primary replica id + fencing epoch, per partition).  The monitor pushes
updates through its config listeners; the map rejects stale epochs so a
reordered notification can never roll a client back to a dead primary.

The actual replay machinery lives in
:class:`~repro.herd.client.HerdClientProcess` (it owns the pending
records, window slots, and UC QPs); this module keeps the policy —
"where should this partition's traffic go, and has that just changed?" —
separate and unit-testable.
"""

from __future__ import annotations

from typing import List


class ReplicaMap:
    """Per-partition primary replica, advanced by fencing epoch."""

    def __init__(self, n_partitions: int, replication_factor: int) -> None:
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        self.replication_factor = replication_factor
        #: replica id currently believed primary, per partition
        self.primary: List[int] = [0] * n_partitions
        #: the config epoch that installed each primary
        self.epoch: List[int] = [0] * n_partitions

    def update(self, partition: int, primary: int, epoch: int) -> bool:
        """Adopt a new config; True iff it changed where traffic goes.

        Stale or duplicate notifications (epoch <= what we hold) are
        ignored, so listeners may deliver out of order.
        """
        if not 0 <= primary < self.replication_factor:
            raise ValueError(
                "primary replica %r out of range for rf=%d"
                % (primary, self.replication_factor)
            )
        if epoch <= self.epoch[partition]:
            return False
        self.epoch[partition] = epoch
        changed = self.primary[partition] != primary
        self.primary[partition] = primary
        return changed

    def lane(self, partition: int, n_partitions: int) -> int:
        """The client's UD lane index for this partition's current primary.

        Clients keep one response lane (UD QP + RECV ring) per
        (replica, partition) pair: ``lane = replica * NS + partition``.
        With rf=1 this degenerates to ``lane == partition``, matching
        the unreplicated layout exactly.
        """
        return self.primary[partition] * n_partitions + partition
