"""Lease-based failure detection and primary election.

A lightweight monitor process (its own simulated machine, its own NIC)
receives heartbeats from every replica over UD SENDs — real messages on
the simulated fabric, so injected drops, delays, and partitions degrade
failure detection exactly as they degrade data traffic.  In return it
issues *lease grants* to the partition's primary.

The protocol, per partition:

* every replica heartbeats ``(partition, replica, is_primary, epoch,
  hwm, sent_ns)`` each ``heartbeat_us``;
* the monitor answers the current primary's heartbeat with a GRANT
  echoing ``sent_ns``; the primary extends its lease to ``sent_ns +
  lease_us`` (clocks advance identically in the simulation, so the
  echoed timestamp stands in for the bounded-drift clock assumption a
  real lease service makes);
* a replica silent for ``lease_us`` is declared dead and dropped from
  the member set.  If it was the primary, the monitor elects the
  member with the highest *last reported* high-water mark (ties break
  to the lowest replica id), bumps the fencing epoch, and broadcasts
  the new CONFIG;
* a heartbeat from a non-member (a recovered crasher) re-admits it
  under a bumped epoch; a heartbeat carrying a stale epoch is answered
  with the current CONFIG, which demotes a resurrected primary
  (fencing — the split-brain defence).

Lease safety: the primary self-expires at ``last_grant.sent_ns +
lease_us``; the monitor declares death no earlier than
``last_recv + lease_us`` and ``last_recv >= sent_ns``, so the old
primary has always stopped serving by the time a successor is allowed
to ack writes.  (The monitor is deliberately a single point of
failure — electing the elector needs consensus, which is out of scope;
see docs/HA.md.)

Election picks the highest *last-known* hwm among members not declared
dead — not merely the freshest heartbeat — so a backup whose latest
heartbeat was dropped is not passed over in favour of a staler replica.
The elected candidate then syncs with surviving peers before serving
(two-phase promotion, see ``replication.py``), which covers the case
where even the monitor's view of the winner was behind.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim import Simulator
from repro.verbs import CompletionQueue, RdmaDevice, RecvRequest, Transport, WorkRequest
from repro.herd.config import HerdConfig
from repro.herd import wire

#: UD RECV slot for control messages: 40 B GRH + the largest control
#: message (a CONFIG with 8 members is 16 bytes; heartbeats are 24)
CTRL_SLOT = 40 + 32
#: RECV ring depth — several heartbeat periods of rf*NS replicas
CTRL_RING = 512


class _PartitionState:
    """The monitor's view of one partition's replica group."""

    def __init__(self, group: Tuple[int, ...], now: float) -> None:
        self.epoch = 0
        self.primary: Optional[int] = 0
        self.members = set(group)
        self.last_heard: Dict[int, float] = {r: now for r in group}
        self.last_hwm: Dict[int, int] = {r: 0 for r in group}
        #: sim-time the partition lost its primary (None = serving)
        self.outage_since: Optional[float] = None


class LeaseMonitor:
    """Heartbeat receiver, lease granter, and primary elector."""

    def __init__(
        self,
        sim: Simulator,
        device: RdmaDevice,
        config: HerdConfig,
        n_partitions: int,
    ) -> None:
        self.sim = sim
        self.device = device
        self.config = config
        self.n_partitions = n_partitions
        self.lease_ns = config.lease_us * 1000.0
        self.heartbeat_ns = config.heartbeat_us * 1000.0
        group = tuple(range(config.replication_factor))
        self.state: List[_PartitionState] = [
            _PartitionState(group, sim.now) for _ in range(n_partitions)
        ]
        self.recv_cq = CompletionQueue(sim, "ha.monitor.rcq")
        self.ud_qp = device.create_qp(Transport.UD, recv_cq=self.recv_cq)
        self.recv_mr = device.register_memory(CTRL_RING * CTRL_SLOT)
        #: replica id -> (machine, ctrl qpn), wired by the cluster
        self.replica_ahs: Dict[int, Tuple[str, int]] = {}
        #: out-of-band config fan-out to clients: fn(partition, primary,
        #: epoch).  Real clients would subscribe to the monitor over the
        #: fabric; modelling that adds nothing the fabric path does not
        #: already exercise, so adoption is immediate (see docs/HA.md).
        self.config_listeners: List[Callable[[int, int, int], None]] = []

        self.promotions = 0
        self.lease_misses = 0
        self.grants = 0
        self.configs_sent = 0
        #: (partition, lost_ns, adopted_ns) per primary outage
        self.outages: List[Tuple[int, float, float]] = []
        #: every config the monitor ever broadcast, in order:
        #: (partition, primary or None, epoch).  The fencing-epoch
        #: monotonicity oracle (repro.nemesis) audits this — an epoch
        #: that fails to advance on a config change would let a deposed
        #: primary's acks survive fencing.
        self.config_log: List[Tuple[int, Optional[int], int]] = []

        metrics = getattr(sim, "metrics", None)
        self._failover_hist = None
        if metrics is not None:
            metrics.gauge_fn("ha.monitor.promotions", lambda: self.promotions)
            metrics.gauge_fn("ha.monitor.lease_misses", lambda: self.lease_misses)
            metrics.gauge_fn("ha.monitor.grants", lambda: self.grants)
            self._failover_hist = metrics.histogram("ha.monitor.failover_ns")

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        for i in range(CTRL_RING):
            offset = i * CTRL_SLOT
            self.device.post_recv(
                self.ud_qp,
                RecvRequest(wr_id=offset, local=(self.recv_mr, offset, CTRL_SLOT)),
            )
        self.sim.process(self._recv_loop())
        self.sim.process(self._check_loop())

    def outage_ns(self, up_to_ns: Optional[float] = None) -> float:
        """Total primary-less simulated time, summed over partitions.

        Open outages (still primary-less) are counted up to ``up_to_ns``
        (default: now).
        """
        end_cap = self.sim.now if up_to_ns is None else up_to_ns
        total = 0.0
        for partition, lost, adopted in self.outages:
            total += max(0.0, min(adopted, end_cap) - min(lost, end_cap))
        for st in self.state:
            if st.outage_since is not None:
                total += max(0.0, end_cap - min(st.outage_since, end_cap))
        return total

    # -- receive path --------------------------------------------------

    def _recv_loop(self):
        sim = self.sim
        poll_ns = self.device.profile.cq_poll_ns
        while True:
            cqe = yield self.recv_cq.pop()
            yield sim.timeout(poll_ns)
            offset = cqe.wr_id
            data = bytes(self.recv_mr.read(offset + 40, cqe.byte_len))
            self.device.post_recv(
                self.ud_qp,
                RecvRequest(wr_id=offset, local=(self.recv_mr, offset, CTRL_SLOT)),
            )
            if not data or wire.ha_kind(data) != wire.CTRL_HEARTBEAT:
                continue
            partition, sender, is_primary, epoch, hwm, sent_ns = wire.decode_heartbeat(
                data
            )
            yield from self._on_heartbeat(
                partition, sender, is_primary, epoch, hwm, sent_ns
            )

    def _on_heartbeat(self, partition, sender, is_primary, epoch, hwm, sent_ns):
        st = self.state[partition]
        st.last_heard[sender] = self.sim.now
        st.last_hwm[sender] = max(st.last_hwm.get(sender, 0), hwm)
        if sender not in st.members:
            # a recovered replica rejoins under a fresh epoch; the
            # CONFIG it receives fences it if it still believes itself
            # primary of an older epoch
            st.members.add(sender)
            st.epoch += 1
            yield from self._broadcast_config(partition)
            return
        if epoch < st.epoch:
            # stale replica (e.g. resurrected primary): re-send the
            # current config directly so it demotes itself
            yield from self._send_config(partition, sender)
            return
        if sender == st.primary and epoch == st.epoch:
            grant = wire.encode_grant(partition, sender, st.epoch, sent_ns)
            yield from self._send(sender, grant)
            self.grants += 1

    # -- lease expiry and election -------------------------------------

    def _check_loop(self):
        sim = self.sim
        while True:
            yield sim.timeout(self.heartbeat_ns)
            for partition in range(self.n_partitions):
                yield from self._check_partition(partition)

    def _check_partition(self, partition):
        sim = self.sim
        st = self.state[partition]
        for replica in sorted(st.members):
            heard = st.last_heard.get(replica, 0.0)
            if sim.now - heard <= self.lease_ns:
                continue
            st.members.discard(replica)
            if replica == st.primary:
                self.lease_misses += 1
                st.primary = None
                # the outage clock starts at the last proof of life, not
                # at declared death: the crash happened somewhere after
                # ``heard``, so this brackets client-visible downtime
                st.outage_since = heard
        if st.primary is None and st.members:
            yield from self._elect(partition)

    def _elect(self, partition):
        st = self.state[partition]
        winner = max(sorted(st.members), key=lambda r: (st.last_hwm.get(r, 0), -r))
        st.epoch += 1
        st.primary = winner
        self.promotions += 1
        if st.outage_since is not None:
            adopted = self.sim.now
            self.outages.append((partition, st.outage_since, adopted))
            if self._failover_hist is not None:
                self._failover_hist.observe(adopted - st.outage_since)
            st.outage_since = None
        yield from self._broadcast_config(partition)

    # -- config fan-out ------------------------------------------------

    def _broadcast_config(self, partition):
        # every wired replica hears the config (non-members included:
        # a dead node's messages simply vanish, and a recovering node
        # may catch the broadcast before its first heartbeat)
        st0 = self.state[partition]
        self.config_log.append((partition, st0.primary, st0.epoch))
        for replica in sorted(self.replica_ahs):
            yield from self._send_config(partition, replica)
        st = self.state[partition]
        for listener in self.config_listeners:
            listener(partition, st.primary, st.epoch)

    def _send_config(self, partition, replica):
        st = self.state[partition]
        payload = wire.encode_config(
            partition, st.primary if st.primary is not None else 0xFF,
            st.epoch, st.members,
        )
        yield from self._send(replica, payload)
        self.configs_sent += 1

    def _send(self, replica, payload):
        ah = self.replica_ahs.get(replica)
        if ah is None:
            return
        wr = WorkRequest.send(payload=payload, inline=True, signaled=False, ah=ah)
        yield from self.device.post_send_timed(self.ud_qp, wr)
