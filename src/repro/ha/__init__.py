"""repro.ha — replicated HERD partitions that survive primary failures.

Layers (see docs/HA.md for the full design):

* :mod:`repro.ha.replication` — primary-backup update shipping over a
  dedicated RC mesh, apply-at-commit semantics, two-phase promotion;
* :mod:`repro.ha.detector` — lease-based failure detection and
  election by a monitor exchanging UD heartbeats on the same faultable
  fabric as data traffic;
* :mod:`repro.ha.failover` — the client's per-partition replica map;
* :mod:`repro.ha.checker` — per-key Wing–Gong linearizability checking
  plus the global HA invariants (no acked write lost, no split-brain
  acks, monotonic backup high-water marks), and the multi-key
  strict-serializability checker :func:`check_serializable` that
  repro.txn runs over its transaction histories.

Everything activates only when ``HerdConfig.replication_factor > 1``;
an unreplicated cluster builds no HA machinery at all, so the classic
simulation stays event-for-event identical.
"""

from repro.ha.checker import (
    HaOp,
    TxnRecord,
    check_histories,
    check_key,
    check_serializable,
    final_read_txn,
    lost_acked_writes,
    split_brain,
)
from repro.ha.detector import LeaseMonitor
from repro.ha.failover import ReplicaMap
from repro.ha.replication import HaNode, InflightUpdate, PartitionGroup, ReplicaRole

__all__ = [
    "HaOp",
    "TxnRecord",
    "check_histories",
    "check_key",
    "check_serializable",
    "final_read_txn",
    "lost_acked_writes",
    "split_brain",
    "LeaseMonitor",
    "ReplicaMap",
    "HaNode",
    "InflightUpdate",
    "PartitionGroup",
    "ReplicaRole",
]
