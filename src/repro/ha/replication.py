"""Primary-backup replication of HERD partitions.

Every partition gets a replica group of ``replication_factor`` full
server processes: replica 0 lives on the original ``server`` machine,
replicas 1..k-1 on dedicated ``rep<i>`` machines, each with its own
NIC, request region, and MICA store.  One :class:`HaNode` per replica
machine runs the replication dataplane:

* a full RC mesh between replica machines (one connected QP pair per
  machine pair, shared by all partitions) carries UPDATE / ACK /
  CATCHUP records — real bytes through ``repro.verbs``, so replication
  pays the same simulated PCIe/NIC/link costs as client traffic and is
  subject to the same injected faults (RC retransmission recovers
  drops; receivers dedup by sequence number);
* a UD control QP exchanges heartbeats and lease grants with the
  :class:`~repro.ha.detector.LeaseMonitor`.

The write path is **apply-at-commit**: the primary assigns the PUT a
sequence number, appends it to its log, and ships it to the backups,
but only applies it to its MICA store — and acks the client — once the
ack policy is satisfied (``all`` live backups, or a ``majority`` of
the replica group).  Backup ACKs carry their applied high-water mark,
so one ack credits every outstanding sequence number it covers, and
commits always advance as a contiguous prefix.  GETs for a key with an
uncommitted PUT are parked on the role and served at commit, so a
client can never read a value whose ack could still be abandoned by a
failover (read-your-own-uncommitted-write would break
linearizability).

Promotion is two-phase (viewstamped-replication style): the monitor's
CONFIG names the candidate, which *holds* client traffic while it
CATCHUPs every surviving peer; once its applied sequence reaches every
peer's reported high-water mark it adopts ``next_seq = applied_seq``
and serves.  This closes the corner where the monitor elected on a
stale heartbeat: the candidate always reaches the group's true maximum
before acking anything in the new epoch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.sim import Simulator
from repro.verbs import (
    CompletionQueue,
    QueuePair,
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
)
from repro.workloads.ycsb import Operation, OpType
from repro.herd.config import HerdConfig
from repro.herd import wire

#: RC RECV slot: UPDATE header (incl. the request token) + keyhash +
#: a full 1 KB value (RC carries no GRH)
MESH_SLOT = 21 + wire.KEYHASH_BYTES + 1024
#: RECV ring depth per peer QP — covers every client window in flight
#: plus a full catch-up burst
MESH_RING = 256
#: UD control slot (GRH + grant/config/shard-map broadcast; a shard
#: map mid-rebalance can carry a couple of dozen range entries)
CTRL_SLOT = 40 + 256
CTRL_RING = 128
#: log entries replayed per CATCHUP request; the requester re-asks
#: (from its advanced hwm) until it is caught up
CATCHUP_BURST = 256

NODE_STAGING_BYTES = 1 << 16


class InflightUpdate:
    """A sequenced PUT the primary has shipped but not yet committed."""

    __slots__ = (
        "seq", "keyhash", "value", "ackers", "respond", "on_commit",
        "created_ns", "shipped_ns",
    )

    def __init__(self, seq, keyhash, value, respond, now):
        self.seq = seq
        self.keyhash = keyhash
        self.value = value
        #: backup replica ids whose applied hwm covers this seq
        self.ackers: Set[int] = set()
        #: (client, window_slot, req_epoch, op) to ack at commit, or
        #: None for a migrated-in record (repro.elastic) that acks the
        #: migration source instead of a client
        self.respond = respond
        #: commit callback for respond-less (migration) records
        self.on_commit = None
        self.created_ns = now
        self.shipped_ns = now


class PartitionGroup:
    """Cross-replica bookkeeping for one partition (checker evidence)."""

    def __init__(self, partition: int, config: HerdConfig) -> None:
        self.partition = partition
        self.config = config
        #: {epoch: {replica ids that acked a client op in it}} — the
        #: split-brain witness (see checker.split_brain)
        self.ack_witness: Dict[int, Set[int]] = {}
        self.promotions = 0

    def record_ack(self, epoch: int, replica: int) -> None:
        self.ack_witness.setdefault(epoch, set()).add(replica)


class ReplicaRole:
    """One replica's view of one partition: epoch, log, commit state.

    Attached to its :class:`~repro.herd.server.HerdServerProcess` as
    ``server.ha_role``; the server consults :meth:`serving_verdict`
    before answering and routes PUTs through :meth:`stage_update`.
    """

    def __init__(
        self,
        partition: int,
        replica_id: int,
        config: HerdConfig,
        group: PartitionGroup,
    ) -> None:
        self.partition = partition
        self.replica_id = replica_id
        self.config = config
        self.group = group
        self.rf = config.replication_factor
        self.lease_ns = config.lease_us * 1000.0
        self.heartbeat_ns = config.heartbeat_us * 1000.0
        #: how long a lease-less / syncing primary waits before
        #: re-checking its verdict while holding a request
        self.hold_retry_ns = self.heartbeat_ns

        self.epoch = 0
        self.is_primary = replica_id == 0
        self.primary_id: Optional[int] = 0
        self.members: Set[int] = set(range(self.rf))
        #: bootstrap lease: replica 0 starts as primary with one lease
        #: term; the first grant arrives within a heartbeat
        self.lease_until = self.lease_ns if self.is_primary else float("-inf")

        self.applied_seq = 0  # prefix applied to the local store
        self.committed_seq = 0  # primary: prefix acked per policy
        self.next_seq = 0  # primary: last assigned
        #: (seq, keyhash, value, client, window_slot, req_epoch) — the
        #: trailing request token travels with every record so any
        #: replica can recognise a client retry of an applied PUT
        self.log: List[Tuple[int, bytes, bytes, int, int, int]] = []
        self.buffer: Dict[int, Tuple[bytes, bytes, int, int, int]] = {}  # out-of-order
        self.inflight: Dict[int, InflightUpdate] = {}
        #: (client, window_slot, req_epoch) -> seq: dedups a retried PUT
        #: so it cannot be assigned a second sequence number
        self.pending_client: Dict[Tuple[int, int, int], int] = {}
        #: (client, window_slot) -> req_epoch of the newest *applied*
        #: PUT from that slot.  A retry whose ack was lost matches here
        #: and is re-acked instead of re-executed — re-staging it would
        #: clobber any interleaved later write to the same key (the
        #: lost-update the checker catches).  Lives with the store (and
        #: so survives crashes): it is exactly the at-most-once table a
        #: real region-backed KV keeps beside its data.
        self.completed: Dict[Tuple[int, int], int] = {}
        self.uncommitted: Dict[bytes, int] = {}  # key -> newest staged seq
        self.read_waiters: Dict[bytes, List[Tuple[int, int, int, Operation]]] = {}
        self.waiting: Set[Tuple[int, int, int]] = set()
        self.peer_hwm: Dict[int, int] = {}
        #: peers the promoted candidate must catch up with before
        #: serving (None = not syncing)
        self.syncing: Optional[Set[int]] = None

        # wired by the cluster
        self.server = None  # HerdServerProcess
        self.node = None  # HaNode

        # counters / invariant evidence
        self.updates_applied = 0
        self.duplicate_updates = 0
        self.stale_updates = 0
        self.commits = 0
        self.stale_nacks_sent = 0
        self.hwm_regressions = 0

    # -- serve-path hooks (called from the server process) -------------

    def serving_verdict(self, now: float) -> str:
        """"serve", "hold" (no lease / still syncing), or "stale"."""
        if not self.is_primary:
            return "stale"
        if self.syncing is not None or now >= self.lease_until:
            return "hold"
        return "serve"

    def live_peers(self) -> Set[int]:
        return set(r for r in self.members if r != self.replica_id)

    def defer_get(self, client, window_slot, req_epoch, op) -> bool:
        """Park a GET whose key has an uncommitted PUT; False if dup."""
        token = (client, window_slot, req_epoch)
        if token in self.waiting:
            return False  # a retry of a GET we already parked
        self.waiting.add(token)
        self.read_waiters.setdefault(op.key, []).append(
            (client, window_slot, req_epoch, op)
        )
        return True

    def stage_update(self, client, window_slot, req_epoch, op):
        """Primary PUT path: sequence, log, ship; ack comes at commit.

        Generator (runs on the server core — the costs of shipping are
        the primary's CPU/PIO time, as in FaRM-style primary-backup).
        """
        node = self.node
        sim = node.sim
        seq = self.next_seq + 1
        self.next_seq = seq
        self.log.append((seq, op.key, op.value, client, window_slot, req_epoch))
        self.uncommitted[op.key] = seq
        self.pending_client[(client, window_slot, req_epoch)] = seq
        inf = InflightUpdate(
            seq, op.key, op.value, (client, window_slot, req_epoch, op), sim.now
        )
        self.inflight[seq] = inf
        payload = wire.encode_update(
            self.partition, self.replica_id, self.epoch, seq, op.key, op.value,
            client, window_slot, req_epoch,
        )
        for peer in sorted(self.live_peers()):
            yield from node.send_mesh(peer, payload)
        node.updates_shipped += 1
        # zero live backups (everyone else declared dead) commits
        # immediately — with ack_policy="all" the policy is vacuously
        # satisfied; with "majority" the write stays pending until a
        # group majority is reachable again
        self.check_commits()

    def stage_migration(self, keyhash, value, on_commit=None):
        """Stage a migrated-in record exactly like a client PUT.

        Generator.  The record rides the ordinary sequenced-update
        replication — same log, same backup acks, same commit rule —
        under the ``wire.MIG_CLIENT`` sentinel token, so backups
        replicate it durably but nobody mistakes it for an at-most-once
        client request.  ``on_commit(seq)`` fires when the commit rule
        is satisfied; the migration sink acks the source from there.
        """
        node = self.node
        sim = node.sim
        seq = self.next_seq + 1
        self.next_seq = seq
        self.log.append((seq, keyhash, value, wire.MIG_CLIENT, 0, 0))
        self.uncommitted[keyhash] = seq
        inf = InflightUpdate(seq, keyhash, value, None, sim.now)
        inf.on_commit = on_commit
        self.inflight[seq] = inf
        payload = wire.encode_update(
            self.partition, self.replica_id, self.epoch, seq, keyhash,
            value, wire.MIG_CLIENT, 0, 0,
        )
        for peer in sorted(self.live_peers()):
            yield from node.send_mesh(peer, payload)
        node.updates_shipped += 1
        self.check_commits()

    def elastic_verdict(self, keyhash) -> str:
        """"serve", "hold" (range frozen for cutover), or "not_owner".

        The elastic layer's routing verdict, consulted by the server
        after the lease verdict.  Without an elastic agent every key is
        served — classic static sharding.
        """
        node = self.node
        if node is None or node.elastic is None:
            return "serve"
        return node.elastic.request_verdict(self.partition, keyhash)

    # -- replication message handlers (called from the node) -----------

    def on_update(self, sender, epoch, seq, keyhash, value, client=0,
                  window_slot=0, req_epoch=0):
        """Apply/buffer an UPDATE; returns (ack_payload, gap_detected)."""
        if epoch < self.epoch:
            self.stale_updates += 1
            ack = wire.encode_rep_ack(
                self.partition, self.replica_id, self.epoch, seq,
                wire.ACK_STALE, self.applied_seq,
            )
            return ack, False
        if epoch > self.epoch:
            # a primary with a newer epoch is authoritative: adopt it
            # (the monitor's CONFIG, possibly still in flight, will
            # confirm); fencing only requires never acking old epochs
            self.epoch = epoch
            self.primary_id = sender
            if self.is_primary:
                self._demote()
            self.syncing = None
        gap = False
        if seq <= self.applied_seq:
            self.duplicate_updates += 1  # RC retransmit or re-ship
        elif seq == self.applied_seq + 1:
            self._apply(seq, keyhash, value, client, window_slot, req_epoch)
            self._drain_buffer()
        else:
            self.buffer[seq] = (keyhash, value, client, window_slot, req_epoch)
            gap = True
        ack = wire.encode_rep_ack(
            self.partition, self.replica_id, self.epoch, seq,
            wire.ACK_APPLIED, self.applied_seq,
        )
        return ack, gap

    def _apply(self, seq, keyhash, value, client=0, window_slot=0, req_epoch=0):
        if seq <= self.applied_seq:
            self.hwm_regressions += 1  # invariant counter; never by design
            return
        self.server.store.put(keyhash, value)
        self.log.append((seq, keyhash, value, client, window_slot, req_epoch))
        if client != wire.MIG_CLIENT:
            # migration records carry no client request to dedup
            self.completed[(client, window_slot)] = req_epoch
        self.applied_seq = seq
        self.updates_applied += 1

    def _drain_buffer(self):
        while self.applied_seq + 1 in self.buffer:
            seq = self.applied_seq + 1
            keyhash, value, client, window_slot, req_epoch = self.buffer.pop(seq)
            self._apply(seq, keyhash, value, client, window_slot, req_epoch)

    def on_ack(self, sender, epoch, seq, status, hwm):
        """Credit a backup ack against in-flight updates; commit."""
        if epoch != self.epoch:
            return  # stale ack (or from a newer epoch we lost; config will fence us)
        previous = self.peer_hwm.get(sender)
        self.peer_hwm[sender] = max(hwm, previous if previous is not None else 0)
        if self.syncing is not None:
            if sender in self.syncing and self.applied_seq >= self.peer_hwm[sender]:
                self.syncing.discard(sender)
            if not self.syncing:
                self._finish_sync()
            return
        if not self.is_primary:
            return
        for s in sorted(self.inflight):
            if s <= hwm:
                self.inflight[s].ackers.add(sender)
        self.check_commits()

    def _required(self, inf: InflightUpdate) -> bool:
        if self.config.ack_policy == "all":
            return self.live_peers() <= inf.ackers
        # majority of the *group* (rf), counting the primary itself —
        # never a majority of the live set, which could let two
        # disjoint "majorities" commit across a network partition
        return len(inf.ackers) + 1 >= self.rf // 2 + 1

    def check_commits(self) -> None:
        """Commit the contiguous acked prefix; ack clients."""
        node = self.node
        server = self.server
        while True:
            seq = self.committed_seq + 1
            inf = self.inflight.get(seq)
            if inf is None or not self._required(inf):
                break
            del self.inflight[seq]
            self.committed_seq = seq
            self.applied_seq = max(self.applied_seq, seq)
            server.store.put(inf.keyhash, inf.value)
            per_access = (
                server.profile.prefetch_hit_ns
                if self.config.prefetch
                else server.profile.dram_ns
            )
            store_ns = server.store.last_op_accesses * per_access
            self.commits += 1
            if node is not None and node._lag_hist is not None:
                node._lag_hist.observe(node.sim.now - inf.created_ns)
            if node is not None and node.elastic is not None:
                # dual-write: forward the committed record onto any
                # live outgoing migration covering its key
                node.elastic.on_commit(self.partition, inf.keyhash, inf.value)
            if inf.respond is None:
                # migrated-in record: ack the migration source, not a client
                if inf.on_commit is not None:
                    inf.on_commit(seq)
            else:
                client, window_slot, req_epoch, op = inf.respond
                self.pending_client.pop((client, window_slot, req_epoch), None)
                self.completed[(client, window_slot)] = req_epoch
                node.sim.process(
                    server.ha_respond(
                        client, window_slot, op, req_epoch, wire.RESP_OK,
                        server.epoch, extra_ns=store_ns, ack_epoch=self.epoch,
                    )
                )
            if self.uncommitted.get(inf.keyhash) == seq:
                del self.uncommitted[inf.keyhash]
                for waiter in self.read_waiters.pop(inf.keyhash, []):
                    w_client, w_slot, w_epoch, w_op = waiter
                    self.waiting.discard((w_client, w_slot, w_epoch))
                    node.sim.process(
                        server.ha_serve_deferred_get(
                            w_client, w_slot, w_epoch, w_op, server.epoch
                        )
                    )

    def on_catchup(self, sender, from_seq):
        """Entries the requester is missing: (records, marker_ack)."""
        records = []
        for seq, keyhash, value, client, window_slot, req_epoch in self.log:
            if seq <= from_seq:
                continue
            records.append(
                wire.encode_update(
                    self.partition, self.replica_id, self.epoch, seq, keyhash,
                    value, client, window_slot, req_epoch,
                )
            )
            if len(records) >= CATCHUP_BURST:
                break
        marker = wire.encode_rep_ack(
            self.partition, self.replica_id, self.epoch,
            self.applied_seq, wire.ACK_APPLIED, self.applied_seq,
        )
        return records, marker

    # -- config transitions (called from the node's control loop) ------

    def on_config(self, primary, epoch, members) -> Optional[str]:
        """Adopt a CONFIG; returns "promote"/"demote"/"check"/None."""
        if epoch <= self.epoch:
            return None
        self.epoch = epoch
        self.members = set(members)
        self.primary_id = None if primary == 0xFF else primary
        if self.primary_id == self.replica_id:
            if self.is_primary:
                # membership changed under the same primary: a shrunken
                # live set may satisfy ack_policy="all" now
                self.check_commits()
                return "check"
            self._promote()
            return "promote"
        if self.is_primary:
            self._demote()
            return "demote"
        return None

    def _promote(self):
        self.is_primary = True
        self.group.promotions += 1
        self.buffer.clear()
        # the applied prefix is the group's durable history as far as
        # this replica knows; syncing pulls anything newer from peers
        self.committed_seq = self.applied_seq
        self.next_seq = self.applied_seq
        self.peer_hwm = {}
        self.syncing = set(self.live_peers())
        # adopting the config is the epoch's first lease term (the
        # monitor will not elect anyone else before our lease expires)
        self.lease_until = self.node.sim.now + self.lease_ns
        if not self.syncing:
            self._finish_sync()

    def _finish_sync(self):
        self.syncing = None
        self.committed_seq = self.applied_seq
        self.next_seq = self.applied_seq

    def _demote(self):
        """Stale primary fenced: nack everything we never committed."""
        node = self.node
        server = self.server
        self.is_primary = False
        self.syncing = None
        # uncommitted log suffix must not survive: it was never acked,
        # and replaying it later (catch-up) could resurrect a write the
        # new epoch's history knows nothing about
        self.log = [entry for entry in self.log if entry[0] <= self.committed_seq]
        self.next_seq = self.committed_seq
        self.applied_seq = self.committed_seq
        if node is not None and node.elastic is not None:
            # a fenced primary must stop streaming migration records
            node.elastic.abort_partition(self.partition)
        for seq in sorted(self.inflight):
            inf = self.inflight[seq]
            if inf.respond is None:
                continue  # migration record: its source re-sends or aborts
            client, window_slot, req_epoch, op = inf.respond
            self.stale_nacks_sent += 1
            node.sim.process(
                server.ha_respond(
                    client, window_slot, op, req_epoch,
                    wire.RESP_STALE_EPOCH, server.epoch,
                )
            )
        self.inflight.clear()
        self.pending_client.clear()
        self.uncommitted.clear()
        for waiters in self.read_waiters.values():
            for w_client, w_slot, w_epoch, w_op in waiters:
                self.stale_nacks_sent += 1
                node.sim.process(
                    server.ha_respond(
                        w_client, w_slot, w_op, w_epoch,
                        wire.RESP_STALE_EPOCH, server.epoch,
                    )
                )
        self.read_waiters.clear()
        self.waiting.clear()

    # -- crash / recovery (called from the server process) -------------

    def on_crash(self):
        """The host server process died: volatile role state dies too.

        The log and applied prefix survive (shared memory, like the
        region and the MICA store); in-flight client bookkeeping is
        volatile, and those clients will retry / fail over anyway.
        """
        self.log = [entry for entry in self.log if entry[0] <= self.committed_seq]
        self.next_seq = self.committed_seq
        if self.is_primary:
            self.applied_seq = self.committed_seq
        if self.node is not None and self.node.elastic is not None:
            self.node.elastic.abort_partition(self.partition)
        self.inflight.clear()
        self.pending_client.clear()
        self.uncommitted.clear()
        self.read_waiters.clear()
        self.waiting.clear()
        self.buffer.clear()
        self.syncing = None
        self.lease_until = float("-inf")

    def on_recover(self):
        """Nothing to rebuild: we hold no lease and serve nothing until
        the monitor re-admits us (rejoin bumps the epoch and fences us
        if we still believe we are primary of an old epoch)."""


class _StagingRing:
    """The server's staging-buffer discipline, for the node's sends."""

    def __init__(self, device: RdmaDevice, size: int) -> None:
        self.mr = device.register_memory(size)
        self.size = size
        self.cursor = 0
        self.inflight: List[Tuple[int, int]] = []

    def stage(self, payload: bytes) -> int:
        size = len(payload)
        start = self.cursor
        if start + size > self.size:
            start = 0
        for in_start, in_end in self.inflight:
            if start < in_end and start + size > in_start:
                raise RuntimeError(
                    "HA staging ring exhausted: [%d, %d) overlaps in-flight "
                    "[%d, %d)" % (start, start + size, in_start, in_end)
                )
        self.inflight.append((start, start + size))
        self.mr.write(start, payload)
        self.cursor = start + size
        return start


class HaNode:
    """The replication dataplane on one replica machine."""

    def __init__(
        self,
        replica_id: int,
        device: RdmaDevice,
        config: HerdConfig,
        roles: List[ReplicaRole],
    ) -> None:
        self.replica_id = replica_id
        self.device = device
        self.sim: Simulator = device.sim
        self.profile = device.profile
        self.config = config
        self.roles = roles  # indexed by partition
        for role in roles:
            role.node = self
        self.heartbeat_ns = config.heartbeat_us * 1000.0

        self.mesh_cq = CompletionQueue(self.sim, "ha.rep%d.mesh" % replica_id)
        self.mesh_qps: Dict[int, QueuePair] = {}  # peer replica -> RC QP
        self._qp_peer: Dict[int, int] = {}  # qpn -> peer replica
        self.mesh_mr = None  # sized in start() once peers are wired
        self._staging = _StagingRing(device, NODE_STAGING_BYTES)

        self.ctrl_cq = CompletionQueue(self.sim, "ha.rep%d.ctrl" % replica_id)
        self.ctrl_qp = device.create_qp(Transport.UD, recv_cq=self.ctrl_cq)
        self.ctrl_mr = device.register_memory(CTRL_RING * CTRL_SLOT)
        self.monitor_ah: Optional[Tuple[str, int]] = None  # wired by the cluster
        #: the machine's ElasticAgent (repro.elastic), or None for a
        #: static deployment; mesh/ctrl traffic it owns is delegated
        self.elastic = None

        #: throttle: partition -> last CATCHUP request time
        self._catchup_sent_at: Dict[int, float] = {}

        self.updates_shipped = 0
        self.acks_sent = 0
        self.catchups_served = 0
        self.heartbeats_sent = 0

        metrics = getattr(self.sim, "metrics", None)
        self._lag_hist = None
        if metrics is not None:
            prefix = "ha.rep%d." % replica_id
            metrics.gauge_fn(prefix + "updates_shipped", lambda: self.updates_shipped)
            metrics.gauge_fn(prefix + "acks_sent", lambda: self.acks_sent)
            metrics.gauge_fn(prefix + "catchups_served", lambda: self.catchups_served)
            metrics.gauge_fn(prefix + "heartbeats", lambda: self.heartbeats_sent)
            self._lag_hist = metrics.histogram(prefix + "replication_lag_ns")

    # -- wiring --------------------------------------------------------

    def add_peer(self, peer_id: int, qp: QueuePair) -> None:
        self.mesh_qps[peer_id] = qp
        self._qp_peer[qp.qpn] = peer_id

    def start(self) -> None:
        peers = sorted(self.mesh_qps)
        self.mesh_mr = self.device.register_memory(
            max(1, len(peers)) * MESH_RING * MESH_SLOT
        )
        for p_index, peer in enumerate(peers):
            qp = self.mesh_qps[peer]
            base = p_index * MESH_RING * MESH_SLOT
            for i in range(MESH_RING):
                offset = base + i * MESH_SLOT
                self.device.post_recv(
                    qp,
                    RecvRequest(wr_id=offset, local=(self.mesh_mr, offset, MESH_SLOT)),
                )
        for i in range(CTRL_RING):
            offset = i * CTRL_SLOT
            self.device.post_recv(
                self.ctrl_qp,
                RecvRequest(wr_id=offset, local=(self.ctrl_mr, offset, CTRL_SLOT)),
            )
        self.sim.process(self._mesh_loop(), name="ha-rep%d-mesh" % self.replica_id)
        self.sim.process(self._ctrl_loop(), name="ha-rep%d-ctrl" % self.replica_id)
        self.sim.process(self._heartbeat_loop(), name="ha-rep%d-hb" % self.replica_id)

    # -- sending -------------------------------------------------------

    def send_mesh(self, peer: int, payload: bytes):
        qp = self.mesh_qps.get(peer)
        if qp is None:
            return
        if len(payload) <= self.profile.max_inline:
            wr = WorkRequest.send(payload=payload, inline=True, signaled=False)
        else:
            yield self.sim.timeout(len(payload) / 16.0)  # staging memcpy
            offset = self._staging.stage(payload)
            wr = WorkRequest.send(
                local=(self._staging.mr, offset, len(payload)), signaled=False
            )
            extent = (offset, offset + len(payload))
            wr.on_fetched = lambda: self._staging.inflight.remove(extent)
        yield from self.device.post_send_timed(qp, wr)

    # -- receive loops -------------------------------------------------

    def _mesh_loop(self):
        sim = self.sim
        poll_ns = self.profile.cq_poll_ns
        while True:
            cqe = yield self.mesh_cq.pop()
            yield sim.timeout(poll_ns)
            offset = cqe.wr_id
            data = bytes(self.mesh_mr.read(offset, cqe.byte_len))
            qp = self.device.qps[cqe.qpn]
            self.device.post_recv(
                qp, RecvRequest(wr_id=offset, local=(self.mesh_mr, offset, MESH_SLOT))
            )
            if not data:
                continue
            kind = wire.ha_kind(data)
            if kind == wire.REP_UPDATE:
                yield from self._on_update(data)
            elif kind == wire.REP_ACK:
                partition, sender, epoch, seq, status, hwm = wire.decode_rep_ack(data)
                self.roles[partition].on_ack(sender, epoch, seq, status, hwm)
            elif kind == wire.REP_CATCHUP:
                yield from self._on_catchup(data)
            elif kind in (wire.MIG_RECORD, wire.MIG_ACK) and self.elastic is not None:
                peer = self._qp_peer.get(cqe.qpn)
                if peer is not None:
                    yield from self.elastic.on_mesh(kind, data, peer)

    def _on_update(self, data):
        (
            partition, sender, epoch, seq, keyhash, value,
            client, window_slot, req_epoch,
        ) = wire.decode_update(data)
        role = self.roles[partition]
        before = role.applied_seq
        ack, gap = role.on_update(
            sender, epoch, seq, keyhash, value, client, window_slot, req_epoch
        )
        applied = role.applied_seq - before
        if applied:
            # charge the store writes to this (replication) core
            per_access = (
                self.profile.prefetch_hit_ns
                if self.config.prefetch
                else self.profile.dram_ns
            )
            yield self.sim.timeout(
                applied * role.server.store.last_op_accesses * per_access
            )
        yield from self.send_mesh(sender, ack)
        self.acks_sent += 1
        if gap:
            now = self.sim.now
            last = self._catchup_sent_at.get(partition, float("-inf"))
            if now - last >= self.heartbeat_ns:
                self._catchup_sent_at[partition] = now
                request = wire.encode_catchup(
                    partition, self.replica_id, role.epoch, role.applied_seq
                )
                yield from self.send_mesh(sender, request)

    def _on_catchup(self, data):
        partition, sender, epoch, from_seq = wire.decode_catchup(data)
        role = self.roles[partition]
        records, marker = role.on_catchup(sender, from_seq)
        self.catchups_served += 1
        for record in records:
            yield from self.send_mesh(sender, record)
        yield from self.send_mesh(sender, marker)

    def _ctrl_loop(self):
        sim = self.sim
        poll_ns = self.profile.cq_poll_ns
        while True:
            cqe = yield self.ctrl_cq.pop()
            yield sim.timeout(poll_ns)
            offset = cqe.wr_id
            data = bytes(self.ctrl_mr.read(offset + 40, cqe.byte_len))
            self.device.post_recv(
                self.ctrl_qp,
                RecvRequest(wr_id=offset, local=(self.ctrl_mr, offset, CTRL_SLOT)),
            )
            if not data:
                continue
            kind = wire.ha_kind(data)
            if kind == wire.CTRL_GRANT:
                partition, target, epoch, hb_sent_ns = wire.decode_grant(data)
                role = self.roles[partition]
                if target == self.replica_id and epoch == role.epoch and role.is_primary:
                    role.lease_until = max(
                        role.lease_until, hb_sent_ns + role.lease_ns
                    )
            elif kind == wire.CTRL_CONFIG:
                partition, primary, epoch, members = wire.decode_config(data)
                role = self.roles[partition]
                action = role.on_config(primary, epoch, members)
                if action == "promote" and role.syncing:
                    yield from self._send_sync_catchups(role)
            elif self.elastic is not None:
                # migration control (MIG_START/CUTOVER/ABORT, SHARDMAP)
                yield from self.elastic.on_ctrl(kind, data)

    def _send_sync_catchups(self, role):
        for peer in sorted(role.syncing or ()):
            request = wire.encode_catchup(
                role.partition, self.replica_id, role.epoch, role.applied_seq
            )
            yield from self.send_mesh(peer, request)

    # -- heartbeats and repair -----------------------------------------

    def _heartbeat_loop(self):
        sim = self.sim
        # deterministic stagger so replicas do not all heartbeat on the
        # same instant (and so the monitor's UD ring drains smoothly)
        yield sim.timeout(
            self.heartbeat_ns * self.replica_id / max(1, self.config.replication_factor)
        )
        while True:
            for role in self.roles:
                if not role.server.alive:
                    continue
                hb = wire.encode_heartbeat(
                    role.partition, self.replica_id, role.is_primary,
                    role.epoch, role.applied_seq, sim.now,
                )
                if self.monitor_ah is not None:
                    wr = WorkRequest.send(
                        payload=hb, inline=True, signaled=False, ah=self.monitor_ah
                    )
                    yield from self.device.post_send_timed(self.ctrl_qp, wr)
                    self.heartbeats_sent += 1
            for role in self.roles:
                if not role.server.alive:
                    continue
                if role.syncing:
                    # lost catch-up traffic must not wedge a promotion
                    yield from self._send_sync_catchups(role)
                elif role.is_primary and role.inflight:
                    yield from self._reship_oldest(role)
            yield sim.timeout(self.heartbeat_ns)

    def _reship_oldest(self, role):
        """Re-send the oldest uncommitted update to unacked peers.

        UPDATE loss is normally repaired by RC retransmission or by the
        receiver's gap-triggered CATCHUP, but a *trailing* loss (no
        later update reveals the gap) needs this timer-driven nudge.
        """
        seq = min(role.inflight)
        inf = role.inflight[seq]
        if self.sim.now - inf.shipped_ns < 2 * self.heartbeat_ns:
            return
        inf.shipped_ns = self.sim.now
        if inf.respond is None:
            client, window_slot, req_epoch = wire.MIG_CLIENT, 0, 0
        else:
            client, window_slot, req_epoch, _op = inf.respond
        payload = wire.encode_update(
            role.partition, self.replica_id, role.epoch, seq, inf.keyhash,
            inf.value, client, window_slot, req_epoch,
        )
        for peer in sorted(role.live_peers() - inf.ackers):
            yield from self.send_mesh(peer, payload)
