"""Closed-form bottleneck analysis of the simulated hardware.

For each experiment the discrete-event simulator answers "what
throughput emerges?"; this package answers "what throughput *should*
emerge?" by computing every serialised resource's per-operation demand
and taking the reciprocal of the largest.  The test suite cross-checks
the two — if the simulator's queueing behaviour ever drifts from the
calibrated service times, the mismatch shows up here first.
"""

from repro.analysis.model import BottleneckModel

__all__ = ["BottleneckModel"]
