"""Closed-form throughput predictions from per-resource service demands.

Each prediction enumerates the serialised stations an operation
occupies at the *server* machine (the shared side of every experiment)
— NIC ingress and egress engines, the DMA engine, the PIO path, the
wire, and the polling cores — and returns the saturation throughput
``1 / max(demand)`` in Mops, along with the name of the binding
resource.  Client-side stations are assumed replicated enough not to
bind, matching the experiments' many-clients setups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hw.params import APT, HardwareProfile


@dataclass
class Prediction:
    """A predicted saturation throughput and its bottleneck."""

    mops: float
    bottleneck: str
    demands_ns: Dict[str, float]


def _predict(demands: Dict[str, float]) -> Prediction:
    bottleneck = max(demands, key=demands.get)
    return Prediction(1e3 / demands[bottleneck], bottleneck, dict(demands))


class BottleneckModel:
    """Analytic throughput model for one hardware profile."""

    def __init__(self, profile: HardwareProfile = APT) -> None:
        self.p = profile

    # -- building blocks ----------------------------------------------------

    def _wqe_bytes(self, payload: int, inline: bool, rdma: bool, ud: bool) -> int:
        p = self.p
        size = p.wqe_ctrl_bytes
        if rdma:
            size += p.wqe_raddr_bytes
        if ud:
            size += p.wqe_av_bytes
        size += (p.wqe_inline_hdr_bytes + payload) if inline else p.wqe_data_ptr_bytes
        return size

    def pio_ns(self, payload: int, inline: bool, rdma: bool, ud: bool = False) -> float:
        return self.p.pio_ns(self._wqe_bytes(payload, inline, rdma, ud))

    def wire_ns(self, payload: int, ud: bool = False) -> float:
        return self.p.wire_bytes(payload, ud=ud) / self.p.link_bw

    def dma_write_ns(self, payload: int) -> float:
        return self.p.dma_write_ns + payload / self.p.pcie_bw

    def dma_read_ns(self, payload: int, transactions: int = 1) -> float:
        return self.p.dma_read_ns * transactions + payload / self.p.pcie_bw

    # -- microbenchmarks -------------------------------------------------------

    def inbound_write(self, payload: int) -> Prediction:
        """Figure 3: inbound WRITE rate at the server NIC."""
        return _predict(
            {
                "nic_ingress": self.p.nic_ingress_write_ns,
                "dma": self.dma_write_ns(payload),
                "wire": self.wire_ns(payload),
            }
        )

    def inbound_read(self, payload: int) -> Prediction:
        """Figure 3: inbound READ rate at the server NIC."""
        return _predict(
            {
                "nic_ingress": self.p.nic_ingress_read_ns,
                "dma": self.dma_read_ns(payload),
                "nic_egress": self.p.nic_egress_ns,
                "wire": self.wire_ns(payload),
            }
        )

    def outbound_inline(self, payload: int, ud: bool = False) -> Prediction:
        """Figure 4: outbound inlined WRITE (UC) or SEND (UD) rate."""
        return _predict(
            {
                "pio": self.pio_ns(payload, inline=True, rdma=not ud, ud=ud),
                "nic_egress": self.p.nic_egress_ns,
                "wire": self.wire_ns(payload, ud=ud),
            }
        )

    def outbound_non_inline(self, payload: int, reliable: bool = False) -> Prediction:
        """Figure 4: outbound WRITE fetched over DMA."""
        transactions = self.p.non_inline_fetch_transactions + (1 if reliable else 0)
        return _predict(
            {
                "pio": self.pio_ns(payload, inline=False, rdma=True),
                "dma": self.dma_read_ns(payload, transactions),
                "nic_egress": self.p.nic_egress_ns,
                "wire": self.wire_ns(payload),
            }
        )

    def outbound_read(self, payload: int) -> Prediction:
        """Figure 4: outbound READ issue rate."""
        return _predict(
            {
                "pio": self.pio_ns(0, inline=False, rdma=True),
                "nic_egress": self.p.nic_egress_read_ns,
                # the responses return through this NIC's ingress + DMA
                "nic_ingress": self.p.nic_ingress_resp_ns,
                "dma_resp": self.dma_write_ns(payload),
                "wire": self.wire_ns(payload),
            }
        )

    # -- systems ------------------------------------------------------------------

    def herd(
        self,
        value_size: int = 32,
        get_fraction: float = 0.95,
        cores: int = 6,
        prefetch: bool = True,
    ) -> Prediction:
        """HERD's saturation throughput (Figures 9, 10, 13).

        Requests arrive as inbound WRITEs; responses leave as UD SENDs
        (inlined below the cutoff); the cores poll, run MICA, and post.
        """
        p = self.p
        get_req = 18                      # LEN + keyhash
        put_req = 18 + value_size
        req_bytes = get_fraction * get_req + (1 - get_fraction) * put_req
        get_resp, put_resp = value_size, 1
        resp_bytes = get_fraction * get_resp + (1 - get_fraction) * put_resp
        resp_inline = resp_bytes <= p.herd_inline_cutoff

        per_access = p.prefetch_hit_ns if prefetch else p.dram_ns
        accesses = 2 * get_fraction + 1 * (1 - get_fraction)
        core_ns = (
            6 * p.poll_check_ns          # find + decode the slot
            + accesses * per_access      # MICA lookups
            + p.post_send_ns             # driver cost of the response
        )
        demands = {
            "nic_ingress": p.nic_ingress_write_ns,   # request WRITEs in
            "dma": self.dma_write_ns(req_bytes)      # requests land
            + (0 if resp_inline else self.dma_read_ns(resp_bytes, 3)),
            "nic_egress": p.nic_egress_ns,           # responses out
            "pio": self.pio_ns(
                int(resp_bytes) if resp_inline else 0, resp_inline, rdma=False, ud=True
            ),
            "cores": core_ns / cores,
            "wire_in": self.wire_ns(int(req_bytes)),
            "wire_out": self.wire_ns(int(resp_bytes), ud=True),
        }
        return _predict(demands)

    # -- latency -----------------------------------------------------------

    def verb_latency_ns(self, kind: str, payload: int) -> float:
        """Unloaded latency of one verb (Figure 2), as a sum of path
        components — cross-validates the simulator's latency plumbing.

        ``kind``: ``READ``, ``WRITE`` (signaled, RC, not inlined),
        ``WR-INLINE`` (signaled, RC, inlined), or ``ECHO`` (round trip
        of unsignaled inlined WRITEs through a polling echo server).
        """
        p = self.p
        post = p.post_send_ns
        egress = p.nic_egress_ns
        flight = lambda size, ud=False: (
            self.wire_ns(size, ud=ud) + p.wire_delay_ns
        )
        cqe = self.dma_write_ns(32) + p.dma_write_latency_ns + p.cq_poll_ns
        if kind == "READ":
            return (
                post
                + self.pio_ns(0, inline=False, rdma=True)
                + p.nic_egress_read_ns
                + flight(16)
                + p.nic_ingress_read_ns
                + self.dma_read_ns(payload)
                + p.dma_read_latency_ns
                + egress
                + flight(payload)
                + p.nic_ingress_resp_ns
                + self.dma_write_ns(payload)
                + p.dma_write_latency_ns
                + cqe
            )
        if kind == "WRITE":
            return (
                post
                + self.pio_ns(0, inline=False, rdma=True)
                + egress
                + self.dma_read_ns(payload, self.p.non_inline_fetch_transactions + 1)
                + p.dma_read_latency_ns
                + flight(payload)
                + p.nic_ingress_write_ns
                + p.nic_ingress_ack_ns  # responder generates the ACK
                + flight(0)
                + p.nic_ingress_ack_ns
                + cqe
            )
        if kind == "WR-INLINE":
            return (
                post
                + self.pio_ns(payload, inline=True, rdma=True)
                + egress
                + flight(payload)
                + p.nic_ingress_write_ns
                + p.nic_ingress_ack_ns
                + flight(0)
                + p.nic_ingress_ack_ns
                + cqe
            )
        if kind == "ECHO":
            one_way = (
                post
                + self.pio_ns(payload, inline=True, rdma=True)
                + egress
                + flight(payload)
                + p.nic_ingress_write_ns
                + self.dma_write_ns(payload)
                + p.dma_write_latency_ns
            )
            poll = 8 * p.poll_check_ns
            return 2 * one_way + 2 * poll
        raise ValueError("unknown latency kind %r" % kind)

    def pilaf_get(self, value_size: int = 32) -> Prediction:
        """Pilaf-em-OPT GETs: 1.6 bucket READs + 1 value READ."""
        reads = 2.6
        return _predict(
            {
                "nic_ingress": reads * self.p.nic_ingress_read_ns,
                "dma": 1.6 * self.dma_read_ns(32) + self.dma_read_ns(value_size),
                "nic_egress": reads * self.p.nic_egress_ns,
            }
        )

    def client_cpu_ns_per_op(self, system: str, get_fraction: float = 0.95) -> float:
        """CPU nanoseconds a *client* burns per operation (Section 5.6).

        The paper's point: READ-based designs look CPU-free because
        they bypass the server, but 'issuing extra READs adds CPU
        overhead at the Pilaf and FaRM-KV clients' — each dependent
        READ costs a post plus a completion poll.  HERD shifts that
        work to the server, 'making more room for application
        processing at the clients'.
        """
        p = self.p
        post = p.post_send_ns + self.pio_ns(0, inline=False, rdma=True)
        poll = p.cq_poll_ns
        if system == "HERD":
            get = p.post_recv_ns + post + poll
            put = get
        elif system == "Pilaf":
            get = 2.6 * (post + poll)                     # dependent READs
            put = p.post_recv_ns + post + poll            # SEND/RECV
        elif system == "FaRM":
            get = post + poll                             # one READ
            put = post + 4 * p.poll_check_ns              # WRITE + poll ack
        elif system == "FaRM-VAR":
            get = 2 * (post + poll)
            put = post + 4 * p.poll_check_ns
        else:
            raise ValueError("unknown system %r" % system)
        return get_fraction * get + (1 - get_fraction) * put

    def farm_get(self, value_size: int = 32, inline_values: bool = True) -> Prediction:
        """FaRM-em GETs: one neighborhood READ (+ a value READ in VAR)."""
        span = 6 * (16 + (value_size if inline_values else 8))
        demands = {
            "nic_ingress": self.p.nic_ingress_read_ns,
            "dma": self.dma_read_ns(span),
            "wire": self.wire_ns(span),
        }
        if not inline_values:
            demands["nic_ingress"] *= 2
            demands["dma"] += self.dma_read_ns(value_size)
            demands["wire"] += self.wire_ns(value_size)
        return _predict(demands)
