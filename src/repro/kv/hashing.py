"""Deterministic 64-bit mixing for hash-table placement.

CRC32 is *linear* over GF(2), so two differently-salted CRCs of the same
key differ by a constant — fatal for cuckoo hashing, whose K candidate
buckets must be (close to) independent.  ``mix64`` is the splitmix64
finalizer: cheap, deterministic across processes, and properly
avalanching.
"""

from __future__ import annotations

import numpy as np

_MASK = (1 << 64) - 1


def mix64(x: int) -> int:
    """splitmix64 finalizer: avalanche all 64 bits of ``x``."""
    x &= _MASK
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK
    return x ^ (x >> 31)


def mix64_array(x: "np.ndarray") -> "np.ndarray":
    """Vectorised :func:`mix64` over a ``uint64`` array.

    ``uint64`` arithmetic wraps modulo 2**64, which is exactly the
    ``& _MASK`` in the scalar version, so the two agree bit for bit.
    The workload generator leans on this to synthesise keyhashes and
    values in batches.
    """
    x = x ^ (x >> np.uint64(30))
    x = x * np.uint64(0xBF58476D1CE4E5B9)
    x = x ^ (x >> np.uint64(27))
    x = x * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def hash_key(key: bytes, salt: int = 0) -> int:
    """A salted 64-bit hash of ``key``; distinct salts are independent."""
    h = mix64(salt * 0x9E3779B97F4A7C15)
    # Mix each 64-bit chunk in (a plain XOR-fold would cancel repeated
    # chunks, colliding keys like b"x"*64 and b"y"*64).
    for offset in range(0, len(key), 8):
        chunk = int.from_bytes(key[offset : offset + 8], "little")
        h = mix64(h ^ chunk)
    return h
