"""MICA cache mode: a lossy associative index over a circular log.

This is HERD's backend (Section 4.1).  The design, from MICA [18]:

* The **circular log** stores items back to back in a flat buffer.
  Appending past the end wraps around, silently evicting the oldest
  items in FIFO order — memory efficient, fragmentation free, and no
  garbage collection.
* The **lossy index** maps a key's hash to the log position of its most
  recent entry.  Buckets are set-associative; inserting into a full
  bucket evicts an existing index entry (hence "lossy" — the cache may
  forget items early).

A GET costs at most two random memory accesses (index bucket, then log
entry); a PUT costs one (the log append is sequential, the index update
touches one bucket).  HERD relies on exactly these counts to size its
prefetch pipeline.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, Tuple

from repro.kv.interface import KeyValueStore

#: log entry header: u16 key length, u16 value length
_HEADER = struct.Struct("<HH")


class CircularLog:
    """An append-only byte log that overwrites its oldest content."""

    def __init__(self, capacity: int) -> None:
        if capacity < 16:
            raise ValueError("log capacity unreasonably small")
        self.capacity = capacity
        self.buf = bytearray(capacity)
        #: total bytes ever appended (monotonic "log position")
        self.tail = 0
        self.wraps = 0

    def append(self, key: bytes, value: bytes) -> int:
        """Append an entry; returns its (monotonic) log position."""
        entry = _HEADER.pack(len(key), len(value)) + key + value
        if len(entry) > self.capacity:
            raise ValueError("entry larger than the whole log")
        pos = self.tail
        offset = pos % self.capacity
        first = min(len(entry), self.capacity - offset)
        self.buf[offset : offset + first] = entry[:first]
        if first < len(entry):
            self.buf[0 : len(entry) - first] = entry[first:]
            self.wraps += 1
        self.tail += len(entry)
        return pos

    def alive(self, pos: int, length: int) -> bool:
        """Whether the entry at ``pos`` has not been overwritten."""
        return pos + length > self.tail - self.capacity and pos + length <= self.tail

    def read(self, pos: int) -> Optional[Tuple[bytes, bytes]]:
        """Read the (key, value) at ``pos``; None if overwritten."""
        if not self.alive(pos, _HEADER.size):
            return None
        header = self._read_bytes(pos, _HEADER.size)
        key_len, value_len = _HEADER.unpack(header)
        total = _HEADER.size + key_len + value_len
        if not self.alive(pos, total):
            return None
        body = self._read_bytes(pos + _HEADER.size, key_len + value_len)
        return body[:key_len], body[key_len:]

    def _read_bytes(self, pos: int, length: int) -> bytes:
        offset = pos % self.capacity
        first = min(length, self.capacity - offset)
        out = bytes(self.buf[offset : offset + first])
        if first < length:
            out += bytes(self.buf[0 : length - first])
        return out


class MicaCache(KeyValueStore):
    """Lossy associative index + circular log (MICA's cache mode).

    ``index_entries`` is the number of keys the index can hold
    (the paper's HERD uses 64 Mi per server process with a 4 GB log;
    scale both down for simulation).

    MICA also offers *store* semantics (Section 2.1: "provides both
    cache and store semantics"); ``mode="store"`` turns off both kinds
    of eviction — a full bucket or a full log rejects the PUT instead
    of silently dropping older items.
    """

    SLOTS_PER_BUCKET = 8

    def __init__(
        self,
        index_entries: int = 2 ** 16,
        log_bytes: int = 1 << 22,
        mode: str = "cache",
    ) -> None:
        if mode not in ("cache", "store"):
            raise ValueError("mode must be 'cache' or 'store'")
        self.mode = mode
        n_buckets = max(1, index_entries // self.SLOTS_PER_BUCKET)
        # Power-of-two bucket count for mask indexing.
        self.n_buckets = 1 << (n_buckets - 1).bit_length()
        # buckets[i] is a list of (tag, log position) pairs, newest last
        self.buckets: List[List[Tuple[bytes, int]]] = [[] for _ in range(self.n_buckets)]
        self.log = CircularLog(log_bytes)
        self.last_op_accesses = 0
        # statistics
        self.hits = 0
        self.misses = 0
        self.index_evictions = 0
        self.lost_to_wrap = 0
        self.rejected_puts = 0

    def _bucket_of(self, key: bytes) -> int:
        # HERD keys are already 16-byte keyhashes, but hash here anyway
        # so arbitrary byte keys spread well too.
        return zlib.crc32(key) & (self.n_buckets - 1)

    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Index lookup, then log read: at most 2 random accesses."""
        self.last_op_accesses = 1
        bucket = self.buckets[self._bucket_of(key)]
        for tag, pos in bucket:
            if tag == key:
                self.last_op_accesses = 2
                entry = self.log.read(pos)
                if entry is not None and entry[0] == key:
                    self.hits += 1
                    return entry[1]
                # The log wrapped past this entry: stale index slot.
                bucket.remove((tag, pos))
                self.lost_to_wrap += 1
                break
        self.misses += 1
        return None

    def put(self, key: bytes, value: bytes) -> bool:
        """Append to the log and update one index bucket: 1 random access."""
        self.last_op_accesses = 1
        bucket = self.buckets[self._bucket_of(key)]
        overwrite_index = None
        for i, (tag, _old) in enumerate(bucket):
            if tag == key:
                overwrite_index = i
                break
        if self.mode == "store":
            # Store semantics: never lose data.  Reject on a full
            # bucket or when the append would overwrite live entries.
            if overwrite_index is None and len(bucket) >= self.SLOTS_PER_BUCKET:
                self.rejected_puts += 1
                return False
            entry_size = 4 + len(key) + len(value)
            if self.log.tail + entry_size > self.log.capacity:
                self.rejected_puts += 1
                return False
        pos = self.log.append(key, value)
        if overwrite_index is not None:
            bucket[overwrite_index] = (key, pos)
            return True
        if len(bucket) >= self.SLOTS_PER_BUCKET:
            # Lossy index (cache mode): evict the oldest bucket entry.
            bucket.pop(0)
            self.index_evictions += 1
        bucket.append((key, pos))
        return True

    def delete(self, key: bytes) -> bool:
        self.last_op_accesses = 1
        bucket = self.buckets[self._bucket_of(key)]
        for i, (tag, _pos) in enumerate(bucket):
            if tag == key:
                bucket.pop(i)
                return True
        return False

    def items(self):
        """Iterate live ``(key, value)`` pairs (newest value per key).

        Walks the index buckets and reads each entry out of the log,
        skipping slots the log has wrapped past — the scan a migration
        snapshot (repro.elastic) performs over a partition's store.
        """
        for bucket in self.buckets:
            for tag, pos in list(bucket):
                entry = self.log.read(pos)
                if entry is not None and entry[0] == tag:
                    yield tag, entry[1]
