"""Pilaf's backend: 3-way, 1-slot cuckoo hashing with self-verifying buckets.

Section 5.1.1: Pilaf uses 3-1 cuckoo hashing (each key may live in one
of 3 buckets, one slot per bucket) at 75% memory efficiency, with 1.6
bucket probes per GET on average.  Buckets are *self-verifying*: each
carries a 64-bit checksum so that a client reading the table with RDMA
can detect a torn read caused by a concurrent PUT; values live in flat
"extents" whose entries carry their own checksum.

The whole table is a flat ``bytearray`` (32-byte buckets), so it can be
placed inside a registered memory region and traversed by remote READs:
:meth:`bucket_span` says which bytes a client must read, and
:meth:`parse_bucket` decodes them exactly as a Pilaf client would.
"""

from __future__ import annotations

import struct
import zlib
from random import Random
from typing import List, Optional, Tuple

from repro.kv.hashing import hash_key
from repro.kv.interface import KeyValueStore

KEY_BYTES = 16
BUCKET_BYTES = 32
#: bucket: 16-byte key, u32 extent pointer, u16 value length, u16 flags,
#: u64 checksum -> 32 bytes, matching the paper's alignment assumption.
_BUCKET = struct.Struct("<16sIHHQ")
_FLAG_OCCUPIED = 1

#: extent entry header: u64 value checksum, u16 value length
_EXTENT = struct.Struct("<QH")


def checksum64(data: bytes) -> int:
    """A cheap deterministic 64-bit checksum (two CRC32 halves)."""
    return zlib.crc32(data) | (zlib.crc32(data, 0xFFFFFFFF) << 32)


class CuckooFullError(Exception):
    """Insertion failed after the relocation budget was exhausted."""


class CuckooTable(KeyValueStore):
    """3-1 cuckoo hash table with checksummed buckets and extents."""

    HASHES = 3
    MAX_KICKS = 500

    def __init__(
        self,
        n_buckets: int = 2 ** 14,
        extent_bytes: int = 1 << 22,
        seed: int = 0,
        table_buffer: bytearray = None,
        extent_buffer: bytearray = None,
    ) -> None:
        """``table_buffer`` / ``extent_buffer`` let the table live inside
        an externally owned buffer — e.g. a registered memory region, so
        remote clients can traverse it with RDMA READs (as Pilaf does)."""
        self.n_buckets = 1 << (n_buckets - 1).bit_length()
        if table_buffer is None:
            table_buffer = bytearray(self.n_buckets * BUCKET_BYTES)
        if len(table_buffer) < self.n_buckets * BUCKET_BYTES:
            raise ValueError("table buffer too small for %d buckets" % self.n_buckets)
        self.table = table_buffer
        if extent_buffer is None:
            extent_buffer = bytearray(extent_bytes)
        self.extents = extent_buffer
        self._extent_tail = 0
        self._rng = Random(seed)
        self.items = 0
        self.last_op_accesses = 0
        self.last_op_probes = 0
        self.total_probes = 0
        self.total_gets = 0
        self.kicks = 0

    # -- hashing / layout ---------------------------------------------------

    def buckets_for(self, key: bytes) -> List[int]:
        """The 3 candidate bucket indices for ``key`` (orthogonal hashes)."""
        return [hash_key(key, salt) % self.n_buckets for salt in range(self.HASHES)]

    def bucket_span(self, index: int) -> Tuple[int, int]:
        """(offset, length) of bucket ``index`` within the table buffer."""
        return index * BUCKET_BYTES, BUCKET_BYTES

    def read_bucket(self, index: int) -> bytes:
        offset, length = self.bucket_span(index)
        return bytes(self.table[offset : offset + length])

    @staticmethod
    def parse_bucket(data: bytes) -> Optional[Tuple[bytes, int, int]]:
        """Decode bucket bytes -> (key, extent pointer, value length).

        Returns None for an empty bucket.  Raises ``ValueError`` if the
        checksum does not match — a torn read under a concurrent PUT,
        which a Pilaf client handles by retrying.
        """
        key, ptr, vlen, flags, cksum = _BUCKET.unpack(data)
        if not flags & _FLAG_OCCUPIED:
            return None
        expect = checksum64(_BUCKET.pack(key, ptr, vlen, flags, 0))
        if cksum != expect:
            raise ValueError("bucket checksum mismatch (torn read)")
        return key, ptr, vlen

    def _store_bucket(
        self, index: int, key: bytes, ptr: int, vlen: int, occupied: bool = True
    ) -> None:
        flags = _FLAG_OCCUPIED if occupied else 0
        body = _BUCKET.pack(key, ptr, vlen, flags, 0)
        cksum = checksum64(body) if occupied else 0
        packed = _BUCKET.pack(key, ptr, vlen, flags, cksum)
        offset = index * BUCKET_BYTES
        self.table[offset : offset + BUCKET_BYTES] = packed

    def _load_bucket(self, index: int) -> Tuple[bytes, int, int, bool]:
        offset = index * BUCKET_BYTES
        key, ptr, vlen, flags, _cksum = _BUCKET.unpack(
            bytes(self.table[offset : offset + BUCKET_BYTES])
        )
        return key, ptr, vlen, bool(flags & _FLAG_OCCUPIED)

    # -- extents --------------------------------------------------------------

    def _alloc_value(self, value: bytes) -> int:
        entry = _EXTENT.pack(checksum64(value), len(value)) + value
        if self._extent_tail + len(entry) > len(self.extents):
            raise CuckooFullError("extent space exhausted")
        ptr = self._extent_tail
        self.extents[ptr : ptr + len(entry)] = entry
        self._extent_tail += len(entry)
        return ptr

    def extent_span(self, ptr: int, vlen: int) -> Tuple[int, int]:
        """(offset, length) of a value entry in the extent buffer."""
        return ptr, _EXTENT.size + vlen

    def read_value(self, ptr: int) -> bytes:
        """Read and verify a value from the extents (as a client would)."""
        return self.parse_extent(
            bytes(self.extents[ptr : ptr + _EXTENT.size + self._extent_vlen(ptr)])
        )

    def _extent_vlen(self, ptr: int) -> int:
        _cksum, vlen = _EXTENT.unpack(bytes(self.extents[ptr : ptr + _EXTENT.size]))
        return vlen

    #: bytes of extent-entry header a remote reader must fetch with the value
    EXTENT_HEADER_BYTES = _EXTENT.size

    @staticmethod
    def parse_extent(data: bytes) -> bytes:
        """Decode an extent entry (header + value), verifying its
        checksum — what a Pilaf client does after READing the extent."""
        cksum, vlen = _EXTENT.unpack(data[: _EXTENT.size])
        value = data[_EXTENT.size : _EXTENT.size + vlen]
        if len(value) != vlen:
            raise ValueError("short extent read")
        if checksum64(value) != cksum:
            raise ValueError("extent checksum mismatch (torn read)")
        return value

    # -- KV interface -----------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Probe up to 3 buckets (1.6 on average at 75% load)."""
        key = key.ljust(KEY_BYTES, b"\x00")
        probes = 0
        self.total_gets += 1
        for index in self.buckets_for(key):
            probes += 1
            stored, ptr, vlen, occupied = self._load_bucket(index)
            if occupied and stored == key:
                self.last_op_probes = probes
                self.total_probes += probes
                self.last_op_accesses = probes + 1  # + extent read
                return self.read_value(ptr)
        self.last_op_probes = probes
        self.total_probes += probes
        self.last_op_accesses = probes
        return None

    def put(self, key: bytes, value: bytes) -> bool:
        key = key.ljust(KEY_BYTES, b"\x00")
        candidates = self.buckets_for(key)
        # Overwrite in place if present.
        for index in candidates:
            stored, _ptr, _vlen, occupied = self._load_bucket(index)
            if occupied and stored == key:
                ptr = self._alloc_value(value)
                self._store_bucket(index, key, ptr, len(value))
                self.last_op_accesses = 2
                return True
        # Insert into a free candidate bucket.
        for index in candidates:
            _stored, _ptr, _vlen, occupied = self._load_bucket(index)
            if not occupied:
                ptr = self._alloc_value(value)
                self._store_bucket(index, key, ptr, len(value))
                self.items += 1
                self.last_op_accesses = 2
                return True
        # Cuckoo relocation: kick a random victim along a random walk.
        return self._insert_with_kicks(key, value)

    def _insert_with_kicks(self, key: bytes, value: bytes) -> bool:
        ptr = self._alloc_value(value)
        cur_key, cur_ptr, cur_vlen = key, ptr, len(value)
        index = self._rng.choice(self.buckets_for(cur_key))
        for _kick in range(self.MAX_KICKS):
            victim = self._load_bucket(index)
            self._store_bucket(index, cur_key, cur_ptr, cur_vlen)
            self.kicks += 1
            v_key, v_ptr, v_vlen, v_occupied = victim
            if not v_occupied:
                self.items += 1
                self.last_op_accesses = 2 + self.kicks  # approximate
                return True
            cur_key, cur_ptr, cur_vlen = v_key, v_ptr, v_vlen
            # Move the victim to one of its *other* buckets.
            others = [b for b in self.buckets_for(cur_key) if b != index]
            index = self._rng.choice(others) if others else index
            for candidate in others:
                if not self._load_bucket(candidate)[3]:
                    index = candidate
                    break
        raise CuckooFullError("relocation budget exhausted; table too full")

    def delete(self, key: bytes) -> bool:
        key = key.ljust(KEY_BYTES, b"\x00")
        for index in self.buckets_for(key):
            stored, _ptr, _vlen, occupied = self._load_bucket(index)
            if occupied and stored == key:
                self._store_bucket(index, b"\x00" * KEY_BYTES, 0, 0, occupied=False)
                self.items -= 1
                self.last_op_accesses = 1
                return True
        self.last_op_accesses = 1
        return False

    # -- metrics ------------------------------------------------------------------

    def average_probes(self) -> float:
        """Average bucket probes per GET (the paper's 1.6)."""
        if not self.total_gets:
            return 0.0
        return self.total_probes / self.total_gets

    def load_factor(self) -> float:
        return self.items / self.n_buckets
