"""The common store interface and access-cost reporting.

Backends report how many *random memory accesses* each operation
performed — that is what the server CPU model charges time for (the
paper's HERD numbers: at most 2 per GET, 1 per PUT with MICA).
"""

from __future__ import annotations

import abc
from typing import Optional


class KeyValueStore(abc.ABC):
    """GET/PUT/DELETE over byte keys and byte values."""

    #: number of random memory accesses performed by the last operation;
    #: the CPU model reads this after each call.
    last_op_accesses: int = 0

    @abc.abstractmethod
    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value for ``key``, or None if absent/evicted."""

    @abc.abstractmethod
    def put(self, key: bytes, value: bytes) -> bool:
        """Insert or overwrite; False only if the store cannot admit it."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> bool:
        """Remove ``key``; True if it was present."""

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None
