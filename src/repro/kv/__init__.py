"""Key-value backends.

Three real data structures, one per system in the paper's evaluation:

* :class:`MicaCache` — HERD's backend (Section 4.1): MICA's cache mode,
  a lossy associative index over a circular log.  GETs cost at most two
  random memory accesses, PUTs one.
* :class:`CuckooTable` — Pilaf's backend (Section 5.1.1): 3-way,
  1-slot-per-bucket cuckoo hashing with self-verifying (checksummed)
  buckets and out-of-table value extents.
* :class:`HopscotchTable` — FaRM-KV's backend (Section 5.1.2):
  neighborhood-6 hopscotch hashing, with values inline in the table or
  out-of-table behind pointers.

All three store real bytes in flat buffers, so they can live inside a
registered memory region and be traversed by remote RDMA READs.
"""

from repro.kv.cuckoo import CuckooTable
from repro.kv.hopscotch import HopscotchTable
from repro.kv.interface import KeyValueStore
from repro.kv.mica import MicaCache

__all__ = ["CuckooTable", "HopscotchTable", "KeyValueStore", "MicaCache"]
