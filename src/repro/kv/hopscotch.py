"""FaRM-KV's backend: hopscotch hashing with a locality-aware layout.

Section 5.1.2: FaRM-KV uses a hopscotch variant that guarantees a
key-value pair is stored within a small *neighborhood* of the bucket
the key hashes to; the authors set the neighborhood to 6.  A client
GET then needs just one READ of the 6 consecutive slots — that is,
``6 * (key + value)`` bytes in inline mode, or ``6 * (key + pointer)``
plus a second READ of the value in out-of-table ("VAR") mode.

The table is a flat ``bytearray`` so it can live inside a registered
memory region; :meth:`neighborhood_span` gives the byte range a FaRM
client READs, and :meth:`parse_neighborhood` decodes it client-side.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Tuple

from repro.kv.interface import KeyValueStore

KEY_BYTES = 16
#: slot header: 16-byte key, u16 value length, u16 flags
_SLOT_HEADER = struct.Struct("<16sHH")
_FLAG_OCCUPIED = 1

#: out-of-table slot: header + u32 extent pointer
_VAR_SLOT = struct.Struct("<16sHHI")


class HopscotchFullError(Exception):
    """No displacement sequence could keep the neighborhood invariant."""


class HopscotchTable(KeyValueStore):
    """Neighborhood-H hopscotch hash table (H = 6 as in FaRM)."""

    NEIGHBORHOOD = 6
    MAX_PROBE = 512  # how far insert may look for a free slot

    def __init__(
        self,
        n_slots: int = 2 ** 14,
        value_capacity: int = 64,
        inline: bool = True,
        extent_bytes: int = 1 << 22,
        table_buffer: bytearray = None,
        extent_buffer: bytearray = None,
    ) -> None:
        """``table_buffer`` / ``extent_buffer`` let the table live inside
        an externally owned buffer — e.g. a registered memory region, so
        remote clients can READ neighborhoods directly (as FaRM does)."""
        self.n_slots = 1 << (n_slots - 1).bit_length()
        self.inline = inline
        self.value_capacity = value_capacity
        if inline:
            self.slot_bytes = _SLOT_HEADER.size + value_capacity
        else:
            self.slot_bytes = _VAR_SLOT.size
        if table_buffer is None:
            table_buffer = bytearray(self.n_slots * self.slot_bytes)
        if len(table_buffer) < self.n_slots * self.slot_bytes:
            raise ValueError("table buffer too small for %d slots" % self.n_slots)
        self.table = table_buffer
        if extent_buffer is None:
            extent_buffer = bytearray(extent_bytes if not inline else 0)
        self.extents = extent_buffer
        self._extent_tail = 0
        self.items = 0
        self.displacements = 0
        self.last_op_accesses = 0

    # -- layout ---------------------------------------------------------

    def home_of(self, key: bytes) -> int:
        return zlib.crc32(key, 0x5BD1E995) % self.n_slots

    def neighborhood_span(self, key: bytes) -> Tuple[int, int]:
        """(offset, length) of the bytes a FaRM client READs for ``key``.

        The neighborhood may wrap; the returned length is always
        ``NEIGHBORHOOD * slot_bytes`` (a wrapped read is two segments on
        a real system; the emulation prices it as one read of that size,
        as the paper does).
        """
        return self.home_of(key) * self.slot_bytes, self.NEIGHBORHOOD * self.slot_bytes

    def read_neighborhood(self, key: bytes) -> bytes:
        """The actual bytes of the 6 neighborhood slots (wrap-aware)."""
        home = self.home_of(key)
        out = bytearray()
        for i in range(self.NEIGHBORHOOD):
            slot = (home + i) % self.n_slots
            offset = slot * self.slot_bytes
            out += self.table[offset : offset + self.slot_bytes]
        return bytes(out)

    def parse_neighborhood(self, key: bytes, data: bytes) -> Optional[Tuple[bytes, int]]:
        """Client-side decode of neighborhood bytes.

        Inline mode returns ``(value, -1)``; VAR mode returns
        ``(b"", extent_pointer)`` and the client issues a second READ.
        """
        key = key.ljust(KEY_BYTES, b"\x00")
        for i in range(self.NEIGHBORHOOD):
            chunk = data[i * self.slot_bytes : (i + 1) * self.slot_bytes]
            if self.inline:
                skey, vlen, flags = _SLOT_HEADER.unpack(chunk[: _SLOT_HEADER.size])
                if flags & _FLAG_OCCUPIED and skey == key:
                    value = chunk[_SLOT_HEADER.size : _SLOT_HEADER.size + vlen]
                    return bytes(value), -1
            else:
                skey, vlen, flags, ptr = _VAR_SLOT.unpack(chunk)
                if flags & _FLAG_OCCUPIED and skey == key:
                    return b"", ptr
        return None

    # -- slot access ------------------------------------------------------

    def _load(self, slot: int) -> Tuple[bytes, int, bool, int]:
        offset = slot * self.slot_bytes
        chunk = bytes(self.table[offset : offset + self.slot_bytes])
        if self.inline:
            key, vlen, flags = _SLOT_HEADER.unpack(chunk[: _SLOT_HEADER.size])
            return key, vlen, bool(flags & _FLAG_OCCUPIED), -1
        key, vlen, flags, ptr = _VAR_SLOT.unpack(chunk)
        return key, vlen, bool(flags & _FLAG_OCCUPIED), ptr

    def _store(
        self, slot: int, key: bytes, value: bytes, ptr: int = 0, occupied: bool = True
    ) -> None:
        flags = _FLAG_OCCUPIED if occupied else 0
        offset = slot * self.slot_bytes
        if self.inline:
            packed = _SLOT_HEADER.pack(key, len(value), flags)
            body = value.ljust(self.value_capacity, b"\x00")
            self.table[offset : offset + self.slot_bytes] = packed + body
        else:
            self.table[offset : offset + self.slot_bytes] = _VAR_SLOT.pack(
                key, len(value), flags, ptr
            )

    def _value_at(self, slot: int) -> bytes:
        key, vlen, occupied, ptr = self._load(slot)
        if self.inline:
            offset = slot * self.slot_bytes + _SLOT_HEADER.size
            return bytes(self.table[offset : offset + vlen])
        return self.read_extent(ptr, vlen)

    # -- extents (VAR mode) -------------------------------------------------

    def _alloc_value(self, value: bytes) -> int:
        if self._extent_tail + len(value) > len(self.extents):
            raise HopscotchFullError("extent space exhausted")
        ptr = self._extent_tail
        self.extents[ptr : ptr + len(value)] = value
        self._extent_tail += len(value)
        return ptr

    def read_extent(self, ptr: int, length: int) -> bytes:
        return bytes(self.extents[ptr : ptr + length])

    # -- KV interface -----------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Scan the 6-slot neighborhood: one locality-friendly read."""
        key = key.ljust(KEY_BYTES, b"\x00")
        home = self.home_of(key)
        self.last_op_accesses = 1
        for i in range(self.NEIGHBORHOOD):
            slot = (home + i) % self.n_slots
            skey, vlen, occupied, ptr = self._load(slot)
            if occupied and skey == key:
                if not self.inline:
                    self.last_op_accesses = 2
                return self._value_at(slot)
        return None

    def put(self, key: bytes, value: bytes) -> bool:
        key = key.ljust(KEY_BYTES, b"\x00")
        if len(value) > self.value_capacity and self.inline:
            raise ValueError(
                "value of %d bytes exceeds inline capacity %d"
                % (len(value), self.value_capacity)
            )
        home = self.home_of(key)
        self.last_op_accesses = 1
        # Overwrite in place.
        for i in range(self.NEIGHBORHOOD):
            slot = (home + i) % self.n_slots
            skey, _vlen, occupied, _ptr = self._load(slot)
            if occupied and skey == key:
                self._write_item(slot, key, value)
                return True
        free = self._find_free_slot(home)
        if free is None:
            raise HopscotchFullError("no free slot within probe range")
        # Hopscotch displacement: move the free slot into the neighborhood.
        while self._distance(home, free) >= self.NEIGHBORHOOD:
            free = self._displace_toward(home, free)
        self._write_item(free, key, value)
        self.items += 1
        return True

    def _write_item(self, slot: int, key: bytes, value: bytes) -> None:
        if self.inline:
            self._store(slot, key, value)
        else:
            ptr = self._alloc_value(value)
            self._store(slot, key, value, ptr=ptr)

    def _distance(self, home: int, slot: int) -> int:
        return (slot - home) % self.n_slots

    def _find_free_slot(self, home: int) -> Optional[int]:
        for i in range(min(self.MAX_PROBE, self.n_slots)):
            slot = (home + i) % self.n_slots
            if not self._load(slot)[2]:
                return slot
        return None

    def _displace_toward(self, home: int, free: int) -> int:
        """Move ``free`` at least one step closer to ``home``.

        Look at the H-1 slots before ``free``: any resident item whose
        own home still covers ``free`` can hop into it, freeing an
        earlier slot.  Raises when no item can move (table too dense).
        """
        for back in range(self.NEIGHBORHOOD - 1, 0, -1):
            candidate = (free - back) % self.n_slots
            key, vlen, occupied, ptr = self._load(candidate)
            if not occupied:
                continue
            item_home = self.home_of(key)
            if self._distance(item_home, free) < self.NEIGHBORHOOD:
                # Hop: move the candidate's item into the free slot.
                if self.inline:
                    value = self._value_at(candidate)
                    self._store(free, key, value)
                else:
                    # Move the pointer; the header keeps the true length.
                    self._store(free, key, b"\x00" * vlen, ptr=ptr)
                self._store(candidate, b"\x00" * KEY_BYTES, b"", occupied=False)
                self.displacements += 1
                return candidate
        raise HopscotchFullError("displacement impossible; rebuild required")

    def delete(self, key: bytes) -> bool:
        key = key.ljust(KEY_BYTES, b"\x00")
        home = self.home_of(key)
        self.last_op_accesses = 1
        for i in range(self.NEIGHBORHOOD):
            slot = (home + i) % self.n_slots
            skey, _vlen, occupied, _ptr = self._load(slot)
            if occupied and skey == key:
                self._store(slot, b"\x00" * KEY_BYTES, b"", occupied=False)
                self.items -= 1
                return True
        return False

    def load_factor(self) -> float:
        return self.items / self.n_slots
