"""HERD, reproduced: RDMA key-value services on a simulated fabric.

A from-scratch reproduction of "Using RDMA Efficiently for Key-Value
Services" (Kalia, Kaminsky, Andersen — SIGCOMM 2014) on a calibrated
discrete-event model of ConnectX-3 hardware.

The packages, bottom-up:

* :mod:`repro.sim` — discrete-event kernel
* :mod:`repro.hw` — PCIe / RNIC / fabric / DRAM models (Table 2 profiles)
* :mod:`repro.verbs` — the RDMA verbs API over the model (Table 1 rules)
* :mod:`repro.kv` — MICA / cuckoo / hopscotch backends (real bytes)
* :mod:`repro.herd` — the paper's system, plus the §5.5 SEND/SEND variant
* :mod:`repro.baselines` — Pilaf-em, FaRM-em, ECHO servers, full systems
* :mod:`repro.workloads` — uniform and Zipf(.99) operation streams
* :mod:`repro.bench` — per-figure experiments and the herd-bench CLI
* :mod:`repro.analysis` — closed-form bottleneck cross-validation

Start at :class:`repro.herd.HerdCluster` or ``examples/quickstart.py``.
"""

from repro.herd import HerdCluster, HerdConfig
from repro.hw import APT, SUSITNA, HardwareProfile
from repro.workloads import Workload

__version__ = "1.0.0"

__all__ = [
    "APT",
    "SUSITNA",
    "HardwareProfile",
    "HerdCluster",
    "HerdConfig",
    "Workload",
    "__version__",
]
