"""Admission control: token buckets, CoDel sojourn control, fair shares.

One :class:`QosRuntime` per cluster holds the per-tenant token buckets
and the shed/admit accounting; each server partition gets its own
:class:`PartitionAdmission` (CoDel state and the fair-admission window
are per-partition, because sojourn is a per-queue quantity).

Everything here is deterministic — no RNG, state advances only on
request arrival timestamps — so chaos fingerprints that include the
shed counters reproduce bit-for-bit.

The CoDel controller follows Nichols & Jacobson's algorithm shape: a
request is sheddable only once the queueing delay (*sojourn*: arrival
stamp to service start) has stayed above ``codel_target_ns`` for a full
``codel_interval_ns``; while in the dropping state, sheds are spaced
``interval / sqrt(drop_count)`` apart, so pressure ramps until sojourn
recovers, then resets.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.qos.config import QosConfig

__all__ = ["TokenBucket", "PartitionAdmission", "QosRuntime"]


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/ns, depth ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "last_ns")

    def __init__(self, rate_per_ns: float, burst: float) -> None:
        self.rate = rate_per_ns
        self.burst = burst
        self.tokens = burst
        self.last_ns = 0.0

    def admit(self, now: float, cost: float = 1.0) -> bool:
        if now > self.last_ns:
            self.tokens = min(self.burst, self.tokens + (now - self.last_ns) * self.rate)
            self.last_ns = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class QosRuntime:
    """Cluster-level admission state: tenant buckets + shed accounting."""

    def __init__(self, config: QosConfig, n_partitions: int) -> None:
        self.config = config
        self.buckets: List[Optional[TokenBucket]] = []
        for tenant in range(config.n_tenants):
            rate = None
            if config.tenant_rates is not None:
                rate = config.tenant_rates[tenant]
            # rates are configured in ops/us; buckets run in ops/ns
            self.buckets.append(
                None if rate is None else TokenBucket(rate / 1000.0, config.tenant_burst)
            )
        #: sheds by reason, cluster-wide
        self.shed: Dict[str, int] = {}
        #: per-tenant [admitted, shed]
        self.tenants: List[List[int]] = [[0, 0] for _ in range(config.n_tenants)]
        self._partitions = [PartitionAdmission(self) for _ in range(n_partitions)]

    def partition(self, index: int) -> "PartitionAdmission":
        return self._partitions[index]

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    def counter_lines(self) -> List[str]:
        """Deterministic accounting lines for chaos fingerprints."""
        lines = ["qos.shed.%s %d" % (k, v) for k, v in sorted(self.shed.items())]
        for tenant, (admitted, shed) in enumerate(self.tenants):
            lines.append("qos.tenant%d admitted=%d shed=%d" % (tenant, admitted, shed))
        return lines

    def _record(self, tenant: int, reason: Optional[str]) -> Optional[str]:
        if reason is None:
            self.tenants[tenant][0] += 1
        else:
            self.tenants[tenant][1] += 1
            self.shed[reason] = self.shed.get(reason, 0) + 1
        return reason


class PartitionAdmission:
    """Per-partition verdicts: CoDel state + the fair-admission window."""

    def __init__(self, runtime: QosRuntime) -> None:
        self.runtime = runtime
        self.config = runtime.config
        # CoDel state (Nichols & Jacobson)
        self._first_above_ns = 0.0
        self._dropping = False
        self._drop_count = 0
        self._drop_next_ns = 0.0
        # fair-admission window
        self._fair_start_ns = 0.0
        self._fair_counts = [0] * self.config.n_tenants
        self._fair_total = 0

    def on_request(
        self, client: int, now: float, sojourn_ns: float, backlog: int
    ) -> Optional[str]:
        """Admission verdict for one request: ``None`` admits, a string
        names the shed reason (``throttled`` / ``overflow`` /
        ``slowdown`` / ``fairness``)."""
        cfg = self.config
        tenant = cfg.tenant_of(client)
        bucket = self.runtime.buckets[tenant]
        if bucket is not None and not bucket.admit(now):
            return self.runtime._record(tenant, "throttled")
        if cfg.queue_limit is not None and backlog > cfg.queue_limit:
            return self.runtime._record(tenant, "overflow")
        if cfg.codel_target_ns is not None and self._codel(now, sojourn_ns):
            return self.runtime._record(tenant, "slowdown")
        if self._unfair(tenant, now, backlog):
            return self.runtime._record(tenant, "fairness")
        self._fair_counts[tenant] += 1
        self._fair_total += 1
        return self.runtime._record(tenant, None)

    # -- CoDel ---------------------------------------------------------

    def _codel(self, now: float, sojourn_ns: float) -> bool:
        cfg = self.config
        if sojourn_ns < cfg.codel_target_ns:
            # delay recovered: leave the dropping state entirely
            self._first_above_ns = 0.0
            self._dropping = False
            return False
        if self._dropping:
            if now >= self._drop_next_ns:
                self._drop_count += 1
                self._drop_next_ns = now + cfg.codel_interval_ns / math.sqrt(
                    self._drop_count
                )
                return True
            return False
        if self._first_above_ns == 0.0:
            # first sighting above target: arm the interval timer
            self._first_above_ns = now + cfg.codel_interval_ns
            return False
        if now >= self._first_above_ns:
            # above target for a full interval: start shedding
            self._dropping = True
            self._drop_count = 1
            self._drop_next_ns = now + cfg.codel_interval_ns
            return True
        return False

    # -- weighted fair admission --------------------------------------

    def _unfair(self, tenant: int, now: float, backlog: int) -> bool:
        cfg = self.config
        if cfg.n_tenants == 1:
            return False
        if now - self._fair_start_ns >= cfg.codel_interval_ns:
            self._fair_start_ns = now
            self._fair_counts = [0] * cfg.n_tenants
            self._fair_total = 0
        if backlog <= cfg.fair_queue_threshold:
            # no contention: fairness does not constrain admission
            return False
        weights = cfg.tenant_weights or (1.0,) * cfg.n_tenants
        share = weights[tenant] / sum(weights)
        return self._fair_counts[tenant] + 1 > share * (self._fair_total + 1) + cfg.fair_slack
