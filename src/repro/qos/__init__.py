"""repro.qos — overload protection for the HERD reproduction.

The paper keeps the server CPU the bottleneck (Section 4), which makes
overload the system's natural failure mode.  This package supplies the
defense: SLO-aware admission control (bounded queues + CoDel sojourn
control), per-tenant isolation (token-bucket quotas + weighted fair
admission over a bounded QP pool), and graceful degradation via
``RESP_RETRY_AFTER`` nacks that clients honor with budgeted backoff.

Attach a :class:`QosConfig` to :class:`repro.herd.config.HerdConfig`
(``qos=...``); everything is off — and byte-identical to the
pre-QoS build — when the field is left at ``None``.  See docs/QOS.md.
"""

from repro.qos.admission import PartitionAdmission, QosRuntime, TokenBucket
from repro.qos.config import QosConfig

__all__ = ["QosConfig", "QosRuntime", "PartitionAdmission", "TokenBucket"]
