"""QoS configuration: the knobs of the overload-protection layer.

A :class:`QosConfig` hangs off :class:`repro.herd.config.HerdConfig`
(``qos=None`` by default, so every existing run is byte-identical).
Three independent defenses compose, checked in this order per request:

1. **per-tenant token buckets** (``tenant_rates`` / ``tenant_burst``) —
   a hard quota on each tenant's admitted rate;
2. **bounded queues** (``queue_limit``) — backlog above the bound is
   shed immediately (tail-drop on the request region's arrival queue);
3. **CoDel-style sojourn control** (``codel_target_ns`` /
   ``codel_interval_ns``) — when queueing delay stays above the SLO
   target for a full interval, shed at an increasing rate until the
   sojourn recovers;
4. **weighted fair admission** (``tenant_weights`` / ``fair_slack``) —
   while a backlog exists, no tenant may exceed its weighted share of
   admitted requests by more than the slack.

Shed requests are either silently dropped (``drop_policy="drop"``; the
client's retry machinery treats it as loss) or nacked with
``RESP_RETRY_AFTER`` (``drop_policy="nack"``), which clients honor with
budgeted exponential backoff (``retry_after_*``) instead of hammering a
saturated partition.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class QosConfig:
    """Overload-protection knobs (all deterministic; no RNG inside)."""

    #: max backlog (arrival queue + pipeline) per partition before
    #: tail-shedding; None = unbounded
    queue_limit: Optional[int] = 24
    #: "nack" sends RESP_RETRY_AFTER; "drop" sheds silently
    drop_policy: str = "nack"

    #: CoDel sojourn target (SLO on queueing delay); None disables
    codel_target_ns: Optional[float] = 4_000.0
    #: CoDel control interval (also the fair-admission window)
    codel_interval_ns: float = 20_000.0

    #: tenants are client id modulo n_tenants
    n_tenants: int = 1
    #: per-tenant admitted-rate caps in ops/us; None entry = unlimited
    tenant_rates: Optional[Tuple[Optional[float], ...]] = None
    #: token-bucket depth, in ops
    tenant_burst: float = 16.0
    #: weighted fair shares while a backlog exists; None = unweighted
    tenant_weights: Optional[Tuple[float, ...]] = None
    #: backlog above which fair admission engages
    fair_queue_threshold: int = 4
    #: admitted-count slack before a tenant is shed for unfairness
    fair_slack: float = 4.0

    #: base client backoff after a RESP_RETRY_AFTER nack
    retry_after_ns: float = 20_000.0
    #: backoff multiplier per consecutive nack on the same op
    retry_after_backoff: float = 2.0
    #: consecutive nacks before the client gives the op up; None = never
    retry_after_budget: Optional[int] = 8
    #: bound on server-side UC QPs per partition (clients share them
    #: round-robin), attacking the Fig-12 QP-cache cliff; None = one
    #: QP per client as before
    qp_pool: Optional[int] = None

    def __post_init__(self) -> None:
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 (or None)")
        if self.drop_policy not in ("nack", "drop"):
            raise ValueError("drop_policy must be 'nack' or 'drop'")
        if self.codel_target_ns is not None and self.codel_target_ns <= 0:
            raise ValueError("codel_target_ns must be positive (or None)")
        if self.codel_interval_ns <= 0:
            raise ValueError("codel_interval_ns must be positive")
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        if self.tenant_rates is not None:
            object.__setattr__(self, "tenant_rates", tuple(self.tenant_rates))
            if len(self.tenant_rates) != self.n_tenants:
                raise ValueError("tenant_rates must list one rate per tenant")
            for rate in self.tenant_rates:
                if rate is not None and rate <= 0:
                    raise ValueError("tenant rates must be positive (or None)")
        if self.tenant_burst <= 0:
            raise ValueError("tenant_burst must be positive")
        if self.tenant_weights is not None:
            object.__setattr__(self, "tenant_weights", tuple(self.tenant_weights))
            if len(self.tenant_weights) != self.n_tenants:
                raise ValueError("tenant_weights must list one weight per tenant")
            if any(w <= 0 for w in self.tenant_weights):
                raise ValueError("tenant weights must be positive")
        if self.fair_queue_threshold < 0:
            raise ValueError("fair_queue_threshold must be >= 0")
        if self.fair_slack < 0:
            raise ValueError("fair_slack must be >= 0")
        if self.retry_after_ns <= 0:
            raise ValueError("retry_after_ns must be positive")
        if self.retry_after_backoff < 1.0:
            raise ValueError("retry_after_backoff must be >= 1")
        if self.retry_after_budget is not None and self.retry_after_budget < 1:
            raise ValueError("retry_after_budget must be >= 1 (or None)")
        if self.qp_pool is not None and self.qp_pool < 1:
            raise ValueError("qp_pool must be >= 1 (or None)")

    def tenant_of(self, client: int) -> int:
        """Static tenant assignment: client id modulo ``n_tenants``."""
        return client % self.n_tenants

    def replace(self, **kwargs) -> "QosConfig":
        return dataclasses.replace(self, **kwargs)
