"""Operation streams: GET/PUT mixes over uniform or Zipfian keys.

The paper's configurations (Section 5.2):

* read-intensive: 95% GET / 5% PUT;  write-intensive: 50% / 50%
* keys are 16-byte keyhashes; a zero keyhash is *never* generated
  because HERD uses a non-zero keyhash to detect new requests
* uniform keys are drawn from the whole keyhash space; skewed keys are
  Zipf(0.99) ranks over an ``n``-key universe, scrambled YCSB-style

Each client process gets its own :class:`WorkloadStream` with a private
seed — mirroring the paper's offline generation of 8M keys for each of
the 51 client processes.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Optional

import numpy as np

from repro.kv.hashing import mix64, mix64_array
from repro.workloads.zipf import ZipfianGenerator

KEYHASH_BYTES = 16


class OpType(enum.Enum):
    GET = "GET"
    PUT = "PUT"


@dataclass(frozen=True)
class Operation:
    """One client operation."""

    op: OpType
    key: bytes          # 16-byte keyhash, never all-zero
    value: Optional[bytes]  # None for GETs
    #: the item id behind the keyhash, when known (lets tests verify
    #: GET responses against the deterministic value function)
    item: int = -1

    @property
    def is_get(self) -> bool:
        return self.op is OpType.GET


def keyhash(item: int) -> bytes:
    """The 16-byte keyhash for item id ``item`` (never zero)."""
    low = mix64(item)
    high = mix64(item ^ 0xDEADBEEF) | 1  # guarantee non-zero
    return low.to_bytes(8, "little") + high.to_bytes(8, "little")


def value_for(item: int, size: int, version: int = 0) -> bytes:
    """A deterministic value body: verifiable end to end."""
    seed = mix64(item * 31 + version)
    pattern = seed.to_bytes(8, "little")
    reps = -(-size // 8)
    return (pattern * reps)[:size]


@dataclass(frozen=True)
class Workload:
    """A workload configuration (one experiment cell)."""

    get_fraction: float = 0.95
    value_size: int = 32
    n_keys: int = 1 << 20
    distribution: str = "uniform"   # "uniform" | "zipfian"
    zipf_theta: float = 0.99

    READ_INTENSIVE = 0.95
    WRITE_INTENSIVE = 0.50

    def __post_init__(self) -> None:
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ValueError("get_fraction must be within [0, 1]")
        if self.distribution not in ("uniform", "zipfian"):
            raise ValueError("unknown distribution %r" % self.distribution)
        if self.value_size < 0 or self.value_size > 1024:
            raise ValueError("values above 1 KB exceed every evaluated system")

    def stream(self, seed: int) -> "WorkloadStream":
        """A per-client operation stream (independent RNG)."""
        return WorkloadStream(self, seed)

    @classmethod
    def ycsb(cls, letter: str, value_size: int = 32, n_keys: int = 1 << 20) -> "Workload":
        """The standard YCSB core workloads the paper's generator comes
        from: A (50/50, zipfian), B (95/5, zipfian), C (read-only,
        zipfian).  The paper's own mixes are A and B over uniform and
        zipfian keys."""
        mixes = {"A": 0.50, "B": 0.95, "C": 1.00}
        letter = letter.upper()
        if letter not in mixes:
            raise ValueError("supported YCSB workloads: A, B, C")
        return cls(
            get_fraction=mixes[letter],
            value_size=value_size,
            n_keys=n_keys,
            distribution="zipfian",
        )


_new_op = Operation.__new__


class WorkloadStream:
    """An endless, deterministic stream of operations for one client.

    Operations are produced in batches of :data:`BATCH`: the RNG draws
    happen in exactly the order the scalar path would make them (so a
    trace is bit-for-bit reproducible from the seed), but the keyhash
    and value synthesis — three splitmix64 rounds per op — run
    vectorised over the whole batch.  Mixing direct :meth:`next_item`
    calls *between* :meth:`next_op` calls on the same uniform stream is
    unsupported: the batch pre-draws from the shared RNG.
    """

    #: ops synthesised per refill; large enough to amortise the numpy
    #: calls, small enough that a short run wastes little work
    BATCH = 256

    def __init__(self, workload: Workload, seed: int) -> None:
        self.workload = workload
        self._rng = random.Random(mix64(seed ^ 0xC0FFEE))
        self._zipf: Optional[ZipfianGenerator] = None
        if workload.distribution == "zipfian":
            self._zipf = ZipfianGenerator(
                workload.n_keys, theta=workload.zipf_theta, seed=seed, scrambled=True
            )
        self.generated = 0
        self._ops: Deque[Operation] = deque()

    def next_item(self) -> int:
        if self._zipf is not None:
            return self._zipf.next_item()
        return self._rng.randrange(self.workload.n_keys)

    def next_op(self) -> Operation:
        """The next operation in this client's trace."""
        self.generated += 1
        ops = self._ops
        if not ops:
            self._refill()
        return ops.popleft()

    def _refill(self) -> None:
        """Synthesise the next :data:`BATCH` operations in one pass."""
        count = self.BATCH
        workload = self.workload
        get_fraction = workload.get_fraction
        value_size = workload.value_size
        rand = self._rng.random
        if self._zipf is not None:
            # Two independent RNGs; within each, draw order is the
            # scalar order (all zipf draws are u's, all stream draws
            # are GET/PUT coins).
            items = self._zipf.next_items(count)
            coins = [rand() for _ in range(count)]
        else:
            # One shared RNG: preserve the exact per-op interleaving
            # randrange(n), random(), randrange(n), random(), ...
            randrange = self._rng.randrange
            n_keys = workload.n_keys
            items = [0] * count
            coins = [0.0] * count
            for i in range(count):
                items[i] = randrange(n_keys)
                coins[i] = rand()
        arr = np.asarray(items, dtype=np.uint64)
        # keyhash(): low = mix64(item), high = mix64(item ^ DEADBEEF)|1,
        # little-endian concatenated — one (count, 2) u64 buffer.
        pair = np.empty((count, 2), dtype="<u8")
        pair[:, 0] = mix64_array(arr)
        pair[:, 1] = mix64_array(arr ^ np.uint64(0xDEADBEEF)) | np.uint64(1)
        keys = pair.tobytes()
        # value_for(): pattern = mix64(item * 31), repeated to size.
        vpatterns = mix64_array(arr * np.uint64(31)).astype("<u8").tobytes()
        reps = -(-value_size // 8)
        ops = self._ops
        get = OpType.GET
        put = OpType.PUT
        for i in range(count):
            op = _new_op(Operation)
            base = i << 4
            if coins[i] < get_fraction:
                op.__dict__.update(
                    op=get, key=keys[base : base + 16], value=None, item=items[i]
                )
            else:
                vbase = i << 3
                value = (vpatterns[vbase : vbase + 8] * reps)[:value_size]
                op.__dict__.update(
                    op=put, key=keys[base : base + 16], value=value, item=items[i]
                )
            ops.append(op)

    def __iter__(self) -> Iterator[Operation]:
        while True:
            yield self.next_op()
