"""Workload generation (Section 5.2).

The paper's workloads vary three parameters: the GET/PUT mix
(read-intensive 95/5 vs write-intensive 50/50), the item size (16-byte
keyhashes, values 4-1024 bytes), and skew (uniform vs Zipf with
parameter 0.99, generated with YCSB's Zipfian generator).

* :class:`ZipfianGenerator` — Gray et al.'s O(1) Zipfian sampler, the
  same algorithm YCSB uses, with YCSB's hash-scrambling so the popular
  items are spread across the keyhash space.
* :class:`Workload` / :class:`WorkloadStream` — per-client operation
  streams of (GET/PUT, keyhash, value) tuples.
* :mod:`repro.workloads.arrival` — open-loop arrival processes
  (Poisson, diurnal, flash-crowd, stalled clients) and the hot-key
  shift wrapper, for overload experiments (see docs/QOS.md).
"""

from repro.workloads.arrival import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    HotKeyShiftStream,
    PoissonArrivals,
    StalledArrivals,
)
from repro.workloads.ycsb import Operation, OpType, Workload, WorkloadStream
from repro.workloads.zipf import ZipfianGenerator

__all__ = [
    "Operation",
    "OpType",
    "Workload",
    "WorkloadStream",
    "ZipfianGenerator",
    "ArrivalProcess",
    "PoissonArrivals",
    "FlashCrowdArrivals",
    "DiurnalArrivals",
    "StalledArrivals",
    "HotKeyShiftStream",
]
