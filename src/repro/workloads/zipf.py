"""Zipfian sampling, YCSB style.

This is the constant-time Zipfian generator from Gray et al. ("Quickly
generating billion-record synthetic databases", SIGMOD '94) — the exact
algorithm inside YCSB's ``ZipfianGenerator``, which the paper used to
generate its skewed workload (Section 5.2, theta = 0.99).

YCSB's ``ScrambledZipfianGenerator`` additionally hashes the Zipfian
*rank* so the popular items are scattered uniformly over the keyspace
instead of clustering at low ids; we reproduce that with
:func:`repro.kv.hashing.mix64`.  Scattering is what makes HERD's
keyhash-partitioned server resistant to skew (Section 5.7): the hot keys
land on different partitions.
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

from repro.kv.hashing import mix64, mix64_array


def zeta(n: int, theta: float) -> float:
    """The generalized harmonic number sum_{i=1..n} 1/i^theta."""
    # Vectorised: exact and fast enough even for the paper's 480M-key
    # trace sizes when chunked.
    total = 0.0
    chunk = 10_000_000
    for start in range(1, n + 1, chunk):
        stop = min(n + 1, start + chunk)
        i = np.arange(start, stop, dtype=np.float64)
        total += float(np.sum(i ** -theta))
    return total


class ZipfianGenerator:
    """Draw ranks in ``[0, n)`` with P(rank) proportional to 1/(rank+1)^theta."""

    def __init__(
        self,
        n: int,
        theta: float = 0.99,
        seed: int = 0,
        scrambled: bool = True,
    ) -> None:
        if n < 2:
            raise ValueError("need at least two items")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1) for this sampler")
        self.n = n
        self.theta = theta
        self.scrambled = scrambled
        self._rng = random.Random(seed)
        self._zetan = zeta(n, theta)
        self._zeta2 = zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - self._zeta2 / self._zetan)
        self._half_pow_theta = 1.0 + 0.5 ** theta

    def next_rank(self) -> int:
        """One Zipfian rank (0 is the most popular)."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._half_pow_theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def next_item(self) -> int:
        """An item id: the rank, scrambled over the keyspace if enabled."""
        rank = self.next_rank()
        if not self.scrambled:
            return rank
        return mix64(rank) % self.n

    def next_items(self, count: int) -> List[int]:
        """``count`` consecutive :meth:`next_item` draws, batched.

        Consumes exactly ``count`` draws from the same RNG stream and
        returns bit-for-bit the items the scalar method would have: the
        rank transform stays scalar (so the ``**`` uses the very same
        libm ``pow``), while the mix64 scramble — the expensive half —
        is vectorised.
        """
        rand = self._rng.random
        zetan = self._zetan
        half = self._half_pow_theta
        eta = self._eta
        alpha = self._alpha
        n = self.n
        ranks = [0] * count
        for i in range(count):
            u = rand()
            uz = u * zetan
            if uz < 1.0:
                continue
            if uz < half:
                ranks[i] = 1
            else:
                ranks[i] = int(n * (eta * u - eta + 1.0) ** alpha)
        if not self.scrambled:
            return ranks
        scrambled = mix64_array(np.asarray(ranks, dtype=np.uint64)) % np.uint64(n)
        return scrambled.tolist()

    def probability_of_rank(self, rank: int) -> float:
        """Analytic P(rank) under the target distribution."""
        return (1.0 / (rank + 1) ** self.theta) / self._zetan
