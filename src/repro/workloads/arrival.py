"""Open-loop arrival processes for overload experiments (repro.qos).

The paper's clients are *closed-loop*: each keeps a fixed window of
outstanding requests, so offered load can never exceed what the server
sustains — overload is structurally impossible.  Real front-ends are
open-loop: requests arrive on their own schedule whether or not earlier
ones finished, which is exactly the regime where admission control
earns its keep.

An :class:`ArrivalProcess` answers one question — "how long until this
client's next request?" — via :meth:`~ArrivalProcess.next_gap_ns`.
Every process draws from its own :func:`repro.faults.rng.child_rng`
stream, so attaching arrivals never perturbs workload key/value draws
and chaos fingerprints stay byte-identical when QoS is off.

* :class:`PoissonArrivals` — memoryless arrivals at a steady rate.
* :class:`FlashCrowdArrivals` — a rate step (e.g. 10x) inside a window.
* :class:`DiurnalArrivals` — sinusoidal rate modulation (slow ramps).
* :class:`StalledArrivals` — a client that goes silent for a window and
  then releases the backlog in a thundering herd (head-of-line study).
* :class:`HotKeyShiftStream` — not an arrival process but a stream
  wrapper: after a trigger, a fraction of ops are redirected onto a
  small hot set, shifting the key popularity mid-run.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Sequence

from repro.workloads.ycsb import Operation, OpType, WorkloadStream, keyhash, value_for

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "FlashCrowdArrivals",
    "DiurnalArrivals",
    "StalledArrivals",
    "HotKeyShiftStream",
]


class ArrivalProcess:
    """Base class: a deterministic schedule of request arrivals."""

    def next_gap_ns(self, now: float) -> float:
        """Nanoseconds from ``now`` until this client's next request."""
        raise NotImplementedError

    def rate_at(self, now: float) -> float:
        """Instantaneous offered rate in ops/us (for reporting)."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_ops_per_us``.

    Subclasses override :meth:`rate_at` for time-varying rates; gaps are
    drawn against the rate *at the draw instant*, the standard thinning
    approximation for slowly-varying intensity.
    """

    def __init__(self, rate_ops_per_us: float, rng: random.Random) -> None:
        if rate_ops_per_us <= 0.0:
            raise ValueError("arrival rate must be positive")
        self.rate_ops_per_us = rate_ops_per_us
        self._rng = rng

    def rate_at(self, now: float) -> float:
        return self.rate_ops_per_us

    def next_gap_ns(self, now: float) -> float:
        mean_gap_ns = 1000.0 / self.rate_at(now)
        return self._rng.expovariate(1.0) * mean_gap_ns


class FlashCrowdArrivals(PoissonArrivals):
    """A Poisson base rate multiplied by ``burst_factor`` inside
    ``[burst_start_ns, burst_end_ns)`` — the 10x flash crowd."""

    def __init__(
        self,
        rate_ops_per_us: float,
        rng: random.Random,
        burst_factor: float = 10.0,
        burst_start_ns: float = 0.0,
        burst_end_ns: float = float("inf"),
    ) -> None:
        super().__init__(rate_ops_per_us, rng)
        if burst_factor <= 0.0:
            raise ValueError("burst_factor must be positive")
        if burst_end_ns < burst_start_ns:
            raise ValueError("burst window ends before it starts")
        self.burst_factor = burst_factor
        self.burst_start_ns = burst_start_ns
        self.burst_end_ns = burst_end_ns

    def rate_at(self, now: float) -> float:
        if self.burst_start_ns <= now < self.burst_end_ns:
            return self.rate_ops_per_us * self.burst_factor
        return self.rate_ops_per_us


class DiurnalArrivals(PoissonArrivals):
    """Sinusoidal rate modulation: rate * (1 + amplitude*sin(2pi t/T)).

    ``amplitude`` < 1 keeps the rate positive; a full period is one
    synthetic "day", so a ramp to (1+amplitude)x peaks at T/4.
    """

    def __init__(
        self,
        rate_ops_per_us: float,
        rng: random.Random,
        amplitude: float = 0.5,
        period_ns: float = 1_000_000.0,
    ) -> None:
        super().__init__(rate_ops_per_us, rng)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be within [0, 1)")
        if period_ns <= 0.0:
            raise ValueError("period_ns must be positive")
        self.amplitude = amplitude
        self.period_ns = period_ns

    def rate_at(self, now: float) -> float:
        phase = 2.0 * math.pi * (now / self.period_ns)
        return self.rate_ops_per_us * (1.0 + self.amplitude * math.sin(phase))


class StalledArrivals(ArrivalProcess):
    """A deliberately slow client: arrivals that would land inside
    ``[stall_start_ns, stall_end_ns)`` pile up and release as a back-
    to-back burst at ``flush_gap_ns`` spacing when the stall lifts —
    the head-of-line thundering herd."""

    def __init__(
        self,
        inner: ArrivalProcess,
        stall_start_ns: float,
        stall_end_ns: float,
        flush_gap_ns: float = 50.0,
    ) -> None:
        if stall_end_ns < stall_start_ns:
            raise ValueError("stall window ends before it starts")
        if flush_gap_ns <= 0.0:
            raise ValueError("flush_gap_ns must be positive")
        self.inner = inner
        self.stall_start_ns = stall_start_ns
        self.stall_end_ns = stall_end_ns
        self.flush_gap_ns = flush_gap_ns
        self._backlog = 0

    def rate_at(self, now: float) -> float:
        if self.stall_start_ns <= now < self.stall_end_ns:
            return 0.0
        return self.inner.rate_at(now)

    def next_gap_ns(self, now: float) -> float:
        if self._backlog > 0:
            self._backlog -= 1
            return self.flush_gap_ns
        gap = self.inner.next_gap_ns(now)
        at = now + gap
        if self.stall_start_ns <= at < self.stall_end_ns:
            # Arrivals keep landing while the client is stalled; count
            # them, then fire the first at the instant the stall lifts.
            while at < self.stall_end_ns:
                self._backlog += 1
                at += self.inner.next_gap_ns(at)
            self._backlog -= 1
            return self.stall_end_ns - now
        return gap


class HotKeyShiftStream:
    """Wrap a :class:`WorkloadStream`, redirecting a fraction of ops
    onto a small hot set once the shift triggers.

    The trigger is either a simulated-time threshold (``shift_ns`` with
    a ``clock`` callable) or an op-count threshold (``shift_after``).
    Redirection draws from its *own* RNG so the inner stream's trace is
    untouched; redirected PUTs carry :func:`value_for` bodies so end-
    to-end store checks still hold.
    """

    def __init__(
        self,
        inner: WorkloadStream,
        hot_items: Sequence[int],
        hot_fraction: float,
        rng: random.Random,
        shift_after: int = 0,
        shift_ns: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if not hot_items:
            raise ValueError("hot_items must be non-empty")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be within [0, 1]")
        if (shift_ns is None) != (clock is None):
            raise ValueError("shift_ns and clock come together")
        self.inner = inner
        self.workload = inner.workload
        self.hot_items: List[int] = list(hot_items)
        self.hot_fraction = hot_fraction
        self.shift_after = shift_after
        self.shift_ns = shift_ns
        self._clock = clock
        self._rng = rng
        self.redirected = 0

    @property
    def generated(self) -> int:
        return self.inner.generated

    def _shifted(self) -> bool:
        if self.shift_ns is not None:
            return self._clock() >= self.shift_ns  # type: ignore[misc]
        return self.inner.generated >= self.shift_after

    def next_op(self) -> Operation:
        op = self.inner.next_op()
        if not self._shifted() or self._rng.random() >= self.hot_fraction:
            return op
        self.redirected += 1
        item = self.hot_items[self._rng.randrange(len(self.hot_items))]
        value = None
        if op.op is OpType.PUT:
            value = value_for(item, self.workload.value_size)
        return Operation(op=op.op, key=keyhash(item), value=value, item=item)

    def __iter__(self):
        while True:
            yield self.next_op()
