"""Ambient capture: instrument every simulator created in a scope.

Experiment harnesses build their own :class:`~repro.sim.engine.Simulator`
internally (one per measurement cell), so the CLI cannot hand them a
registry directly.  Instead, :func:`capture` installs a creation hook on
``Simulator``: every simulator constructed inside the ``with`` block
gets a fresh :class:`~repro.obs.registry.MetricsRegistry` (and,
optionally, a bounded :class:`~repro.bench.trace.Tracer`), and the
session keeps them all for export once the experiments finish::

    with capture(trace=True) as session:
        session.label = "fig9"
        fig9()
    session.write_metrics("m.json")
    session.write_trace("t.json")

Sessions nest safely (the previous hook is restored on exit) and cost
nothing outside the ``with`` block.
"""

from __future__ import annotations

import contextlib
import json
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from repro.obs.export import chrome_trace, merge_chrome_traces
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Simulator

#: default trace ring-buffer bound: enough for several full measurement
#: windows, small enough that an `all`-scale sweep cannot exhaust memory
DEFAULT_TRACE_EVENTS = 200_000


@dataclass
class _Run:
    index: int
    label: str
    sim: Simulator
    registry: Optional[MetricsRegistry]
    tracer: Optional[Any]


class ObsSession:
    """The simulators (and their registries/tracers) seen by a capture."""

    def __init__(
        self,
        metrics: bool = True,
        trace: bool = False,
        trace_limit: int = DEFAULT_TRACE_EVENTS,
    ) -> None:
        self.metrics_enabled = metrics
        self.trace_enabled = trace
        self.trace_limit = trace_limit
        #: set this before running an experiment to tag its simulators
        self.label = ""
        self.runs: List[_Run] = []

    # -- the Simulator creation hook -----------------------------------

    def attach(self, sim: Simulator) -> None:
        registry = None
        tracer = None
        if self.metrics_enabled:
            registry = MetricsRegistry(sim)
            sim.metrics = registry
        if self.trace_enabled:
            from repro.bench.trace import Tracer  # deferred: heavier import

            tracer = Tracer(sim, max_events=self.trace_limit)
            sim.tracer = tracer
        self.runs.append(_Run(len(self.runs), self.label, sim, registry, tracer))

    # -- export --------------------------------------------------------

    def metrics_dict(self) -> dict:
        return {
            "version": 1,
            "runs": [
                dict(
                    experiment=run.label,
                    index=run.index,
                    **run.registry.snapshot(),
                )
                for run in self.runs
                if run.registry is not None
            ],
        }

    def trace_dict(self) -> dict:
        return merge_chrome_traces(
            chrome_trace(
                run.tracer,
                pid=run.index,
                process_name="%s#%d" % (run.label or "run", run.index),
            )
            for run in self.runs
            if run.tracer is not None
        )

    def write_metrics(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.metrics_dict(), fh, indent=1)
            fh.write("\n")

    def write_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.trace_dict(), fh)
            fh.write("\n")

    def write_trace_jsonl(self, path: str) -> int:
        """All runs' events as JSON lines; returns the line count."""
        n = 0
        with open(path, "w") as fh:
            for run in self.runs:
                if run.tracer is None:
                    continue
                tag = "%s#%d" % (run.label or "run", run.index)
                for event in run.tracer.events:
                    fh.write(
                        json.dumps(
                            {
                                "run": tag,
                                "station": event.station,
                                "start_ns": event.start_ns,
                                "end_ns": event.end_ns,
                                "label": event.label,
                            }
                        )
                    )
                    fh.write("\n")
                    n += 1
        return n


@contextlib.contextmanager
def capture(
    metrics: bool = True,
    trace: bool = False,
    trace_limit: int = DEFAULT_TRACE_EVENTS,
) -> Iterator[ObsSession]:
    """Instrument every Simulator constructed inside the block."""
    session = ObsSession(metrics=metrics, trace=trace, trace_limit=trace_limit)
    previous = Simulator._obs_hook
    Simulator._obs_hook = session.attach
    try:
        yield session
    finally:
        Simulator._obs_hook = previous
