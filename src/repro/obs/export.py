"""Trace exporters: Chrome trace-event JSON and JSON lines.

A :class:`~repro.bench.trace.Tracer` records ``TraceEvent`` spans in
nanoseconds.  Chrome's trace viewer (``chrome://tracing``, or Perfetto's
legacy loader) consumes the *JSON object format*: a dict with a
``traceEvents`` list whose entries use microsecond timestamps.  Spans
become complete events (``"ph": "X"``); zero-length marks become
instant events (``"ph": "i"``).

Stations map to trace *threads* (``tid``) inside one *process* per
simulation run (``pid``), so concurrent runs exported together stay
visually separated.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional


def _events_of(tracer: Any) -> Iterable[Any]:
    """Accept a Tracer or a raw iterable of TraceEvents."""
    return tracer.events if hasattr(tracer, "events") else tracer


def chrome_trace(
    tracer: Any,
    pid: int = 0,
    process_name: str = "sim",
) -> Dict[str, Any]:
    """Convert traced spans into the Chrome trace-event JSON object."""
    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    tids: Dict[str, int] = {}
    for event in _events_of(tracer):
        tid = tids.get(event.station)
        if tid is None:
            tid = tids[event.station] = len(tids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": event.station},
                }
            )
        name = event.label or event.station
        if event.end_ns > event.start_ns:
            trace_events.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": "sim",
                    "pid": pid,
                    "tid": tid,
                    "ts": event.start_ns / 1e3,  # ns -> us
                    "dur": (event.end_ns - event.start_ns) / 1e3,
                }
            )
        else:
            trace_events.append(
                {
                    "ph": "i",
                    "name": name,
                    "cat": "sim",
                    "pid": pid,
                    "tid": tid,
                    "ts": event.start_ns / 1e3,
                    "s": "t",  # thread-scoped instant
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ns"}


def merge_chrome_traces(traces: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-run chrome traces into one loadable file."""
    merged: List[Dict[str, Any]] = []
    for trace in traces:
        merged.extend(trace["traceEvents"])
    return {"traceEvents": merged, "displayTimeUnit": "ns"}


def write_chrome_trace(
    tracer: Any, path: str, pid: int = 0, process_name: str = "sim"
) -> None:
    """Write one tracer's spans as a ``chrome://tracing`` JSON file."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, pid=pid, process_name=process_name), fh)
        fh.write("\n")


def write_jsonl(tracer: Any, path: str, run: Optional[str] = None) -> int:
    """Write traced spans as JSON lines; returns the line count.

    Each line is one event: ``{"station", "start_ns", "end_ns",
    "label"}`` plus an optional ``"run"`` tag — the format for ad-hoc
    post-processing (jq, pandas) where Chrome's envelope is in the way.
    """
    n = 0
    with open(path, "w") as fh:
        for event in _events_of(tracer):
            record: Dict[str, Any] = {
                "station": event.station,
                "start_ns": event.start_ns,
                "end_ns": event.end_ns,
                "label": event.label,
            }
            if run is not None:
                record["run"] = run
            fh.write(json.dumps(record))
            fh.write("\n")
            n += 1
    return n
