"""Unified observability: metrics registry, trace export, run reports.

The paper attributes throughput to specific hardware stations — PIO vs
DMA occupancy, RNIC processing, QP-cache behaviour (Section 3.2,
Figures 2-7) — so every perf claim this repo makes needs the same
per-resource accounting.  This package provides it:

* :class:`~repro.obs.registry.MetricsRegistry` — named counters,
  gauges, and log-scale histograms.  Attach one to a simulator
  (``sim.metrics = MetricsRegistry(sim)``) *before* building a cluster
  and every :class:`~repro.sim.resources.FifoServer` (utilization, jobs,
  queue-delay histogram), :class:`~repro.sim.resources.Store` (depth
  high-water mark), QP-context cache, verbs device, and HERD process
  registers itself automatically.
* :func:`~repro.obs.export.chrome_trace` /
  :func:`~repro.obs.export.write_jsonl` — export a
  :class:`~repro.bench.trace.Tracer`'s spans as ``chrome://tracing``
  JSON or JSON-lines.
* :func:`~repro.obs.session.capture` — a context manager that
  instruments every simulator created inside it; this is what powers
  ``herd-bench --metrics out.json --trace out.trace.json``.
* :class:`~repro.obs.report.RunReport` — the per-run bundle experiment
  harnesses attach to their results.

Everything is opt-in: without a registry/tracer attached, the hot paths
skip all instrumentation (a single attribute test).
"""

from repro.obs.export import (
    chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.registry import Counter, Gauge, LogHistogram, MetricsRegistry
from repro.obs.report import RunReport
from repro.obs.session import ObsSession, capture

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "ObsSession",
    "RunReport",
    "capture",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
