"""The metrics registry: named counters, gauges, and log-scale histograms.

A registry belongs to one :class:`~repro.sim.engine.Simulator`.  The
instrumented layers look it up as ``sim.metrics`` (duck-typed, exactly
like ``sim.tracer``) so that nothing below :mod:`repro.obs` has to
import this package, and a simulator without a registry pays nothing.

Metric names are dotted paths.  The conventions used by the built-in
instrumentation:

* ``station.<machine>.<unit>.*`` — every ``FifoServer`` (``pcie.pio``,
  ``pcie.dma``, ``nic.rx``, ``nic.tx``, port ``tx``): jobs, busy time,
  utilization, and a queue-delay histogram;
* ``store.<name>.depth_hwm`` — mailbox depth high-water marks;
* ``qpcache.<machine>.*`` — context-cache hits/misses/evictions;
* ``verbs.<machine>.*`` — WQEs posted by verb and transport, inline vs
  DMA payloads, CQE DMA writes; ``verbs.<machine>.atomics`` counts
  remote read-modify-writes (CmpSwap/FetchAdd) served by the machine;
* ``herd.server<i>.*`` / ``herd.client<i>.*`` — op counters, pipeline
  occupancy, response-latency histograms;
* ``txn.commits`` / ``txn.aborts`` — multi-key transaction outcomes
  recorded by :meth:`repro.txn.cluster.TxnCluster.run`, either
  dataplane.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, List, Optional


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A named point-in-time value (with a high-water-mark helper)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def update_max(self, value: float) -> None:
        """Keep the largest value seen (depth high-water marks)."""
        if value > self.value:
            self.value = value


class LogHistogram:
    """A histogram with power-of-two buckets.

    Bucket ``i`` counts observations in ``(2**(i-1), 2**i]`` (bucket 0
    holds everything ``<= 1``, including zero).  Log-scale buckets keep
    the memory cost O(log range) while preserving the shape of heavy
    tails — queue delays in this simulator span below a nanosecond to
    tens of microseconds.
    """

    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("negative observation: %r" % value)
        index = 0 if value <= 1.0 else math.ceil(math.log2(value))
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (upper bucket bound)."""
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return float(2 ** index)
        return float(2 ** max(self.buckets))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean(),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            # upper bound -> count, in ascending bucket order
            "buckets": [
                {"le": float(2 ** index), "count": self.buckets[index]}
                for index in sorted(self.buckets)
            ],
        }


class MetricsRegistry:
    """Get-or-create registry of metrics for one simulator.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    when the name is already registered, so instrumentation points do
    not need to coordinate.  ``gauge_fn`` registers a callable sampled
    at :meth:`snapshot` time — used for values that live in existing
    objects (cache hit counts, utilization) so the hot path is not
    touched at all.
    """

    def __init__(self, sim: Optional[Any] = None) -> None:
        self.sim = sim
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, LogHistogram] = {}
        self._gauge_fns: Dict[str, Callable[[], float]] = {}
        self._stations: List[Any] = []
        self._anon_stores = 0

    # -- metric factories ----------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> LogHistogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = LogHistogram(name)
        return metric

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> None:
        """Register a pull-style gauge sampled at snapshot time."""
        self._gauge_fns[name] = fn

    # -- auto-registration hooks (called by the instrumented layers) ---

    def watch_fifo_server(self, server: Any) -> LogHistogram:
        """Adopt a FifoServer; returns its queue-delay histogram.

        Utilization and job counts are *pulled* from the server at
        snapshot time, so only the per-job queue delay costs anything
        while the simulation runs.
        """
        self._stations.append(server)
        return self.histogram("station.%s.queue_delay_ns" % server.name)

    def watch_store(self, store: Any, name: str) -> Gauge:
        """Adopt a Store; returns its depth high-water-mark gauge."""
        return self.gauge("store.%s.depth_hwm" % name)

    def anon_store_name(self) -> str:
        """The next anonymous-store metric name for *this* registry.

        Numbering is per simulator, so the names a run emits do not
        depend on how many simulators happened to run earlier in the
        same process (a ``workers=1`` rerun must match a fresh one).
        """
        self._anon_stores += 1
        return "store%d" % self._anon_stores

    def watch_qp_cache(self, machine_name: str, cache: Any) -> None:
        """Sample a QP-context cache's counters at snapshot time."""
        prefix = "qpcache.%s." % machine_name
        self.gauge_fn(prefix + "hits", lambda: cache.hits)
        self.gauge_fn(prefix + "misses", lambda: cache.misses)
        self.gauge_fn(prefix + "evictions", lambda: cache.evictions)
        self.gauge_fn(prefix + "hit_rate", cache.hit_rate)
        self.gauge_fn(prefix + "resident_contexts", lambda: cache.resident_contexts)

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything the registry knows, as one JSON-able dict."""
        now = float(self.sim.now) if self.sim is not None else 0.0
        stations: Dict[str, Any] = {}
        for server in self._stations:
            elapsed = server.sim.now
            delay = self.histograms.get("station.%s.queue_delay_ns" % server.name)
            stations[server.name] = {
                "jobs": server.jobs,
                "busy_ns": server.busy_time,
                "capacity": server.capacity,
                "utilization": server.utilization(elapsed),
                "queue_delay_ns": delay.to_dict() if delay is not None else None,
            }
        gauges = {name: gauge.value for name, gauge in self.gauges.items()}
        for name, fn in self._gauge_fns.items():
            gauges[name] = fn()
        return {
            "sim_time_ns": now,
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": gauges,
            "histograms": {
                name: h.to_dict() for name, h in self.histograms.items()
            },
            "stations": stations,
        }

    def dump_json(self, path: str, indent: int = 1) -> None:
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=indent)
            fh.write("\n")
