"""The per-run observability bundle experiments attach to results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class RunReport:
    """Metrics and trace accounting for one simulated run.

    Built by the experiment harnesses (e.g.
    :meth:`repro.herd.cluster.HerdCluster.run`) whenever the simulator
    carries a :class:`~repro.obs.registry.MetricsRegistry`, and attached
    to the :class:`~repro.bench.result.RunResult` so figure code can
    justify its numbers with per-station accounting.
    """

    #: experiment or harness label ("fig9", "herd-cluster", ...)
    name: str = ""
    #: simulated clock at collection time
    sim_time_ns: float = 0.0
    #: full :meth:`MetricsRegistry.snapshot` output
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: number of trace events held by the simulator's tracer, if any
    trace_events: int = 0
    #: per-scenario outcome rows (chaos/HA runs): scenario, ops acked,
    #: ops lost, checker verdict — see ChaosReport.outcome_row()
    outcomes: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "name": self.name,
            "sim_time_ns": self.sim_time_ns,
            "trace_events": self.trace_events,
            "metrics": self.metrics,
        }
        if self.outcomes:
            payload["outcomes"] = self.outcomes
        return payload

    @classmethod
    def from_sim(cls, sim: Any, name: str = "") -> Optional["RunReport"]:
        """Collect a report from ``sim``; None when nothing is attached."""
        registry = getattr(sim, "metrics", None)
        tracer = getattr(sim, "tracer", None)
        if registry is None and tracer is None:
            return None
        return cls(
            name=name,
            sim_time_ns=sim.now,
            metrics=registry.snapshot() if registry is not None else {},
            trace_events=len(tracer.events) if tracer is not None else 0,
        )
