"""repro.elastic: shard map service, live migration, and membership.

The elastic layer turns the static HERD cluster into one whose key
ownership can move under live traffic (see docs/ELASTICITY.md):

* :class:`ShardMap` — an immutable, version-fenced range table over
  the 64-bit keyhash space, replacing the static modulo mapping;
* :class:`ElasticAgent` — per replica machine: migration source/sink
  over the repro.ha replication mesh, plus ownership verdicts for the
  serve path (``RESP_NOT_OWNER`` / cutover holds);
* :class:`ShardCoordinator` — membership (join/leave) and serialized,
  fenced migration supervision beside the lease monitor;
* :class:`ElasticRuntime` — the cluster-facing handle bundling the
  coordinator and agents.
"""

from repro.elastic.shardmap import HASH_SPACE, ShardMap
from repro.elastic.migration import ElasticAgent, MigrationSink, MigrationSource
from repro.elastic.coordinator import ShardCoordinator


class ElasticRuntime:
    """What an elastic cluster hangs on to: coordinator + agents."""

    def __init__(self, coordinator, agents):
        self.coordinator = coordinator
        self.agents = agents

    @property
    def shard_map(self):
        """The authoritative (coordinator-held) shard map."""
        return self.coordinator.map

    def counters(self):
        """Aggregated evidence for fingerprints and reports."""
        return {
            "map_version": self.coordinator.map.version,
            "migrations_done": self.coordinator.migrations_done,
            "migrations_aborted": self.coordinator.migrations_aborted,
            "records_sent": sum(a.records_sent for a in self.agents),
            "records_applied": sum(a.records_applied for a in self.agents),
            "maps_adopted": sum(a.maps_adopted for a in self.agents),
        }


__all__ = [
    "HASH_SPACE",
    "ShardMap",
    "ElasticAgent",
    "MigrationSink",
    "MigrationSource",
    "ShardCoordinator",
    "ElasticRuntime",
]
