"""The epoch-versioned shard map: who owns which slice of hash space.

The map is an explicit range table over the 64-bit keyhash prefix
(the same 8 little-endian bytes the static ``partition_of`` hashes
with).  It is stored as a sorted *boundary list* ``[(start, owner),
...]``: entry *i* owns ``[start_i, start_{i+1})`` and the last entry
runs to ``2**64``.  Boundaries rather than ``(lo, hi)`` pairs keep the
encoding gap-free by construction and avoid the ``2**64`` end bound
overflowing a u64 on the wire (see ``encode_shard_map``).

Maps are immutable; every ownership change returns a **new** map with
``version + 1``.  Versions are the fencing token of the elastic layer:
replicas and clients adopt a map only if its version exceeds the one
they hold, exactly like :class:`repro.ha.ReplicaMap` epochs — a delayed
CTRL_SHARDMAP broadcast can therefore never roll routing back.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

HASH_SPACE = 1 << 64


class ShardMap:
    """An immutable, versioned range table mapping hashes to partitions."""

    __slots__ = ("version", "entries", "_starts")

    def __init__(self, version: int, entries: Sequence[Tuple[int, int]]):
        if not entries:
            raise ValueError("a shard map needs at least one range")
        entries = tuple((int(start), int(owner)) for start, owner in entries)
        if entries[0][0] != 0:
            raise ValueError("the first range must start at hash 0")
        starts = [start for start, _owner in entries]
        if starts != sorted(set(starts)):
            raise ValueError("range starts must be strictly increasing")
        if starts[-1] >= HASH_SPACE:
            raise ValueError("range starts must lie below 2**64")
        if any(owner < 0 for _start, owner in entries):
            raise ValueError("owners must be non-negative partition ids")
        self.version = int(version)
        self.entries = entries
        self._starts = starts

    # -- construction -------------------------------------------------

    @classmethod
    def striped(cls, n_active: int, version: int = 0) -> "ShardMap":
        """Equal contiguous stripes over ``n_active`` partitions.

        Keyhashes are uniform (ycsb's mix64), so equal stripes carry
        equal load — the elastic analogue of the modulo mapping.
        """
        if n_active < 1:
            raise ValueError("n_active must be >= 1; got %r" % (n_active,))
        return cls(
            version,
            [(i * HASH_SPACE // n_active, i) for i in range(n_active)],
        )

    # -- lookups ------------------------------------------------------

    def owner_of_hash(self, h: int) -> int:
        """The partition owning 64-bit hash value ``h``."""
        if not 0 <= h < HASH_SPACE:
            raise ValueError("hash out of range: %r" % (h,))
        return self.entries[bisect_right(self._starts, h) - 1][1]

    def owner_of(self, keyhash: bytes) -> int:
        """The partition owning ``keyhash`` (same prefix as partition_of)."""
        return self.owner_of_hash(int.from_bytes(keyhash[:8], "little"))

    def owners(self) -> Tuple[int, ...]:
        """The distinct partitions that own at least one range, sorted."""
        return tuple(sorted({owner for _start, owner in self.entries}))

    def ranges(self) -> List[Tuple[int, int, int]]:
        """``[(lo, hi, owner), ...]`` with explicit exclusive bounds."""
        out = []
        for i, (start, owner) in enumerate(self.entries):
            hi = self._starts[i + 1] if i + 1 < len(self.entries) else HASH_SPACE
            out.append((start, hi, owner))
        return out

    def share_of(self, owner: int) -> float:
        """Fraction of the hash space ``owner`` holds."""
        held = sum(hi - lo for lo, hi, who in self.ranges() if who == owner)
        return held / HASH_SPACE

    # -- mutation (returns a new map) ---------------------------------

    def assign(self, lo: int, hi: int, owner: int) -> "ShardMap":
        """A new map (version + 1) with ``[lo, hi)`` owned by ``owner``."""
        if not 0 <= lo < hi <= HASH_SPACE:
            raise ValueError("invalid range [%r, %r)" % (lo, hi))
        boundaries = []
        for r_lo, r_hi, r_owner in self.ranges():
            if r_hi <= lo or r_lo >= hi:
                boundaries.append((r_lo, r_owner))
                continue
            if r_lo < lo:
                boundaries.append((r_lo, r_owner))
            if r_hi > hi:
                boundaries.append((hi, r_owner))
        boundaries.append((lo, owner))
        boundaries.sort()
        # merge adjacent ranges with the same owner
        merged: List[Tuple[int, int]] = []
        for start, who in boundaries:
            if merged and merged[-1][1] == who:
                continue
            merged.append((start, who))
        return ShardMap(self.version + 1, merged)

    # -- rebalance planning -------------------------------------------

    def plan_join(self, newcomer: int) -> List[Tuple[int, int, int, int]]:
        """Moves ``[(lo, hi, src, dst), ...]`` granting an equal share.

        Each current owner donates the tail of its holdings so that all
        ``k + 1`` partitions end with ``1 / (k + 1)`` of the hash space
        (uniform hashes make share == load).  Applying the moves in
        order — each as one live migration — converges the map; the
        cluster stays fully available throughout because every move is
        individually fenced.
        """
        current = self.owners()
        if newcomer in current:
            raise ValueError("partition %d already owns a range" % newcomer)
        donate = HASH_SPACE // (len(current) + 1) // len(current)
        moves = []
        for owner in current:
            remaining = donate
            # donate from the tail of each of the owner's ranges
            for lo, hi, who in reversed(self.ranges()):
                if who != owner or remaining <= 0:
                    continue
                take = min(remaining, hi - lo)
                moves.append((hi - take, hi, owner, newcomer))
                remaining -= take
        return moves

    def plan_leave(self, leaver: int) -> List[Tuple[int, int, int, int]]:
        """Moves evacuating every range ``leaver`` owns to the survivors."""
        survivors = [o for o in self.owners() if o != leaver]
        if not survivors:
            raise ValueError("cannot evacuate the last owner")
        moves = []
        evacuating = [r for r in self.ranges() if r[2] == leaver]
        for i, (lo, hi, _who) in enumerate(evacuating):
            moves.append((lo, hi, leaver, survivors[i % len(survivors)]))
        return moves

    # -- misc ---------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ShardMap)
            and self.version == other.version
            and self.entries == other.entries
        )

    def __hash__(self) -> int:
        return hash((self.version, self.entries))

    def __repr__(self) -> str:
        body = ", ".join(
            "[%#x, %s)->%d" % (lo, "end" if hi == HASH_SPACE else hex(hi), who)
            for lo, hi, who in self.ranges()
        )
        return "ShardMap(v%d: %s)" % (self.version, body)
