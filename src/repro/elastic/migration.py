"""Live key-range migration over the repro.ha replication mesh.

One :class:`ElasticAgent` per replica machine hangs off its
:class:`~repro.ha.replication.HaNode` (``node.elastic``) and owns the
machine's side of every migration:

* as the **source** (the machine hosting the donating partition's
  primary), it snapshots the committed store for the moving range and
  streams it to the destination as MIG_RECORDs — a windowed go-back-N
  stream over the same RC mesh the UPDATE traffic uses, so migration
  bytes pay the same simulated NIC/link costs and suffer the same
  injected faults.  While the stream runs, every commit on the
  partition is **dual-written** onto it (:meth:`on_commit`), so the
  destination converges on the source's commit order: a later mseq
  always carries a newer-or-equal value for its key.
* as the **destination**, it applies records *in mseq order* through
  :meth:`~repro.ha.replication.ReplicaRole.stage_migration`, which
  replicates them durably to the destination's own backups before the
  cumulative MIG_ACK advances — an acked record can no longer be lost
  to a destination failover.
* for the **cutover**, CTRL_MIG_CUTOVER freezes the moving range
  (in-range requests *hold* rather than commit new writes), the source
  drains its stream plus any in-range uncommitted suffix, and reports
  MIG_FLUSHED; only then does the coordinator publish the new shard
  map.  Every value the source ever acked is therefore at the
  destination — committed under its replication — before any client
  routes there.

The agent is deliberately crash-shaped: a fenced or crashed primary
calls :meth:`abort_partition` (wired into ``ReplicaRole._demote`` /
``on_crash``), the coordinator aborts and restarts the move from the
new primary with a fresh, larger mig_id, and the destination silences
any stale stream because the **highest mig_id wins** per partition.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.verbs import WorkRequest
from repro.herd import wire

#: go-back-N window of unacked MIG_RECORDs per migration
MIG_WINDOW = 8
#: fruitless retransmission rounds before the source gives up (the
#: coordinator will abort the move anyway once it detects the stall)
MAX_RETRANSMIT_ROUNDS = 25
#: simulated ns/byte for a local (same-machine) record handoff
_LOCAL_COPY_NS_PER_BYTE = 1 / 16.0


class MigrationSource:
    """Source-side state for one outgoing migration."""

    __slots__ = (
        "mig_id", "partition", "dst_partition", "dst_replica", "lo", "hi",
        "pending", "unacked", "next_mseq", "acked", "snapshot_done",
        "frozen", "aborted", "done", "retransmit_rounds", "last_send_ns",
        "last_event_ns",
    )

    def __init__(self, mig_id, partition, dst_partition, dst_replica, lo, hi):
        self.mig_id = mig_id
        self.partition = partition
        self.dst_partition = dst_partition
        self.dst_replica = dst_replica
        self.lo = lo
        self.hi = hi
        #: (mseq, keyhash, value) not yet shipped
        self.pending = deque()
        #: mseq -> (keyhash, value) shipped, not yet cumulatively acked
        self.unacked: Dict[int, Tuple[bytes, bytes]] = {}
        self.next_mseq = 1
        self.acked = 0  # cumulative ack from the destination
        self.snapshot_done = False
        self.frozen = False  # cutover received: hold in-range requests
        self.aborted = False
        self.done = False
        self.retransmit_rounds = 0
        self.last_send_ns = float("-inf")
        self.last_event_ns = float("-inf")

    def covers(self, keyhash: bytes) -> bool:
        h = int.from_bytes(keyhash[:8], "little")
        return self.lo <= h < self.hi

    def enqueue(self, keyhash: bytes, value: bytes) -> None:
        self.pending.append((self.next_mseq, keyhash, value))
        self.next_mseq += 1

    def on_ack(self, mseq: int) -> None:
        if mseq > self.acked:
            self.acked = mseq
            self.retransmit_rounds = 0
            for shipped in [m for m in self.unacked if m <= mseq]:
                del self.unacked[shipped]

    def idle(self) -> bool:
        """Nothing left to ship and everything shipped is acked."""
        return self.snapshot_done and not self.pending and not self.unacked


class MigrationSink:
    """Destination-side state for one incoming migration."""

    __slots__ = ("mig_id", "src_replica", "partition", "buffer", "applied", "committed")

    def __init__(self, mig_id, src_replica, partition):
        self.mig_id = mig_id
        self.src_replica = src_replica
        self.partition = partition
        #: out-of-order records waiting for their mseq turn
        self.buffer: Dict[int, Tuple[bytes, bytes]] = {}
        self.applied = 0  # contiguous prefix staged into replication
        self.committed = 0  # contiguous prefix committed (ackable)


class ElasticAgent:
    """One replica machine's half of the elastic dataplane."""

    def __init__(self, node, shard_map) -> None:
        self.node = node
        self.shard_map = shard_map
        #: (machine, qpn) of the coordinator's UD QP, wired by the cluster
        self.coordinator_ah: Optional[Tuple[str, int]] = None
        self.outgoing: Dict[int, MigrationSource] = {}  # mig_id -> source
        self.incoming: Dict[int, MigrationSink] = {}  # partition -> sink
        self.dead_migs: Set[int] = set()
        # counters (fingerprint evidence)
        self.records_sent = 0
        self.records_applied = 0
        self.maps_adopted = 0
        self.migrations_started = 0
        self.migrations_finished = 0
        self.migrations_aborted = 0

    # -- role-facing hooks ---------------------------------------------

    def request_verdict(self, partition: int, keyhash: bytes) -> str:
        """"serve", "hold" (frozen for cutover), or "not_owner"."""
        if self.shard_map.owner_of(keyhash) != partition:
            return "not_owner"
        for src in self.outgoing.values():
            if (
                src.partition == partition
                and src.frozen
                and not src.aborted
                and src.covers(keyhash)
            ):
                return "hold"
        return "serve"

    def on_commit(self, partition: int, keyhash: bytes, value: bytes) -> None:
        """Dual-write a committed record onto covering outgoing streams."""
        for src in self.outgoing.values():
            if (
                src.partition == partition
                and not src.aborted
                and not src.done
                and src.covers(keyhash)
            ):
                src.enqueue(keyhash, value)

    def abort_partition(self, partition: int) -> None:
        """Fenced/crashed locally: kill this partition's migration state."""
        for src in self.outgoing.values():
            if src.partition == partition and not src.done:
                src.aborted = True
        sink = self.incoming.get(partition)
        if sink is not None:
            del self.incoming[partition]
            self.dead_migs.add(sink.mig_id)

    # -- control channel (coordinator -> node, over UD) ----------------

    def on_ctrl(self, kind: int, data: bytes):
        """Generator: dispatch one control message from the coordinator."""
        if kind == wire.CTRL_MIG_START:
            mig_id, src_p, dst_p, dst_replica, lo, hi = wire.decode_mig_start(data)
            self._on_start(mig_id, src_p, dst_p, dst_replica, lo, hi)
        elif kind == wire.CTRL_MIG_CUTOVER:
            src = self.outgoing.get(wire.decode_mig_ctl(data))
            if src is not None and not src.aborted:
                src.frozen = True
        elif kind == wire.CTRL_MIG_ABORT:
            self._on_abort(wire.decode_mig_ctl(data))
        elif kind == wire.CTRL_SHARDMAP:
            self._on_shard_map(data)
        yield from ()  # generator, like the node's other ctrl handlers

    def _on_start(self, mig_id, src_p, dst_p, dst_replica, lo, hi):
        if mig_id in self.outgoing or mig_id in self.dead_migs:
            return  # idempotent re-send
        role = self.node.roles[src_p]
        if not role.is_primary:
            return  # stale start: we lost the partition since it was sent
        src = MigrationSource(mig_id, src_p, dst_p, dst_replica, lo, hi)
        # Snapshot the committed store at one sim instant.  Dual-writes
        # enqueue behind it, so a later mseq always carries a value at
        # least as new: last-write-wins at the sink converges on the
        # source's committed state.
        for keyhash, value in role.server.store.items():
            if src.covers(keyhash):
                src.enqueue(keyhash, value)
        src.snapshot_done = True
        self.outgoing[mig_id] = src
        self.migrations_started += 1
        self.node.sim.process(
            self._pump(src),
            name="elastic-rep%d-mig%d" % (self.node.replica_id, mig_id),
        )

    def _on_abort(self, mig_id: int) -> None:
        self.dead_migs.add(mig_id)
        src = self.outgoing.get(mig_id)
        if src is not None and not src.done:
            src.aborted = True
        for partition, sink in list(self.incoming.items()):
            if sink.mig_id == mig_id:
                del self.incoming[partition]

    def _on_shard_map(self, data: bytes) -> None:
        version, entries = wire.decode_shard_map(data)
        if version <= self.shard_map.version:
            return
        from repro.elastic.shardmap import ShardMap

        self.shard_map = ShardMap(version, entries)
        self.maps_adopted += 1
        # An outgoing migration whose range we no longer own has been
        # cut over: retire it.  Held in-range requests now resolve to
        # "not_owner" and the clients re-route to the new owner.
        for mig_id, src in list(self.outgoing.items()):
            if src.done or src.aborted:
                del self.outgoing[mig_id]
                self.dead_migs.add(mig_id)
            elif self.shard_map.owner_of_hash(src.lo) != src.partition:
                src.done = True
                del self.outgoing[mig_id]
                self.dead_migs.add(mig_id)
                self.migrations_finished += 1

    # -- mesh traffic (MIG_RECORD / MIG_ACK) ---------------------------

    def on_mesh(self, kind: int, data: bytes, peer: int):
        """Generator: dispatch one mesh message from replica ``peer``."""
        if kind == wire.MIG_RECORD:
            yield from self._on_record(data, peer)
        elif kind == wire.MIG_ACK:
            mig_id, mseq = wire.decode_mig_ack(data)
            src = self.outgoing.get(mig_id)
            if src is not None:
                src.on_ack(mseq)

    def _on_record(self, data: bytes, peer: int):
        mig_id, mseq, dst_partition, keyhash, value = wire.decode_mig_record(data)
        if mig_id in self.dead_migs:
            return
        sink = self.incoming.get(dst_partition)
        if sink is None or sink.mig_id < mig_id:
            # highest mig_id wins: a restarted move silences the stale
            # stream so two snapshots can never interleave their writes
            if sink is not None:
                self.dead_migs.add(sink.mig_id)
            sink = MigrationSink(mig_id, peer, dst_partition)
            self.incoming[dst_partition] = sink
        elif sink.mig_id > mig_id:
            return
        sink.src_replica = peer
        if mseq <= sink.applied:
            # duplicate (go-back-N retransmit): re-ack our progress
            yield from self._send_ack(sink)
            return
        sink.buffer[mseq] = (keyhash, value)
        yield from self._drain_sink(sink)

    def _drain_sink(self, sink: MigrationSink):
        role = self.node.roles[sink.partition]
        while sink.applied + 1 in sink.buffer:
            if not role.is_primary or role.syncing is not None:
                return  # not safe to stage here; coordinator will abort
            mseq = sink.applied + 1
            keyhash, value = sink.buffer.pop(mseq)
            sink.applied = mseq
            self.records_applied += 1
            yield from role.stage_migration(
                keyhash, value, on_commit=self._commit_cb(sink, mseq)
            )

    def _commit_cb(self, sink: MigrationSink, mseq: int):
        def fire(_seq: int) -> None:
            if sink.committed < mseq:
                sink.committed = mseq
                self.node.sim.process(self._ack_later(sink))

        return fire

    def _ack_later(self, sink: MigrationSink):
        yield from self._send_ack(sink)

    def _send_ack(self, sink: MigrationSink):
        payload = wire.encode_mig_ack(sink.mig_id, sink.committed)
        yield from self._mesh_or_local(sink.src_replica, payload)

    # -- the source pump -----------------------------------------------

    def _pump(self, src: MigrationSource):
        node = self.node
        sim = node.sim
        tick = node.heartbeat_ns / 2.0
        retransmit_after = 4.0 * node.heartbeat_ns
        role = node.roles[src.partition]
        while not src.aborted and not src.done:
            sent = False
            while src.pending and len(src.unacked) < MIG_WINDOW:
                mseq, keyhash, value = src.pending.popleft()
                src.unacked[mseq] = (keyhash, value)
                yield from self._ship(src, mseq, keyhash, value)
                sent = True
            if (
                not sent
                and src.unacked
                and sim.now - src.last_send_ns >= retransmit_after
            ):
                src.retransmit_rounds += 1
                if src.retransmit_rounds > MAX_RETRANSMIT_ROUNDS:
                    src.aborted = True
                    self.migrations_aborted += 1
                    break
                for mseq in sorted(src.unacked):
                    entry = src.unacked.get(mseq)
                    if entry is None:
                        continue  # acked while an earlier retransmit was in flight
                    keyhash, value = entry
                    yield from self._ship(src, mseq, keyhash, value)
            if src.idle() and sim.now - src.last_event_ns >= node.heartbeat_ns:
                # UD events can drop; re-announce until acted upon
                if not src.frozen:
                    yield from self._send_event(src, wire.MIG_SYNCED)
                    src.last_event_ns = sim.now
                elif self._flushed(src, role):
                    yield from self._send_event(src, wire.MIG_FLUSHED)
                    src.last_event_ns = sim.now
            yield sim.timeout(tick)

    def _ship(self, src, mseq, keyhash, value):
        payload = wire.encode_mig_record(
            src.mig_id, mseq, src.dst_partition, keyhash, value
        )
        src.last_send_ns = self.node.sim.now
        self.records_sent += 1
        yield from self._mesh_or_local(src.dst_replica, payload)

    def _flushed(self, src: MigrationSource, role) -> bool:
        """Frozen + drained: no in-range write can still be acked.

        The stream is idle *and* no in-range key has an uncommitted
        staged PUT — any such commit would dual-write onto the stream
        and un-idle it, so checking both at one instant is sound.
        """
        if not src.idle():
            return False
        return not any(src.covers(keyhash) for keyhash in role.uncommitted)

    def _send_event(self, src: MigrationSource, event: int):
        if self.coordinator_ah is None:
            return
        payload = wire.encode_mig_event(src.mig_id, src.partition, event)
        wr = WorkRequest.send(
            payload=payload, inline=True, signaled=False, ah=self.coordinator_ah
        )
        yield from self.node.device.post_send_timed(self.node.ctrl_qp, wr)

    # -- local vs mesh delivery ----------------------------------------

    def _mesh_or_local(self, peer: int, payload: bytes):
        """Ship to a peer machine, or hand over locally if it is us.

        Initially every partition's primary lives on replica machine 0,
        so the common migration stream is a *local* move between two
        server processes on one machine — modelled as a memcpy, not a
        NIC round-trip (the RC mesh has no self-loop QP).
        """
        if peer == self.node.replica_id:
            yield self.node.sim.timeout(len(payload) * _LOCAL_COPY_NS_PER_BYTE)
            yield from self.on_mesh(wire.ha_kind(payload), payload, peer)
        else:
            yield from self.node.send_mesh(peer, payload)
