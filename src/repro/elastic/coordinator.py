"""The shard-map coordinator: membership and migration supervision.

A :class:`ShardCoordinator` runs beside the :class:`~repro.ha.detector.
LeaseMonitor` on the monitor machine.  It holds the authoritative
:class:`~repro.elastic.shardmap.ShardMap` and drives every ownership
change as a serialized queue of *moves* ``(lo, hi, src, dst)`` — one
live migration at a time, each fenced individually, so the cluster
stays fully available throughout a rebalance.

One move's life cycle:

1. ``CTRL_MIG_START`` to the source partition's primary *machine*
   (resolved — with its fencing epoch — from the monitor's live view).
   The source snapshots and streams; the coordinator re-sends the
   idempotent START every tick until progress, because control UD
   SENDs can drop.
2. The source reports ``MIG_SYNCED`` (stream drained).  The
   coordinator re-verifies that both primaries and epochs still match
   what the move was started against, then sends ``CTRL_MIG_CUTOVER``:
   the source freezes the range (in-range requests hold) and flushes.
3. The source reports ``MIG_FLUSHED``.  After the same verification,
   the coordinator *assigns* the range in a new map (version + 1),
   broadcasts ``CTRL_SHARDMAP`` to every replica machine, and fans the
   map out to clients via ``map_listeners`` (the same out-of-band
   channel the monitor uses for CONFIGs).  Adopting the map retires
   the source's migration and releases held requests as
   ``RESP_NOT_OWNER`` — clients re-route to the new owner.

If either side's primary or epoch changes mid-move — the kill-primary
chaos case — or the move stalls, the coordinator aborts it and
re-queues the same range under a **fresh, larger mig_id**; the
destination's highest-mig-id-wins rule silences the stale stream.
Nothing is lost: the map only ever advances on a verified FLUSH, so
an aborted move leaves ownership (and every acked write) at the
source.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim import Simulator
from repro.verbs import CompletionQueue, RdmaDevice, RecvRequest, Transport, WorkRequest
from repro.herd.config import HerdConfig
from repro.herd import wire
from repro.elastic.shardmap import ShardMap

#: UD RECV slot (GRH + MIG_EVENT) and ring depth
CTRL_SLOT = 40 + 32
CTRL_RING = 256
#: ticks (heartbeats) without progress before a move is presumed wedged
STALL_TICKS = 100.0
#: map re-broadcast period, in heartbeats (repairs dropped SHARDMAPs)
MAP_RECAST_TICKS = 4.0


class _ActiveMove:
    """One in-flight migration and the world it was started against."""

    __slots__ = (
        "mig_id", "lo", "hi", "src_partition", "dst_partition",
        "src_replica", "src_epoch", "dst_replica", "dst_epoch",
        "phase", "last_progress_ns",
    )

    def __init__(self, mig_id, lo, hi, src_partition, dst_partition,
                 src_replica, src_epoch, dst_replica, dst_epoch, now):
        self.mig_id = mig_id
        self.lo = lo
        self.hi = hi
        self.src_partition = src_partition
        self.dst_partition = dst_partition
        self.src_replica = src_replica
        self.src_epoch = src_epoch
        self.dst_replica = dst_replica
        self.dst_epoch = dst_epoch
        self.phase = "copy"  # -> "cutover"
        self.last_progress_ns = now


class ShardCoordinator:
    """Authoritative shard map + serialized migration supervision."""

    def __init__(
        self,
        sim: Simulator,
        device: RdmaDevice,
        config: HerdConfig,
        monitor,
        shard_map: ShardMap,
    ) -> None:
        self.sim = sim
        self.device = device
        self.config = config
        self.monitor = monitor  # LeaseMonitor, co-located: read its live view
        self.map = shard_map
        self.heartbeat_ns = config.heartbeat_us * 1000.0
        self.stall_ns = STALL_TICKS * self.heartbeat_ns

        self.recv_cq = CompletionQueue(sim, "elastic.coord.rcq")
        self.ud_qp = device.create_qp(Transport.UD, recv_cq=self.recv_cq)
        self.recv_mr = device.register_memory(CTRL_RING * CTRL_SLOT)
        #: replica id -> (machine, ctrl qpn), wired by the cluster
        self.node_ahs: Dict[int, Tuple[str, int]] = {}
        #: out-of-band map fan-out to clients: fn(ShardMap) — the
        #: elastic sibling of the monitor's config_listeners
        self.map_listeners: List[Callable[[ShardMap], None]] = []

        self.queue: deque = deque()  # (lo, hi, src_partition, dst_partition)
        self.active: Optional[_ActiveMove] = None
        self.next_mig_id = 1
        self._last_map_cast_ns = float("-inf")

        self.joins = 0
        self.leaves = 0
        self.migrations_started = 0
        self.migrations_done = 0
        self.migrations_aborted = 0
        self.maps_published = 0

        metrics = getattr(sim, "metrics", None)
        if metrics is not None:
            metrics.gauge_fn("elastic.coord.map_version", lambda: self.map.version)
            metrics.gauge_fn("elastic.coord.done", lambda: self.migrations_done)
            metrics.gauge_fn("elastic.coord.aborted", lambda: self.migrations_aborted)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        for i in range(CTRL_RING):
            offset = i * CTRL_SLOT
            self.device.post_recv(
                self.ud_qp,
                RecvRequest(wr_id=offset, local=(self.recv_mr, offset, CTRL_SLOT)),
            )
        self.sim.process(self._recv_loop(), name="elastic-coord-recv")
        self.sim.process(self._run(), name="elastic-coord-run")

    def idle(self) -> bool:
        """No move active and none queued (the rebalance converged)."""
        return self.active is None and not self.queue

    # -- membership ----------------------------------------------------

    def schedule_join(self, partition: int, at_ns: float = 0.0) -> None:
        """Grant ``partition`` an equal share of the map at ``at_ns``."""
        self.sim.process(
            self._membership_later(partition, at_ns, join=True),
            name="elastic-join-p%d" % partition,
        )

    def schedule_leave(self, partition: int, at_ns: float = 0.0) -> None:
        """Evacuate everything ``partition`` owns, starting at ``at_ns``."""
        self.sim.process(
            self._membership_later(partition, at_ns, join=False),
            name="elastic-leave-p%d" % partition,
        )

    def _membership_later(self, partition, at_ns, join):
        delay = at_ns - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        try:
            moves = (
                self.map.plan_join(partition)
                if join
                else self.map.plan_leave(partition)
            )
        except ValueError:
            return  # already joined / already left: idempotent
        self.queue.extend(moves)
        if join:
            self.joins += 1
        else:
            self.leaves += 1

    # -- supervision ---------------------------------------------------

    def _run(self):
        sim = self.sim
        while True:
            yield sim.timeout(self.heartbeat_ns)
            if self.active is None:
                if self.queue:
                    yield from self._start_next()
            else:
                move = self.active
                if not self._world_matches(move):
                    yield from self._abort(move, requeue=True)
                elif sim.now - move.last_progress_ns > self.stall_ns:
                    yield from self._abort(move, requeue=True)
                else:
                    # idempotent re-send: control UD SENDs can drop
                    yield from self._send_phase(move)
            if sim.now - self._last_map_cast_ns >= MAP_RECAST_TICKS * self.heartbeat_ns:
                yield from self._broadcast_map()

    def _start_next(self):
        lo, hi, src_partition, dst_partition = self.queue.popleft()
        if self.map.owner_of_hash(lo) != src_partition:
            return  # stale move (range already reassigned); drop it
        src_st = self.monitor.state[src_partition]
        dst_st = self.monitor.state[dst_partition]
        if src_st.primary is None or dst_st.primary is None:
            # mid-failover: try again next tick
            self.queue.appendleft((lo, hi, src_partition, dst_partition))
            return
        mig_id = self.next_mig_id
        self.next_mig_id += 1
        self.active = _ActiveMove(
            mig_id, lo, hi, src_partition, dst_partition,
            src_st.primary, src_st.epoch, dst_st.primary, dst_st.epoch,
            self.sim.now,
        )
        self.migrations_started += 1
        yield from self._send_phase(self.active)

    def _world_matches(self, move: _ActiveMove) -> bool:
        """Both primaries (and their fencing epochs) are as recorded."""
        src_st = self.monitor.state[move.src_partition]
        dst_st = self.monitor.state[move.dst_partition]
        return (
            src_st.primary == move.src_replica
            and src_st.epoch == move.src_epoch
            and dst_st.primary == move.dst_replica
            and dst_st.epoch == move.dst_epoch
        )

    def _send_phase(self, move: _ActiveMove):
        if move.phase == "copy":
            payload = wire.encode_mig_start(
                move.mig_id, move.src_partition, move.dst_partition,
                move.dst_replica, move.lo, move.hi,
            )
        else:
            payload = wire.encode_mig_cutover(move.mig_id)
        yield from self._send(move.src_replica, payload)

    def _abort(self, move: _ActiveMove, requeue: bool):
        self.migrations_aborted += 1
        self.active = None
        for replica in sorted({move.src_replica, move.dst_replica}):
            yield from self._send(replica, wire.encode_mig_abort(move.mig_id))
        if requeue:
            self.queue.appendleft(
                (move.lo, move.hi, move.src_partition, move.dst_partition)
            )

    # -- event path ----------------------------------------------------

    def _recv_loop(self):
        sim = self.sim
        poll_ns = self.device.profile.cq_poll_ns
        while True:
            cqe = yield self.recv_cq.pop()
            yield sim.timeout(poll_ns)
            offset = cqe.wr_id
            data = bytes(self.recv_mr.read(offset + 40, cqe.byte_len))
            self.device.post_recv(
                self.ud_qp,
                RecvRequest(wr_id=offset, local=(self.recv_mr, offset, CTRL_SLOT)),
            )
            if not data or wire.ha_kind(data) != wire.CTRL_MIG_EVENT:
                continue
            mig_id, _partition, event = wire.decode_mig_event(data)
            yield from self._on_event(mig_id, event)

    def _on_event(self, mig_id: int, event: int):
        move = self.active
        if move is None or move.mig_id != mig_id:
            return  # stale or duplicate event
        if not self._world_matches(move):
            yield from self._abort(move, requeue=True)
            return
        if event == wire.MIG_SYNCED and move.phase == "copy":
            move.phase = "cutover"
            move.last_progress_ns = self.sim.now
            yield from self._send_phase(move)
        elif event == wire.MIG_FLUSHED and move.phase == "cutover":
            # fenced cutover: ownership moves only on a verified flush
            self.map = self.map.assign(move.lo, move.hi, move.dst_partition)
            self.migrations_done += 1
            self.active = None
            yield from self._broadcast_map()
            for listener in self.map_listeners:
                listener(self.map)

    # -- map fan-out ---------------------------------------------------

    def _broadcast_map(self):
        self._last_map_cast_ns = self.sim.now
        self.maps_published += 1
        payload = wire.encode_shard_map(self.map.version, self.map.entries)
        for replica in sorted(self.node_ahs):
            yield from self._send(replica, payload)

    def _send(self, replica: int, payload: bytes):
        ah = self.node_ahs.get(replica)
        if ah is None:
            return
        wr = WorkRequest.send(payload=payload, inline=True, signaled=False, ah=ah)
        yield from self.device.post_send_timed(self.ud_qp, wr)
