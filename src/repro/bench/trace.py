"""Event tracing: reproduces Figure 1 (steps involved in posting verbs).

Attach a :class:`Tracer` to a simulator (``sim.tracer = Tracer(sim)``)
and every hardware station records its busy spans: PIO writes, NIC
engine processing, DMA transactions, wire flights, plus semantic
markers from the verbs layer (postings, completions, ACKs).  The
:func:`fig1` experiment runs one of each verb on an otherwise idle
fabric and renders the timeline — the paper's Figure 1 as text.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

from repro.hw import APT, Fabric, HardwareProfile, Machine
from repro.sim import Simulator
from repro.verbs import (
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
    connect_pair,
)


@dataclass
class TraceEvent:
    start_ns: float
    end_ns: float
    station: str
    label: str


class Tracer:
    """Collects busy spans and instantaneous markers.

    With ``max_events`` set, the tracer is a bounded ring buffer that
    keeps only the most recent events — long sweeps can stay traced
    without unbounded memory (the Chrome exporter in
    :mod:`repro.obs.export` consumes either mode).
    """

    def __init__(self, sim: Simulator, max_events: Optional[int] = None) -> None:
        self.sim = sim
        self.max_events = max_events
        self.events = [] if max_events is None else deque(maxlen=max_events)

    def span(self, station: str, start_ns: float, end_ns: float, label: str = "") -> None:
        self.events.append(TraceEvent(start_ns, end_ns, station, label))

    def mark(self, station: str, label: str) -> None:
        now = self.sim.now
        self.events.append(TraceEvent(now, now, station, label))

    def render(self, title: str) -> str:
        lines = [title]
        lines.append("%10s %10s  %-22s %s" % ("start(ns)", "end(ns)", "station", "event"))
        lines.append("-" * 72)
        for event in sorted(self.events, key=lambda e: (e.start_ns, e.end_ns)):
            lines.append(
                "%10.0f %10.0f  %-22s %s"
                % (event.start_ns, event.end_ns, event.station, event.label)
            )
        return "\n".join(lines)


def _traced_world(profile: HardwareProfile = APT):
    sim = Simulator()
    sim.tracer = Tracer(sim)
    fabric = Fabric(sim, profile)
    requester = RdmaDevice(Machine(sim, fabric, "requester"))
    responder = RdmaDevice(Machine(sim, fabric, "responder"))
    return sim, requester, responder


def _run_one(kind: str) -> str:
    sim, requester, responder = _traced_world()
    remote = responder.register_memory(4096)
    remote.write(0, b"R" * 64)
    sink = requester.register_memory(4096)
    src = requester.register_memory(4096)

    if kind == "WRITE, inlined, unreliable, unsignaled":
        _rqp, qp = connect_pair(responder, requester, Transport.UC)
        wr = WorkRequest.write(
            raddr=remote.addr, rkey=remote.rkey, payload=b"w" * 32,
            inline=True, signaled=False,
        )
        requester.post_send(qp, wr)
    elif kind == "WRITE (signaled, RC)":
        _rqp, qp = connect_pair(responder, requester, Transport.RC)
        wr = WorkRequest.write(
            raddr=remote.addr, rkey=remote.rkey, local=(src, 0, 32), signaled=True
        )
        requester.post_send(qp, wr)
    elif kind == "READ":
        _rqp, qp = connect_pair(responder, requester, Transport.RC)
        requester.post_send(
            qp, WorkRequest.read(raddr=remote.addr, rkey=remote.rkey, local=(sink, 0, 32))
        )
    elif kind == "SEND/RECV (UD)":
        rqp = responder.create_qp(Transport.UD)
        inbox = responder.register_memory(2048)
        responder.post_recv(rqp, RecvRequest(wr_id=0, local=(inbox, 0, 2048)))
        qp = requester.create_qp(Transport.UD)
        requester.post_send(
            qp,
            WorkRequest.send(
                payload=b"s" * 32, inline=True, signaled=False,
                ah=("responder", rqp.qpn),
            ),
        )
    else:
        raise ValueError(kind)
    sim.run_until_idle()
    return sim.tracer.render("--- %s ---" % kind)


def fig1() -> str:
    """Figure 1: the DMA / PIO / wire steps of each verb, as timelines."""
    sections = [
        _run_one("WRITE, inlined, unreliable, unsignaled"),
        _run_one("WRITE (signaled, RC)"),
        _run_one("READ"),
        _run_one("SEND/RECV (UD)"),
    ]
    header = (
        "fig1 — Steps involved in posting verbs\n"
        "(PIO spans are the CPU writing WQEs; dma spans are NIC-initiated\n"
        "transactions; wire spans include serialisation + propagation)\n"
    )
    return header + "\n\n".join(sections)
