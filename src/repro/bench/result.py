"""Results shared by every experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.report import RunReport
from repro.sim import LatencyRecorder, RateMeter


@dataclass
class RunResult:
    """Throughput and latency measured over one simulation window."""

    #: millions of operations per second over the measurement window
    mops: float
    #: operations completed inside the window
    ops: int
    #: latency summary in microseconds: mean/p5/p50/p95/p99
    latency: Dict[str, float]
    #: per-server-process Mops (Figure 14's per-core series)
    per_server_mops: List[float] = field(default_factory=list)
    #: free-form extra measurements (cache hit rates, noops, ...)
    extra: Dict[str, float] = field(default_factory=dict)
    #: full observability bundle, when the run was instrumented
    #: (``sim.metrics`` / ``sim.tracer``, e.g. under ``obs.capture``)
    report: Optional[RunReport] = None


def collect(
    meter: RateMeter,
    latencies: LatencyRecorder,
    window_ns: float,
    per_server: List[RateMeter] = (),
    report: Optional[RunReport] = None,
    **extra: float,
) -> RunResult:
    """Bundle meters into a :class:`RunResult`."""
    return RunResult(
        mops=meter.mops(),
        ops=meter.count,
        latency=latencies.summary(),
        per_server_mops=[m.mops() for m in per_server],
        extra=dict(extra),
        report=report,
    )
