"""Experiment harness: runners, figure definitions, report printing."""

from repro.bench.result import RunResult, collect

__all__ = ["RunResult", "collect"]
