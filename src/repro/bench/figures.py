"""Experiment definitions: one function per table/figure in the paper.

Every function returns a :class:`~repro.bench.report.FigureData` whose
series mirror the lines/bars of the original figure.  ``scale``
selects the sweep resolution: ``"bench"`` (fast, used by the pytest
benchmarks) or ``"full"`` (paper-resolution, used by the CLI).

The experiment-to-module index lives in DESIGN.md §3; measured-vs-paper
numbers live in EXPERIMENTS.md.
"""

from __future__ import annotations


from repro.baselines import (
    EchoCluster,
    EchoConfig,
    FarmCluster,
    FarmConfig,
    PilafCluster,
    PilafConfig,
)
from repro.bench.microbench import (
    alltoall_throughput,
    inbound_throughput,
    outbound_throughput,
    verb_latency,
)
from repro.bench.report import FigureData, Series, format_matrix
from repro.bench.result import RunResult
from repro.herd import HerdCluster, HerdConfig
from repro.hw import APT, SUSITNA, HardwareProfile
from repro.txn import QueueConfig, TxnCluster, TxnConfig, TxnQueueCluster, TxnReport
from repro.verbs import Opcode, Transport, transport_supports
from repro.workloads import Workload

KEY_BYTES = 16


# ---------------------------------------------------------------------------
# shared system runners
# ---------------------------------------------------------------------------


def run_herd(
    profile: HardwareProfile = APT,
    value_size: int = 32,
    get_fraction: float = 0.95,
    n_clients: int = 51,
    n_server_processes: int = 6,
    window: int = 4,
    distribution: str = "uniform",
    n_keys: int = 1 << 12,
    measure_ns: float = 150_000.0,
    seed: int = 0,
    n_client_machines: int = 17,
    prefetch: bool = True,
    index_entries: int = 2 ** 16,
    log_bytes: int = 1 << 22,
) -> RunResult:
    """One HERD measurement cell."""
    config = HerdConfig(
        n_server_processes=n_server_processes,
        window=window,
        prefetch=prefetch,
        index_entries=index_entries,
        log_bytes=log_bytes,
    )
    cluster = HerdCluster(
        config, profile, n_client_machines=max(n_client_machines, 1), seed=seed
    )
    cluster.add_clients(
        n_clients,
        Workload(
            get_fraction=get_fraction,
            value_size=value_size,
            n_keys=n_keys,
            distribution=distribution,
        ),
    )
    cluster.preload(range(min(n_keys, 1 << 20)), value_size)
    return cluster.run(warmup_ns=50_000.0, measure_ns=measure_ns)


def run_pilaf(
    profile: HardwareProfile = APT,
    value_size: int = 32,
    get_fraction: float = 0.95,
    n_clients: int = 51,
    n_server_processes: int = 6,
    measure_ns: float = 150_000.0,
) -> RunResult:
    return PilafCluster(
        PilafConfig(value_bytes=value_size, n_server_processes=n_server_processes),
        Workload(get_fraction=get_fraction, value_size=value_size),
        profile=profile,
        n_clients=n_clients,
    ).run(measure_ns=measure_ns)


def run_farm(
    profile: HardwareProfile = APT,
    value_size: int = 32,
    get_fraction: float = 0.95,
    inline_values: bool = True,
    n_clients: int = 51,
    n_server_processes: int = 6,
    measure_ns: float = 150_000.0,
) -> RunResult:
    return FarmCluster(
        FarmConfig(
            value_bytes=value_size,
            inline_values=inline_values,
            n_server_processes=n_server_processes,
        ),
        Workload(get_fraction=get_fraction, value_size=value_size),
        profile=profile,
        n_clients=n_clients,
    ).run(measure_ns=measure_ns)


def run_txn(
    dataplane: str = "rpc",
    profile: HardwareProfile = APT,
    n_clients: int = 24,
    n_client_machines: int = 6,
    n_partitions: int = 2,
    n_keys: int = 512,
    hot_fraction: float = 0.0,
    read_only_fraction: float = 0.5,
    measure_ns: float = 150_000.0,
    seed: int = 0,
) -> TxnReport:
    """One repro.txn measurement cell: commit throughput plus the audit.

    Raises ``ValueError`` (listing the valid choices) on an unknown
    ``dataplane`` — the same contract the lab axes rely on.
    """
    config = TxnConfig(
        dataplane=dataplane,
        n_partitions=n_partitions,
        n_keys=n_keys,
        hot_fraction=hot_fraction,
        read_only_fraction=read_only_fraction,
    )
    cluster = TxnCluster(
        config,
        profile=profile,
        n_clients=n_clients,
        n_client_machines=n_client_machines,
        seed=seed,
    )
    return cluster.run(measure_ns=measure_ns)


_SYSTEMS = {
    "HERD": lambda **kw: run_herd(**kw),
    "Pilaf-em-OPT": lambda **kw: run_pilaf(**kw),
    "FaRM-em": lambda **kw: run_farm(inline_values=True, **kw),
    "FaRM-em-VAR": lambda **kw: run_farm(inline_values=False, **kw),
}


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table1() -> str:
    """Table 1: operations supported by each transport type."""
    transports = [Transport.RC, Transport.UC, Transport.UD]
    ops = [Opcode.SEND, Opcode.WRITE, Opcode.READ]
    cells = [
        [
            "yes" if transport_supports(t, op) else "no"
            for t in transports
        ]
        for op in ops
    ]
    rows = ["SEND/RECV", "WRITE", "READ"]
    return format_matrix(
        "table1 — Operations supported by each transport type",
        rows,
        [t.value for t in transports],
        cells,
    )


def table2() -> str:
    """Table 2: cluster configurations the experiments model."""
    lines = ["table2 — Cluster configuration (modelled)"]
    for p in (APT, SUSITNA):
        lines.append(
            "%-8s link=%.0f Gbps (%s)  PCIe %.2f B/ns  inline<=%d  RTTwire=%d ns"
            % (
                p.name,
                p.link_bw * 8,
                "RoCE" if p.roce else "InfiniBand",
                p.pcie_bw,
                p.max_inline,
                p.wire_delay_ns * 2,
            )
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figures 2-7: microbenchmarks
# ---------------------------------------------------------------------------


def fig2(scale: str = "bench") -> FigureData:
    """Latency of verbs and ECHOs vs payload size."""
    payloads = [4, 16, 32, 64, 128, 256, 512, 1024]
    if scale == "bench":
        payloads = [4, 32, 64, 128, 256, 1024]
    series = []
    inline_limit = APT.max_inline
    for kind in ("WR-INLINE", "WRITE", "READ", "ECHO"):
        pts = []
        for size in payloads:
            if kind in ("WR-INLINE", "ECHO") and size > inline_limit:
                continue
            pts.append((size, verb_latency(kind, size)))
        series.append(Series(kind, pts))
    echo = next(s for s in series if s.label == "ECHO")
    series.append(Series("ECHO/2", [(x, y / 2.0) for x, y in echo.points]))
    return FigureData(
        "fig2", "Latency of verbs and ECHO operations", "payload (B)",
        "latency (us)", series,
        notes=["ECHO uses unsignaled inlined WRITEs; one-way ~ ECHO/2"],
    )


def fig3(scale: str = "bench") -> FigureData:
    """Inbound throughput: WRITE (UC/RC) vs READ (RC)."""
    payloads = [4, 32, 64, 128, 256, 512, 1024]
    if scale == "bench":
        payloads = [32, 128, 256, 1024]
    variants = [
        ("WRITE-UC", "WRITE", Transport.UC),
        ("READ-RC", "READ", Transport.RC),
        ("WRITE-RC", "WRITE", Transport.RC),
    ]
    series = [
        Series(
            label,
            [(p, inbound_throughput(verb, transport, p)) for p in payloads],
        )
        for label, verb, transport in variants
    ]
    return FigureData(
        "fig3", "Inbound verbs throughput", "payload (B)", "Mops", series
    )


def fig4(scale: str = "bench") -> FigureData:
    """Outbound throughput: inlined WRITE/SEND vs READ vs DMA'd WRITE."""
    payloads = [4, 16, 32, 60, 128, 192, 256]
    if scale == "bench":
        payloads = [16, 32, 60, 128, 256]
    series = [
        Series(
            label, [(p, outbound_throughput(label, p)) for p in payloads]
        )
        for label in ("WR-INLINE", "SEND-UD", "WRITE-UC", "READ-RC")
    ]
    return FigureData(
        "fig4", "Outbound verbs throughput", "payload (B)", "Mops", series,
        notes=["WR-INLINE steps down at 64 B write-combining boundaries"],
    )


def fig5(scale: str = "bench") -> FigureData:
    """ECHO throughput by verb pair and optimization level (32 B)."""
    n_clients = 48 if scale != "bench" else 36
    levels = ("basic", "+unreliable", "+unsignaled", "+inlined")
    series = []
    for name, preset in (
        ("SEND/SEND", EchoConfig.send_send()),
        ("WR/WR", EchoConfig.wr_wr()),
        ("WR/SEND", EchoConfig.wr_send()),
    ):
        pts = []
        for level in levels:
            cluster = EchoCluster(
                preset.at_optimization_level(level),
                n_clients=n_clients,
                n_client_machines=12,
            )
            pts.append((level, cluster.run().mops))
        series.append(Series(name, pts))
    return FigureData(
        "fig5", "ECHO throughput, 32 B messages", "optimizations",
        "Mops", series,
        notes=["WR/SEND responses travel over UD (HERD's hybrid)"],
    )


def fig6(scale: str = "bench") -> FigureData:
    """All-to-all scaling of UC WRITEs vs UD SENDs (32 B)."""
    ns = [2, 4, 8, 12, 16] if scale != "bench" else [4, 8, 16]
    series = [
        Series(mode, [(n, alltoall_throughput(mode, n)) for n in ns])
        for mode in ("in-write-uc", "out-write-uc", "out-send-ud")
    ]
    return FigureData(
        "fig6", "All-to-all communication, 32 B", "client processes (=server processes)",
        "Mops", series,
        notes=["out-write-uc collapses once N^2 requester contexts thrash the NIC cache"],
    )


def fig7(scale: str = "bench") -> FigureData:
    """Effect of prefetching on an echo server doing N memory accesses."""
    cores = [1, 2, 3, 4, 5]
    if scale == "bench":
        cores = [1, 3, 5]
    series = []
    for accesses in (2, 8):
        for prefetch in (False, True):
            label = "N=%d, %s" % (accesses, "prefetch" if prefetch else "no prefetch")
            pts = []
            for n_cores in cores:
                cluster = EchoCluster(
                    EchoConfig.wr_send(
                        memory_accesses=accesses,
                        prefetch=prefetch,
                        n_server_processes=n_cores,
                        window=8,
                    ),
                    n_clients=48,
                    n_client_machines=16,
                )
                pts.append((n_cores, cluster.run().mops))
            series.append(Series(label, pts))
    return FigureData(
        "fig7", "Effect of prefetching on throughput", "CPU cores", "Mops", series
    )


# ---------------------------------------------------------------------------
# Figures 9-14: end-to-end evaluation
# ---------------------------------------------------------------------------


def fig9(scale: str = "bench") -> FigureData:
    """End-to-end throughput, 48 B items, by PUT fraction and cluster."""
    profiles = [APT] if scale == "bench" else [APT, SUSITNA]
    mixes = [(0.95, "5% PUT"), (0.50, "50% PUT"), (0.0, "100% PUT")]
    series = []
    for profile in profiles:
        for name, runner in _SYSTEMS.items():
            label = name if profile is APT else "%s (%s)" % (name, profile.name)
            pts = []
            for get_fraction, mix_label in mixes:
                result = runner(
                    profile=profile, value_size=32, get_fraction=get_fraction
                )
                pts.append((mix_label, result.mops))
            series.append(Series(label, pts))
    return FigureData(
        "fig9", "End-to-end throughput, 48 B items", "PUT fraction", "Mops", series
    )


def fig10(scale: str = "bench") -> FigureData:
    """Throughput vs value size, read-intensive workload."""
    sizes = [4, 8, 16, 32, 64, 128, 256, 512, 1024]
    profiles = [APT]
    if scale == "bench":
        sizes = [4, 16, 32, 64, 128, 256, 1024]
    else:
        profiles = [APT, SUSITNA]
    series = []
    for profile in profiles:
        for name, runner in _SYSTEMS.items():
            label = name if profile is APT else "%s (%s)" % (name, profile.name)
            pts = []
            for size in sizes:
                # HERD's 1 KB request slots hold at most 1000 value
                # bytes alongside the LEN + keyhash trailer.
                run_size = min(size, 1000) if name == "HERD" else size
                result = runner(profile=profile, value_size=run_size, get_fraction=0.95)
                pts.append((size, result.mops))
            series.append(Series(label, pts))
    return FigureData(
        "fig10", "Throughput vs value size (95% GET)", "value size (B)",
        "Mops", series,
        notes=["HERD switches to non-inlined responses at %d B on Apt" % APT.herd_inline_cutoff],
    )


def fig11(scale: str = "bench") -> FigureData:
    """Latency vs throughput, 48 B items, read-intensive."""
    client_counts = [2, 6, 12, 24, 36, 51]
    if scale == "bench":
        client_counts = [2, 12, 36, 51]
    series = []
    notes = []
    for name, runner in _SYSTEMS.items():
        tput = []
        lat = []
        last = None
        for n in client_counts:
            result = runner(value_size=32, get_fraction=0.95, n_clients=n)
            tput.append((n, result.mops))
            lat.append((n, result.latency["mean_us"]))
            last = result
        series.append(Series("%s Mops" % name, tput))
        series.append(Series("%s lat_us" % name, lat))
        # The paper's error bars: 5th and 95th percentile at peak load.
        notes.append(
            "%s at peak: p5 %.1f / p95 %.1f us"
            % (name, last.latency["p5_us"], last.latency["p95_us"])
        )
    return FigureData(
        "fig11", "Latency vs throughput (load via client count)",
        "client processes", "Mops / us", series, notes=notes,
    )


def fig12(scale: str = "bench") -> FigureData:
    """HERD throughput vs number of client processes, window 4 and 16."""
    counts = [60, 140, 220, 260, 300, 380, 460]
    if scale == "bench":
        counts = [100, 260, 340, 460]
    series = []
    for window in (4, 16):
        pts = []
        for n in counts:
            result = run_herd(
                n_clients=n,
                window=window,
                n_client_machines=93,
                measure_ns=120_000.0,
                seed=window,
            )
            pts.append((n, result.mops))
        series.append(Series("WS=%d" % window, pts))
    return FigureData(
        "fig12", "HERD scalability with client count (16 B keys, 32 B values)",
        "client processes", "Mops", series,
        notes=["decline past ~260 clients: responder QP contexts overflow NIC SRAM"],
    )


def fig13(scale: str = "bench") -> FigureData:
    """Throughput vs server CPU cores: HERD vs baseline PUT handling."""
    cores = [1, 2, 3, 4, 5, 6, 7]
    if scale == "bench":
        cores = [1, 3, 5, 6]
    series = []
    herd_pts = []
    pilaf_pts = []
    farm_pts = []
    for n_cores in cores:
        herd_pts.append(
            (n_cores, run_herd(get_fraction=0.0, n_server_processes=n_cores).mops)
        )
        pilaf_pts.append(
            (n_cores, run_pilaf(get_fraction=0.0, n_server_processes=n_cores).mops)
        )
        farm_pts.append(
            (
                n_cores,
                run_farm(
                    get_fraction=0.0, inline_values=True, n_server_processes=n_cores
                ).mops,
            )
        )
    series.append(Series("HERD", herd_pts))
    series.append(Series("Pilaf-em-OPT (PUT)", pilaf_pts))
    series.append(Series("FaRM-em (PUT)", farm_pts))
    # Section 5.6's other half: client-side CPU per GET, which the
    # READ-based designs pay instead of server cycles.
    from repro.analysis import BottleneckModel

    model = BottleneckModel()
    notes = [
        "client CPU per GET (ns): "
        + ", ".join(
            "%s %.0f" % (system, model.client_cpu_ns_per_op(system, get_fraction=1.0))
            for system in ("HERD", "Pilaf", "FaRM", "FaRM-VAR")
        )
    ]
    return FigureData(
        "fig13", "Throughput vs server CPU cores (48 B items)", "CPU cores",
        "Mops", series, notes=notes,
    )


def fig14(scale: str = "bench") -> FigureData:
    """Per-core throughput under Zipf(.99) vs uniform workloads."""
    n_keys = 1 << 20
    series = []
    for dist, label in (("zipfian", "Zipf (.99)"), ("uniform", "Uniform")):
        result = run_herd(
            get_fraction=0.95,
            value_size=32,
            distribution=dist,
            n_keys=n_keys,
            measure_ns=200_000.0,
            index_entries=2 ** 18,
            log_bytes=1 << 24,
        )
        pts = [
            (core + 1, mops) for core, mops in enumerate(result.per_server_mops)
        ]
        series.append(Series(label, pts))
    return FigureData(
        "fig14", "Per-core throughput, skewed vs uniform", "core id",
        "Mops", series,
        notes=["scrambled Zipf keys spread hot items across EREW partitions"],
    )


def figtxn(scale: str = "bench") -> FigureData:
    """Multi-key txn commit throughput: RPC vs one-sided vs contention.

    The transactional sequel to the paper's HERD-vs-Pilaf/FaRM
    comparison: the same RPC-vs-one-sided design axis, but for commits.
    Each cell's history passes the strict-serializability checker; a
    violation raises instead of plotting a wrong number.
    """
    hots = [0.0, 0.6, 0.9] if scale == "bench" else [0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9]
    measure = 120_000.0 if scale == "bench" else 200_000.0
    series = []
    notes = []
    for dataplane, label in (("rpc", "RPC (2PC)"), ("onesided", "one-sided (CAS)")):
        pts = []
        aborts = []
        for hot in hots:
            report = run_txn(dataplane=dataplane, hot_fraction=hot, measure_ns=measure)
            if not report.ok:
                raise RuntimeError(
                    "txn audit failed for %s@hot=%.2f: %s"
                    % (dataplane, hot, report.violation or "torn writes")
                )
            pts.append((hot, report.result.mops))
            aborts.append(report.abort_rate)
        series.append(Series(label, pts))
        notes.append(
            "%s abort rate: %s" % (label, ", ".join("%.2f" % a for a in aborts))
        )
    notes.append("every cell checker-verified strictly serializable")
    notes.append("hot keys share one partition: RPC one-shots them, CAS retries")
    return FigureData(
        "figtxn", "Txn commit throughput vs contention", "hot fraction",
        "commit Mops", series, notes=notes,
    )


def figtxnq(scale: str = "bench") -> FigureData:
    """Remote FIFO queue: server RPC vs one-sided CAS/FAA tickets.

    The 'remote data structure' half of the txn subsystem.  One-sided
    ops spend multiple RTTs and contended CAS retries; the FAA mode
    shows a fetch-style primitive never losing the ticket race.
    """
    ops = 40 if scale == "bench" else 120
    series_pts = []
    notes = []
    for dataplane, mode, label in (
        ("rpc", "cas", "RPC"),
        ("onesided", "cas", "one-sided CAS"),
        ("onesided", "faa", "one-sided FAA"),
    ):
        report = TxnQueueCluster(
            QueueConfig(dataplane=dataplane, ticket_mode=mode, ops_per_client=ops),
            seed=0,
        ).run()
        if not report.ok:
            raise RuntimeError("queue audit failed: %s" % report.violations)
        series_pts.append((label, report.result.mops))
        notes.append(
            "%s: %d enq / %d deq, ticket retries %d+%d"
            % (label, report.enqueued, report.dequeued,
               report.enq_retries, report.deq_retries)
        )
    return FigureData(
        "figtxnq", "Remote FIFO queue throughput by dataplane", "design",
        "Mops", [Series("queue ops", series_pts)], notes=notes,
    )


#: every reproducible experiment, for the CLI
FIGURES = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "figtxn": figtxn,
    "figtxnq": figtxnq,
}

def fig1() -> str:
    """Figure 1: verb timelines (delegates to the tracer module)."""
    from repro.bench.trace import fig1 as trace_fig1

    return trace_fig1()


TABLES = {"table1": table1, "table2": table2, "fig1": fig1}
