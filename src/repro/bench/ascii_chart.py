"""Terminal charts for reproduced figures.

Tables carry the numbers; these charts carry the *shapes* — which is
what the reproduction is about.  Numeric-x figures render as line
charts (x positions use the sample index, since the paper's sweeps are
log-spaced); categorical-x figures render as grouped horizontal bars.
"""

from __future__ import annotations

from typing import List

from repro.bench.report import FigureData

#: plotting glyphs, one per series
GLYPHS = "*o+x#@%&"


def _is_numeric(fig: FigureData) -> bool:
    return all(
        isinstance(x, (int, float))
        for series in fig.series
        for x, _y in series.points
    )


def chart(fig: FigureData, width: int = 64, height: int = 16) -> str:
    """Render the figure as a line chart or grouped bars."""
    if _is_numeric(fig):
        return _line_chart(fig, width, height)
    return _bar_chart(fig, width)


def _line_chart(fig: FigureData, width: int, height: int) -> str:
    xs: List[float] = []
    for series in fig.series:
        for x, _y in series.points:
            if x not in xs:
                xs.append(x)
    xs.sort()
    y_max = max(y for s in fig.series for _x, y in s.points)
    if y_max <= 0:
        y_max = 1.0
    grid = [[" "] * width for _ in range(height)]

    def col_of(x: float) -> int:
        return round(xs.index(x) / max(1, len(xs) - 1) * (width - 1))

    def row_of(y: float) -> int:
        return (height - 1) - round(y / y_max * (height - 1))

    for index, series in enumerate(fig.series):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in series.points:
            grid[row_of(y)][col_of(x)] = glyph

    lines = ["%s — %s" % (fig.exp_id, fig.title)]
    for r, row in enumerate(grid):
        y_label = y_max * (height - 1 - r) / (height - 1)
        lines.append("%8.1f |%s" % (y_label, "".join(row)))
    lines.append(" " * 9 + "+" + "-" * width)
    first, last = xs[0], xs[-1]
    axis = "%-*s%s" % (width // 2, str(first), str(last))
    lines.append(" " * 10 + axis)
    lines.append(" " * 10 + "%s (%s)" % (fig.x_label, fig.y_label))
    for index, series in enumerate(fig.series):
        lines.append(
            " " * 10 + "%s = %s" % (GLYPHS[index % len(GLYPHS)], series.label)
        )
    return "\n".join(lines)


def _bar_chart(fig: FigureData, width: int) -> str:
    y_max = max(y for s in fig.series for _x, y in s.points)
    if y_max <= 0:
        y_max = 1.0
    label_width = max(
        [len(str(s.label)) for s in fig.series]
        + [len(str(x)) for s in fig.series for x, _ in s.points]
    )
    bar_width = max(8, width - label_width - 12)
    xs: List[object] = []
    for series in fig.series:
        for x, _y in series.points:
            if x not in xs:
                xs.append(x)
    lines = ["%s — %s" % (fig.exp_id, fig.title)]
    for x in xs:
        lines.append(str(x))
        for series in fig.series:
            try:
                y = series.y_for(x)
            except KeyError:
                continue
            bar = "#" * max(1, round(y / y_max * bar_width))
            lines.append(
                "  %-*s %s %.2f" % (label_width, series.label, bar, y)
            )
    lines.append("(%s)" % fig.y_label)
    return "\n".join(lines)
