"""Plain-text rendering of reproduced figures and tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass
class Series:
    """One line/bar group of a figure."""

    label: str
    #: (x, y) pairs; x may be a number or a category string
    points: List[Tuple[object, float]]

    def _index(self) -> dict:
        """x -> y, first occurrence winning; rebuilt if points changed."""
        cached = self.__dict__.get("_by_x")
        if cached is not None and cached[0] == len(self.points):
            return cached[1]
        by_x: dict = {}
        for px, py in self.points:
            by_x.setdefault(px, py)
        self.__dict__["_by_x"] = (len(self.points), by_x)
        return by_x

    def y_for(self, x: object) -> float:
        try:
            return self._index()[x]
        except KeyError:
            raise KeyError("no point at x=%r in series %r" % (x, self.label))
        except TypeError:  # unhashable x: nothing in points can match it
            raise KeyError("no point at x=%r in series %r" % (x, self.label))


@dataclass
class FigureData:
    """A reproduced figure: everything needed to print and check it."""

    exp_id: str          # e.g. "fig10"
    title: str
    x_label: str
    y_label: str
    series: List[Series]
    notes: List[str] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError("no series %r in %s" % (label, self.exp_id))


def format_figure(fig: FigureData, width: int = 10) -> str:
    """Render a figure as an aligned text table (x rows, series columns)."""
    # dict preserves first-seen order and makes the collection O(points)
    # rather than O(points^2); full-scale sweeps render many x values
    xs = list(
        dict.fromkeys(x for s in fig.series for x, _y in s.points)
    )
    lines = []
    lines.append("%s — %s" % (fig.exp_id, fig.title))
    header = ("%-14s" % fig.x_label) + "".join(
        "%*s" % (max(width, len(s.label) + 2), s.label) for s in fig.series
    )
    lines.append(header)
    lines.append("-" * len(header))
    for x in xs:
        row = "%-14s" % (x,)
        for s in fig.series:
            col_width = max(width, len(s.label) + 2)
            try:
                row += "%*.2f" % (col_width, s.y_for(x))
            except KeyError:
                row += "%*s" % (col_width, "-")
        lines.append(row)
    for note in fig.notes:
        lines.append("note: %s" % note)
    lines.append("(%s axis: %s)" % (fig.exp_id, fig.y_label))
    return "\n".join(lines)


def format_matrix(title: str, rows: Sequence[str], cols: Sequence[str], cells) -> str:
    """Render a capability matrix (Table 1 style); cells[r][c] is str."""
    lines = [title]
    header = "%-12s" % "" + "".join("%8s" % c for c in cols)
    lines.append(header)
    lines.append("-" * len(header))
    for i, row_name in enumerate(rows):
        lines.append("%-12s" % row_name + "".join("%8s" % cells[i][j] for j in range(len(cols))))
    return "\n".join(lines)
