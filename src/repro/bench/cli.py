"""``herd-bench``: regenerate any of the paper's tables and figures.

Examples::

    herd-bench --list
    herd-bench fig10
    herd-bench fig5 fig6 --scale full
    herd-bench all --scale bench
    herd-bench fig9 --metrics m.json --trace t.trace.json
    herd-bench --chaos --chaos-seed 7 --chaos-runs 3 --metrics m.json
    herd-bench --nemesis 24 --nemesis-dir repros/
    herd-bench --nemesis-replay repros/nemesis-ha-seed42.json
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import List

from repro.bench.figures import FIGURES, TABLES
from repro.bench.report import format_figure


def resolve_experiments(requested: List[str]) -> List[str]:
    """Validate the requested ids up front and expand ``all`` anywhere.

    Raises ``ValueError`` naming every unknown id, so a typo cannot
    burn minutes of sweep time before failing (``herd-bench fig5
    fig99`` used to run fig5 and *then* exit 2), and ``all`` works in
    any position, not just as the sole argument.
    """
    known = set(TABLES) | set(FIGURES)
    unknown = sorted(set(exp for exp in requested if exp != "all") - known)
    if unknown:
        raise ValueError(
            "unknown experiment%s %s (try --list)"
            % ("s" if len(unknown) > 1 else "", ", ".join(map(repr, unknown)))
        )
    resolved: List[str] = []
    for exp in requested:
        expansion = sorted(TABLES) + sorted(FIGURES) if exp == "all" else [exp]
        for item in expansion:
            if item not in resolved:
                resolved.append(item)
    return resolved


def _describe(fn) -> str:
    """The first docstring line, as the experiment's one-line summary."""
    doc = (fn.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def _list_experiments() -> int:
    """``herd-bench --list``: every valid id with what it reproduces."""
    print("tables:")
    for exp_id in sorted(TABLES):
        print("  %-8s %s" % (exp_id, _describe(TABLES[exp_id])))
    print("figures:")
    for exp_id in sorted(FIGURES):
        print("  %-8s %s" % (exp_id, _describe(FIGURES[exp_id])))
    print("(or 'all'; sweeps of these run under herd-lab, see docs/LAB.md)")
    return 0


def _outcome_table(rows) -> str:
    """The per-scenario outcome table printed after ``--chaos`` runs."""
    header = (
        "scenario", "seed", "acked", "lost", "availability", "p99.9_us",
        "checker", "verdict",
    )
    cells = [header] + [
        (
            str(row["scenario"]),
            str(row["seed"]),
            str(row["ops_acked"]),
            str(row["ops_lost"]),
            "%.4f" % row["availability"],
            "%.1f" % row["p999_us"],
            str(row["checker"]),
            str(row["verdict"]),
        )
        for row in rows
    ]
    widths = [max(len(r[c]) for r in cells) for c in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in cells
    )


def _run_chaos(args) -> int:
    """``herd-bench --chaos``: seeded chaos runs with invariant checks."""
    from repro.faults import run_chaos
    from repro.faults.chaos import SCENARIOS

    if args.chaos_scenario == "list":
        print("chaos scenarios:")
        for name, blurb in SCENARIOS.items():
            print("  %-18s %s" % (name, blurb))
        print("(or 'all'; default: classic unreplicated chaos)")
        return 0
    if args.chaos_scenario == "all":
        scenarios = list(SCENARIOS)
    elif args.chaos_scenario:
        if args.chaos_scenario not in SCENARIOS:
            print(
                "unknown chaos scenario %r (try --chaos-scenario list)"
                % args.chaos_scenario
            )
            return 2
        scenarios = [args.chaos_scenario]
    else:
        scenarios = [None]

    session = None
    failures = 0
    rows = []
    with contextlib.ExitStack() as stack:
        if args.metrics or args.trace:
            from repro.obs import session as obs

            session = stack.enter_context(
                obs.capture(
                    metrics=args.metrics is not None,
                    trace=args.trace is not None,
                    trace_limit=args.trace_limit or obs.DEFAULT_TRACE_EVENTS,
                )
            )
        for i in range(args.chaos_runs):
            seed = args.chaos_seed + i
            for scenario in scenarios:
                if session is not None:
                    session.label = "chaos-%d" % seed
                    if scenario:
                        session.label += "-" + scenario
                started = time.time()
                report = run_chaos(
                    seed=seed,
                    horizon_ns=args.chaos_horizon,
                    intensity=args.chaos_intensity,
                    scenario=scenario,
                    replication_factor=args.chaos_replication,
                    ack_policy=args.chaos_ack,
                )
                print(report.summary())
                print(
                    "[chaos seed=%d took %.1f s]\n" % (seed, time.time() - started)
                )
                rows.append(report.outcome_row())
                if not report.ok:
                    failures += 1
    if len(rows) > 1 or scenarios != [None]:
        print(_outcome_table(rows))
        print()
    if session is not None:
        if args.metrics:
            session.write_metrics(args.metrics)
            print("metrics: %s (%d runs)" % (args.metrics, len(session.runs)))
        if args.trace:
            if args.trace.endswith(".jsonl"):
                session.write_trace_jsonl(args.trace)
            else:
                session.write_trace(args.trace)
            print("trace: %s" % args.trace)
    if failures:
        print(
            "%d of %d chaos runs violated invariants" % (failures, len(rows)),
            file=sys.stderr,
        )
        return 1
    return 0


def _run_nemesis(args) -> int:
    """``herd-bench --nemesis N``: randomized schedule search.

    Exit status 1 means the search found violations (artifacts, if a
    directory was given, hold the shrunk reproducers) — on a healthy
    tree a nemesis search is expected to exit 0.
    """
    from repro.nemesis import DATAPLANE_NAMES, search

    dataplanes = None
    if args.nemesis_dataplanes:
        dataplanes = tuple(
            name.strip() for name in args.nemesis_dataplanes.split(",") if name.strip()
        )
        unknown = sorted(set(dataplanes) - set(DATAPLANE_NAMES))
        if unknown:
            print(
                "unknown dataplane%s %s (have: %s)"
                % (
                    "s" if len(unknown) > 1 else "",
                    ", ".join(map(repr, unknown)),
                    ", ".join(DATAPLANE_NAMES),
                ),
                file=sys.stderr,
            )
            return 2
    started = time.time()
    report = search(
        args.nemesis,
        seed=args.nemesis_seed,
        dataplanes=dataplanes,
        oracles=tuple(args.nemesis_oracle or ()),
        artifact_dir=args.nemesis_dir,
        progress=print,
    )
    print(report.summary())
    print("[nemesis search took %.1f s]" % (time.time() - started))
    return 0 if report.ok else 1


def _run_nemesis_replay(args) -> int:
    """``herd-bench --nemesis-replay PATH``: re-run a repro artifact.

    Exit status 0 means the artifact reproduced byte-identically —
    same violations, same fingerprint.
    """
    from repro.nemesis import replay

    try:
        result = replay(args.nemesis_replay)
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(result.summary())
    return 0 if result.reproduced else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="herd-bench",
        description="Reproduce the tables and figures of "
        "'Using RDMA Efficiently for Key-Value Services' (SIGCOMM 2014).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (fig2..fig14, table1, table2) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=("bench", "full"),
        default="bench",
        help="sweep resolution: bench (fast) or full (paper resolution)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each figure as a terminal chart",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write per-run metrics (station utilization, queue-delay "
        "histograms, op counters) as JSON to PATH",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write hardware-station spans to PATH: Chrome trace-event "
        "JSON (load via chrome://tracing), or JSON lines if PATH ends "
        "in .jsonl",
    )
    parser.add_argument(
        "--trace-limit",
        type=int,
        default=None,
        metavar="N",
        help="bound each run's trace ring buffer to the last N events",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the fault-injection chaos harness instead of an "
        "experiment: a randomized (but seeded) mix of loss, corruption, "
        "duplication, reordering, NIC stalls, RNR, and a server-process "
        "crash, with end-to-end safety invariants checked afterwards",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        metavar="N",
        help="base seed for the chaos runs (default 0)",
    )
    parser.add_argument(
        "--chaos-runs",
        type=int,
        default=1,
        metavar="K",
        help="number of chaos runs, seeded N, N+1, ... (default 1)",
    )
    parser.add_argument(
        "--chaos-horizon",
        type=float,
        default=300_000.0,
        metavar="NS",
        help="fault horizon per run in simulated ns (default 300000)",
    )
    parser.add_argument(
        "--chaos-intensity",
        type=float,
        default=1.0,
        metavar="X",
        help="scale factor on the randomized fault rates (default 1.0)",
    )
    parser.add_argument(
        "--chaos-scenario",
        default=None,
        metavar="S",
        help="run a named fault scenario: replicated (HA) failover or "
        "open-loop overload (repro.qos) ('list' prints them; 'all' runs "
        "every one; default: classic unreplicated chaos); the invariant "
        "checks gate the result and a per-scenario outcome table is "
        "printed",
    )
    parser.add_argument(
        "--chaos-replication",
        type=int,
        default=3,
        metavar="RF",
        help="replicas per partition for --chaos-scenario runs (default 3)",
    )
    parser.add_argument(
        "--chaos-ack",
        choices=("all", "majority"),
        default="majority",
        help="replication ack policy for --chaos-scenario runs "
        "(default majority)",
    )
    parser.add_argument(
        "--nemesis",
        type=int,
        default=None,
        metavar="N",
        help="search N randomized fault schedules across the dataplanes "
        "(repro.nemesis): every failure is shrunk to a minimal "
        "reproducer; exit 1 if any invariant was violated",
    )
    parser.add_argument(
        "--nemesis-seed",
        type=int,
        default=0,
        metavar="S",
        help="base seed for the nemesis search (default 0)",
    )
    parser.add_argument(
        "--nemesis-dataplanes",
        default=None,
        metavar="A,B,...",
        help="comma-separated dataplanes to torture (default: all of "
        "herd, ha, elastic, qos, txn-rpc, txn-onesided)",
    )
    parser.add_argument(
        "--nemesis-oracle",
        action="append",
        metavar="NAME",
        help="layer a named extra oracle over the invariant suite "
        "(repeatable; e.g. planted-no-crash, the planted-bug arm)",
    )
    parser.add_argument(
        "--nemesis-dir",
        default=None,
        metavar="DIR",
        help="write each failure's shrunk repro artifact (JSON) here",
    )
    parser.add_argument(
        "--nemesis-replay",
        default=None,
        metavar="PATH",
        help="re-run a nemesis repro artifact and verify it reproduces "
        "byte-identically (exit 0 iff it does)",
    )
    args = parser.parse_args(argv)

    if args.nemesis_replay is not None:
        return _run_nemesis_replay(args)
    if args.nemesis is not None:
        return _run_nemesis(args)
    if args.chaos:
        return _run_chaos(args)

    if args.list or not args.experiments:
        return _list_experiments()

    try:
        wanted = resolve_experiments(args.experiments)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    # Fail on unwritable output paths *before* burning sweep time.
    for path in (args.metrics, args.trace):
        if path is None:
            continue
        try:
            with open(path, "w"):
                pass
        except OSError as error:
            print("cannot write %s: %s" % (path, error), file=sys.stderr)
            return 2

    session = None
    with contextlib.ExitStack() as stack:
        if args.metrics or args.trace:
            from repro.obs import session as obs

            session = stack.enter_context(
                obs.capture(
                    metrics=args.metrics is not None,
                    trace=args.trace is not None,
                    trace_limit=args.trace_limit or obs.DEFAULT_TRACE_EVENTS,
                )
            )
        for exp in wanted:
            if session is not None:
                session.label = exp
            started = time.time()
            if exp in TABLES:
                print(TABLES[exp]())
            else:
                data = FIGURES[exp](scale=args.scale)
                print(format_figure(data))
                if args.chart:
                    from repro.bench.ascii_chart import chart

                    print()
                    print(chart(data))
            print("[%s took %.1f s]\n" % (exp, time.time() - started))

    if session is not None:
        if args.metrics:
            session.write_metrics(args.metrics)
            print("metrics: %s (%d runs)" % (args.metrics, len(session.runs)))
        if args.trace:
            if args.trace.endswith(".jsonl"):
                session.write_trace_jsonl(args.trace)
            else:
                session.write_trace(args.trace)
            print("trace: %s" % args.trace)
    return 0


if __name__ == "__main__":
    sys.exit(main())
