"""``herd-bench``: regenerate any of the paper's tables and figures.

Examples::

    herd-bench --list
    herd-bench fig10
    herd-bench fig5 fig6 --scale full
    herd-bench all --scale bench
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import FIGURES, TABLES
from repro.bench.report import format_figure


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="herd-bench",
        description="Reproduce the tables and figures of "
        "'Using RDMA Efficiently for Key-Value Services' (SIGCOMM 2014).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (fig2..fig14, table1, table2) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=("bench", "full"),
        default="bench",
        help="sweep resolution: bench (fast) or full (paper resolution)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each figure as a terminal chart",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("tables:  " + "  ".join(sorted(TABLES)))
        print("figures: " + "  ".join(sorted(FIGURES)))
        return 0

    wanted = args.experiments
    if wanted == ["all"]:
        wanted = sorted(TABLES) + sorted(FIGURES)

    for exp in wanted:
        started = time.time()
        if exp in TABLES:
            print(TABLES[exp]())
        elif exp in FIGURES:
            data = FIGURES[exp](scale=args.scale)
            print(format_figure(data))
            if args.chart:
                from repro.bench.ascii_chart import chart

                print()
                print(chart(data))
        else:
            print("unknown experiment %r (try --list)" % exp, file=sys.stderr)
            return 2
        print("[%s took %.1f s]\n" % (exp, time.time() - started))
    return 0


if __name__ == "__main__":
    sys.exit(main())
