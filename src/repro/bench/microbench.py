"""Raw verbs microbenchmarks (Figures 2, 3, 4, and 6).

These reproduce Section 3's measurements: latency of individual verbs,
inbound and outbound verb throughput versus payload size, and the
all-to-all connection-scaling experiment that motivates UD responses.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from repro.hw import APT, Fabric, HardwareProfile, Machine
from repro.sim import Event, RateMeter, Simulator
from repro.verbs import (
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
    connect_pair,
)

_WARM_NS = 40_000.0
_MEASURE_NS = 160_000.0


def _window_poster(
    device: RdmaDevice,
    qp,
    make_wr,
    window: int,
    signal_every: int,
) -> Generator[Event, None, None]:
    """Keep ``window`` verbs outstanding, signalling every S-th one.

    This is the paper's methodology for throughput experiments
    (Section 3.1): a window of outstanding verbs per queue, paced by
    the completions of the selectively-signaled ones.
    """
    sim = device.sim
    p = device.profile
    outstanding = 0
    since_signal = 0
    while True:
        while outstanding < window:
            since_signal += 1
            signaled = since_signal >= signal_every
            if signaled:
                since_signal = 0
            yield from device.post_send_timed(qp, make_wr(signaled))
            outstanding += 1
        yield qp.send_cq.pop()
        yield sim.timeout(p.cq_poll_ns)
        outstanding -= signal_every


def _read_poster(device, qp, make_wr, window: int) -> Generator[Event, None, None]:
    """READs are always signaled; pace one-for-one."""
    sim = device.sim
    p = device.profile
    for _ in range(window):
        yield from device.post_send_timed(qp, make_wr(True))
    while True:
        yield qp.send_cq.pop()
        yield sim.timeout(p.cq_poll_ns)
        yield from device.post_send_timed(qp, make_wr(True))


# ---------------------------------------------------------------------------
# Figure 3: inbound throughput
# ---------------------------------------------------------------------------


def inbound_throughput(
    verb: str,
    transport: Transport,
    payload: int,
    n_clients: int = 8,
    window: int = 16,
    profile: HardwareProfile = APT,
) -> float:
    """Mops of ``verb`` that ``n_clients`` machines can issue to one
    server (Figure 3's setup: client process i -> server process i)."""
    sim = Simulator()
    fabric = Fabric(sim, profile)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    meter = RateMeter(_WARM_NS, _WARM_NS + _MEASURE_NS)
    server.write_done_hook = lambda pkt: meter.record(sim.now)
    server.read_served_hook = lambda pkt: meter.record(sim.now)
    target = server.register_memory(1 << 20)
    data = b"x" * payload
    for i in range(n_clients):
        client = RdmaDevice(Machine(sim, fabric, "c%d" % i))
        sink = client.register_memory(1 << 20)
        _sqp, cqp = connect_pair(server, client, transport)

        if verb == "WRITE":
            inline = payload <= profile.max_inline

            def make_wr(signaled, _sink=sink):
                return WorkRequest.write(
                    raddr=target.addr, rkey=target.rkey,
                    payload=data if inline else None,
                    local=None if inline else (_sink, 0, payload),
                    inline=inline, signaled=signaled,
                )

            sim.process(_window_poster(client, cqp, make_wr, window, 4))
        elif verb == "READ":

            def make_wr(signaled, _sink=sink):
                return WorkRequest.read(
                    raddr=target.addr, rkey=target.rkey, local=(_sink, 0, payload)
                )

            sim.process(_read_poster(client, cqp, make_wr, min(window, 16)))
        else:
            raise ValueError("inbound verb must be WRITE or READ")
    sim.run(until=_WARM_NS + _MEASURE_NS)
    return meter.mops()


# ---------------------------------------------------------------------------
# Figure 4: outbound throughput
# ---------------------------------------------------------------------------


def outbound_throughput(
    verb: str,
    payload: int,
    inline: Optional[bool] = None,
    n_remotes: int = 8,
    window: int = 16,
    profile: HardwareProfile = APT,
) -> float:
    """Mops one machine can issue outward (Figure 4's setup: server
    process i -> client machine i).

    ``verb`` is one of ``WR-INLINE`` (WRITE over UC, inlined),
    ``WRITE-UC`` (not inlined), ``SEND-UD`` (inlined), ``READ-RC``.
    """
    sim = Simulator()
    fabric = Fabric(sim, profile)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    end = _WARM_NS + _MEASURE_NS
    meter = RateMeter(_WARM_NS, end)
    data = b"y" * payload
    staging = server.register_memory(max(payload, 64) * 2)
    staging.write(0, data)
    for i in range(n_remotes):
        client = RdmaDevice(Machine(sim, fabric, "c%d" % i))
        client.write_done_hook = lambda pkt: meter.record(sim.now)
        client.send_done_hook = lambda pkt: meter.record(sim.now)
        target = client.register_memory(1 << 20)

        if verb in ("WR-INLINE", "WRITE-UC"):
            use_inline = verb == "WR-INLINE" if inline is None else inline
            sqp, _cqp = connect_pair(server, client, Transport.UC)

            def make_wr(signaled, _target=target, _inline=use_inline):
                return WorkRequest.write(
                    raddr=_target.addr, rkey=_target.rkey,
                    payload=data if _inline else None,
                    local=None if _inline else (staging, 0, payload),
                    inline=_inline, signaled=signaled,
                )

            sim.process(_window_poster(server, sqp, make_wr, window, 4))
        elif verb == "SEND-UD":
            server_qp = server.create_qp(Transport.UD)
            client_qp = client.create_qp(Transport.UD)
            recv_mr = client.register_memory(1 << 20)
            # Clients keep their receive queues stocked.
            for slot in range(4096):
                client.post_recv(
                    client_qp,
                    RecvRequest(
                        wr_id=slot,
                        local=(recv_mr, (slot % 64) * 8192, 8192),
                    ),
                )
            ah = (client.machine.name, client_qp.qpn)
            use_inline = payload <= profile.max_inline if inline is None else inline

            def make_wr(signaled, _ah=ah, _inline=use_inline):
                return WorkRequest.send(
                    payload=data if _inline else None,
                    local=None if _inline else (staging, 0, payload),
                    inline=_inline, signaled=signaled, ah=_ah,
                )

            sim.process(_window_poster(server, server_qp, make_wr, window, 4))

            def drain(cq=client_qp.recv_cq):
                while True:
                    yield cq.pop()

            sim.process(drain())
        elif verb == "READ-RC":
            meter_read = meter
            sqp, _cqp = connect_pair(server, client, Transport.RC)
            sink = server.register_memory(1 << 20)

            def make_wr(signaled, _target=target, _sink=sink):
                return WorkRequest.read(
                    raddr=_target.addr, rkey=_target.rkey, local=(_sink, 0, payload)
                )

            def read_loop(dev=server, qp=sqp, mw=make_wr):
                for _ in range(min(window, 16)):
                    yield from dev.post_send_timed(qp, mw(True))
                while True:
                    yield qp.send_cq.pop()
                    yield sim.timeout(profile.cq_poll_ns)
                    meter_read.record(sim.now)
                    yield from dev.post_send_timed(qp, mw(True))

            sim.process(read_loop())
        else:
            raise ValueError("unknown outbound verb %r" % verb)
    sim.run(until=end)
    return meter.mops()


def tune_window(
    measure,
    candidates=(2, 4, 8, 16, 32),
):
    """Section 3.1's methodology: 'we manually tune the window size for
    maximum aggregate throughput'.  ``measure(window)`` returns Mops;
    returns ``(best_window, best_mops)``.
    """
    best_window, best_mops = None, -1.0
    for window in candidates:
        mops = measure(window)
        if mops > best_mops:
            best_window, best_mops = window, mops
    return best_window, best_mops


# ---------------------------------------------------------------------------
# Figure 6: all-to-all connection scaling
# ---------------------------------------------------------------------------


def alltoall_throughput(
    mode: str,
    n: int,
    payload: int = 32,
    window: int = 8,
    profile: HardwareProfile = APT,
    seed: int = 0,
) -> float:
    """Figure 6: N server processes and N client processes, all-to-all.

    ``mode``: ``in-write-uc`` (clients WRITE to random server
    processes), ``out-write-uc`` (server processes WRITE to random
    clients over N^2 connected QPs), ``out-send-ud`` (server processes
    SEND to random clients from one UD QP each).
    """
    sim = Simulator()
    fabric = Fabric(sim, profile)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    end = _WARM_NS + _MEASURE_NS
    meter = RateMeter(_WARM_NS, end)
    rng = random.Random(seed)
    data = b"z" * payload
    clients = [RdmaDevice(Machine(sim, fabric, "c%d" % i)) for i in range(n)]

    if mode == "in-write-uc":
        server.write_done_hook = lambda pkt: meter.record(sim.now)
        regions = [server.register_memory(1 << 16) for _ in range(n)]
        for client in clients:
            qps = []
            for s in range(n):
                _sqp, cqp = connect_pair(server, client, Transport.UC)
                qps.append((cqp, regions[s]))

            def make_wr(signaled, _qps=qps, _rng=rng):
                cqp, region = _rng.choice(_qps)
                wr = WorkRequest.write(
                    raddr=region.addr, rkey=region.rkey,
                    payload=data, inline=True, signaled=signaled,
                )
                return cqp, wr

            def loop(dev=client, mw=make_wr, w=window):
                outstanding, since = 0, 0
                signal_qp = None
                while True:
                    while outstanding < w:
                        since += 1
                        signaled = since >= 4
                        if signaled:
                            since = 0
                        qp, wr = mw(signaled)
                        if signaled:
                            signal_qp = qp
                        yield from dev.post_send_timed(qp, wr)
                        outstanding += 1
                    # Wait on the QP that carries the signalled verb.
                    yield signal_qp.send_cq.pop()
                    yield sim.timeout(profile.cq_poll_ns)
                    outstanding -= 4

            sim.process(loop())
    elif mode == "out-write-uc":
        targets = []
        for client in clients:
            region = client.register_memory(1 << 16)
            client.write_done_hook = lambda pkt: meter.record(sim.now)
            targets.append((client, region))
        for s in range(n):
            qps = []
            for client, region in targets:
                sqp, _cqp = connect_pair(server, client, Transport.UC)
                qps.append((sqp, region))

            def loop(_qps=qps, _rng=rng, w=window):
                outstanding, since = 0, 0
                signal_qp = None
                while True:
                    while outstanding < w:
                        since += 1
                        signaled = since >= 4
                        if signaled:
                            since = 0
                        qp, region = _rng.choice(_qps)
                        if signaled:
                            signal_qp = qp
                        wr = WorkRequest.write(
                            raddr=region.addr, rkey=region.rkey,
                            payload=data, inline=True, signaled=signaled,
                        )
                        yield from server.post_send_timed(qp, wr)
                        outstanding += 1
                    yield signal_qp.send_cq.pop()
                    yield sim.timeout(profile.cq_poll_ns)
                    outstanding -= 4

            sim.process(loop())
    elif mode == "out-send-ud":
        addresses = []
        for client in clients:
            client.send_done_hook = lambda pkt: meter.record(sim.now)
            qp = client.create_qp(Transport.UD)
            recv_mr = client.register_memory(1 << 20)
            for slot in range(4096):
                client.post_recv(
                    qp,
                    RecvRequest(wr_id=slot, local=(recv_mr, (slot % 64) * 8192, 8192)),
                )
            addresses.append((client.machine.name, qp.qpn))

            def drain(cq=qp.recv_cq):
                while True:
                    yield cq.pop()

            sim.process(drain())
        for s in range(n):
            ud_qp = server.create_qp(Transport.UD)

            def make_wr(signaled, _rng=rng):
                return WorkRequest.send(
                    payload=data, inline=True, signaled=signaled,
                    ah=_rng.choice(addresses),
                )

            sim.process(_window_poster(server, ud_qp, make_wr, window, 4))
    else:
        raise ValueError("unknown all-to-all mode %r" % mode)

    sim.run(until=end)
    return meter.mops()


# ---------------------------------------------------------------------------
# Figure 2: verb latency
# ---------------------------------------------------------------------------


def verb_latency(
    kind: str,
    payload: int,
    profile: HardwareProfile = APT,
    samples: int = 30,
) -> float:
    """Mean unloaded latency in microseconds of one verb (Figure 2).

    ``kind``: ``READ``, ``WRITE`` (signaled, not inlined),
    ``WR-INLINE`` (signaled, inlined), or ``ECHO`` (a round trip of
    unsignaled inlined WRITEs, the paper's latency probe for
    unsignaled verbs).
    """
    if kind == "ECHO":
        return _echo_latency(payload, profile, samples)
    sim = Simulator()
    fabric = Fabric(sim, profile)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    client = RdmaDevice(Machine(sim, fabric, "client"))
    remote = server.register_memory(1 << 20)
    sink = client.register_memory(1 << 20)
    src = client.register_memory(1 << 20)
    _sqp, cqp = connect_pair(server, client, Transport.RC)
    data = b"L" * payload
    latencies: List[float] = []

    def probe():
        for _ in range(samples):
            if kind == "READ":
                wr = WorkRequest.read(
                    raddr=remote.addr, rkey=remote.rkey, local=(sink, 0, payload)
                )
            elif kind == "WRITE":
                wr = WorkRequest.write(
                    raddr=remote.addr, rkey=remote.rkey, local=(src, 0, payload)
                )
            elif kind == "WR-INLINE":
                wr = WorkRequest.write(
                    raddr=remote.addr, rkey=remote.rkey, payload=data, inline=True
                )
            else:
                raise ValueError("unknown latency kind %r" % kind)
            start = sim.now
            yield from client.post_send_timed(cqp, wr)
            yield cqp.send_cq.pop()
            yield sim.timeout(profile.cq_poll_ns)
            latencies.append(sim.now - start)

    sim.process(probe())
    sim.run_until_idle()
    return sum(latencies) / len(latencies) / 1e3


def _echo_latency(payload: int, profile: HardwareProfile, samples: int) -> float:
    from repro.baselines.echo import EchoCluster, EchoConfig

    cluster = EchoCluster(
        EchoConfig.wr_wr(payload_bytes=payload, window=1, n_server_processes=1),
        profile=profile,
        n_clients=1,
        n_client_machines=1,
    )
    result = cluster.run(warmup_ns=5_000.0, measure_ns=samples * 4_000.0)
    return result.latency["mean_us"]
