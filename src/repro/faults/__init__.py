"""Fault injection for the simulated cluster (the chaos layer).

``FaultPlan`` declares *what* goes wrong (seeded, deterministic);
``FaultInjector`` makes it happen on a live fabric/cluster;
``run_chaos`` wraps a whole HERD run in a randomized plan and checks
the safety invariants behind the paper's reliability argument
(Section 2.2.3).  ``repro.faults.rng`` provides the named child RNG
streams everything here draws from.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.rng import child_rng, derive_seed


def __getattr__(name):
    # The chaos harness sits above repro.herd, which itself draws its
    # RNG streams from repro.faults.rng — resolve it lazily so both
    # import orders work.
    if name in ("ChaosReport", "run_chaos"):
        from repro.faults import chaos

        return getattr(chaos, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

__all__ = [
    "ChaosReport",
    "FaultInjector",
    "FaultPlan",
    "child_rng",
    "derive_seed",
    "run_chaos",
]
