"""The fault injector: attaches a :class:`FaultPlan` to a live system.

One injector owns all the runtime state of an installed plan: the named
child RNG streams that decide which packets a rate rule hits, the hook
it places on the fabric's transmit path, per-device RNR hooks, and the
timed one-shot faults (NIC stalls, QP errors, server crashes) it puts
on the simulator calendar.

Every injected fault increments a local counter *and* (when the
simulator carries a :mod:`repro.obs` registry) a ``faults.*`` metrics
counter, so chaos runs are diagnosable from the standard metrics
export.  Recovery actions (QP re-arm, server restart) are counted too.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.faults.plan import (
    CORRUPT,
    DEGRADE,
    DELAY,
    DROP,
    DUPLICATE,
    REORDER,
    FaultPlan,
)
from repro.faults.rng import child_rng
from repro.hw.link import Fabric, LinkVerdict


class FaultInjector:
    """Runtime of one installed :class:`FaultPlan`."""

    def __init__(
        self,
        plan: FaultPlan,
        target: Any,
        devices: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Install ``plan`` onto ``target``.

        ``target`` is either a ``HerdCluster`` (recognised by its
        ``fabric`` attribute; devices and server processes are found
        automatically) or a bare :class:`~repro.hw.link.Fabric` (pass
        ``devices`` — a machine-name map — if the plan carries
        device-level rules).
        """
        self.plan = plan
        self.active = True
        self.counts: Dict[str, int] = {}
        if isinstance(target, Fabric):
            self.fabric = target
            self.cluster = None
            self.devices = dict(devices or {})
        else:  # duck-typed HerdCluster
            self.cluster = target
            self.fabric = target.fabric
            self.devices = {"server": target.server_device}
            for device in target.client_devices:
                self.devices[device.machine.name] = device
            ha = getattr(target, "ha", None)
            if ha is not None:
                for device in ha.devices[1:]:
                    self.devices[device.machine.name] = device
                self.devices["monitor"] = ha.monitor.device
            if devices:
                self.devices.update(devices)
        self.sim = self.fabric.sim
        #: per-server (and per-QP) earliest allowed recovery time: when
        #: crash/error windows overlap, the union of the windows wins —
        #: the first window's recovery must not revive a target a later
        #: window still holds down
        self._down_until: Dict[Any, float] = {}
        self.metrics = getattr(self.sim, "metrics", None)
        self._link_rng = child_rng(plan.seed, "faults.link")
        self._rnr_rng = child_rng(plan.seed, "faults.rnr")
        # Control-kind-selective rules (heartbeat/grant loss) need to
        # peek at the HA control byte of SEND payloads; resolve the
        # decoder once, and only when a rule actually asks for it.
        self._ha_kind = None
        if any(rule.ctrl_kind is not None for rule in plan.link_rules):
            from repro.herd.wire import ha_kind

            self._ha_kind = ha_kind
        self._install()

    # -- bookkeeping -------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + n
        if self.metrics is not None:
            self.metrics.counter("faults." + name).inc(n)

    # -- installation ------------------------------------------------------

    def _install(self) -> None:
        if self.fabric.fault_hook is not None:
            raise RuntimeError("fabric already has a fault hook installed")
        if self.plan.link_rules:
            self.fabric.fault_hook = self._judge_link
        for rule in self.plan.rnr_rules:
            device = self._device(rule.machine)
            if device.rnr_hook is None:
                machine = rule.machine
                device.rnr_hook = lambda packet, _m=machine: self._judge_rnr(_m)
        for stall in self.plan.nic_stalls:
            self._schedule(stall.at_ns, lambda s=stall: self._fire_stall(s))
        for qpe in self.plan.qp_errors:
            self._schedule(qpe.at_ns, lambda q=qpe: self._fire_qp_error(q))
            if qpe.recover_after_ns is not None:
                self._schedule(
                    qpe.at_ns + qpe.recover_after_ns,
                    lambda q=qpe: self._fire_qp_recover(q),
                )
        if self.plan.crashes and self.cluster is None:
            raise RuntimeError("crash rules require installing onto a cluster")
        for crash in self.plan.crashes:
            if not 0 <= crash.server_index < len(self.cluster.servers):
                raise ValueError(
                    "crash rule targets server %d; cluster has %d"
                    % (crash.server_index, len(self.cluster.servers))
                )
            self._schedule(crash.at_ns, lambda c=crash: self._fire_crash(c))
            self._schedule(
                crash.at_ns + crash.down_ns, lambda c=crash: self._fire_recover(c)
            )

    def _device(self, machine: str) -> Any:
        device = self.devices.get(machine)
        if device is None:
            raise ValueError(
                "plan names machine %r, not present in %s"
                % (machine, sorted(self.devices))
            )
        return device

    def _schedule(self, at_ns: float, fn) -> None:
        self.sim.call_in(max(0.0, at_ns - self.sim.now), fn)

    def deactivate(self) -> None:
        """Stop injecting (pending recoveries still run).

        The chaos harness calls this at the end of the fault horizon so
        the drain phase runs fault-free.
        """
        self.active = False

    # -- per-packet decisions ----------------------------------------------

    def _judge_link(self, src: str, dst: str, packet: Any, _wire_bytes: int):
        if not self.active:
            return None
        now = self.sim.now
        kind_name = getattr(getattr(packet, "kind", None), "value", "")
        ctrl_kind = None
        if self._ha_kind is not None:
            payload = getattr(packet, "payload", None)
            if payload:
                ctrl_kind = self._ha_kind(payload)
        drop_tag = None
        corrupt = False
        duplicate = 0
        dup_delay = 0.0
        extra_delay = 0.0
        tx_mult = 1.0
        for rule in self.plan.link_rules:
            if not rule.matches(src, dst, kind_name, now, ctrl_kind):
                continue
            if rule.rate < 1.0 and self._link_rng.random() >= rule.rate:
                continue
            if rule.kind == DROP:
                drop_tag = rule.tag or DROP
                break  # nothing downstream matters for a lost packet
            elif rule.kind == CORRUPT:
                corrupt = True
            elif rule.kind == DUPLICATE:
                duplicate += rule.copies
                dup_delay = max(dup_delay, rule.dup_delay_ns)
            elif rule.kind == DELAY:
                extra_delay += rule.extra_delay_ns
            elif rule.kind == REORDER:
                extra_delay += self._link_rng.random() * rule.jitter_ns
            elif rule.kind == DEGRADE:
                extra_delay += rule.extra_delay_ns
                tx_mult *= rule.tx_mult
        if drop_tag is not None:
            self.count("link.%s" % drop_tag)
            return LinkVerdict(drop=True)
        if not (corrupt or duplicate or extra_delay or tx_mult != 1.0):
            return None
        if corrupt:
            self.count("link.corrupt")
        if duplicate:
            self.count("link.duplicate", duplicate)
        if extra_delay:
            self.count("link.delayed")
        if tx_mult != 1.0:
            self.count("link.degraded")
        return LinkVerdict(
            corrupt=corrupt,
            duplicate=duplicate,
            extra_delay_ns=extra_delay,
            dup_delay_ns=dup_delay,
            tx_mult=tx_mult,
        )

    def _judge_rnr(self, machine: str) -> bool:
        if not self.active:
            return False
        now = self.sim.now
        for rule in self.plan.rnr_rules:
            if rule.machine != machine:
                continue
            if not rule.start_ns <= now < rule.end_ns:
                continue
            if self._rnr_rng.random() < rule.rate:
                self.count("rnr_drop")
                return True
        return False

    # -- timed faults ------------------------------------------------------

    def _fire_stall(self, stall) -> None:
        if not self.active:
            return
        machine = self._device(stall.machine).machine
        engine = machine.nic_ingress if stall.engine == "ingress" else machine.nic_egress
        # Occupy the engine for the stall duration: queued work waits
        # exactly as it would behind a wedged pipeline.
        engine.serve(stall.duration_ns)
        self.count("nic_stall")
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.mark(
                engine.name, "fault: engine stalled %.0f ns" % stall.duration_ns
            )

    def _hold_down(self, key: Any, until_ns: float) -> None:
        self._down_until[key] = max(self._down_until.get(key, 0.0), until_ns)

    def _may_recover(self, key: Any) -> bool:
        # tolerance for float scheduling noise: a recovery firing at its
        # own window's end must not be rejected by rounding
        return self.sim.now + 1e-6 >= self._down_until.get(key, 0.0)

    def _fire_qp_error(self, rule) -> None:
        if not self.active:
            return
        qp = self._device(rule.machine).qps.get(rule.qpn)
        if qp is None:
            raise ValueError("qp-error rule targets unknown QP %d" % rule.qpn)
        if rule.recover_after_ns is not None:
            self._hold_down(
                (rule.machine, rule.qpn), self.sim.now + rule.recover_after_ns
            )
        qp.transition_to_error()
        self.count("qp_error")

    def _fire_qp_recover(self, rule) -> None:
        if not self._may_recover((rule.machine, rule.qpn)):
            return  # a later overlapping error window still holds it
        qp = self._device(rule.machine).qps.get(rule.qpn)
        if qp is not None and qp.state.value == "ERROR":
            qp.recover()
            self.count("qp_recovery")

    def _fire_crash(self, rule) -> None:
        if not self.active:
            return
        # Extend the hold even when the server is already down: the
        # window union decides when recovery is legal, not whichever
        # window happened to fire first.
        self._hold_down(rule.server_index, self.sim.now + rule.down_ns)
        server = self.cluster.servers[rule.server_index]
        if server.crash():
            self.count("server_crash")

    def _fire_recover(self, rule) -> None:
        if not self._may_recover(rule.server_index):
            return  # a later overlapping crash window still holds it
        server = self.cluster.servers[rule.server_index]
        if server.recover():
            self.count("server_recovery")
