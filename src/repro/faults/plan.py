"""The ``FaultPlan`` DSL: a deterministic, seeded description of faults.

A plan is a declarative list of fault rules built with chained calls::

    plan = (
        FaultPlan(seed=7)
        .drop(dst="server", rate=0.02)
        .corrupt(rate=0.01)
        .duplicate(src="server", rate=0.005)
        .reorder(rate=0.01, jitter_ns=3_000)
        .nic_stall("server", engine="ingress", at_ns=50_000, duration_ns=5_000)
        .crash_server(0, at_ns=100_000, down_ns=60_000)
        .flap_link("cm1", at_ns=200_000, down_ns=10_000)
    )
    injector = plan.install(cluster)

Nothing happens until :meth:`FaultPlan.install` hands the plan to a
:class:`~repro.faults.injector.FaultInjector`, which attaches hooks to
the fabric / devices / server processes and schedules the timed faults.
All randomness (which packet a ``rate`` rule hits) comes from named
child streams of the plan seed (:mod:`repro.faults.rng`), so a plan is
byte-for-byte reproducible and independent of workload RNGs.

Section 2.2.3 grounding: the paper's only loss source is bit errors
(``corrupt``/``drop``); everything else here models the hardware
failures ("occur rarely") that the paper's retry argument must also
survive — engine hiccups, QPs falling into the error state, RECV-ring
exhaustion, process crashes, and link flaps.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, List, Optional

from repro.faults.rng import child_rng

_INF = math.inf

#: link-rule kinds
DROP = "drop"
CORRUPT = "corrupt"
DUPLICATE = "duplicate"
DELAY = "delay"
REORDER = "reorder"
DEGRADE = "degrade"


def _packet_kind_pool() -> tuple:
    """Every wire packet kind a kind-targeted link rule can name.

    Derived from :class:`repro.verbs.packets.PacketKind` at import time
    so the pool can never silently go stale: the day a new packet kind
    lands (as ``ATOMIC_REQ``/``ATOMIC_RESP`` did with the transaction
    dataplanes), randomized and nemesis-generated plans can target it.
    """
    from repro.verbs.packets import PacketKind

    return tuple(kind.value for kind in PacketKind)


#: the randomized kind pool (see :func:`_packet_kind_pool`)
RANDOMIZED_KIND_POOL = _packet_kind_pool()


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be within [0, 1], got %r" % (rate,))


def _check_time(name: str, value: float) -> None:
    if value < 0:
        raise ValueError("%s must be >= 0, got %r" % (name, value))


@dataclass(frozen=True)
class LinkRule:
    """One per-packet rule applied on the fabric's transmit path.

    ``src``/``dst`` name machines (``"*"`` matches any), making rules
    per-link-direction.  ``packet_kind`` optionally restricts the rule
    to one wire packet kind (``"WRITE"``, ``"SEND"``, ``"ACK"``, ...).
    The rule is active during ``[start_ns, end_ns)``.
    """

    kind: str
    src: str = "*"
    dst: str = "*"
    rate: float = 1.0
    start_ns: float = 0.0
    end_ns: float = _INF
    packet_kind: Optional[str] = None
    extra_delay_ns: float = 0.0   # DELAY/DEGRADE: deterministic added latency
    jitter_ns: float = 0.0        # REORDER: uniform added latency bound
    copies: int = 1               # DUPLICATE: extra deliveries
    dup_delay_ns: float = 0.0     # DUPLICATE: spacing of the copies
    tx_mult: float = 1.0          # DEGRADE: serialisation-time multiplier
    ctrl_kind: Optional[int] = None  # restrict to one HA control kind
    tag: str = ""                 # counter label; defaults to the kind

    def matches(
        self,
        src: str,
        dst: str,
        kind_name: str,
        now: float,
        ctrl_kind: Optional[int] = None,
    ) -> bool:
        if not self.start_ns <= now < self.end_ns:
            return False
        if self.src != "*" and self.src != src:
            return False
        if self.dst != "*" and self.dst != dst:
            return False
        if self.packet_kind is not None and self.packet_kind != kind_name:
            return False
        if self.ctrl_kind is not None and self.ctrl_kind != ctrl_kind:
            return False
        return True


@dataclass(frozen=True)
class NicStallRule:
    """The named machine's NIC engine freezes for a while at ``at_ns``."""

    machine: str
    engine: str  # "ingress" | "egress"
    at_ns: float
    duration_ns: float


@dataclass(frozen=True)
class QpErrorRule:
    """A QP transitions to the error state (optionally recovering)."""

    machine: str
    qpn: int
    at_ns: float
    recover_after_ns: Optional[float] = None


@dataclass(frozen=True)
class RnrRule:
    """RECV-queue exhaustion at a machine: inbound SENDs are dropped
    with probability ``rate`` during the window (receiver-not-ready)."""

    machine: str
    rate: float
    start_ns: float = 0.0
    end_ns: float = _INF


@dataclass(frozen=True)
class CrashRule:
    """A HERD server process crashes at ``at_ns`` and restarts after
    ``down_ns`` (recovery re-scans its request-region partition)."""

    server_index: int
    at_ns: float
    down_ns: float


@dataclass(frozen=True)
class FlapRule:
    """The machine's link goes down for ``down_ns``: everything sent to
    or from it in the window is lost."""

    machine: str
    at_ns: float
    down_ns: float


@dataclass
class FaultPlan:
    """A seeded, declarative set of faults to inject into one run."""

    seed: int = 0
    link_rules: List[LinkRule] = field(default_factory=list)
    nic_stalls: List[NicStallRule] = field(default_factory=list)
    qp_errors: List[QpErrorRule] = field(default_factory=list)
    rnr_rules: List[RnrRule] = field(default_factory=list)
    crashes: List[CrashRule] = field(default_factory=list)
    flaps: List[FlapRule] = field(default_factory=list)

    # -- link-level faults -------------------------------------------------

    def drop(
        self,
        src: str = "*",
        dst: str = "*",
        rate: float = 1.0,
        start_ns: float = 0.0,
        end_ns: float = _INF,
        packet_kind: Optional[str] = None,
    ) -> "FaultPlan":
        """Lose matching packets before they reach the wire."""
        _check_rate(rate)
        self.link_rules.append(
            LinkRule(DROP, src, dst, rate, start_ns, end_ns, packet_kind)
        )
        return self

    def uniform_loss(self, rate: float) -> "FaultPlan":
        """Every packet, any direction: the plan-level equivalent of
        the legacy ``Fabric.bit_error_rate`` knob."""
        return self.drop(rate=rate)

    def corrupt(
        self,
        src: str = "*",
        dst: str = "*",
        rate: float = 1.0,
        start_ns: float = 0.0,
        end_ns: float = _INF,
        packet_kind: Optional[str] = None,
    ) -> "FaultPlan":
        """Damage matching packets on the wire.

        Unlike :meth:`drop`, a corrupted packet still consumes wire and
        ingress-engine capacity before the receiving NIC's ICRC check
        discards it — the distinction the paper's bit-error loss model
        glosses over.
        """
        _check_rate(rate)
        self.link_rules.append(
            LinkRule(CORRUPT, src, dst, rate, start_ns, end_ns, packet_kind)
        )
        return self

    def duplicate(
        self,
        src: str = "*",
        dst: str = "*",
        rate: float = 1.0,
        copies: int = 1,
        dup_delay_ns: float = 1_000.0,
        start_ns: float = 0.0,
        end_ns: float = _INF,
        packet_kind: Optional[str] = None,
    ) -> "FaultPlan":
        """Deliver matching packets ``copies`` extra times."""
        _check_rate(rate)
        if copies < 1:
            raise ValueError("need at least one duplicate copy")
        _check_time("dup_delay_ns", dup_delay_ns)
        self.link_rules.append(
            LinkRule(
                DUPLICATE, src, dst, rate, start_ns, end_ns, packet_kind,
                copies=copies, dup_delay_ns=dup_delay_ns,
            )
        )
        return self

    def delay(
        self,
        extra_ns: float,
        src: str = "*",
        dst: str = "*",
        rate: float = 1.0,
        start_ns: float = 0.0,
        end_ns: float = _INF,
        packet_kind: Optional[str] = None,
    ) -> "FaultPlan":
        """Add a fixed extra propagation delay to matching packets."""
        _check_rate(rate)
        _check_time("extra_ns", extra_ns)
        self.link_rules.append(
            LinkRule(
                DELAY, src, dst, rate, start_ns, end_ns, packet_kind,
                extra_delay_ns=extra_ns,
            )
        )
        return self

    def reorder(
        self,
        jitter_ns: float,
        src: str = "*",
        dst: str = "*",
        rate: float = 1.0,
        start_ns: float = 0.0,
        end_ns: float = _INF,
        packet_kind: Optional[str] = None,
    ) -> "FaultPlan":
        """Add a uniform random delay in ``[0, jitter_ns)`` to matching
        packets, reordering them against later traffic."""
        _check_rate(rate)
        _check_time("jitter_ns", jitter_ns)
        self.link_rules.append(
            LinkRule(
                REORDER, src, dst, rate, start_ns, end_ns, packet_kind,
                jitter_ns=jitter_ns,
            )
        )
        return self

    # -- gray failures ----------------------------------------------------

    def degrade(
        self,
        src: str = "*",
        dst: str = "*",
        latency_add_ns: float = 0.0,
        rate_mult: float = 1.0,
        start_ns: float = 0.0,
        end_ns: float = _INF,
        packet_kind: Optional[str] = None,
    ) -> "FaultPlan":
        """A slow-but-alive link: gray failure, not death.

        Matching packets still arrive, but each one serialises
        ``1 / rate_mult`` times slower (a negotiated-down or
        congested link) and carries ``latency_add_ns`` extra
        propagation delay.  Nothing is lost, so retry machinery never
        fires — exactly the failure mode timeout-based detectors are
        worst at.
        """
        if not 0.0 < rate_mult <= 1.0:
            raise ValueError("rate_mult must be in (0, 1], got %r" % (rate_mult,))
        _check_time("latency_add_ns", latency_add_ns)
        if latency_add_ns == 0.0 and rate_mult == 1.0:
            raise ValueError("degrade must slow something down")
        self.link_rules.append(
            LinkRule(
                DEGRADE, src, dst, 1.0, start_ns, end_ns, packet_kind,
                extra_delay_ns=latency_add_ns, tx_mult=1.0 / rate_mult,
            )
        )
        return self

    def partition_oneway(
        self,
        src: str,
        dst: str,
        start_ns: float = 0.0,
        end_ns: float = _INF,
    ) -> "FaultPlan":
        """An asymmetric partition: ``src -> dst`` traffic vanishes
        while the reverse direction keeps flowing.

        The classic gray failure for lease protocols — one side
        believes the link is healthy while the other's messages never
        arrive.  Sugar for a total-loss one-direction drop rule.
        """
        if src == "*" and dst == "*":
            raise ValueError("a one-way partition needs a src or dst machine")
        if src == dst:
            raise ValueError("src and dst must differ")
        self.link_rules.append(
            LinkRule(DROP, src, dst, 1.0, start_ns, end_ns, tag="partition1w")
        )
        return self

    def lose_heartbeats(
        self,
        machine: str,
        rate: float = 1.0,
        start_ns: float = 0.0,
        end_ns: float = _INF,
        direction: str = "to_monitor",
        monitor: str = "monitor",
    ) -> "FaultPlan":
        """Heartbeat-selective loss on one replica machine's control
        traffic, leaving the data path untouched.

        ``direction="to_monitor"`` drops the machine's heartbeats
        before they reach the lease monitor (the monitor declares it
        dead while it keeps serving until its lease lapses);
        ``direction="from_monitor"`` drops the monitor's GRANTs back
        (the primary self-demotes while the monitor still believes it
        alive).  Either makes :class:`repro.ha.detector.LeaseMonitor`
        flap without a single data packet being lost.
        """
        from repro.herd import wire  # deferred: avoids an import cycle

        _check_rate(rate)
        if direction == "to_monitor":
            self.link_rules.append(
                LinkRule(
                    DROP, machine, monitor, rate, start_ns, end_ns, "SEND",
                    ctrl_kind=wire.CTRL_HEARTBEAT, tag="hb_loss",
                )
            )
        elif direction == "from_monitor":
            self.link_rules.append(
                LinkRule(
                    DROP, monitor, machine, rate, start_ns, end_ns, "SEND",
                    ctrl_kind=wire.CTRL_GRANT, tag="grant_loss",
                )
            )
        else:
            raise ValueError(
                "direction must be 'to_monitor' or 'from_monitor', got %r"
                % (direction,)
            )
        return self

    # -- device / process faults ------------------------------------------

    def nic_stall(
        self, machine: str, engine: str, at_ns: float, duration_ns: float
    ) -> "FaultPlan":
        """Freeze one NIC engine (``"ingress"``/``"egress"``)."""
        if engine not in ("ingress", "egress"):
            raise ValueError("engine must be 'ingress' or 'egress'")
        _check_time("at_ns", at_ns)
        _check_time("duration_ns", duration_ns)
        self.nic_stalls.append(NicStallRule(machine, engine, at_ns, duration_ns))
        return self

    def qp_error(
        self,
        machine: str,
        qpn: int,
        at_ns: float,
        recover_after_ns: Optional[float] = None,
    ) -> "FaultPlan":
        """Transition one QP to the error state (optionally re-arm)."""
        _check_time("at_ns", at_ns)
        if recover_after_ns is not None:
            _check_time("recover_after_ns", recover_after_ns)
        self.qp_errors.append(QpErrorRule(machine, qpn, at_ns, recover_after_ns))
        return self

    def rnr(
        self,
        machine: str,
        rate: float,
        start_ns: float = 0.0,
        end_ns: float = _INF,
    ) -> "FaultPlan":
        """RECV-queue exhaustion at ``machine`` during the window."""
        _check_rate(rate)
        self.rnr_rules.append(RnrRule(machine, rate, start_ns, end_ns))
        return self

    def crash_server(
        self, server_index: int, at_ns: float, down_ns: float
    ) -> "FaultPlan":
        """Crash HERD server process ``server_index``; restart later."""
        if server_index < 0:
            raise ValueError("server_index must be >= 0")
        _check_time("at_ns", at_ns)
        _check_time("down_ns", down_ns)
        self.crashes.append(CrashRule(server_index, at_ns, down_ns))
        return self

    def flap_link(self, machine: str, at_ns: float, down_ns: float) -> "FaultPlan":
        """Take the machine's port down for ``down_ns``."""
        _check_time("at_ns", at_ns)
        _check_time("down_ns", down_ns)
        self.flaps.append(FlapRule(machine, at_ns, down_ns))
        # A flap is sugar for two total-loss drop rules in the window.
        end = at_ns + down_ns
        self.link_rules.append(
            LinkRule(DROP, src=machine, start_ns=at_ns, end_ns=end, tag="flap")
        )
        self.link_rules.append(
            LinkRule(DROP, dst=machine, start_ns=at_ns, end_ns=end, tag="flap")
        )
        return self

    # -- composition / installation ---------------------------------------

    @property
    def empty(self) -> bool:
        # ``flaps`` is normally redundant (flap_link adds sugar link
        # rules too), but a plan rebuilt from a serialized dict — or
        # constructed field-by-field — may carry flap records alone;
        # it must not read as empty.
        return not (
            self.link_rules
            or self.nic_stalls
            or self.qp_errors
            or self.rnr_rules
            or self.crashes
            or self.flaps
        )

    def install(self, target):
        """Attach this plan to a ``HerdCluster`` or a bare ``Fabric``.

        Returns the :class:`~repro.faults.injector.FaultInjector` doing
        the work.  Installing onto a bare fabric supports verbs-level
        experiments; crash rules then require a cluster.
        """
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, target)

    def describe(self) -> str:
        """A human-readable one-line-per-rule summary.

        Every rule type renders exactly once: flap sugar drops are
        folded into one ``flap`` line (they used to double-render as
        two anonymous drops while the flap itself was silently
        dropped), and per-kind parameters (delay, jitter, copies,
        degradation multipliers) appear instead of vanishing.
        """
        lines = ["FaultPlan(seed=%d)" % self.seed]
        for rule in self.link_rules:
            if rule.tag == "flap":
                continue  # rendered from self.flaps below, once
            window = (
                ""
                if rule.end_ns == _INF and rule.start_ns == 0.0
                else " during [%.0f, %.0f) ns" % (rule.start_ns, rule.end_ns)
            )
            if rule.kind == DELAY:
                detail = " +%.0f ns" % rule.extra_delay_ns
            elif rule.kind == REORDER:
                detail = " jitter<%.0f ns" % rule.jitter_ns
            elif rule.kind == DUPLICATE:
                detail = " x%d every %.0f ns" % (rule.copies, rule.dup_delay_ns)
            elif rule.kind == DEGRADE:
                detail = " tx x%.3g +%.0f ns" % (rule.tx_mult, rule.extra_delay_ns)
            else:
                detail = ""
            lines.append(
                "  %-11s %s->%s rate=%g%s%s%s%s"
                % (
                    rule.tag or rule.kind,
                    rule.src,
                    rule.dst,
                    rule.rate,
                    " kind=%s" % rule.packet_kind if rule.packet_kind else "",
                    " ctrl=%d" % rule.ctrl_kind if rule.ctrl_kind is not None else "",
                    detail,
                    window,
                )
            )
        for stall in self.nic_stalls:
            lines.append(
                "  nic-stall   %s.%s at %.0f ns for %.0f ns"
                % (stall.machine, stall.engine, stall.at_ns, stall.duration_ns)
            )
        for qpe in self.qp_errors:
            lines.append(
                "  qp-error    %s qp%d at %.0f ns%s"
                % (
                    qpe.machine,
                    qpe.qpn,
                    qpe.at_ns,
                    ""
                    if qpe.recover_after_ns is None
                    else " recover +%.0f ns" % qpe.recover_after_ns,
                )
            )
        for rnr in self.rnr_rules:
            lines.append(
                "  rnr         %s rate=%g during [%.0f, %.0f) ns"
                % (rnr.machine, rnr.rate, rnr.start_ns, rnr.end_ns)
            )
        for crash in self.crashes:
            lines.append(
                "  crash       server %d at %.0f ns, down %.0f ns"
                % (crash.server_index, crash.at_ns, crash.down_ns)
            )
        for flap in self.flaps:
            lines.append(
                "  flap        %s at %.0f ns, down %.0f ns"
                % (flap.machine, flap.at_ns, flap.down_ns)
            )
        return "\n".join(lines)

    # -- randomized plans (chaos) -----------------------------------------

    @classmethod
    def randomized(
        cls,
        seed: int,
        horizon_ns: float,
        n_server_processes: int = 1,
        intensity: float = 1.0,
        crash: bool = True,
        rnr_machine: Optional[str] = None,
        targeted_kinds: bool = False,
    ) -> "FaultPlan":
        """A seeded random chaos mix, all faults within ``horizon_ns``.

        Always includes loss + corruption + duplication toward and from
        the server; with ``crash=True`` (and at least two server
        processes so siblings can absorb load) also one server-process
        crash that recovers well before the horizon.  ``rnr_machine``
        names a machine whose RECV ring intermittently runs dry — in
        HERD that must be a *client* machine (responses are the only
        SENDs on the wire; requests are WRITEs and need no RECV).

        ``targeted_kinds=True`` additionally draws two packet kinds
        from :data:`RANDOMIZED_KIND_POOL` — the full wire vocabulary,
        including the transaction dataplanes' ``ATOMIC_REQ`` /
        ``ATOMIC_RESP`` — and aims a windowed drop rule at each.  The
        extra rules draw from their own named child stream, so the
        classic mix above is byte-identical whether or not kind
        targeting is on.
        """
        if horizon_ns <= 0:
            raise ValueError("horizon_ns must be > 0")
        if intensity <= 0:
            raise ValueError("intensity must be > 0")
        rng = child_rng(seed, "faults.randomized")
        scale = min(intensity, 10.0)
        plan = cls(seed=seed)
        u = rng.uniform
        plan.drop(dst="server", rate=u(0.01, 0.04) * scale, end_ns=horizon_ns)
        plan.drop(src="server", rate=u(0.005, 0.03) * scale, end_ns=horizon_ns)
        plan.corrupt(rate=u(0.002, 0.01) * scale, end_ns=horizon_ns)
        plan.duplicate(
            rate=u(0.002, 0.01) * scale,
            dup_delay_ns=u(500.0, 3_000.0),
            end_ns=horizon_ns,
        )
        plan.reorder(jitter_ns=u(500.0, 4_000.0), rate=u(0.01, 0.05), end_ns=horizon_ns)
        plan.nic_stall(
            "server",
            engine="ingress" if rng.random() < 0.5 else "egress",
            at_ns=u(0.1, 0.8) * horizon_ns,
            duration_ns=u(0.005, 0.02) * horizon_ns,
        )
        if rnr_machine is not None:
            plan.rnr(
                rnr_machine,
                rate=u(0.05, 0.2),
                start_ns=u(0.1, 0.5) * horizon_ns,
                end_ns=u(0.6, 0.9) * horizon_ns,
            )
        if crash and n_server_processes > 1:
            at = u(0.2, 0.45) * horizon_ns
            plan.crash_server(
                rng.randrange(n_server_processes),
                at_ns=at,
                down_ns=u(0.1, 0.25) * horizon_ns,
            )
        if targeted_kinds:
            krng = child_rng(seed, "faults.randomized.kinds")
            for kind in krng.sample(RANDOMIZED_KIND_POOL, 2):
                plan.drop(
                    rate=min(1.0, krng.uniform(0.01, 0.06) * scale),
                    start_ns=krng.uniform(0.0, 0.4) * horizon_ns,
                    end_ns=krng.uniform(0.6, 1.0) * horizon_ns,
                    packet_kind=kind,
                )
        return plan

    def clamped(self, end_ns: float) -> "FaultPlan":
        """A copy whose open-ended link/rnr windows close at ``end_ns``
        (used by the chaos harness so the drain phase is fault-free).

        Flap records are clamped alongside their sugar drop rules, so a
        clamped plan's ``describe()`` and serialized form agree with
        the rules that actually fire.
        """
        plan = FaultPlan(seed=self.seed)
        plan.link_rules = [
            replace(rule, end_ns=min(rule.end_ns, end_ns)) for rule in self.link_rules
        ]
        plan.nic_stalls = list(self.nic_stalls)
        plan.qp_errors = list(self.qp_errors)
        plan.rnr_rules = [
            replace(rule, end_ns=min(rule.end_ns, end_ns)) for rule in self.rnr_rules
        ]
        plan.crashes = list(self.crashes)
        plan.flaps = [
            replace(
                flap,
                down_ns=max(0.0, min(flap.down_ns, end_ns - flap.at_ns)),
            )
            for flap in self.flaps
        ]
        return plan

    # -- serialization (nemesis repro artifacts) ---------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict capturing every rule byte-for-byte.

        Open-ended windows (``inf``) encode as the string ``"inf"`` so
        artifacts stay strict JSON.
        """

        def enc(rule) -> Dict[str, Any]:
            out = {}
            for key, value in asdict(rule).items():
                if isinstance(value, float) and math.isinf(value):
                    value = "inf"
                out[key] = value
            return out

        return {
            "seed": self.seed,
            "link_rules": [enc(r) for r in self.link_rules],
            "nic_stalls": [enc(r) for r in self.nic_stalls],
            "qp_errors": [enc(r) for r in self.qp_errors],
            "rnr_rules": [enc(r) for r in self.rnr_rules],
            "crashes": [enc(r) for r in self.crashes],
            "flaps": [enc(r) for r in self.flaps],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_dict` exactly."""

        def dec(cls_, raw: Dict[str, Any]):
            known = {f.name for f in fields(cls_)}
            kwargs = {}
            for key, value in raw.items():
                if key not in known:
                    raise ValueError(
                        "unknown %s field %r in plan dict" % (cls_.__name__, key)
                    )
                kwargs[key] = _INF if value == "inf" else value
            return cls_(**kwargs)

        plan = cls(seed=int(data.get("seed", 0)))
        plan.link_rules = [dec(LinkRule, r) for r in data.get("link_rules", ())]
        plan.nic_stalls = [dec(NicStallRule, r) for r in data.get("nic_stalls", ())]
        plan.qp_errors = [dec(QpErrorRule, r) for r in data.get("qp_errors", ())]
        plan.rnr_rules = [dec(RnrRule, r) for r in data.get("rnr_rules", ())]
        plan.crashes = [dec(CrashRule, r) for r in data.get("crashes", ())]
        plan.flaps = [dec(FlapRule, r) for r in data.get("flaps", ())]
        return plan
