"""Named child RNG streams.

Every source of randomness in a simulated cluster draws from its own
*named* stream derived from the cluster seed, so turning one source on
or off (say, enabling fault injection) cannot perturb the draws of any
other (say, the workload key sequences).  Derivation hashes the
``(seed, name)`` pair, so streams are independent, stable across runs,
and stable across code changes that add new streams.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(seed: int, name: str) -> int:
    """A 64-bit seed for the child stream ``name`` of ``seed``."""
    digest = hashlib.sha256(("%d/%s" % (seed, name)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def child_rng(seed: int, name: str) -> random.Random:
    """An independent ``random.Random`` for the named child stream."""
    return random.Random(derive_seed(seed, name))
