"""The chaos harness: a HERD cluster under a randomized fault plan.

A chaos run builds a small cluster, preloads every key, installs a
seeded :class:`~repro.faults.plan.FaultPlan` (randomized by default),
runs it through a *fault horizon*, then turns the faults off and lets
the clients drain their windows.  Afterwards it checks the paper's
safety argument end to end (Section 2.2.3: unreliable transports are
fine because loss is rare and the application retries):

* **liveness** — every client window drains: nothing stays outstanding
  or parked once the faults stop;
* **no lost acks** — per client, ``completed == issued - abandoned``,
  and window-slot accounting closes (free + quarantined = W per
  partition);
* **no wrong answers** — every successful GET returns exactly the
  deterministic ``value_for(item)`` bytes, and no preloaded key is
  missing (GETs never miss);
* **no duplicate side effects** — after all retries, duplicates, and a
  crash/recovery re-execution, every store entry still holds exactly
  ``value_for(item)`` (HERD PUTs are idempotent; a corrupted or
  double-applied PUT would leave different bytes);
* **monotonic clock** — completion timestamps never run backwards;
* **reproducibility** — the report carries a fingerprint hashed over
  every completion record and counter; two runs with the same seed
  must produce identical fingerprints.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.faults.plan import FaultPlan
from repro.faults.rng import child_rng
from repro.herd.cluster import HerdCluster
from repro.herd.config import HerdConfig, partition_of, route_key
from repro.workloads.ycsb import OpType, Workload, keyhash, value_for

#: named chaos scenarios, with the one-line descriptions
#: ``--chaos-scenario list`` prints.  The first three are replicated
#: (HA) failover scenarios; the last three are unreplicated *overload*
#: scenarios driven by open-loop arrivals (repro.qos, docs/QOS.md)
SCENARIOS = {
    "kill-primary": "crash one partition's primary for 30% of the horizon",
    "partition-primary": "cut the primary machine's link, forcing a mass failover",
    "migrate-under-kill": (
        "join a spare partition and kill the migration source's primary "
        "mid-resharding"
    ),
    "flash-crowd": (
        "every client's offered load steps 10x for 40% of the horizon; "
        "admission control must hold goodput and the SLO"
    ),
    "aggressor-tenant": (
        "one tenant floods 10x while the other behaves; quotas must "
        "throttle the aggressor and shield the victim's tail"
    ),
    "slow-client": (
        "one client stalls, then releases its backlog as a thundering "
        "herd; shedding must absorb the head-of-line burst"
    ),
    "nemesis": (
        "a replicated cluster under a caller-supplied (generated) fault "
        "schedule; every HA oracle on, no scenario fault pinned"
    ),
}
HA_SCENARIOS = ("kill-primary", "partition-primary", "migrate-under-kill", "nemesis")
OVERLOAD_SCENARIOS = ("flash-crowd", "aggressor-tenant", "slow-client")


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile — deterministic, no interpolation, so
    fingerprint-adjacent report fields reproduce bit-for-bit."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]

#: fraction of the horizon after which completions count as "tail"
#: throughput (the resharded steady state, for elasticity tracking)
TAIL_FRAC = 0.75


class _TaggedStream:
    """Wraps a workload stream, making every PUT value unique.

    Linearizability checking needs to tell writes apart: two clients
    PUTting the deterministic ``value_for`` bytes would be
    indistinguishable.  The first 6 bytes of each PUT value become
    ``(counter, client_id)``; the inner stream's RNG is untouched, so
    tagging never perturbs the op sequence.
    """

    def __init__(self, inner, client_id: int) -> None:
        self.inner = inner
        self.client_id = client_id
        self.counter = 0

    def next_op(self):
        op = self.inner.next_op()
        if op.op is not OpType.PUT:
            return op
        tag = struct.pack("<IH", self.counter, self.client_id)
        self.counter += 1
        return replace(op, value=tag + op.value[len(tag):])


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    seed: int
    plan: str
    sim_ns: float
    issued: int
    completed: int
    abandoned: int
    retries: int
    duplicate_responses: int
    late_responses: int
    get_misses: int
    server_crashes: int
    server_recoveries: int
    recovered_slots: int
    fault_counts: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    fingerprint: str = ""
    # -- replicated (HA) runs only; defaults keep classic runs unchanged
    scenario: Optional[str] = None
    replication_factor: int = 1
    ack_policy: str = ""
    ops_acked: int = 0
    ops_lost: int = 0
    checker: str = ""  # "linearizable" | "violated" ("" = unreplicated)
    availability: float = 1.0
    failover_latency_ns: float = 0.0
    promotions: int = 0
    stale_nacks: int = 0
    replays: int = 0
    #: completions at/after TAIL_FRAC * horizon (steady-state throughput)
    tail_completed: int = 0
    # -- elastic (shard map) runs only
    map_version: int = 0
    migrations_done: int = 0
    migrations_aborted: int = 0
    records_migrated: int = 0
    reroutes: int = 0
    not_owner_nacks: int = 0
    #: p99.9 response latency in microseconds over the whole run (every
    #: chaos run records it; 0.0 when no op completed)
    p999_us: float = 0.0
    # -- overload (repro.qos) runs only
    qos_enabled: bool = False
    offered: int = 0
    shed: int = 0
    retry_after_nacks: int = 0
    rejected: int = 0
    overflow_dropped: int = 0
    #: in-SLO completion rate (Mops) before the burst window
    pre_burst_mops: float = 0.0
    #: in-SLO completion rate (Mops) inside the burst window
    burst_mops: float = 0.0
    #: burst_mops / pre_burst_mops — the goodput floor contract
    goodput_ratio: float = 1.0
    #: per-tenant p99 response latency (us), tenant id -> p99
    tenant_p99_us: Dict[int, float] = field(default_factory=dict)
    #: RunReport when the run was observed (obs capture active); carries
    #: the outcome row so metrics exports include the chaos verdict
    obs: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def outcome_row(self) -> Dict[str, object]:
        """One row of the per-scenario outcome table (bench --chaos)."""
        return {
            "scenario": self.scenario or "randomized",
            "seed": self.seed,
            "ops_acked": self.ops_acked if self.scenario else self.completed,
            "ops_lost": self.ops_lost,
            "checker": self.checker or "n/a",
            "verdict": "OK" if self.ok else "FAILED",
            "availability": self.availability,
            "failover_latency_ns": self.failover_latency_ns,
            "p999_us": self.p999_us,
        }

    def summary(self) -> str:
        lines = [
            "chaos seed=%d: %s" % (self.seed, "OK" if self.ok else "FAILED"),
            "  %d issued, %d completed, %d abandoned in %.0f ns"
            % (self.issued, self.completed, self.abandoned, self.sim_ns),
            "  %d retries, %d duplicate responses, %d late responses"
            % (self.retries, self.duplicate_responses, self.late_responses),
            "  %d crashes, %d recoveries (%d slots re-scanned live)"
            % (self.server_crashes, self.server_recoveries, self.recovered_slots),
            "  faults: %s"
            % (
                ", ".join(
                    "%s=%d" % kv for kv in sorted(self.fault_counts.items())
                )
                or "none fired"
            ),
            "  fingerprint %s" % self.fingerprint[:16],
        ]
        if self.scenario in OVERLOAD_SCENARIOS:
            lines.insert(
                1,
                "  scenario %s (qos %s): %d offered, %d shed, %d nacked, "
                "%d rejected, %d overflow-dropped"
                % (
                    self.scenario,
                    "on" if self.qos_enabled else "off",
                    self.offered,
                    self.shed,
                    self.retry_after_nacks,
                    self.rejected,
                    self.overflow_dropped,
                ),
            )
            lines.insert(
                2,
                "  goodput %.3f -> %.3f Mops in-SLO (ratio %.2f), "
                "p99.9 %.1f us%s"
                % (
                    self.pre_burst_mops,
                    self.burst_mops,
                    self.goodput_ratio,
                    self.p999_us,
                    "".join(
                        ", tenant%d p99 %.1f us" % (t, p99)
                        for t, p99 in sorted(self.tenant_p99_us.items())
                    ),
                ),
            )
        elif self.scenario is not None:
            lines.insert(
                1,
                "  scenario %s (rf=%d, ack=%s): %d acked, %d lost, checker %s"
                % (
                    self.scenario,
                    self.replication_factor,
                    self.ack_policy,
                    self.ops_acked,
                    self.ops_lost,
                    self.checker or "n/a",
                ),
            )
            lines.insert(
                2,
                "  availability %.4f, %d promotions (mean failover %.1f us), "
                "%d stale nacks, %d replays"
                % (
                    self.availability,
                    self.promotions,
                    self.failover_latency_ns / 1000.0,
                    self.stale_nacks,
                    self.replays,
                ),
            )
            if self.map_version or self.migrations_done or self.migrations_aborted:
                lines.insert(
                    3,
                    "  shard map v%d: %d migrations done, %d aborted, "
                    "%d records moved, %d reroutes"
                    % (
                        self.map_version,
                        self.migrations_done,
                        self.migrations_aborted,
                        self.records_migrated,
                        self.reroutes,
                    ),
                )
        for violation in self.violations:
            lines.append("  VIOLATION: %s" % violation)
        return "\n".join(lines)


def run_chaos(
    seed: int = 0,
    horizon_ns: float = 300_000.0,
    drain_ns: float = 5_000_000.0,
    n_clients: int = 8,
    n_items: int = 256,
    value_size: int = 32,
    get_fraction: float = 0.5,
    intensity: float = 1.0,
    crash: bool = True,
    plan: Optional[FaultPlan] = None,
    config: Optional[HerdConfig] = None,
    scenario: Optional[str] = None,
    replication_factor: int = 3,
    ack_policy: str = "majority",
    lease_us: float = 5.0,
    heartbeat_us: float = 1.0,
    n_server_processes: Optional[int] = None,
    shedding: bool = True,
    burst: float = 10.0,
    slo_ns: float = 20_000.0,
) -> ChaosReport:
    """One seeded chaos run; see the module docstring for the checks.

    ``plan=None`` uses :meth:`FaultPlan.randomized` (clamped to the
    horizon so the drain phase is fault-free).  The retry budget must be
    unlimited for the drain-liveness invariant to be checkable — pass a
    custom ``config`` to experiment with budgets, at the cost of
    abandoned ops being excluded from the accounting identity only.

    Passing ``scenario`` switches to a *replicated* run: the cluster is
    built with ``replication_factor`` replicas per partition, the named
    fault scenario is layered on top of reduced-intensity background
    noise, every PUT value is made unique, and the full history is fed
    to the :mod:`repro.ha.checker` — per-key linearizability, no acked
    write lost, no split-brain acks, monotonic backup high-water marks.
    Scenarios: ``kill-primary`` crashes one partition's primary for 30%
    of the horizon; ``partition-primary`` cuts the primary machine's
    link, forcing a mass failover and fencing the isolated primaries;
    ``migrate-under-kill`` builds an *elastic* cluster with one spare
    partition (owning no keys), joins it a quarter into the horizon so
    the coordinator live-migrates ranges onto it, and crashes the first
    migration source's primary mid-copy — the move must abort, fail
    over, restart, and still lose nothing.

    The *overload* scenarios (``flash-crowd``, ``aggressor-tenant``,
    ``slow-client``) instead run an unreplicated cluster with **open-loop
    arrivals** and no injected faults — the offered load itself is the
    fault.  ``shedding`` toggles the :mod:`repro.qos` admission control
    (the wire framing and QP wiring stay identical, so on/off runs are
    directly comparable), ``burst`` scales the overload event, and
    ``slo_ns`` is the response-time SLO: only completions within it
    count toward the ``pre_burst_mops`` / ``burst_mops`` goodput meters.
    The goodput floor (``goodput_ratio``), tenant tails, and shed
    accounting land in the report for the smoke / lab gates to assert —
    a shedding-off run is *expected* to collapse and is not a violation.
    """
    if scenario is not None and scenario not in SCENARIOS:
        raise ValueError(
            "unknown scenario %r (have: %s)" % (scenario, ", ".join(SCENARIOS))
        )
    ha_mode = scenario in HA_SCENARIOS
    overload_mode = scenario in OVERLOAD_SCENARIOS
    if ha_mode and value_size < 8:
        raise ValueError("HA chaos tags PUT values; value_size must be >= 8")
    elastic_mode = scenario == "migrate-under-kill"
    if config is None:
        if elastic_mode:
            ns = n_server_processes or 3
            if ns < 2:
                raise ValueError("migrate-under-kill needs >= 2 partitions")
            config = HerdConfig(
                n_server_processes=ns,
                n_active_partitions=ns - 1,  # one spare to join live
                window=4,
                retry_timeout_ns=10_000.0,
                adaptive_retry=True,
                min_retry_timeout_ns=5_000.0,
                replication_factor=replication_factor,
                ack_policy=ack_policy,
                lease_us=lease_us,
                heartbeat_us=heartbeat_us,
            )
        elif ha_mode:
            config = HerdConfig(
                n_server_processes=n_server_processes or 4,
                window=4,
                retry_timeout_ns=10_000.0,
                adaptive_retry=True,
                min_retry_timeout_ns=5_000.0,
                replication_factor=replication_factor,
                ack_policy=ack_policy,
                lease_us=lease_us,
                heartbeat_us=heartbeat_us,
            )
        elif overload_mode:
            from repro.qos import QosConfig

            aggressor = scenario == "aggressor-tenant"
            if shedding:
                qos = QosConfig(
                    queue_limit=32,
                    drop_policy="nack",
                    codel_target_ns=4_000.0,
                    codel_interval_ns=20_000.0,
                    n_tenants=2 if aggressor else 1,
                    tenant_rates=(None, 2.0) if aggressor else None,
                    tenant_weights=(4.0, 1.0) if aggressor else None,
                    retry_after_ns=16_000.0,
                    qp_pool=4,
                )
            else:
                # every limit off: identical wire framing and QP wiring,
                # but nothing is ever shed — the unprotected control arm
                qos = QosConfig(queue_limit=None, codel_target_ns=None, qp_pool=4)
            # deep windows + a fixed RTO: the classic recipe that lets a
            # flash crowd push sojourn far past the SLO when unprotected
            config = HerdConfig(
                n_server_processes=n_server_processes or 2,
                window=32,
                retry_timeout_ns=30_000.0,
                adaptive_retry=False,
                qos=qos,
            )
        else:
            config = HerdConfig(
                n_server_processes=n_server_processes or 4,
                window=4,
                retry_timeout_ns=30_000.0,
                adaptive_retry=True,
                min_retry_timeout_ns=15_000.0,
            )
    if config.retry_timeout_ns is None:
        raise ValueError("chaos needs retries enabled (retry_timeout_ns)")
    if ha_mode and config.replication_factor < 2:
        raise ValueError("HA scenarios need a config with replication_factor > 1")
    if elastic_mode and config.n_active_partitions is None:
        raise ValueError(
            "migrate-under-kill needs an elastic config (n_active_partitions)"
        )
    # Goodput windows (overload runs): a pre-burst baseline, the crowd
    # itself, and the *measurement* window for burst goodput.  The
    # measurement window starts well after the crowd does: the first
    # ~0.15h of a flash crowd is the queue-filling ramp, where even an
    # unprotected server still answers in-SLO from a short queue — the
    # goodput contract is about the sustained regime after the crowd
    # has fully formed.  slow-client's "burst" is the backlog flush
    # when the stall releases, so its windows shift.
    if scenario == "slow-client":
        pre_start, pre_end = 0.1 * horizon_ns, 0.3 * horizon_ns
        burst_start, burst_end = 0.6 * horizon_ns, 0.8 * horizon_ns
        measure_start, measure_end = burst_start, burst_end
    else:
        pre_start, pre_end = 0.1 * horizon_ns, 0.4 * horizon_ns
        burst_start, burst_end = 0.4 * horizon_ns, 0.8 * horizon_ns
        measure_start, measure_end = 0.6 * horizon_ns, 0.8 * horizon_ns

    cluster = HerdCluster(config=config, n_client_machines=4, seed=seed)
    workload = Workload(
        get_fraction=get_fraction, value_size=value_size, n_keys=n_items
    )
    if scenario == "aggressor-tenant" and n_clients == 8:
        # Six aggressors are needed to push the fleet past capacity:
        # an open-loop client's send path self-clocks at ~3 ops/us, so
        # four bursting clients alone cannot drown the victims.
        n_clients = 12
    cluster.add_clients(n_clients, workload)
    if ha_mode:
        for client in cluster.clients:
            client.stream = _TaggedStream(client.stream, client.client_id)
    if overload_mode:
        from repro.workloads import (
            FlashCrowdArrivals,
            PoissonArrivals,
            StalledArrivals,
        )

        # per-client steady rate: the fleet sits well under capacity
        # until the scenario's overload event lands
        base_rate = 0.45 * intensity
        for client in cluster.clients:
            rng = child_rng(seed, "qos.client%d.arrivals" % client.client_id)
            if scenario == "flash-crowd":
                client.arrivals = FlashCrowdArrivals(
                    base_rate,
                    rng,
                    burst_factor=burst,
                    burst_start_ns=burst_start,
                    burst_end_ns=burst_end,
                )
            elif scenario == "aggressor-tenant":
                if client.client_id % 2 == 1:  # odd clients: the aggressor
                    client.arrivals = FlashCrowdArrivals(
                        base_rate,
                        rng,
                        burst_factor=burst,
                        burst_start_ns=burst_start,
                        burst_end_ns=burst_end,
                    )
                else:
                    client.arrivals = PoissonArrivals(base_rate, rng)
            elif client.client_id == 0:  # slow-client: one stalled source
                client.arrivals = StalledArrivals(
                    PoissonArrivals(base_rate * 0.5 * burst, rng),
                    stall_start_ns=0.3 * horizon_ns,
                    stall_end_ns=0.6 * horizon_ns,
                    flush_gap_ns=50.0,
                )
            else:
                client.arrivals = PoissonArrivals(base_rate, rng)
    cluster.wire()
    cluster.preload(range(n_items), value_size)
    if plan is None:
        if ha_mode:
            # reduced-intensity background noise plus the named scenario
            plan = FaultPlan.randomized(
                seed,
                horizon_ns,
                n_server_processes=config.n_server_processes,
                intensity=intensity * 0.5,
                crash=False,
                rnr_machine=cluster.client_devices[0].machine.name,
            )
            scenario_rng = child_rng(seed, "chaos.scenario")
            victim = scenario_rng.randrange(config.n_server_processes)
            if scenario == "nemesis":
                # the nemesis harness normally supplies its generated
                # plan; with none given, background noise alone is the
                # schedule — no pinned scenario fault
                pass
            elif scenario == "kill-primary":
                plan.crash_server(
                    victim, at_ns=0.35 * horizon_ns, down_ns=0.3 * horizon_ns
                )
            elif scenario == "partition-primary":
                plan.flap_link(
                    "server", at_ns=0.35 * horizon_ns, down_ns=0.25 * horizon_ns
                )
            else:  # migrate-under-kill: the join lands at 0.25h (below),
                # so a crash of partition 0's primary shortly after hits
                # the first migration mid-copy — plan_join drains
                # partition 0 first, and the move must abort and restart
                plan.crash_server(
                    0, at_ns=0.27 * horizon_ns, down_ns=0.3 * horizon_ns
                )
        elif overload_mode:
            # the flash crowd IS the fault: no injected loss or crashes,
            # so every shed and retry traces back to admission control
            plan = FaultPlan(seed=seed)
        else:
            plan = FaultPlan.randomized(
                seed,
                horizon_ns,
                n_server_processes=config.n_server_processes,
                intensity=intensity,
                crash=crash,
                rnr_machine=cluster.client_devices[0].machine.name,
            )
    plan = plan.clamped(horizon_ns)
    injector = cluster.install_faults(plan)
    sim = cluster.sim

    # Completion records feed both the invariant checks and the
    # reproducibility fingerprint.
    records: List[str] = []
    violations: List[str] = []
    last_now = [0.0]
    tail_completed = [0]
    tail_from_ns = TAIL_FRAC * horizon_ns

    def make_hook(client_id: int):
        def hook(op, success, value, now):
            if now >= tail_from_ns:
                tail_completed[0] += 1
            if now < last_now[0]:
                violations.append(
                    "completion clock ran backwards (%.3f after %.3f)"
                    % (now, last_now[0])
                )
            last_now[0] = now
            if op.op is OpType.GET:
                if not success:
                    violations.append(
                        "GET miss for preloaded item %d (client %d)"
                        % (op.item, client_id)
                    )
                elif not ha_mode and value != value_for(op.item, value_size):
                    # HA runs tag PUT values; the linearizability
                    # checker validates read values against the write
                    # history instead of the static value function
                    violations.append(
                        "GET returned wrong bytes for item %d (client %d)"
                        % (op.item, client_id)
                    )
            elif not success:
                violations.append(
                    "PUT failed for item %d (client %d)" % (op.item, client_id)
                )
            records.append(
                "c%d %s %d %d %.3f"
                % (client_id, op.op.value, op.item, int(success), now)
            )

        return hook

    # Response latencies: every run records the p99.9 tail; overload
    # runs additionally meter *in-SLO* goodput around the burst window
    # (a completion slower than slo_ns is not useful work) and split
    # tails by tenant for the isolation contract.
    latencies: List[float] = []
    tenant_latencies: Dict[int, List[float]] = {}
    pre_good = [0]
    burst_good = [0]
    tenant_split = scenario == "aggressor-tenant"

    def make_response_hook(client_id: int):
        tenant = client_id % 2 if tenant_split else 0

        def hook(op, latency, success, now):
            latencies.append(latency)
            if not overload_mode:
                return
            tenant_latencies.setdefault(tenant, []).append(latency)
            if success and latency <= slo_ns:
                if pre_start <= now < pre_end:
                    pre_good[0] += 1
                elif measure_start <= now < measure_end:
                    burst_good[0] += 1

        return hook

    # HA runs additionally record the full invoke/response history, per
    # key, for the linearizability checker.  An op is identified by its
    # (client, partition, window slot, slot epoch) — exactly the token
    # the wire protocol uses to match responses.
    histories: Dict[bytes, list] = {}
    if ha_mode:
        from repro.ha import HaOp

        open_ops: Dict[tuple, "HaOp"] = {}

        def make_ha_hook(client_id: int):
            def hook(kind, op, server, slot, epoch, success, value, now):
                token = (client_id, server, slot, epoch)
                if kind == "invoke":
                    ha_op = HaOp(
                        client=client_id,
                        kind="w" if op.op is OpType.PUT else "r",
                        value=op.value if op.op is OpType.PUT else None,
                        invoke=now,
                    )
                    open_ops[token] = ha_op
                    histories.setdefault(op.key, []).append(ha_op)
                elif kind == "response":
                    ha_op = open_ops.pop(token, None)
                    if ha_op is not None:
                        ha_op.respond = now
                        ha_op.ok = bool(success)
                        if ha_op.kind == "r":
                            ha_op.value = value
                # "stale" nacks leave the op open: it was never executed;
                # so do "reroute" nacks (NOT_OWNER at the old shard owner)

            return hook

        for client in cluster.clients:
            client.ha_event_hook = make_ha_hook(client.client_id)

    for client in cluster.clients:
        client.payload_hook = make_hook(client.client_id)
        client.response_hook = make_response_hook(client.client_id)
        client.stop_after = horizon_ns
        client.start()
    for server in cluster.servers:
        server.start()
    if cluster.ha is not None:
        for servers in cluster.ha.replica_servers[1:]:
            for server in servers:
                server.start()
        for node in cluster.ha.nodes:
            node.start()
        cluster.ha.monitor.start()
    if cluster.elastic is not None:
        cluster.elastic.coordinator.start()
        if elastic_mode:
            # membership: the spare partitions join a quarter in, while
            # traffic (and, at 0.4h, the pinned crash) is live
            for spare in range(
                config.n_active_partitions, config.n_server_processes
            ):
                cluster.elastic.coordinator.schedule_join(
                    spare, at_ns=0.25 * horizon_ns
                )
    sim.call_in(horizon_ns, injector.deactivate)

    sim.run(until=horizon_ns)

    def drained() -> bool:
        return all(
            client.outstanding == 0 and not any(client._parked)
            for client in cluster.clients
        )

    def settled() -> bool:
        # elastic runs also let the reshard queue converge before the
        # audit, so the final map reflects the completed membership change
        return drained() and (
            cluster.elastic is None or cluster.elastic.coordinator.idle()
        )

    deadline = horizon_ns + drain_ns
    while sim.now < deadline and not settled():
        sim.run(until=min(sim.now + 100_000.0, deadline))

    # -- invariants --------------------------------------------------------
    if not drained():
        for client in cluster.clients:
            if client.outstanding or any(client._parked):
                violations.append(
                    "client %d failed to drain: %d outstanding, %d parked"
                    % (
                        client.client_id,
                        client.outstanding,
                        sum(len(q) for q in client._parked),
                    )
                )
    for client in cluster.clients:
        if client.completed != client.issued - client.outstanding - client.abandoned:
            violations.append(
                "client %d accounting broken: issued=%d completed=%d "
                "outstanding=%d abandoned=%d"
                % (
                    client.client_id,
                    client.issued,
                    client.completed,
                    client.outstanding,
                    client.abandoned,
                )
            )
        if client.failures:
            violations.append(
                "client %d saw %d failed responses"
                % (client.client_id, client.failures)
            )
        if client.outstanding == 0:
            for server in range(config.n_server_processes):
                closed = len(client._slot_free[server]) + len(
                    client._quarantined[server]
                )
                if closed != config.window:
                    violations.append(
                        "client %d slot accounting leaked at server %d: "
                        "%d free + quarantined of %d"
                        % (client.client_id, server, closed, config.window)
                    )
    ops_lost = 0
    checker_verdict = ""
    availability = 1.0
    failover_latency_ns = 0.0
    promotions = stale_nacks = replays = 0
    elastic_counters: Dict[str, int] = {}
    reroutes = not_owner_nacks = 0
    if not ha_mode:
        divergences = 0
        for item in range(n_items):
            kh = keyhash(item)
            server = cluster.servers[partition_of(kh, config.n_server_processes)]
            stored = server.store.get(kh)
            if stored != value_for(item, value_size):
                divergences += 1
                violations.append(
                    "store divergence for item %d on server %d"
                    % (item, server.index)
                )
        if overload_mode:
            # a diverged entry is an acked write the store lost (or
            # double-applied): the "zero lost acked writes" witness
            ops_lost = divergences
    else:
        from repro.ha import check_histories, lost_acked_writes, split_brain

        ha = cluster.ha
        monitor = ha.monitor
        ns = config.n_server_processes
        # Final state is read from each partition's *current* primary —
        # the replica a client would reach after the run — routed through
        # the final shard map when the cluster is elastic.
        final_map = cluster.elastic.shard_map if cluster.elastic is not None else None
        initial: Dict[bytes, Optional[bytes]] = {}
        final: Dict[bytes, Optional[bytes]] = {}
        for item in range(n_items):
            kh = keyhash(item)
            p = route_key(kh, ns, final_map)
            primary = monitor.state[p].primary
            store = ha.replica_servers[primary if primary is not None else 0][p].store
            initial[kh] = value_for(item, value_size)
            final[kh] = store.get(kh)
        lin = check_histories(histories, initial, final)
        violations.extend(lin)
        ops_lost = lost_acked_writes(histories, final)
        if ops_lost:
            violations.append("%d acked writes lost across failover" % ops_lost)
        witness = {
            (group.partition, epoch): ackers
            for group in ha.groups
            for epoch, ackers in group.ack_witness.items()
        }
        brains = split_brain(witness)
        violations.extend(brains)
        regressions = sum(
            role.hwm_regressions for node in ha.nodes for role in node.roles
        )
        if regressions:
            violations.append(
                "%d backup high-water-mark regressions" % regressions
            )
        # Fencing-epoch monotonicity: every config the monitor broadcast
        # must carry a strictly larger epoch than the previous config of
        # the same partition — a stalled epoch would let a deposed
        # primary's acks survive fencing.
        epoch_faults = 0
        last_epoch: Dict[int, int] = {}
        for partition, _primary, epoch in monitor.config_log:
            prev = last_epoch.get(partition)
            if prev is not None and epoch <= prev:
                epoch_faults += 1
                violations.append(
                    "fencing epoch regressed on partition %d: %d after %d"
                    % (partition, epoch, prev)
                )
            last_epoch[partition] = epoch
        checker_verdict = (
            "violated"
            if (lin or ops_lost or brains or regressions or epoch_faults)
            else "linearizable"
        )
        outage = monitor.outage_ns(up_to_ns=horizon_ns)
        availability = max(0.0, 1.0 - outage / (ns * horizon_ns))
        closed = [adopted - lost for (_p, lost, adopted) in monitor.outages]
        failover_latency_ns = sum(closed) / len(closed) if closed else 0.0
        promotions = monitor.promotions
        stale_nacks = sum(c.stale_nacks for c in cluster.clients)
        replays = sum(c.replays for c in cluster.clients)
        if cluster.elastic is not None:
            elastic_counters = cluster.elastic.counters()
            reroutes = sum(c.reroutes for c in cluster.clients)
            not_owner_nacks = sum(c.not_owner_nacks for c in cluster.clients)
    expected_crashes = sum(1 for c in plan.crashes if c.at_ns < horizon_ns)
    total_crashes = sum(s.crashes for s in cluster.servers)
    total_recoveries = sum(s.recoveries for s in cluster.servers)
    if total_crashes != expected_crashes or total_recoveries != expected_crashes:
        violations.append(
            "crash/recovery mismatch: planned %d, crashed %d, recovered %d"
            % (expected_crashes, total_crashes, total_recoveries)
        )

    # -- overload metrics --------------------------------------------------
    # The goodput floor and tenant-isolation band are *report fields*,
    # asserted by the qos smoke / lab gate / tests — not violations, so
    # a shedding-off control run is allowed to collapse and show it.
    p999_us = _percentile(latencies, 99.9) / 1000.0
    pre_burst_mops = burst_mops = 0.0
    goodput_ratio = 1.0
    tenant_p99_us: Dict[int, float] = {}
    if overload_mode:
        pre_burst_mops = pre_good[0] / (pre_end - pre_start) * 1e3
        burst_mops = burst_good[0] / (measure_end - measure_start) * 1e3
        goodput_ratio = burst_mops / pre_burst_mops if pre_burst_mops else 0.0
        tenant_p99_us = {
            tenant: _percentile(samples, 99.0) / 1000.0
            for tenant, samples in sorted(tenant_latencies.items())
        }

    # -- fingerprint -------------------------------------------------------
    digest = hashlib.sha256()
    for record in records:
        digest.update(record.encode())
        digest.update(b"\n")
    for name, count in sorted(injector.counts.items()):
        digest.update(("%s=%d\n" % (name, count)).encode())
    for client in cluster.clients:
        digest.update(
            (
                "c%d issued=%d completed=%d retries=%d dup=%d late=%d abandoned=%d\n"
                % (
                    client.client_id,
                    client.issued,
                    client.completed,
                    client.retries,
                    client.duplicate_responses,
                    client.late_responses,
                    client.abandoned,
                )
            ).encode()
        )
    if ha_mode:
        # the HA fingerprint also pins failover *timing*: outage windows,
        # promotion counts, and every client's failover traffic
        monitor = cluster.ha.monitor
        digest.update(
            (
                "scenario=%s rf=%d ack=%s\n"
                % (scenario, config.replication_factor, config.ack_policy)
            ).encode()
        )
        for p, lost, adopted in monitor.outages:
            digest.update(("outage p%d %.3f %.3f\n" % (p, lost, adopted)).encode())
        digest.update(
            (
                "promotions=%d grants=%d configs=%d lease_misses=%d\n"
                % (
                    monitor.promotions,
                    monitor.grants,
                    monitor.configs_sent,
                    monitor.lease_misses,
                )
            ).encode()
        )
        for client in cluster.clients:
            digest.update(
                (
                    "c%d stale=%d replays=%d failovers=%d\n"
                    % (
                        client.client_id,
                        client.stale_nacks,
                        client.replays,
                        client.failovers,
                    )
                ).encode()
            )
        for node in cluster.ha.nodes:
            digest.update(
                (
                    "rep%d shipped=%d acks=%d hb=%d catchups=%d\n"
                    % (
                        node.replica_id,
                        node.updates_shipped,
                        node.acks_sent,
                        node.heartbeats_sent,
                        node.catchups_served,
                    )
                ).encode()
            )
        if cluster.elastic is not None:
            # elastic runs additionally pin the resharding outcome: the
            # final map, every migration, and each client's re-routing
            digest.update(
                (
                    "shardmap v=%d done=%d aborted=%d sent=%d applied=%d "
                    "adopted=%d\n"
                    % (
                        elastic_counters["map_version"],
                        elastic_counters["migrations_done"],
                        elastic_counters["migrations_aborted"],
                        elastic_counters["records_sent"],
                        elastic_counters["records_applied"],
                        elastic_counters["maps_adopted"],
                    )
                ).encode()
            )
            for client in cluster.clients:
                digest.update(
                    (
                        "c%d reroutes=%d notowner=%d maps=%d\n"
                        % (
                            client.client_id,
                            client.reroutes,
                            client.not_owner_nacks,
                            client.map_refreshes,
                        )
                    ).encode()
                )
    if overload_mode:
        # the overload fingerprint additionally pins the admission
        # outcome: every shed (by reason and tenant) and every client's
        # open-loop offered/dropped/nacked traffic
        digest.update(
            (
                "scenario=%s shedding=%d burst=%g\n"
                % (scenario, int(shedding), burst)
            ).encode()
        )
        for line in cluster.qos_runtime.counter_lines():
            digest.update((line + "\n").encode())
        for server in cluster.servers:
            digest.update(("s%d shed=%d\n" % (server.index, server.shed)).encode())
        for client in cluster.clients:
            digest.update(
                (
                    "c%d offered=%d overflow=%d paused=%d nacks=%d rejected=%d\n"
                    % (
                        client.client_id,
                        client.offered,
                        client.overflow_dropped,
                        client.nack_pause_drops,
                        client.retry_after_nacks,
                        client.rejected,
                    )
                ).encode()
            )

    report = ChaosReport(
        seed=seed,
        plan=plan.describe(),
        sim_ns=sim.now,
        issued=sum(c.issued for c in cluster.clients),
        completed=sum(c.completed for c in cluster.clients),
        abandoned=sum(c.abandoned for c in cluster.clients),
        retries=sum(c.retries for c in cluster.clients),
        duplicate_responses=sum(c.duplicate_responses for c in cluster.clients),
        late_responses=sum(c.late_responses for c in cluster.clients),
        get_misses=sum(c.get_misses for c in cluster.clients),
        server_crashes=total_crashes,
        server_recoveries=total_recoveries,
        recovered_slots=sum(s.recovered_slots for s in cluster.servers),
        fault_counts=dict(injector.counts),
        violations=violations,
        fingerprint=digest.hexdigest(),
        scenario=scenario,
        replication_factor=config.replication_factor if ha_mode else 1,
        ack_policy=config.ack_policy if ha_mode else "",
        ops_acked=sum(c.completed for c in cluster.clients),
        ops_lost=ops_lost,
        checker=checker_verdict,
        availability=availability,
        failover_latency_ns=failover_latency_ns,
        promotions=promotions,
        stale_nacks=stale_nacks,
        replays=replays,
        tail_completed=tail_completed[0],
        map_version=elastic_counters.get("map_version", 0),
        migrations_done=elastic_counters.get("migrations_done", 0),
        migrations_aborted=elastic_counters.get("migrations_aborted", 0),
        records_migrated=elastic_counters.get("records_applied", 0),
        reroutes=reroutes,
        not_owner_nacks=not_owner_nacks,
        p999_us=p999_us,
        qos_enabled=overload_mode and shedding,
        offered=sum(c.offered for c in cluster.clients),
        shed=cluster.qos_runtime.total_shed if cluster.qos_runtime else 0,
        retry_after_nacks=sum(c.retry_after_nacks for c in cluster.clients),
        rejected=sum(c.rejected for c in cluster.clients),
        overflow_dropped=sum(c.overflow_dropped for c in cluster.clients),
        pre_burst_mops=pre_burst_mops,
        burst_mops=burst_mops,
        goodput_ratio=goodput_ratio,
        tenant_p99_us=tenant_p99_us,
    )
    from repro.obs.report import RunReport  # deferred: optional layer

    obs_report = RunReport.from_sim(sim, name="chaos-%d" % seed)
    if obs_report is not None:
        obs_report.outcomes.append(report.outcome_row())
        report.obs = obs_report
    return report
