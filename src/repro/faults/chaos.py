"""The chaos harness: a HERD cluster under a randomized fault plan.

A chaos run builds a small cluster, preloads every key, installs a
seeded :class:`~repro.faults.plan.FaultPlan` (randomized by default),
runs it through a *fault horizon*, then turns the faults off and lets
the clients drain their windows.  Afterwards it checks the paper's
safety argument end to end (Section 2.2.3: unreliable transports are
fine because loss is rare and the application retries):

* **liveness** — every client window drains: nothing stays outstanding
  or parked once the faults stop;
* **no lost acks** — per client, ``completed == issued - abandoned``,
  and window-slot accounting closes (free + quarantined = W per
  partition);
* **no wrong answers** — every successful GET returns exactly the
  deterministic ``value_for(item)`` bytes, and no preloaded key is
  missing (GETs never miss);
* **no duplicate side effects** — after all retries, duplicates, and a
  crash/recovery re-execution, every store entry still holds exactly
  ``value_for(item)`` (HERD PUTs are idempotent; a corrupted or
  double-applied PUT would leave different bytes);
* **monotonic clock** — completion timestamps never run backwards;
* **reproducibility** — the report carries a fingerprint hashed over
  every completion record and counter; two runs with the same seed
  must produce identical fingerprints.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.plan import FaultPlan
from repro.herd.cluster import HerdCluster
from repro.herd.config import HerdConfig, partition_of
from repro.workloads.ycsb import OpType, Workload, keyhash, value_for


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    seed: int
    plan: str
    sim_ns: float
    issued: int
    completed: int
    abandoned: int
    retries: int
    duplicate_responses: int
    late_responses: int
    get_misses: int
    server_crashes: int
    server_recoveries: int
    recovered_slots: int
    fault_counts: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            "chaos seed=%d: %s" % (self.seed, "OK" if self.ok else "FAILED"),
            "  %d issued, %d completed, %d abandoned in %.0f ns"
            % (self.issued, self.completed, self.abandoned, self.sim_ns),
            "  %d retries, %d duplicate responses, %d late responses"
            % (self.retries, self.duplicate_responses, self.late_responses),
            "  %d crashes, %d recoveries (%d slots re-scanned live)"
            % (self.server_crashes, self.server_recoveries, self.recovered_slots),
            "  faults: %s"
            % (
                ", ".join(
                    "%s=%d" % kv for kv in sorted(self.fault_counts.items())
                )
                or "none fired"
            ),
            "  fingerprint %s" % self.fingerprint[:16],
        ]
        for violation in self.violations:
            lines.append("  VIOLATION: %s" % violation)
        return "\n".join(lines)


def run_chaos(
    seed: int = 0,
    horizon_ns: float = 300_000.0,
    drain_ns: float = 5_000_000.0,
    n_clients: int = 8,
    n_items: int = 256,
    value_size: int = 32,
    get_fraction: float = 0.5,
    intensity: float = 1.0,
    crash: bool = True,
    plan: Optional[FaultPlan] = None,
    config: Optional[HerdConfig] = None,
) -> ChaosReport:
    """One seeded chaos run; see the module docstring for the checks.

    ``plan=None`` uses :meth:`FaultPlan.randomized` (clamped to the
    horizon so the drain phase is fault-free).  The retry budget must be
    unlimited for the drain-liveness invariant to be checkable — pass a
    custom ``config`` to experiment with budgets, at the cost of
    abandoned ops being excluded from the accounting identity only.
    """
    if config is None:
        config = HerdConfig(
            n_server_processes=4,
            window=4,
            retry_timeout_ns=30_000.0,
            adaptive_retry=True,
            min_retry_timeout_ns=15_000.0,
        )
    if config.retry_timeout_ns is None:
        raise ValueError("chaos needs retries enabled (retry_timeout_ns)")
    cluster = HerdCluster(config=config, n_client_machines=4, seed=seed)
    workload = Workload(
        get_fraction=get_fraction, value_size=value_size, n_keys=n_items
    )
    cluster.add_clients(n_clients, workload)
    cluster.wire()
    cluster.preload(range(n_items), value_size)
    if plan is None:
        plan = FaultPlan.randomized(
            seed,
            horizon_ns,
            n_server_processes=config.n_server_processes,
            intensity=intensity,
            crash=crash,
            rnr_machine=cluster.client_devices[0].machine.name,
        )
    plan = plan.clamped(horizon_ns)
    injector = cluster.install_faults(plan)
    sim = cluster.sim

    # Completion records feed both the invariant checks and the
    # reproducibility fingerprint.
    records: List[str] = []
    violations: List[str] = []
    last_now = [0.0]

    def make_hook(client_id: int):
        def hook(op, success, value, now):
            if now < last_now[0]:
                violations.append(
                    "completion clock ran backwards (%.3f after %.3f)"
                    % (now, last_now[0])
                )
            last_now[0] = now
            if op.op is OpType.GET:
                if not success:
                    violations.append(
                        "GET miss for preloaded item %d (client %d)"
                        % (op.item, client_id)
                    )
                elif value != value_for(op.item, value_size):
                    violations.append(
                        "GET returned wrong bytes for item %d (client %d)"
                        % (op.item, client_id)
                    )
            elif not success:
                violations.append(
                    "PUT failed for item %d (client %d)" % (op.item, client_id)
                )
            records.append(
                "c%d %s %d %d %.3f"
                % (client_id, op.op.value, op.item, int(success), now)
            )

        return hook

    for client in cluster.clients:
        client.payload_hook = make_hook(client.client_id)
        client.stop_after = horizon_ns
        client.start()
    for server in cluster.servers:
        server.start()
    sim.call_in(horizon_ns, injector.deactivate)

    sim.run(until=horizon_ns)

    def drained() -> bool:
        return all(
            client.outstanding == 0 and not any(client._parked)
            for client in cluster.clients
        )

    deadline = horizon_ns + drain_ns
    while sim.now < deadline and not drained():
        sim.run(until=min(sim.now + 100_000.0, deadline))

    # -- invariants --------------------------------------------------------
    if not drained():
        for client in cluster.clients:
            if client.outstanding or any(client._parked):
                violations.append(
                    "client %d failed to drain: %d outstanding, %d parked"
                    % (
                        client.client_id,
                        client.outstanding,
                        sum(len(q) for q in client._parked),
                    )
                )
    for client in cluster.clients:
        if client.completed != client.issued - client.outstanding - client.abandoned:
            violations.append(
                "client %d accounting broken: issued=%d completed=%d "
                "outstanding=%d abandoned=%d"
                % (
                    client.client_id,
                    client.issued,
                    client.completed,
                    client.outstanding,
                    client.abandoned,
                )
            )
        if client.failures:
            violations.append(
                "client %d saw %d failed responses"
                % (client.client_id, client.failures)
            )
        if client.outstanding == 0:
            for server in range(config.n_server_processes):
                closed = len(client._slot_free[server]) + len(
                    client._quarantined[server]
                )
                if closed != config.window:
                    violations.append(
                        "client %d slot accounting leaked at server %d: "
                        "%d free + quarantined of %d"
                        % (client.client_id, server, closed, config.window)
                    )
    for item in range(n_items):
        kh = keyhash(item)
        server = cluster.servers[partition_of(kh, config.n_server_processes)]
        stored = server.store.get(kh)
        if stored != value_for(item, value_size):
            violations.append(
                "store divergence for item %d on server %d"
                % (item, server.index)
            )
    expected_crashes = sum(1 for c in plan.crashes if c.at_ns < horizon_ns)
    total_crashes = sum(s.crashes for s in cluster.servers)
    total_recoveries = sum(s.recoveries for s in cluster.servers)
    if total_crashes != expected_crashes or total_recoveries != expected_crashes:
        violations.append(
            "crash/recovery mismatch: planned %d, crashed %d, recovered %d"
            % (expected_crashes, total_crashes, total_recoveries)
        )

    # -- fingerprint -------------------------------------------------------
    digest = hashlib.sha256()
    for record in records:
        digest.update(record.encode())
        digest.update(b"\n")
    for name, count in sorted(injector.counts.items()):
        digest.update(("%s=%d\n" % (name, count)).encode())
    for client in cluster.clients:
        digest.update(
            (
                "c%d issued=%d completed=%d retries=%d dup=%d late=%d abandoned=%d\n"
                % (
                    client.client_id,
                    client.issued,
                    client.completed,
                    client.retries,
                    client.duplicate_responses,
                    client.late_responses,
                    client.abandoned,
                )
            ).encode()
        )

    return ChaosReport(
        seed=seed,
        plan=plan.describe(),
        sim_ns=sim.now,
        issued=sum(c.issued for c in cluster.clients),
        completed=sum(c.completed for c in cluster.clients),
        abandoned=sum(c.abandoned for c in cluster.clients),
        retries=sum(c.retries for c in cluster.clients),
        duplicate_responses=sum(c.duplicate_responses for c in cluster.clients),
        late_responses=sum(c.late_responses for c in cluster.clients),
        get_misses=sum(c.get_misses for c in cluster.clients),
        server_crashes=total_crashes,
        server_recoveries=total_recoveries,
        recovered_slots=sum(s.recovered_slots for s in cluster.servers),
        fault_counts=dict(injector.counts),
        violations=violations,
        fingerprint=digest.hexdigest(),
    )
