"""Dataplane adapters: run one nemesis schedule, return one verdict.

:func:`run_schedule` is the single entry for both the search loop and
artifact replay — a repro artifact re-runs through exactly the code
path that produced it, so a replay is byte-identical by construction
(same schedule -> same simulation -> same fingerprint).

Each adapter maps a schedule onto its dataplane's existing harness:

* ``herd`` / ``ha`` / ``elastic`` / ``qos`` run through
  :func:`repro.faults.chaos.run_chaos` with the generated plan
  substituted for the scenario's own fault layering — every invariant
  that harness checks (drain, accounting identities, value
  correctness, monotonic clock, linearizability, lost acked writes,
  split-brain witness, hwm and fencing-epoch monotonicity) is the
  oracle suite;
* ``txn-rpc`` / ``txn-onesided`` build a :class:`repro.txn.TxnCluster`,
  install the plan's link/device rules on its fabric, map a crash rule
  onto ``TxnConfig.crash`` (the pause-one-participant arm), and audit
  with the strict-serializability checker plus the torn-write audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.faults.plan import FaultPlan
from repro.nemesis.schedule import DATAPLANES, Schedule


@dataclass
class NemesisResult:
    """One schedule's verdict: the oracle findings and the fingerprint."""

    schedule: Schedule
    violations: List[str] = field(default_factory=list)
    fingerprint: str = ""
    #: the underlying ChaosReport / TxnReport, for deeper inspection
    report: object = None

    @property
    def dataplane(self) -> str:
        return self.schedule.dataplane

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        head = "nemesis %s seed=%d: %s" % (
            self.dataplane,
            self.schedule.seed,
            "OK" if self.ok else "FAILED",
        )
        lines = [head, "  fingerprint %s" % self.fingerprint[:16]]
        for violation in self.violations:
            lines.append("  VIOLATION: %s" % violation)
        return "\n".join(lines)


#: an extra oracle: inspects a result, returns violation strings
Oracle = Callable[[NemesisResult], List[str]]


def _strip_crashes(plan: FaultPlan) -> FaultPlan:
    out = FaultPlan(seed=plan.seed)
    out.link_rules = list(plan.link_rules)
    out.nic_stalls = list(plan.nic_stalls)
    out.qp_errors = list(plan.qp_errors)
    out.rnr_rules = list(plan.rnr_rules)
    out.flaps = list(plan.flaps)
    return out


def _run_chaos_schedule(schedule: Schedule) -> NemesisResult:
    from repro.faults import run_chaos

    spec = DATAPLANES[schedule.dataplane]
    report = run_chaos(
        seed=schedule.seed,
        horizon_ns=spec.horizon_ns,
        plan=schedule.plan,
        **schedule.runner_params()
    )
    return NemesisResult(
        schedule=schedule,
        violations=list(report.violations),
        fingerprint=report.fingerprint,
        report=report,
    )


def _run_txn_schedule(schedule: Schedule) -> NemesisResult:
    from repro.txn import TxnCluster, TxnConfig

    params = schedule.runner_params()
    warmup_ns = params.pop("warmup_ns")
    measure_ns = params.pop("measure_ns")
    n_clients = params.pop("n_clients")
    n_client_machines = params.pop("n_client_machines")
    horizon_ns = warmup_ns + measure_ns
    plan = schedule.plan
    crash = None
    if plan.crashes:
        # TxnConfig pauses one participant process; the plan's crash
        # rule names a server index, mapped onto a partition here
        rule = plan.crashes[0]
        crash = (
            rule.server_index % params["n_partitions"],
            rule.at_ns,
            rule.down_ns,
        )
        plan = _strip_crashes(plan)
    config = TxnConfig(crash=crash, **params)
    cluster = TxnCluster(
        config,
        n_clients=n_clients,
        n_client_machines=n_client_machines,
        seed=schedule.seed,
    )
    if not plan.empty:
        cluster.install_faults(plan.clamped(horizon_ns))
    report = cluster.run(warmup_ns=warmup_ns, measure_ns=measure_ns)
    violations: List[str] = []
    if report.violation is not None:
        violations.append("not strictly serializable: %s" % report.violation)
    if report.torn_writes:
        violations.append("%d torn writes in the final state" % report.torn_writes)
    return NemesisResult(
        schedule=schedule,
        violations=violations,
        fingerprint=report.fingerprint,
        report=report,
    )


def run_schedule(
    schedule: Schedule, extra_oracles: Sequence[Oracle] = ()
) -> NemesisResult:
    """Run one schedule through its dataplane and every oracle."""
    if schedule.dataplane not in DATAPLANES:
        raise ValueError("unknown dataplane %r" % (schedule.dataplane,))
    if schedule.dataplane.startswith("txn-"):
        result = _run_txn_schedule(schedule)
    else:
        result = _run_chaos_schedule(schedule)
    for oracle in extra_oracles:
        result.violations.extend(oracle(result))
    return result
