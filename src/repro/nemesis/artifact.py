"""Repro artifacts: a failing schedule, frozen as strict JSON.

An artifact records everything needed to re-run a failure
byte-identically: the schedule (dataplane + seed + the exact plan,
usually the shrunk one), the oracle names that were active, the
violations observed, and the run's determinism fingerprint.
:func:`replay` re-runs the schedule through the same
:func:`~repro.nemesis.dataplanes.run_schedule` path and verifies both
that the violations still fire and that the fingerprint matches the
recorded one bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.nemesis.dataplanes import NemesisResult, run_schedule
from repro.nemesis.oracle import resolve
from repro.nemesis.schedule import Schedule

ARTIFACT_VERSION = 1


def build_artifact(
    result: NemesisResult,
    oracles: Sequence[str] = (),
    shrink_stats: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Freeze one failing result (typically post-shrink) as a dict."""
    return {
        "version": ARTIFACT_VERSION,
        "kind": "nemesis-repro",
        "schedule": result.schedule.to_dict(),
        "oracles": list(oracles),
        "violations": list(result.violations),
        "fingerprint": result.fingerprint,
        "shrink": dict(shrink_stats) if shrink_stats is not None else None,
    }


def save_artifact(path: str, artifact: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        artifact = json.load(fh)
    if artifact.get("kind") != "nemesis-repro":
        raise ValueError("%s is not a nemesis repro artifact" % (path,))
    if artifact.get("version") != ARTIFACT_VERSION:
        raise ValueError(
            "artifact version %r unsupported (expected %d)"
            % (artifact.get("version"), ARTIFACT_VERSION)
        )
    return artifact


@dataclass
class ReplayResult:
    """A replayed artifact, with the byte-identity verdicts."""

    result: NemesisResult
    expected_fingerprint: str
    expected_violations: List[str] = field(default_factory=list)

    @property
    def fingerprint_identical(self) -> bool:
        return self.result.fingerprint == self.expected_fingerprint

    @property
    def violations_match(self) -> bool:
        return self.result.violations == self.expected_violations

    @property
    def reproduced(self) -> bool:
        return self.fingerprint_identical and self.violations_match

    def summary(self) -> str:
        lines = [
            "replay %s seed=%d: %s"
            % (
                self.result.dataplane,
                self.result.schedule.seed,
                "reproduced byte-identically"
                if self.reproduced
                else "DID NOT REPRODUCE",
            )
        ]
        lines.append(
            "  fingerprint %s (%s)"
            % (
                self.result.fingerprint[:16],
                "identical" if self.fingerprint_identical else
                "expected %s" % self.expected_fingerprint[:16],
            )
        )
        for violation in self.result.violations:
            lines.append("  VIOLATION: %s" % violation)
        if not self.violations_match:
            for violation in self.expected_violations:
                lines.append("  EXPECTED:  %s" % violation)
        return "\n".join(lines)


def replay(path: str) -> ReplayResult:
    """Re-run an artifact and check it reproduces byte-identically."""
    artifact = load_artifact(path)
    schedule = Schedule.from_dict(artifact["schedule"])
    oracles = resolve(artifact.get("oracles", ()))
    result = run_schedule(schedule, oracles)
    return ReplayResult(
        result=result,
        expected_fingerprint=artifact["fingerprint"],
        expected_violations=list(artifact.get("violations", ())),
    )
