"""Delta-debugging shrinker: failing schedule -> minimal reproducer.

A failing schedule's plan is decomposed into *atoms* — one per logical
fault (a flap counts once, not as its two sugar drop rules).  Three
passes then minimize it, re-running the full dataplane + oracle suite
after **every** candidate removal (nothing is ever dropped on faith):

1. **ddmin** (Zeller's delta debugging) over the atom list, with the
   classic complement-and-regranularize loop;
2. an explicit **1-minimality** sweep: every surviving atom is removed
   alone once more and the schedule re-verified to still fail without
   it being impossible — i.e. removing any single atom makes the
   failure disappear;
3. **window halving**: each surviving atom's time window (or downtime)
   is repeatedly halved while the schedule still fails, so the final
   reproducer is tight in time as well as in rule count.

Every run is memoized on the serialized plan, and a test budget bounds
the worst case; if the budget runs out mid-pass the best plan found so
far is returned with ``minimal=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.nemesis.dataplanes import Oracle, run_schedule
from repro.nemesis.schedule import Schedule

#: an atom: ("link"|"stall"|"qp"|"rnr"|"crash"|"flap", the rule)
Atom = Tuple[str, object]

#: windows are not halved below this span (simulation noise floor)
MIN_SPAN_NS = 1_000.0


def atoms_of(plan: FaultPlan) -> List[Atom]:
    """Decompose a plan into independent removable faults.

    Flap sugar drop rules (``tag == "flap"``) are folded into their
    flap record: the shrinker removes or keeps a flap as one unit, and
    :func:`plan_from_atoms` regenerates the sugar.
    """
    atoms: List[Atom] = []
    for rule in plan.link_rules:
        if rule.tag != "flap":
            atoms.append(("link", rule))
    atoms.extend(("stall", r) for r in plan.nic_stalls)
    atoms.extend(("qp", r) for r in plan.qp_errors)
    atoms.extend(("rnr", r) for r in plan.rnr_rules)
    atoms.extend(("crash", r) for r in plan.crashes)
    atoms.extend(("flap", r) for r in plan.flaps)
    return atoms


def plan_from_atoms(seed: int, atoms: Sequence[Atom]) -> FaultPlan:
    """Rebuild a plan holding exactly ``atoms`` (same plan seed, so
    the injector's packet-level RNG streams are unchanged)."""
    plan = FaultPlan(seed=seed)
    for kind, rule in atoms:
        if kind == "link":
            plan.link_rules.append(rule)
        elif kind == "stall":
            plan.nic_stalls.append(rule)
        elif kind == "qp":
            plan.qp_errors.append(rule)
        elif kind == "rnr":
            plan.rnr_rules.append(rule)
        elif kind == "crash":
            plan.crashes.append(rule)
        elif kind == "flap":
            plan.flap_link(rule.machine, rule.at_ns, rule.down_ns)
        else:
            raise ValueError("unknown atom kind %r" % (kind,))
    return plan


def _window_variants(atom: Atom) -> List[Atom]:
    """Smaller-window versions of one atom, best first."""
    kind, rule = atom
    out: List[Atom] = []
    if kind in ("link", "rnr"):
        span = rule.end_ns - rule.start_ns
        if span > MIN_SPAN_NS and span != float("inf"):
            mid = rule.start_ns + span / 2.0
            out.append((kind, replace(rule, end_ns=mid)))
            out.append((kind, replace(rule, start_ns=mid)))
    elif kind in ("crash", "flap"):
        if rule.down_ns > MIN_SPAN_NS:
            out.append((kind, replace(rule, down_ns=rule.down_ns / 2.0)))
    elif kind == "stall":
        if rule.duration_ns > MIN_SPAN_NS:
            out.append((kind, replace(rule, duration_ns=rule.duration_ns / 2.0)))
    elif kind == "qp":
        if rule.recover_after_ns and rule.recover_after_ns > MIN_SPAN_NS:
            out.append(
                (kind, replace(rule, recover_after_ns=rule.recover_after_ns / 2.0))
            )
    return out


@dataclass
class ShrinkResult:
    """The minimal reproducer and how much work finding it took."""

    schedule: Schedule  # with the minimized plan
    atoms_before: int
    atoms_after: int
    tests: int
    #: True when the result is verified 1-minimal (budget not exhausted)
    minimal: bool
    violations: List[str]
    fingerprint: str

    def summary(self) -> str:
        return (
            "shrunk %s seed=%d: %d -> %d atoms in %d tests%s"
            % (
                self.schedule.dataplane,
                self.schedule.seed,
                self.atoms_before,
                self.atoms_after,
                self.tests,
                "" if self.minimal else " (budget exhausted; not 1-minimal)",
            )
        )


class _Runner:
    """Memoized, budgeted oracle: does this plan still fail?"""

    def __init__(
        self,
        schedule: Schedule,
        extra_oracles: Sequence[Oracle],
        max_tests: int,
    ) -> None:
        self.schedule = schedule
        self.extra_oracles = tuple(extra_oracles)
        self.max_tests = max_tests
        self.tests = 0
        self.exhausted = False
        self._cache = {}

    def fails(self, plan: FaultPlan) -> bool:
        key = repr(plan.to_dict())
        if key in self._cache:
            return self._cache[key]
        if self.tests >= self.max_tests:
            # out of budget: treat as passing so every loop terminates;
            # the caller reports minimal=False
            self.exhausted = True
            return False
        self.tests += 1
        result = run_schedule(self.schedule.with_plan(plan), self.extra_oracles)
        verdict = bool(result.violations)
        self._cache[key] = verdict
        return verdict


def _ddmin(
    atoms: List[Atom], fails: Callable[[Sequence[Atom]], bool]
) -> List[Atom]:
    n = 2
    while len(atoms) >= 2:
        chunk = max(1, len(atoms) // n)
        reduced = False
        for i in range(0, len(atoms), chunk):
            complement = atoms[:i] + atoms[i + chunk:]
            if complement and fails(complement):
                atoms = complement
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(atoms):
                break
            n = min(len(atoms), n * 2)
    return atoms


def shrink_schedule(
    schedule: Schedule,
    extra_oracles: Sequence[Oracle] = (),
    max_tests: int = 400,
) -> ShrinkResult:
    """Minimize a failing schedule to a locally-minimal reproducer.

    Raises ``ValueError`` if the schedule does not fail in the first
    place (a shrinker fed a passing schedule is a harness bug).
    """
    runner = _Runner(schedule, extra_oracles, max_tests)
    seed = schedule.plan.seed
    original = atoms_of(schedule.plan)

    def atoms_fail(atoms: Sequence[Atom]) -> bool:
        return runner.fails(plan_from_atoms(seed, atoms))

    if not runner.fails(schedule.plan):
        raise ValueError(
            "schedule %s seed=%d does not fail; nothing to shrink"
            % (schedule.dataplane, schedule.seed)
        )

    # A failure with *no* faults reproduces on the empty plan: the bug
    # is in the dataplane itself and the minimal reproducer is empty.
    if original and atoms_fail([]):
        atoms: List[Atom] = []
    else:
        atoms = _ddmin(list(original), atoms_fail)
        # explicit 1-minimality: every atom, removed alone, must be
        # load-bearing (ddmin guarantees this only at its final
        # granularity; re-verify each removal)
        i = 0
        while i < len(atoms) and len(atoms) > 1:
            candidate = atoms[:i] + atoms[i + 1:]
            if atoms_fail(candidate):
                atoms = candidate
            else:
                i += 1
        # window halving: tighten surviving atoms in time
        for _ in range(8):
            improved = False
            for i in range(len(atoms)):
                for variant in _window_variants(atoms[i]):
                    candidate = atoms[:i] + [variant] + atoms[i + 1:]
                    if atoms_fail(candidate):
                        atoms = candidate
                        improved = True
                        break
                if improved:
                    break
            if not improved or runner.exhausted:
                break

    minimal_plan = plan_from_atoms(seed, atoms)
    final = run_schedule(schedule.with_plan(minimal_plan), extra_oracles)
    return ShrinkResult(
        schedule=schedule.with_plan(minimal_plan),
        atoms_before=len(original),
        atoms_after=len(atoms),
        tests=runner.tests,
        minimal=not runner.exhausted,
        violations=list(final.violations),
        fingerprint=final.fingerprint,
    )
