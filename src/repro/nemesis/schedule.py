"""Nemesis schedules: seeded random fault programs per dataplane.

A :class:`Schedule` is one self-contained experiment: a dataplane name
(which system to torture), a seed (which also seeds the cluster and
workload), and a :class:`~repro.faults.plan.FaultPlan` composed from
the full fault vocabulary — loss, corruption, duplication, delay,
reordering, gray degradation, one-way partitions, heartbeat-selective
loss, NIC stalls, QP errors, RNR windows, link flaps, and process
crashes.

:func:`generate` draws a schedule from named child streams of its
seed (:func:`repro.faults.rng.derive_seed`), so schedule ``(seed, dp)``
is byte-for-byte reproducible forever: the generator never consults
global randomness, and every dataplane's runner parameters live in the
:data:`DATAPLANES` registry rather than in the schedule itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.faults.plan import RANDOMIZED_KIND_POOL, FaultPlan
from repro.faults.rng import child_rng, derive_seed


@dataclass(frozen=True)
class DataplaneSpec:
    """Everything the generator and runner need to know about one
    dataplane: the fault horizon, the runner kwargs, and the machine
    vocabulary fault rules may legally name."""

    name: str
    horizon_ns: float
    #: kwargs handed to the runner (run_chaos / TxnCluster)
    params: Dict[str, Any]
    #: machines that exist (device-level faults must name one of these)
    machines: Tuple[str, ...]
    client_machines: Tuple[str, ...]
    #: index space for crash rules (server processes / txn partitions)
    n_servers: int
    #: machines that heartbeat to the lease monitor ("" = no monitor)
    heartbeaters: Tuple[str, ...] = ()
    max_crashes: int = 1
    #: move names :func:`generate` must not draw for this dataplane,
    #: because the dataplane's transport would mask the fault on real
    #: hardware (see txn-onesided)
    exclude_moves: Tuple[str, ...] = ()


_CLIENTS = ("cm0", "cm1", "cm2", "cm3")

#: every dataplane the nemesis can torture, keyed by name
DATAPLANES: Dict[str, DataplaneSpec] = {
    "herd": DataplaneSpec(
        name="herd",
        horizon_ns=120_000.0,
        params=dict(
            n_clients=4, n_items=48, value_size=24, n_server_processes=2
        ),
        machines=("server",) + _CLIENTS,
        client_machines=_CLIENTS,
        n_servers=2,
        max_crashes=2,
    ),
    "ha": DataplaneSpec(
        name="ha",
        horizon_ns=300_000.0,
        params=dict(
            scenario="nemesis",
            n_clients=4,
            n_items=48,
            value_size=24,
            n_server_processes=2,
            replication_factor=3,
            ack_policy="majority",
        ),
        machines=("server", "rep1", "rep2", "monitor") + _CLIENTS,
        client_machines=_CLIENTS,
        n_servers=2,
        heartbeaters=("server", "rep1", "rep2"),
        max_crashes=1,
    ),
    "elastic": DataplaneSpec(
        name="elastic",
        horizon_ns=300_000.0,
        params=dict(
            scenario="migrate-under-kill",
            n_clients=4,
            n_items=48,
            value_size=24,
            n_server_processes=3,
            replication_factor=3,
            ack_policy="majority",
        ),
        machines=("server", "rep1", "rep2", "monitor") + _CLIENTS,
        client_machines=_CLIENTS,
        n_servers=3,
        heartbeaters=("server", "rep1", "rep2"),
        max_crashes=1,
    ),
    "qos": DataplaneSpec(
        name="qos",
        horizon_ns=300_000.0,
        params=dict(scenario="flash-crowd", shedding=True),
        machines=("server",) + _CLIENTS,
        client_machines=_CLIENTS,
        n_servers=2,
        max_crashes=0,  # the flash crowd is the fault; keep loss gray
    ),
    "txn-rpc": DataplaneSpec(
        name="txn-rpc",
        horizon_ns=120_000.0,
        params=dict(
            dataplane="rpc",
            n_partitions=2,
            n_keys=128,
            n_clients=8,
            n_client_machines=4,
            warmup_ns=20_000.0,
            measure_ns=100_000.0,
        ),
        machines=("server",) + _CLIENTS,
        client_machines=_CLIENTS,
        n_servers=2,
        max_crashes=1,  # TxnConfig.crash pauses one participant
    ),
    "txn-onesided": DataplaneSpec(
        name="txn-onesided",
        horizon_ns=120_000.0,
        params=dict(
            dataplane="onesided",
            n_partitions=2,
            n_keys=128,
            n_clients=8,
            n_client_machines=4,
            warmup_ns=20_000.0,
            measure_ns=100_000.0,
        ),
        machines=("server",) + _CLIENTS,
        client_machines=_CLIENTS,
        n_servers=2,
        max_crashes=1,
    ),
}

#: round-robin order used by the search loop (sorted: stable forever)
DATAPLANE_NAMES = tuple(sorted(DATAPLANES))


@dataclass
class Schedule:
    """One nemesis experiment: a dataplane, a seed, and a fault plan."""

    seed: int
    dataplane: str
    plan: FaultPlan
    #: overrides merged over the dataplane spec's runner params
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def spec(self) -> DataplaneSpec:
        return DATAPLANES[self.dataplane]

    @property
    def horizon_ns(self) -> float:
        return self.spec.horizon_ns

    def runner_params(self) -> Dict[str, Any]:
        merged = dict(self.spec.params)
        merged.update(self.params)
        return merged

    def with_plan(self, plan: FaultPlan) -> "Schedule":
        """The same experiment under a different (e.g. shrunk) plan."""
        return Schedule(
            seed=self.seed,
            dataplane=self.dataplane,
            plan=plan,
            params=dict(self.params),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "dataplane": self.dataplane,
            "plan": self.plan.to_dict(),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Schedule":
        dataplane = data["dataplane"]
        if dataplane not in DATAPLANES:
            raise ValueError(
                "unknown dataplane %r (have: %s)"
                % (dataplane, ", ".join(DATAPLANE_NAMES))
            )
        return cls(
            seed=int(data["seed"]),
            dataplane=dataplane,
            plan=FaultPlan.from_dict(data["plan"]),
            params=dict(data.get("params", {})),
        )


def _window(rng, horizon_ns: float, max_frac: float = 0.4) -> Tuple[float, float]:
    start = rng.uniform(0.0, 0.55) * horizon_ns
    end = start + rng.uniform(0.08, max_frac) * horizon_ns
    return start, min(end, horizon_ns)


def generate(seed: int, dataplane: Optional[str] = None) -> Schedule:
    """Draw one random schedule, deterministically, from ``seed``.

    The plan's own seed is a named child of the schedule seed, so the
    injector's packet-level coin flips are independent of the draws
    made here — adding a new move to the vocabulary changes future
    schedules, never the injection randomness of an existing plan.
    """
    rng = child_rng(seed, "nemesis.schedule")
    if dataplane is None:
        dataplane = DATAPLANE_NAMES[rng.randrange(len(DATAPLANE_NAMES))]
    spec = DATAPLANES[dataplane]
    horizon = spec.horizon_ns
    plan = FaultPlan(seed=derive_seed(seed, "nemesis.plan"))
    crashes_left = spec.max_crashes

    def pick(seq):
        return seq[rng.randrange(len(seq))]

    def mv_drop() -> None:
        src, dst = pick((("*", "server"), ("server", "*"), ("*", "*")))
        start, end = _window(rng, horizon)
        plan.drop(src=src, dst=dst, rate=rng.uniform(0.02, 0.15),
                  start_ns=start, end_ns=end)

    def mv_kind_drop() -> None:
        kind = pick(RANDOMIZED_KIND_POOL)
        start, end = _window(rng, horizon)
        plan.drop(rate=rng.uniform(0.05, 0.3), start_ns=start, end_ns=end,
                  packet_kind=kind)

    def mv_corrupt() -> None:
        start, end = _window(rng, horizon)
        plan.corrupt(rate=rng.uniform(0.01, 0.08), start_ns=start, end_ns=end)

    def mv_duplicate() -> None:
        start, end = _window(rng, horizon)
        plan.duplicate(rate=rng.uniform(0.01, 0.06),
                       copies=rng.randint(1, 2),
                       dup_delay_ns=rng.uniform(500.0, 3_000.0),
                       start_ns=start, end_ns=end)

    def mv_delay() -> None:
        start, end = _window(rng, horizon)
        plan.delay(rng.uniform(1_000.0, 8_000.0), rate=rng.uniform(0.05, 0.3),
                   start_ns=start, end_ns=end)

    def mv_reorder() -> None:
        start, end = _window(rng, horizon)
        plan.reorder(rng.uniform(1_000.0, 6_000.0),
                     rate=rng.uniform(0.05, 0.3), start_ns=start, end_ns=end)

    def mv_degrade() -> None:
        src, dst = pick((("server", "*"), ("*", "server")))
        start, end = _window(rng, horizon)
        plan.degrade(src=src, dst=dst,
                     latency_add_ns=rng.uniform(500.0, 4_000.0),
                     rate_mult=rng.uniform(0.25, 0.9),
                     start_ns=start, end_ns=end)

    def mv_partition_oneway() -> None:
        client = pick(spec.client_machines)
        src, dst = pick(((client, "server"), ("server", client)))
        start, end = _window(rng, horizon, max_frac=0.25)
        plan.partition_oneway(src, dst, start_ns=start, end_ns=end)

    def mv_nic_stall() -> None:
        plan.nic_stall(pick(spec.machines),
                       engine=pick(("ingress", "egress")),
                       at_ns=rng.uniform(0.1, 0.7) * horizon,
                       duration_ns=rng.uniform(0.005, 0.03) * horizon)

    def mv_qp_error() -> None:
        # qpn 1 is the first QP a device creates; every client machine
        # in every dataplane has one
        plan.qp_error(pick(spec.client_machines), qpn=1,
                      at_ns=rng.uniform(0.1, 0.6) * horizon,
                      recover_after_ns=rng.uniform(0.05, 0.2) * horizon)

    def mv_rnr() -> None:
        start, end = _window(rng, horizon)
        plan.rnr(pick(spec.client_machines), rate=rng.uniform(0.05, 0.25),
                 start_ns=start, end_ns=end)

    def mv_flap() -> None:
        plan.flap_link(pick(spec.client_machines),
                       at_ns=rng.uniform(0.1, 0.6) * horizon,
                       down_ns=rng.uniform(0.02, 0.08) * horizon)

    def mv_crash() -> None:
        plan.crash_server(rng.randrange(spec.n_servers),
                          at_ns=rng.uniform(0.2, 0.5) * horizon,
                          down_ns=rng.uniform(0.1, 0.25) * horizon)

    def mv_lose_heartbeats() -> None:
        start, end = _window(rng, horizon, max_frac=0.3)
        plan.lose_heartbeats(pick(spec.heartbeaters),
                             rate=rng.uniform(0.6, 1.0),
                             start_ns=start, end_ns=end,
                             direction=pick(("to_monitor", "from_monitor")))

    named_moves = [
        ("drop", mv_drop), ("kind_drop", mv_kind_drop),
        ("corrupt", mv_corrupt), ("duplicate", mv_duplicate),
        ("delay", mv_delay), ("reorder", mv_reorder),
        ("degrade", mv_degrade), ("partition_oneway", mv_partition_oneway),
        ("nic_stall", mv_nic_stall), ("qp_error", mv_qp_error),
        ("rnr", mv_rnr), ("flap", mv_flap),
    ]
    if spec.max_crashes:
        named_moves.append(("crash", mv_crash))
    if spec.heartbeaters:
        named_moves.append(("lose_heartbeats", mv_lose_heartbeats))
    unknown = set(spec.exclude_moves) - {name for name, _ in named_moves}
    if unknown:
        raise ValueError("unknown exclude_moves: %s" % sorted(unknown))
    moves = [fn for name, fn in named_moves if name not in spec.exclude_moves]

    for _ in range(rng.randint(2, 6)):
        move = pick(moves)
        if move is mv_crash:
            if crashes_left == 0:
                continue
            crashes_left -= 1
        move()
    return Schedule(seed=seed, dataplane=dataplane, plan=plan)
