"""Extra (named) oracles layered over the built-in invariant suite.

The dataplane runners already check the full safety suite — drain
liveness, accounting identities, value correctness, monotonic clocks,
linearizability / strict serializability, zero lost acked writes,
split-brain witness, hwm and fencing-epoch monotonicity, torn writes.
This module holds *additional* oracles a search can layer on, looked
up by name so a repro artifact can record which ones were active and
a replay can re-apply exactly the same judgement.

The registry ships one planted-bug oracle: ``planted-no-crash``
asserts that no server process ever crashed.  On a schedule pool whose
vocabulary includes crash rules this is a deterministic planted bug —
the search *must* find it, and the shrinker must strip every other
rule away until the crash atom alone remains.  That end-to-end path
(find -> shrink -> artifact -> byte-identical replay) is what the
nemesis smoke gate pins.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.nemesis.dataplanes import NemesisResult, Oracle


def planted_no_crash(result: NemesisResult) -> List[str]:
    """Fails iff a server process crashed — the planted-bug arm."""
    crashes = getattr(result.report, "server_crashes", None)
    if crashes is None:
        # txn dataplanes: the crash arm is the plan rule mapped onto
        # TxnConfig.crash, so the plan is the witness
        crashes = len(result.schedule.plan.crashes)
    if crashes:
        return ["planted oracle: %d server crash(es) observed" % crashes]
    return []


#: name -> oracle; names are what artifacts record
ORACLES: Dict[str, Oracle] = {
    "planted-no-crash": planted_no_crash,
}


def resolve(names: Sequence[str]) -> Tuple[Oracle, ...]:
    """Map oracle names to callables, failing loudly on a typo."""
    oracles = []
    for name in names:
        if name not in ORACLES:
            raise ValueError(
                "unknown oracle %r (have: %s)" % (name, ", ".join(sorted(ORACLES)))
            )
        oracles.append(ORACLES[name])
    return tuple(oracles)
