"""The nemesis search loop: many schedules, every oracle, shrink on red.

:func:`search` generates ``n_schedules`` independent schedules (seeded
as named children of the base seed, so schedule *i* is the same
forever regardless of how many run before it), round-robins them over
the requested dataplanes, and runs each through
:func:`~repro.nemesis.dataplanes.run_schedule`.  Every failure is
shrunk to a locally-minimal reproducer and (optionally) frozen as a
JSON artifact that ``herd-bench --nemesis-replay`` re-runs
byte-identically.

On a healthy tree the expected outcome of any search is **zero
violations** — that is the robustness claim the nemesis gate pins.
The planted-bug arm (``oracles=("planted-no-crash",)``) inverts the
game to prove the machinery works: the search must find the planted
failure, and the shrinker must reduce it to the crash atom alone.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.faults.rng import derive_seed
from repro.nemesis.artifact import build_artifact, save_artifact
from repro.nemesis.dataplanes import NemesisResult, run_schedule
from repro.nemesis.oracle import resolve
from repro.nemesis.schedule import DATAPLANE_NAMES, Schedule, generate
from repro.nemesis.shrink import ShrinkResult, shrink_schedule


@dataclass
class FailureCase:
    """One failing schedule: as found, and as shrunk."""

    result: NemesisResult
    shrunk: Optional[ShrinkResult] = None
    artifact_path: Optional[str] = None


@dataclass
class SearchReport:
    """Everything one search examined and everything it found."""

    seed: int
    examined: int = 0
    per_dataplane: Dict[str, int] = field(default_factory=dict)
    failures: List[FailureCase] = field(default_factory=list)
    oracles: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            "nemesis search seed=%d: %d schedules examined (%s), %d failure(s)%s"
            % (
                self.seed,
                self.examined,
                ", ".join(
                    "%s=%d" % kv for kv in sorted(self.per_dataplane.items())
                ),
                len(self.failures),
                " [oracles: %s]" % ", ".join(self.oracles) if self.oracles else "",
            )
        ]
        for case in self.failures:
            lines.append("  " + case.result.summary().replace("\n", "\n  "))
            if case.shrunk is not None:
                lines.append("  " + case.shrunk.summary())
            if case.artifact_path is not None:
                lines.append("  artifact: %s" % case.artifact_path)
        return "\n".join(lines)


def search(
    n_schedules: int,
    seed: int = 0,
    dataplanes: Optional[Sequence[str]] = None,
    oracles: Sequence[str] = (),
    shrink: bool = True,
    shrink_budget: int = 400,
    artifact_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SearchReport:
    """Run the randomized schedule search; see the module docstring.

    ``oracles`` are registry names (:mod:`repro.nemesis.oracle`), so
    artifacts can record them and replays re-apply them.  ``progress``
    is an optional line sink (e.g. ``print``) for long searches.
    """
    if n_schedules < 1:
        raise ValueError("n_schedules must be >= 1")
    names = tuple(dataplanes) if dataplanes else DATAPLANE_NAMES
    for name in names:
        if name not in DATAPLANE_NAMES:
            raise ValueError(
                "unknown dataplane %r (have: %s)"
                % (name, ", ".join(DATAPLANE_NAMES))
            )
    extra = resolve(oracles)
    report = SearchReport(seed=seed, oracles=list(oracles))
    for i in range(n_schedules):
        dataplane = names[i % len(names)]
        schedule = generate(derive_seed(seed, "nemesis.search.%d" % i), dataplane)
        result = run_schedule(schedule, extra)
        report.examined += 1
        report.per_dataplane[dataplane] = (
            report.per_dataplane.get(dataplane, 0) + 1
        )
        if result.ok:
            continue
        case = FailureCase(result=result)
        if progress is not None:
            progress(
                "nemesis: %s seed=%d FAILED (%d violation(s)); shrinking"
                % (dataplane, schedule.seed, len(result.violations))
            )
        if shrink:
            case.shrunk = shrink_schedule(
                schedule, extra_oracles=extra, max_tests=shrink_budget
            )
        if artifact_dir is not None:
            frozen = case.shrunk
            artifact = build_artifact(
                NemesisResult(
                    schedule=frozen.schedule if frozen else schedule,
                    violations=list(
                        frozen.violations if frozen else result.violations
                    ),
                    fingerprint=(
                        frozen.fingerprint if frozen else result.fingerprint
                    ),
                ),
                oracles=oracles,
                shrink_stats=None
                if frozen is None
                else {
                    "atoms_before": frozen.atoms_before,
                    "atoms_after": frozen.atoms_after,
                    "tests": frozen.tests,
                    "minimal": frozen.minimal,
                },
            )
            path = os.path.join(
                artifact_dir,
                "nemesis-%s-seed%d.json" % (dataplane, schedule.seed),
            )
            save_artifact(path, artifact)
            case.artifact_path = path
        report.failures.append(case)
    return report
