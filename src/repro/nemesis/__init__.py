"""repro.nemesis: randomized chaos-schedule search with shrinking.

The nemesis closes the loop the chaos harness opened: instead of one
seeded fault plan per run, it *searches* — generating random fault
schedules over every dataplane (HERD, replicated HA, elastic
migration, QoS overload, both transaction dataplanes), judging each
with the unified invariant-oracle suite, and delta-debugging any
failure down to a locally-minimal reproducer frozen as a JSON artifact
that replays byte-identically (``herd-bench --nemesis-replay``).

Layers:

* :mod:`~repro.nemesis.schedule` — the dataplane registry and the
  seeded schedule generator;
* :mod:`~repro.nemesis.dataplanes` — adapters running one schedule
  through its harness and collecting oracle verdicts;
* :mod:`~repro.nemesis.oracle` — named extra oracles (including the
  planted-bug arm that proves the machinery finds and shrinks);
* :mod:`~repro.nemesis.shrink` — ddmin + 1-minimality + window
  halving;
* :mod:`~repro.nemesis.search` — the top-level search loop;
* :mod:`~repro.nemesis.artifact` — JSON repro artifacts and replay.

See docs/NEMESIS.md for the design and examples/nemesis.py for a tour.
"""

from repro.nemesis.artifact import (
    ReplayResult,
    build_artifact,
    load_artifact,
    replay,
    save_artifact,
)
from repro.nemesis.dataplanes import NemesisResult, run_schedule
from repro.nemesis.oracle import ORACLES, planted_no_crash, resolve
from repro.nemesis.schedule import (
    DATAPLANE_NAMES,
    DATAPLANES,
    DataplaneSpec,
    Schedule,
    generate,
)
from repro.nemesis.search import FailureCase, SearchReport, search
from repro.nemesis.shrink import (
    ShrinkResult,
    atoms_of,
    plan_from_atoms,
    shrink_schedule,
)

__all__ = [
    "DATAPLANES",
    "DATAPLANE_NAMES",
    "DataplaneSpec",
    "FailureCase",
    "NemesisResult",
    "ORACLES",
    "ReplayResult",
    "Schedule",
    "SearchReport",
    "ShrinkResult",
    "atoms_of",
    "build_artifact",
    "generate",
    "load_artifact",
    "plan_from_atoms",
    "planted_no_crash",
    "replay",
    "resolve",
    "run_schedule",
    "save_artifact",
    "search",
    "shrink_schedule",
]
