"""Measurement helpers: latency percentiles and windowed rates.

Experiments follow the paper's methodology: run with a warm-up period,
then measure operations completed inside a window and report millions of
operations per second (Mops) plus average / 5th / 95th percentile
latency (Figure 11's error bars are the 5th and 95th percentiles).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class LatencyRecorder:
    """Collects per-operation latencies (ns) inside a measurement window.

    The window is half-open, ``[window_start, window_end)``: an op
    completing exactly at a boundary belongs to the window *starting*
    there, so adjacent windows never double-count it.
    """

    def __init__(self, window_start: float = 0.0, window_end: float = float("inf")) -> None:
        self.window_start = window_start
        self.window_end = window_end
        self.samples: List[float] = []

    def record(self, completed_at: float, latency: float) -> None:
        """Record ``latency`` if the op completed inside the window."""
        if self.window_start <= completed_at < self.window_end:
            self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        """Average latency in ns (0 when empty)."""
        if not self.samples:
            return 0.0
        return float(np.mean(self.samples))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile latency in ns (0 when empty)."""
        if not self.samples:
            return 0.0
        return float(np.percentile(self.samples, q))

    def summary(self) -> dict:
        """Mean / p5 / p50 / p95 / p99 / p99.9 in microseconds."""
        if not self.samples:
            return {
                "mean_us": 0.0,
                "p5_us": 0.0,
                "p50_us": 0.0,
                "p95_us": 0.0,
                "p99_us": 0.0,
                "p999_us": 0.0,
            }
        arr = np.asarray(self.samples)
        return {
            "mean_us": float(arr.mean()) / 1e3,
            "p5_us": float(np.percentile(arr, 5)) / 1e3,
            "p50_us": float(np.percentile(arr, 50)) / 1e3,
            "p95_us": float(np.percentile(arr, 95)) / 1e3,
            "p99_us": float(np.percentile(arr, 99)) / 1e3,
            "p999_us": float(np.percentile(arr, 99.9)) / 1e3,
        }


class RateMeter:
    """Counts operations completed inside ``[window_start, window_end)``.

    Half-open like :class:`LatencyRecorder`: a completion exactly at
    ``window_end`` is *not* counted, so back-to-back windows partition
    time without double counting.
    """

    def __init__(self, window_start: float = 0.0, window_end: float = float("inf")) -> None:
        self.window_start = window_start
        self.window_end = window_end
        self.count = 0
        self.total = 0

    def record(self, completed_at: float, n: int = 1) -> None:
        """Count ``n`` completions at simulated time ``completed_at``."""
        self.total += n
        if self.window_start <= completed_at < self.window_end:
            self.count += n

    def mops(self, window_end: Optional[float] = None) -> float:
        """Millions of operations per second over the window.

        ``window_end`` overrides the configured end when the experiment
        stopped early (e.g. the simulator was run to a shorter horizon).
        A rate over an unbounded window is meaningless (it used to
        silently come out as 0.0), so that raises instead.
        """
        end = self.window_end if window_end is None else window_end
        if end == float("inf"):
            raise ValueError(
                "RateMeter window is unbounded: construct with a finite "
                "window_end or pass one to mops()"
            )
        elapsed_ns = end - self.window_start
        if elapsed_ns <= 0:
            return 0.0
        return self.count / elapsed_ns * 1e3  # ops/ns -> Mops
