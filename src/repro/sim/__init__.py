"""Discrete-event simulation engine.

This package is a small, dependency-free discrete-event kernel in the
style of SimPy, specialised for the needs of the RDMA fabric models in
:mod:`repro.hw`:

* :class:`~repro.sim.engine.Simulator` — the event calendar and clock
  (simulated time is measured in nanoseconds).
* :class:`~repro.sim.engine.Process` — generator-based coroutines that
  ``yield`` events to wait for them.
* :class:`~repro.sim.resources.FifoServer` — an O(1) deterministic
  queueing server used for every serialised hardware unit (NIC engines,
  PCIe PIO bus, DMA engines, CPU cores).
* :class:`~repro.sim.resources.Store` — a FIFO mailbox used for
  completion queues and request queues.
"""

from repro.sim.engine import Event, HeapSimulator, Process, Simulator, Timeout
from repro.sim.resources import FifoServer, Resource, Store
from repro.sim.stats import LatencyRecorder, RateMeter

__all__ = [
    "Event",
    "FifoServer",
    "HeapSimulator",
    "LatencyRecorder",
    "Process",
    "RateMeter",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
]
