"""Event calendar, events, and generator-based processes.

The simulator keeps a single binary heap of ``(time, sequence, event)``
entries.  The sequence number makes execution order fully deterministic:
two events scheduled for the same instant fire in the order they were
scheduled.  Simulated time is a float number of nanoseconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` marks it
    triggered, records its value, and schedules its callbacks to run at
    the current simulation time.  Events may be triggered at most once.
    """

    __slots__ = ("sim", "callbacks", "_value", "triggered", "_scheduled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self.triggered = False
        self._scheduled = False

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (``None`` until then)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to all waiters."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self._value = value
        self.sim._schedule(0.0, self)
        self._scheduled = True
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires.

        If the event has already been dispatched, ``fn`` runs at the
        current simulation time (never synchronously), preserving
        deterministic ordering.
        """
        if self.callbacks is None:
            # Already dispatched: run the callback via a fresh event so
            # it still goes through the calendar.
            proxy = Event(self.sim)
            proxy.add_callback(lambda _e: fn(self))
            proxy.succeed()
        else:
            self.callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        super().__init__(sim)
        self.triggered = True
        self._value = value
        sim._schedule(delay, self)
        self._scheduled = True


class Process(Event):
    """A coroutine driven by the simulator.

    The wrapped generator ``yield``s :class:`Event` instances; the
    process resumes when the yielded event fires, receiving the event's
    value as the result of the ``yield`` expression.  A process is
    itself an event that fires (with the generator's return value) when
    the generator finishes.
    """

    __slots__ = ("_gen", "name")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Event, Any, Any],
        name: str = "process",
    ) -> None:
        super().__init__(sim)
        self._gen = gen
        self.name = name
        # Kick off the generator via the calendar so that construction
        # order does not matter within a time step.
        start = Event(sim)
        start.add_callback(self._resume)
        start.succeed()

    def _resume(self, completed: Event) -> None:
        try:
            target = self._gen.send(completed.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise TypeError(
                "%s yielded %r; processes must yield Event instances"
                % (self.name, target)
            )
        target.add_callback(self._resume)


class Simulator:
    """The event calendar and simulated clock (nanoseconds)."""

    #: observability creation hook (see :func:`repro.obs.session.capture`):
    #: when set, called with each new simulator so an ambient capture can
    #: attach ``sim.metrics`` / ``sim.tracer`` before any resources exist
    _obs_hook: Optional[Callable[["Simulator"], None]] = None

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        if Simulator._obs_hook is not None:
            Simulator._obs_hook(self)

    # -- scheduling -----------------------------------------------------

    def _schedule(self, delay: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(
        self, gen: Generator[Event, Any, Any], name: str = "process"
    ) -> Process:
        """Register a generator as a running process."""
        return Process(self, gen, name)

    def call_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Run a plain callback ``delay`` ns from now."""
        event = Timeout(self, delay)
        event.add_callback(lambda _e: fn())

    # -- execution ------------------------------------------------------

    def run(self, until: float) -> None:
        """Advance the clock, dispatching events, until time ``until``.

        Events scheduled exactly at ``until`` do fire; the clock ends at
        ``until`` even if the calendar drains early.
        """
        if until < self.now:
            raise ValueError("cannot run backwards: until=%r < now=%r" % (until, self.now))
        heap = self._heap
        while heap and heap[0][0] <= until:
            time, _seq, event = heapq.heappop(heap)
            self.now = time
            event._dispatch()
        self.now = until

    def run_until_idle(self, limit: float = float("inf")) -> None:
        """Dispatch every pending event (bounded by ``limit``).

        With a finite ``limit`` the clock ends at ``limit`` (exactly
        like :meth:`run`), even when the calendar drains early —
        otherwise rates and utilizations computed from ``sim.now``
        after a bounded drain would be silently inflated.
        """
        if limit < self.now:
            raise ValueError(
                "cannot run backwards: limit=%r < now=%r" % (limit, self.now)
            )
        heap = self._heap
        while heap and heap[0][0] <= limit:
            time, _seq, event = heapq.heappop(heap)
            self.now = time
            event._dispatch()
        if limit != float("inf"):
            self.now = limit

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` when idle)."""
        return self._heap[0][0] if self._heap else float("inf")


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that fires once every event in ``events`` has fired.

    The combined event's value is the list of the individual values in
    the order the events were given.
    """
    events = list(events)
    combined = Event(sim)
    remaining = [len(events)]
    values: List[Any] = [None] * len(events)
    if not events:
        combined.succeed([])
        return combined

    def make_callback(index: int) -> Callable[[Event], None]:
        def on_fire(event: Event) -> None:
            values[index] = event.value
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.succeed(values)

        return on_fire

    for index, event in enumerate(events):
        event.add_callback(make_callback(index))
    return combined
