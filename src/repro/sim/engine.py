"""Event calendar, events, and generator-based processes.

The simulator dispatches events in exact ``(time, sequence)`` order:
two events scheduled for the same instant fire in the order they were
scheduled.  Simulated time is a float number of nanoseconds.

The calendar is a three-tier structure tuned on the meta-engine
benchmarks (see docs/ENGINE.md for the profiles and the before/after
table):

* an **immediate deque** absorbs every zero-delay schedule — the
  ``succeed()`` / mailbox-handoff flood that dominates real workloads.
  Every immediate entry carries the *current* timestamp (``now`` cannot
  advance while any are queued), so the deque holds bare events: FIFO
  order is ``(time, seq)`` order and no timestamps are stored at all;
* future events go to **parallel pending arrays** (one list of floats,
  one list of events, appended in schedule order — scheduling is one
  compare and two ``list.append``\\ s).  When the dispatcher needs them
  it sorts the float array once with a *stable* C sort (numpy argsort)
  into the **active run** and walks it with a cursor.  Because pending
  entries are appended in increasing sequence order, a stable sort by
  time alone *is* a sort by ``(time, seq)`` — the tie-break never has
  to be materialised;
* the run is opened at most :attr:`Simulator.RUN_CHUNK` events at a
  time (extended over ties so equal timestamps never straddle the
  boundary).  Events that land **inside the open run window** go to a
  small overflow heap merged during dispatch; events beyond the window
  append to pending.  Chunking keeps the window — and therefore the
  overflow heap — small even when a far-future watchdog is pending.

Ordering at merge points never needs stored sequence numbers:

* overflow entries are always scheduled *after* every event in the
  active run (the run is rebuilt only when the heap is empty), so on a
  timestamp tie the run entry fires first — the merge compares times
  strictly;
* immediate entries are appended *after* any run/overflow entry that
  shares their timestamp could have been scheduled, so on a tie the
  calendar head fires first — again a strict comparison.

:class:`HeapSimulator` keeps the original single-binary-heap calendar
alive as a reference oracle: the property tests drive both engines over
identical schedules and assert identical dispatch sequences, and the
``engine`` lab sweep gates the sorted-run calendar's speedup against it.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

import numpy as _np

_heappush = heapq.heappush
_heappop = heapq.heappop

_NEG_INF = float("-inf")

#: below this many pending entries, a pure-Python index sort beats the
#: numpy round trip (array creation dominates for tiny batches)
_NUMPY_SORT_MIN = 64


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` marks it
    triggered, records its value, and schedules its callbacks to run at
    the current simulation time.  Events may be triggered at most once.
    """

    __slots__ = ("sim", "callbacks", "_value", "triggered", "_scheduled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self.triggered = False
        self._scheduled = False

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (``None`` until then)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to all waiters."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self._value = value
        self.sim._schedule(0.0, self)
        self._scheduled = True
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires.

        If the event has already been dispatched, ``fn`` runs at the
        current simulation time (never synchronously), preserving
        deterministic ordering.  Late callbacks are batched: consecutive
        registrations with no intervening schedule share one calendar
        entry instead of allocating a proxy event each (the entries
        they saved could only ever have been adjacent, so the dispatch
        order is exactly the per-proxy order).
        """
        callbacks = self.callbacks
        if callbacks is None:
            # Already dispatched: run the callback via the calendar so
            # it still fires in deterministic order, batching with the
            # previous late callback when nothing was scheduled since.
            sim = self.sim
            flush = sim._late_flush
            if (
                flush is not None
                and sim._late_seq == sim._seq
                and flush.callbacks is not None
            ):
                flush.pairs.append((self, fn))
                return
            flush = _LateFlush.__new__(_LateFlush)
            flush.sim = sim
            flush.pairs = [(self, fn)]
            flush.callbacks = [_run_late_pairs]
            flush._value = None
            flush.triggered = True
            flush._scheduled = True
            sim._schedule(0.0, flush)
            sim._late_flush = flush
            sim._late_seq = sim._seq
        else:
            callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)


class _LateFlush(Event):
    """One calendar entry carrying a batch of late-added callbacks."""

    __slots__ = ("pairs",)


def _run_late_pairs(flush: "_LateFlush") -> None:
    for event, fn in flush.pairs:
        fn(event)


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        # Inlined Event.__init__ — Timeouts are the single hottest
        # allocation in the simulator and the super() chain costs more
        # than the attribute stores themselves.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self.triggered = True
        self._scheduled = True
        sim._schedule(delay, self)


_new_timeout = Timeout.__new__


class Process(Event):
    """A coroutine driven by the simulator.

    The wrapped generator ``yield``s :class:`Event` instances; the
    process resumes when the yielded event fires, receiving the event's
    value as the result of the ``yield`` expression.  A process is
    itself an event that fires (with the generator's return value) when
    the generator finishes.
    """

    __slots__ = ("_gen", "_send", "_on_fire", "name")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Event, Any, Any],
        name: str = "process",
    ) -> None:
        super().__init__(sim)
        self._gen = gen
        # One bound ``send`` and one bound ``_resume`` for the whole
        # process lifetime — resuming is the hottest call chain in every
        # process-driven model and rebinding them per yield costs more
        # than the generator switch itself.
        self._send = gen.send
        self._on_fire = self._resume
        self.name = name
        # Kick off the generator via the calendar so that construction
        # order does not matter within a time step.
        start = Event(sim)
        start.callbacks.append(self._on_fire)
        start.succeed()

    def _resume(self, completed: Event) -> None:
        try:
            target = self._send(completed._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        try:
            callbacks = target.callbacks
        except AttributeError:
            raise TypeError(
                "%s yielded %r; processes must yield Event instances"
                % (self.name, target)
            ) from None
        if callbacks is None:
            target.add_callback(self._on_fire)
        else:
            callbacks.append(self._on_fire)


def _open_run(
    times: List[float], events: List[Event]
) -> Tuple[List[float], List[Event]]:
    """Stably sorted copies of parallel (times, events) arrays.

    ``times``/``events`` are parallel and appended in schedule order, so
    a *stable* sort by time alone reproduces exact (time, seq) order.
    Large batches go through numpy (C sort on a float64 array, plus an
    O(n) already-sorted check that makes monotone schedules — a server
    admitting back-to-back jobs — free); small batches use a plain index
    sort, which beats the numpy round trip below ~64 entries.
    """
    n = len(times)
    if n >= _NUMPY_SORT_MIN:
        arr = _np.asarray(times)
        if not (arr[1:] < arr[:-1]).any():
            return list(times), list(events)
        order = arr.argsort(kind="stable")
        return arr[order].tolist(), [events[i] for i in order.tolist()]
    if n > 1:
        order = sorted(range(n), key=times.__getitem__)
        return [times[i] for i in order], [events[i] for i in order]
    return list(times), list(events)


class Simulator:
    """The event calendar and simulated clock (nanoseconds)."""

    #: observability creation hook (see :func:`repro.obs.session.capture`):
    #: when set, called with each new simulator so an ambient capture can
    #: attach ``sim.metrics`` / ``sim.tracer`` before any resources exist
    _obs_hook: Optional[Callable[["Simulator"], None]] = None

    #: how many pending events are sorted into the active run at a time.
    #: Small enough that one far-future watchdog does not stretch the
    #: run window over the whole simulation (which would push every
    #: subsequent schedule onto the overflow heap), large enough that
    #: the per-chunk sort amortises to nothing.  The equivalence
    #: property tests shrink it to stress the window-boundary logic.
    RUN_CHUNK = 4096

    def __init__(self) -> None:
        self.now: float = 0.0
        self._seq = 0
        #: zero-delay entries; all at the current instant, FIFO == (time,
        #: seq) order by construction
        self._imm: Deque[Event] = deque()
        #: future events beyond the run window, unsorted, in seq order.
        #: These two lists are never rebound (only cleared), so the
        #: bound ``append``\\ s below stay valid for the simulator's life.
        self._pending_t: List[float] = []
        self._pending_e: List[Event] = []
        self._imm_append = self._imm.append
        self._pt_append = self._pending_t.append
        self._pe_append = self._pending_e.append
        #: the sorted run (parallel arrays) + read cursor + window end
        self._active_t: List[float] = []
        self._active_e: List[Event] = []
        self._ai = 0
        self._run_end = 0
        #: largest timestamp inside the open run window (-inf: closed)
        self._run_max = _NEG_INF
        #: entries that landed inside the open window while draining it
        self._cur_heap: List[Tuple[float, int, Event]] = []
        #: late-callback batching state (see Event.add_callback)
        self._late_flush: Optional[_LateFlush] = None
        self._late_seq = -1
        if Simulator._obs_hook is not None:
            Simulator._obs_hook(self)

    # -- scheduling -----------------------------------------------------

    def _schedule(self, delay: float, event: Event) -> None:
        now = self.now
        time = now + delay
        self._seq += 1
        if time > self._run_max:
            # Beyond the open run window (or no window open): sorted
            # in bulk when the dispatcher gets there.
            self._pt_append(time)
            self._pe_append(event)
        elif time <= now:
            # Zero delay (or a positive delay that collapses into the
            # current instant in float arithmetic): all immediate
            # entries share the current timestamp, so FIFO order is
            # (time, seq) order.
            self._imm_append(event)
        else:
            # Inside the open window: must interleave with the active
            # run, so pay the heap push.
            _heappush(self._cur_heap, (time, self._seq, event))

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` ns from now.

        Allocation and scheduling are inlined: ``sim.timeout`` is the
        front door for every modelled latency, and the constructor +
        ``_schedule`` call frames would double its cost.
        """
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        event = _new_timeout(Timeout)
        event.sim = self
        event.callbacks = []
        event._value = value
        event.triggered = True
        event._scheduled = True
        now = self.now
        time = now + delay
        self._seq += 1
        if time > self._run_max:
            self._pt_append(time)
            self._pe_append(event)
        elif time <= now:
            self._imm_append(event)
        else:
            _heappush(self._cur_heap, (time, self._seq, event))
        return event

    def process(
        self, gen: Generator[Event, Any, Any], name: str = "process"
    ) -> Process:
        """Register a generator as a running process."""
        return Process(self, gen, name)

    def call_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Run a plain callback ``delay`` ns from now."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _e: fn())

    # -- execution ------------------------------------------------------

    def _drain(self, until: float) -> None:
        """Dispatch every event with ``time <= until`` in (time, seq) order.

        Invariants maintained by :meth:`_schedule` and this loop:

        * immediate entries all carry the *current* timestamp (appended
          at ``time == now``, and ``now`` cannot advance while any are
          queued) and were scheduled after any run/overflow entry that
          shares it, so the deque drains whenever the calendar head is
          strictly later than ``now`` — completely, since nothing a
          dispatch appends can precede it;
        * overflow-heap entries are ``<= run_max`` and pending entries
          are ``> run_max``, so the run + overflow heap can be merged
          and fully dispatched before pending is ever consulted, and the
          run is rebuilt only when the overflow heap is empty — which
          makes every overflow entry younger than every run entry, so
          the merge breaks timestamp ties toward the run with a strict
          comparison;
        * entries with equal timestamps never straddle the run-window
          boundary (the chunk cut is extended over ties), so seq order
          within an instant is preserved across window advances.
        """
        imm = self._imm
        cur_heap = self._cur_heap
        active_t = self._active_t
        active_e = self._active_e
        ai = self._ai
        run_end = self._run_end
        while True:
            if not imm and not cur_heap:
                # Fast path: nothing can preempt the sorted run — walk
                # it with an index until a dispatch schedules an
                # immediate or in-window event.
                while ai < run_end:
                    time = active_t[ai]
                    if time > until:
                        self._ai = ai
                        self._run_end = run_end
                        return
                    event = active_e[ai]
                    ai += 1
                    self.now = time
                    callbacks = event.callbacks
                    event.callbacks = None
                    if callbacks:
                        for fn in callbacks:
                            fn(event)
                        if imm or cur_heap:
                            break

            # -- next calendar entry (active run merged with overflow;
            # strict < breaks timestamp ties toward the older run entry)
            if ai < run_end:
                head_t = active_t[ai]
                if cur_heap and cur_heap[0][0] < head_t:
                    head_t = cur_heap[0][0]
                    from_heap = True
                else:
                    from_heap = False
            elif cur_heap:
                head_t = cur_heap[0][0]
                from_heap = True
            else:
                head_t = None
                from_heap = False

            # -- the immediate queue drains whenever the head is
            # strictly after the current instant.  `now` cannot advance
            # while it runs, and anything a dispatch schedules lands
            # behind it in the deque or strictly after `now` — so no
            # per-entry re-check is needed.
            if imm:
                if head_t is None or head_t > self.now:
                    while imm:
                        event = imm.popleft()
                        callbacks = event.callbacks
                        event.callbacks = None
                        if callbacks:
                            for fn in callbacks:
                                fn(event)
                    continue

            if head_t is None:
                # Run window exhausted: advance it.  The overflow heap
                # is empty here, so merging the undrained tail with
                # pending keeps global seq order: every tail entry is
                # older than every pending entry, and both runs are
                # individually in seq order.
                pending_t = self._pending_t
                n = len(active_t)
                if pending_t:
                    pending_e = self._pending_e
                    if ai == 1 == n and len(pending_t) == 1:
                        # Ping-pong steady state: one event in flight
                        # (a process re-arming its own timer).  Reuse
                        # the one-slot run in place — no sort, no
                        # allocation, no rebind.
                        time = active_t[0] = pending_t[0]
                        active_e[0] = pending_e[0]
                        del pending_t[:]
                        del pending_e[:]
                        ai = 0
                        run_end = 1
                        self._run_max = time
                        self._run_end = 1
                        continue
                    if ai < n:
                        rest_t = active_t[ai:]
                        rest_e = active_e[ai:]
                        rest_t.extend(pending_t)
                        rest_e.extend(pending_e)
                        active_t, active_e = _open_run(rest_t, rest_e)
                    else:
                        active_t, active_e = _open_run(pending_t, pending_e)
                    # The pending lists are cleared, never replaced —
                    # the bound appends in _schedule must stay live.
                    del pending_t[:]
                    del pending_e[:]
                    self._active_t = active_t
                    self._active_e = active_e
                    ai = 0
                    n = len(active_t)
                elif ai >= n:
                    # Calendar fully drained: close the window so
                    # schedules made between runs append to pending.
                    if n:
                        self._active_t = active_t = []
                        self._active_e = active_e = []
                    self._ai = ai = 0
                    self._run_end = run_end = 0
                    self._run_max = _NEG_INF
                    return
                run_end = ai + self.RUN_CHUNK
                if run_end >= n:
                    run_end = n
                else:
                    # Never split equal timestamps across the window
                    # boundary: a tie left outside would dispatch after
                    # in-window entries scheduled later.
                    cut = active_t[run_end - 1]
                    while run_end < n and active_t[run_end] == cut:
                        run_end += 1
                self._run_max = active_t[run_end - 1]
                self._run_end = run_end
                continue

            if head_t > until:
                self._ai = ai
                self._run_end = run_end
                return
            if from_heap:
                event = _heappop(cur_heap)[2]
            else:
                event = active_e[ai]
                ai += 1
            self.now = head_t
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for fn in callbacks:
                    fn(event)

    def run(self, until: float) -> None:
        """Advance the clock, dispatching events, until time ``until``.

        Events scheduled exactly at ``until`` do fire; the clock ends at
        ``until`` even if the calendar drains early.
        """
        if until < self.now:
            raise ValueError("cannot run backwards: until=%r < now=%r" % (until, self.now))
        self._drain(until)
        self.now = until

    def run_until_idle(self, limit: float = float("inf")) -> None:
        """Dispatch every pending event (bounded by ``limit``).

        With a finite ``limit`` the clock ends at ``limit`` (exactly
        like :meth:`run`), even when the calendar drains early —
        otherwise rates and utilizations computed from ``sim.now``
        after a bounded drain would be silently inflated.
        """
        if limit < self.now:
            raise ValueError(
                "cannot run backwards: limit=%r < now=%r" % (limit, self.now)
            )
        self._drain(limit)
        if limit != float("inf"):
            self.now = limit

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` when idle)."""
        if self._imm:
            return self.now
        best: Optional[float] = None
        if self._ai < len(self._active_t):
            best = self._active_t[self._ai]
        if self._cur_heap:
            t = self._cur_heap[0][0]
            if best is None or t < best:
                best = t
        if self._pending_t:
            t = min(self._pending_t)
            if best is None or t < best:
                best = t
        return best if best is not None else float("inf")


class HeapSimulator(Simulator):
    """The original single-binary-heap calendar, kept as an oracle.

    Scheduling pushes ``(time, seq, event)`` onto one heap; dispatch
    pops it.  Slower than the sorted-run calendar (every event pays
    ``log n`` interpreted tuple comparisons against the whole future),
    but trivially correct — the equivalence property tests and the
    ``engine`` lab sweep run it side by side with :class:`Simulator`.
    """

    def __init__(self) -> None:
        super().__init__()
        self._heap: List[Tuple[float, int, Event]] = []

    def _schedule(self, delay: float, event: Event) -> None:
        self._seq += 1
        _heappush(self._heap, (self.now + delay, self._seq, event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Simulator.timeout inlines the sorted-run _schedule; the oracle
        # must route through its own.
        return Timeout(self, delay, value)

    def run(self, until: float) -> None:
        if until < self.now:
            raise ValueError("cannot run backwards: until=%r < now=%r" % (until, self.now))
        heap = self._heap
        while heap and heap[0][0] <= until:
            time, _seq, event = _heappop(heap)
            self.now = time
            event._dispatch()
        self.now = until

    def run_until_idle(self, limit: float = float("inf")) -> None:
        if limit < self.now:
            raise ValueError(
                "cannot run backwards: limit=%r < now=%r" % (limit, self.now)
            )
        heap = self._heap
        while heap and heap[0][0] <= limit:
            time, _seq, event = _heappop(heap)
            self.now = time
            event._dispatch()
        if limit != float("inf"):
            self.now = limit

    def peek(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that fires once every event in ``events`` has fired.

    The combined event's value is the list of the individual values in
    the order the events were given.
    """
    events = list(events)
    combined = Event(sim)
    remaining = [len(events)]
    values: List[Any] = [None] * len(events)
    if not events:
        combined.succeed([])
        return combined

    def make_callback(index: int) -> Callable[[Event], None]:
        def on_fire(event: Event) -> None:
            values[index] = event.value
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.succeed(values)

        return on_fire

    for index, event in enumerate(events):
        event.add_callback(make_callback(index))
    return combined
