"""Queueing resources used by the hardware models.

``FifoServer`` is the workhorse: every serialised hardware unit in the
RNIC/PCIe models (a processing engine, the PIO path of a PCIe bus, a DMA
engine, a CPU core issuing posts) is a single FIFO queue with
deterministic service times.  Because service is deterministic and FIFO,
a server does not need to be simulated with per-customer processes: its
state is just the time at which each of its ``capacity`` service slots
next becomes free, so admitting one customer is O(log capacity) and adds
a single calendar entry.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List

from repro.sim.engine import Event, Simulator

_new_event = Event.__new__


class FifoServer:
    """A FIFO queueing station with deterministic per-job service times.

    ``serve(service)`` enqueues a job requiring ``service`` ns of work
    and returns an :class:`Event` that fires when the job completes.
    With ``capacity`` > 1 the station behaves like ``capacity`` parallel
    servers fed from a single FIFO queue.
    """

    __slots__ = (
        "sim", "name", "capacity", "_free_at", "busy_time", "jobs", "obs", "tracer",
    )

    def __init__(self, sim: Simulator, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        # Min-heap of times at which each service slot becomes free.
        self._free_at: List[float] = [0.0] * capacity
        heapq.heapify(self._free_at)
        self.busy_time = 0.0
        self.jobs = 0
        # Observability (repro.obs): when the simulator carries a
        # metrics registry, `obs` is this station's queue-delay
        # histogram; utilization/jobs are pulled at snapshot time.
        metrics = getattr(sim, "metrics", None)
        self.obs = None if metrics is None else metrics.watch_fifo_server(self)
        # Cached once: observability attaches to the simulator before any
        # resources exist (see Simulator's class docstring), so a missing
        # tracer here stays missing — and a 3-arg getattr on an absent
        # attribute costs more than the rest of a serve() admission.
        self.tracer = getattr(sim, "tracer", None)

    def serve(self, service: float, value: Any = None) -> Event:
        """Enqueue a job; the returned event fires at completion."""
        if service < 0:
            raise ValueError("negative service time: %r" % service)
        sim = self.sim
        free_at = self._free_at
        # Single-slot stations (the common case: every PCIe/NIC path)
        # skip the heap; larger stations pay one pop + push.
        if len(free_at) == 1:
            start = free_at[0]
            if start < sim.now:
                start = sim.now
            done_at = start + service
            free_at[0] = done_at
        else:
            start = heapq.heappop(free_at)
            if start < sim.now:
                start = sim.now
            done_at = start + service
            heapq.heappush(free_at, done_at)
        if self.obs is not None:
            self.obs.observe(start - sim.now)
        self.busy_time += service
        self.jobs += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.span(self.name, start, done_at)
        # Inlined pre-triggered Event construction: serve() runs once
        # per simulated hardware transaction, and the Event.__init__ /
        # succeed() round trip costs more than the whole admission.
        event = _new_event(Event)
        event.sim = sim
        event.callbacks = []
        event._value = value
        event.triggered = True
        event._scheduled = True
        sim._schedule(done_at - sim.now, event)
        return event

    def delay_until_free(self) -> float:
        """How long a job arriving now would wait before service."""
        return max(0.0, self._free_at[0] - self.sim.now)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` ns this station spent busy.

        ``busy_time`` accrues a job's full service at admission, so the
        tail of a job that extends past the current instant has not
        actually been worked yet.  Clamp that overhang off before
        dividing: without it a station measured near the end of a
        bounded run can report a utilization above 1.0.
        """
        if elapsed <= 0:
            return 0.0
        now = self.sim.now
        busy = self.busy_time
        for free_at in self._free_at:
            if free_at > now:
                busy -= free_at - now
        return busy / (elapsed * self.capacity)


class Store:
    """An unbounded FIFO mailbox.

    ``put(item)`` never blocks.  ``get()`` returns an event that fires
    with the oldest item, immediately if one is queued, otherwise when
    the next ``put`` happens.  Used for completion queues, request
    queues, and inter-process handoff.
    """

    __slots__ = ("sim", "name", "_items", "_getters", "obs")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        metrics = getattr(sim, "metrics", None)
        if metrics is None:
            self.name = name
            self.obs = None
        else:
            if not name:
                # Anonymous stores are numbered by the per-simulator
                # registry, not a process-global counter — a metric
                # name must not depend on how many simulators ran
                # earlier in the same process.
                name = metrics.anon_store_name()
            self.name = name
            # depth high-water mark: how far this mailbox backed up
            self.obs = metrics.watch_store(self, name)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        getters = self._getters
        if getters:
            # Inlined Event.succeed: the getter is our own untriggered
            # event, so the double-trigger check can't fire and the
            # call frame is pure overhead on the handoff hot path.
            event = getters.popleft()
            event.triggered = True
            event._value = item
            event._scheduled = True
            self.sim._schedule(0.0, event)
        else:
            self._items.append(item)
            if self.obs is not None:
                self.obs.update_max(len(self._items))

    def get(self) -> Event:
        """An event firing with the next item."""
        items = self._items
        if items:
            # Inlined Event + succeed: a ready handoff is the hot path
            # of every completion queue and request mailbox.
            sim = self.sim
            event = _new_event(Event)
            event.sim = sim
            event.callbacks = []
            event._value = items.popleft()
            event.triggered = True
            event._scheduled = True
            sim._schedule(0.0, event)
            return event
        event = _new_event(Event)
        event.sim = self.sim
        event.callbacks = []
        event._value = None
        event.triggered = False
        event._scheduled = False
        self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Pop the next item without waiting, or ``None`` if empty."""
        if self._items:
            return self._items.popleft()
        return None

    def clear(self) -> int:
        """Discard all queued items; returns how many were dropped."""
        n = len(self._items)
        self._items.clear()
        return n

    def cancel(self, event: Event) -> bool:
        """Withdraw a waiting getter (e.g. its process crashed).

        Returns True if the event was still waiting; False if it was
        never queued here or has already been handed an item.
        """
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._items)


class Resource:
    """A classic counted resource with FIFO acquisition.

    Unlike :class:`FifoServer`, the holder decides when to release, so
    this suits critical sections whose length is not known up front.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        """An event firing when a unit is granted to the caller."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, granting it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release without acquire")
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1

    @property
    def in_use(self) -> int:
        return self._in_use
