"""Queueing resources used by the hardware models.

``FifoServer`` is the workhorse: every serialised hardware unit in the
RNIC/PCIe models (a processing engine, the PIO path of a PCIe bus, a DMA
engine, a CPU core issuing posts) is a single FIFO queue with
deterministic service times.  Because service is deterministic and FIFO,
a server does not need to be simulated with per-customer processes: its
state is just the time at which each of its ``capacity`` service slots
next becomes free, so admitting one customer is O(log capacity) and adds
a single calendar entry.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List

from repro.sim.engine import Event, Simulator


class FifoServer:
    """A FIFO queueing station with deterministic per-job service times.

    ``serve(service)`` enqueues a job requiring ``service`` ns of work
    and returns an :class:`Event` that fires when the job completes.
    With ``capacity`` > 1 the station behaves like ``capacity`` parallel
    servers fed from a single FIFO queue.
    """

    __slots__ = ("sim", "name", "capacity", "_free_at", "busy_time", "jobs", "obs")

    def __init__(self, sim: Simulator, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        # Min-heap of times at which each service slot becomes free.
        self._free_at: List[float] = [0.0] * capacity
        heapq.heapify(self._free_at)
        self.busy_time = 0.0
        self.jobs = 0
        # Observability (repro.obs): when the simulator carries a
        # metrics registry, `obs` is this station's queue-delay
        # histogram; utilization/jobs are pulled at snapshot time.
        metrics = getattr(sim, "metrics", None)
        self.obs = None if metrics is None else metrics.watch_fifo_server(self)

    def serve(self, service: float, value: Any = None) -> Event:
        """Enqueue a job; the returned event fires at completion."""
        if service < 0:
            raise ValueError("negative service time: %r" % service)
        sim = self.sim
        start = heapq.heappop(self._free_at)
        if start < sim.now:
            start = sim.now
        if self.obs is not None:
            self.obs.observe(start - sim.now)
        done_at = start + service
        heapq.heappush(self._free_at, done_at)
        self.busy_time += service
        self.jobs += 1
        tracer = getattr(sim, "tracer", None)
        if tracer is not None:
            tracer.span(self.name, start, done_at)
        event = Event(sim)
        event.triggered = True
        event._value = value
        sim._schedule(done_at - sim.now, event)
        return event

    def delay_until_free(self) -> float:
        """How long a job arriving now would wait before service."""
        return max(0.0, self._free_at[0] - self.sim.now)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` ns this station spent busy."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.capacity)


class Store:
    """An unbounded FIFO mailbox.

    ``put(item)`` never blocks.  ``get()`` returns an event that fires
    with the oldest item, immediately if one is queued, otherwise when
    the next ``put`` happens.  Used for completion queues, request
    queues, and inter-process handoff.
    """

    __slots__ = ("sim", "name", "_items", "_getters", "obs")

    #: fallback numbering for anonymous stores, per registry-less process
    _anon = 0

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        metrics = getattr(sim, "metrics", None)
        if metrics is None:
            self.name = name
            self.obs = None
        else:
            if not name:
                Store._anon += 1
                name = "store%d" % Store._anon
            self.name = name
            # depth high-water mark: how far this mailbox backed up
            self.obs = metrics.watch_store(self, name)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
            if self.obs is not None:
                self.obs.update_max(len(self._items))

    def get(self) -> Event:
        """An event firing with the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Pop the next item without waiting, or ``None`` if empty."""
        if self._items:
            return self._items.popleft()
        return None

    def clear(self) -> int:
        """Discard all queued items; returns how many were dropped."""
        n = len(self._items)
        self._items.clear()
        return n

    def cancel(self, event: Event) -> bool:
        """Withdraw a waiting getter (e.g. its process crashed).

        Returns True if the event was still waiting; False if it was
        never queued here or has already been handed an item.
        """
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._items)


class Resource:
    """A classic counted resource with FIFO acquisition.

    Unlike :class:`FifoServer`, the holder decides when to release, so
    this suits critical sections whose length is not known up front.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        """An event firing when a unit is granted to the caller."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, granting it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release without acquire")
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1

    @property
    def in_use(self) -> int:
        return self._in_use
