"""The append-only result store.

Results live under ``benchmarks/out/lab/<spec-name>.jsonl`` — one JSON
record per line, appended as points finish (in point order, so a sweep
run twice with different worker counts writes byte-identical files
modulo the volatile wall-clock fields).

Every record is keyed by a **content hash** over the point's identity
(task, resolved params, seed) *and* the code version (a hash of every
``repro`` source file).  Re-running a sweep therefore skips any point
whose key is already present — zero recomputation — while any code
change invalidates the whole cache without anyone having to remember
to clear it.  The file is append-only: newer records with the same key
win at load time, and old lines remain as history.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterator, List, Optional

from repro.lab.spec import Point, canonical

#: default store directory, relative to the current working directory
DEFAULT_ROOT = os.path.join("benchmarks", "out", "lab")

#: record fields that may differ between runs of identical points
#: (stripped by :func:`canonical_record` for determinism comparisons)
VOLATILE_FIELDS = ("wall_s", "finished_at", "worker", "attempts")

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """A 16-hex digest over every ``repro`` source file.

    Hashing the tree (rather than a VCS revision) keeps the cache
    correct in working copies with uncommitted edits and in
    installations without git metadata.
    """
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    digest.update(hashlib.sha256(fh.read()).digest())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def point_key(point: Point, code: Optional[str] = None) -> str:
    """The cache key: sha256 over (identity, code version)."""
    if code is None:
        code = code_version()
    payload = canonical({"identity": point.identity(), "code": code})
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def canonical_record(record: Dict[str, Any]) -> str:
    """A record as deterministic JSON, volatile fields stripped."""
    kept = {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}
    return canonical(kept)


class ResultStore:
    """JSONL result files under ``root``, one per spec."""

    def __init__(self, root: str = DEFAULT_ROOT) -> None:
        self.root = root

    def path(self, spec_name: str) -> str:
        return os.path.join(self.root, "%s.jsonl" % spec_name)

    def records(self, spec_name: str) -> Iterator[Dict[str, Any]]:
        """Every record in append order (including superseded ones)."""
        path = self.path(spec_name)
        if not os.path.exists(path):
            return
        with open(path) as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    raise ValueError(
                        "corrupt result store %s at line %d" % (path, lineno)
                    )

    def load(self, spec_name: str) -> Dict[str, Dict[str, Any]]:
        """Latest record per cache key (newest line wins)."""
        out: Dict[str, Dict[str, Any]] = {}
        for record in self.records(spec_name):
            out[record["key"]] = record
        return out

    def completed(self, spec_name: str) -> Dict[str, Dict[str, Any]]:
        """Latest *successful* record per cache key."""
        return {
            key: record
            for key, record in self.load(spec_name).items()
            if record.get("status") == "ok"
        }

    def append(self, spec_name: str, records: List[Dict[str, Any]]) -> None:
        if not records:
            return
        os.makedirs(self.root, exist_ok=True)
        with open(self.path(spec_name), "a") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")

    def latest_by_label(self, spec_name: str) -> Dict[str, Dict[str, Any]]:
        """Latest successful record per point *label* (any code version).

        Labels are the stable identity the gate and ``show`` use; keys
        are per-code-version and only drive caching.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for record in self.records(spec_name):
            if record.get("status") == "ok":
                out[record["label"]] = record
        return out
