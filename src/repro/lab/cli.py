"""``herd-lab``: run, cache, inspect, and gate experiment sweeps.

Examples::

    herd-lab list
    herd-lab run smoke --workers 4
    herd-lab run my_sweep.json --workers 8 --timeout 120
    herd-lab show smoke
    herd-lab baseline smoke --out benchmarks/baselines/lab-smoke.json
    herd-lab gate smoke --baseline benchmarks/baselines/lab-smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lab import gate as gate_mod
from repro.lab.runner import DEFAULT_TIMEOUT_S, run_sweep
from repro.lab.spec import BUILTIN_SPECS, resolve_spec
from repro.lab.store import DEFAULT_ROOT, ResultStore
from repro.lab.tasks import TASKS, headline


def _store(args) -> ResultStore:
    return ResultStore(args.store)


def cmd_list(args) -> int:
    print("built-in sweeps:")
    for name in sorted(BUILTIN_SPECS):
        spec = BUILTIN_SPECS[name]()
        print(
            "  %-14s %3d points  %s"
            % (name, len(spec.points()), spec.description)
        )
    print("tasks: " + "  ".join(sorted(TASKS)))
    from repro.faults.chaos import SCENARIOS

    print("chaos scenarios (for the chaos/ha/elastic tasks):")
    for name, blurb in SCENARIOS.items():
        print("  %-18s %s" % (name, blurb))
    print("(or pass a .json spec file; see docs/LAB.md)")
    return 0


def cmd_run(args) -> int:
    spec = resolve_spec(args.spec)
    outcome = run_sweep(
        spec,
        store=_store(args),
        workers=args.workers,
        timeout_s=args.timeout,
        force=args.force,
        progress=not args.quiet,
        max_attempts=args.max_attempts,
    )
    print(
        "%s: %d points (%d cached, %d ran, %d failed) -> %s"
        % (
            spec.name,
            len(outcome.points),
            outcome.n_cached,
            outcome.n_ran,
            outcome.n_failed,
            _store(args).path(spec.name),
        )
    )
    for failure in outcome.failures:
        print("  FAILED %s" % failure, file=sys.stderr)
    return 0 if outcome.ok else 1


def cmd_show(args) -> int:
    spec = resolve_spec(args.spec)
    results = _store(args).latest_by_label(spec.name)
    if not results:
        print(
            "no results for %s in %s (run `herd-lab run %s` first)"
            % (spec.name, _store(args).path(spec.name), args.spec),
            file=sys.stderr,
        )
        return 1
    print("%s — %d stored points" % (spec.name, len(results)))
    for label in sorted(results):
        record = results[label]
        cells = ", ".join(
            "%s=%.4g" % (metric, value)
            for metric, value in sorted(headline(record["task"], record["metrics"]).items())
        )
        print("  %-52s %s" % (label, cells))
    return 0


def _gated_results(spec, store):
    """Stored results for every spec point, erroring on holes."""
    results = store.latest_by_label(spec.name)
    missing = [p.label for p in spec.points() if p.label not in results]
    return results, missing


def cmd_baseline(args) -> int:
    spec = resolve_spec(args.spec)
    results, missing = _gated_results(spec, _store(args))
    if missing:
        print(
            "cannot baseline %s: %d of %d points not in the store; "
            "run `herd-lab run %s` first"
            % (spec.name, len(missing), len(spec.points()), args.spec),
            file=sys.stderr,
        )
        return 1
    baseline = gate_mod.capture_baseline(spec, results)
    gate_mod.write_baseline(baseline, args.out)
    print(
        "baseline for %s: %d points -> %s"
        % (spec.name, len(baseline["points"]), args.out)
    )
    return 0


def cmd_gate(args) -> int:
    spec = resolve_spec(args.spec)
    try:
        baseline = gate_mod.load_baseline(args.baseline)
    except (OSError, ValueError) as error:
        print("cannot load baseline: %s" % error, file=sys.stderr)
        return 2
    results, _missing = _gated_results(spec, _store(args))
    report = gate_mod.check(spec, results, baseline)
    print(report.summary())
    if args.bench_json:
        gate_mod.write_bench_json(report, baseline, args.bench_json)
        print("wrote %s" % args.bench_json)
    return 0 if report.passed else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="herd-lab",
        description="Parallel experiment sweeps with a cached result "
        "store and a perf-regression gate, over the HERD reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=False)

    sub.add_parser("list", help="list built-in sweeps and tasks")

    def add_common(p):
        p.add_argument("spec", help="built-in sweep name or a .json spec file")
        p.add_argument(
            "--store", default=DEFAULT_ROOT, metavar="DIR",
            help="result store directory (default %s)" % DEFAULT_ROOT,
        )

    run_p = sub.add_parser("run", help="execute a sweep (cached points are skipped)")
    add_common(run_p)
    run_p.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes (1 = serial, in-process)")
    run_p.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT_S,
                       metavar="S", help="per-point timeout in seconds")
    run_p.add_argument("--force", action="store_true",
                       help="recompute every point, ignoring the cache")
    run_p.add_argument("--max-attempts", type=int, default=3, metavar="K",
                       help="attempts per point when workers crash")
    run_p.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines")

    show_p = sub.add_parser("show", help="print stored results for a sweep")
    add_common(show_p)

    base_p = sub.add_parser("baseline", help="capture a baseline from stored results")
    add_common(base_p)
    base_p.add_argument("--out", required=True, metavar="PATH",
                        help="where to write the baseline JSON")

    gate_p = sub.add_parser(
        "gate", help="compare stored results against a baseline; exit 1 on regression"
    )
    add_common(gate_p)
    gate_p.add_argument("--baseline", required=True, metavar="PATH",
                        help="committed baseline JSON to gate against")
    gate_p.add_argument("--bench-json", default=gate_mod.BENCH_JSON_PATH,
                        metavar="PATH",
                        help="perf-trajectory snapshot to write (default "
                        "%s; empty string disables)" % gate_mod.BENCH_JSON_PATH)

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    try:
        return {
            "list": cmd_list,
            "run": cmd_run,
            "show": cmd_show,
            "baseline": cmd_baseline,
            "gate": cmd_gate,
        }[args.command](args)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
