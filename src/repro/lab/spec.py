"""Declarative sweep specifications.

A :class:`SweepSpec` names a *task* (``herd``, ``chaos``, ``figure`` —
see :mod:`repro.lab.tasks`), a dict of base parameters, and a list of
:class:`Axis` objects that vary parameters across points.  Expanding a
spec yields :class:`Point` objects — one fully resolved parameter set
per measurement cell, each with

* a **label**: a stable, human-readable id (``herd(get_fraction=0.5,
  value_size=32)``) used as the baseline key, so a captured baseline
  survives code changes;
* a **seed**: derived deterministically from the spec seed and the
  label via :func:`repro.faults.rng.derive_seed`, unless the point's
  parameters pin ``seed`` explicitly (e.g. a chaos seed axis);
* later, a **cache key** (see :mod:`repro.lab.store`) that also folds
  in the code version, so results are recomputed when the code changes
  but never when only the wall clock did.

Axes compose two ways: ``grid`` axes take the cross product (every
combination), ``zip`` axes advance in lockstep with each other (they
must have equal lengths).  Zip axes are expanded *within* each grid
combination, so a spec may mix both.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.faults.rng import derive_seed


def canonical(value: Any) -> str:
    """Deterministic JSON for hashing and labels (sorted keys)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Axis:
    """One swept parameter: ``name`` takes each value in ``values``.

    ``mode`` is ``"grid"`` (cross product with the other grid axes) or
    ``"zip"`` (advance in lockstep with the other zip axes).
    """

    name: str
    values: Sequence[Any]
    mode: str = "grid"

    def __post_init__(self) -> None:
        if self.mode not in ("grid", "zip"):
            raise ValueError("axis mode must be 'grid' or 'zip'; got %r" % (self.mode,))
        if not self.values:
            raise ValueError("axis %r has no values" % (self.name,))


@dataclass(frozen=True)
class Point:
    """One fully resolved measurement cell of a sweep."""

    index: int
    task: str
    params: Dict[str, Any]
    seed: int

    @property
    def label(self) -> str:
        """Stable human-readable id; the baseline key for this point."""
        inner = ",".join(
            "%s=%s" % (k, json.dumps(self.params[k], sort_keys=True))
            for k in sorted(self.params)
        )
        return "%s(%s)" % (self.task, inner)

    def identity(self) -> Dict[str, Any]:
        """The fields that define *what* this point measures."""
        return {"task": self.task, "params": self.params, "seed": self.seed}


@dataclass
class SweepSpec:
    """A named sweep: task + base params + axes + seed."""

    name: str
    task: str
    base: Dict[str, Any] = field(default_factory=dict)
    axes: List[Axis] = field(default_factory=list)
    #: spec-level seed; per-point seeds are derived from it and the
    #: point label, so adding an axis never reshuffles existing points
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        from repro.lab.tasks import TASKS  # deferred: avoid import cycle

        if self.task not in TASKS:
            raise ValueError(
                "unknown task %r (known: %s)" % (self.task, ", ".join(sorted(TASKS)))
            )
        zip_lengths = {len(a.values) for a in self.axes if a.mode == "zip"}
        if len(zip_lengths) > 1:
            raise ValueError(
                "zip axes must have equal lengths; got %s"
                % sorted(zip_lengths)
            )
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate axis names: %s" % names)

    def points(self) -> List[Point]:
        """Expand the axes into the full, ordered list of points."""
        grid_axes = [a for a in self.axes if a.mode == "grid"]
        zip_axes = [a for a in self.axes if a.mode == "zip"]
        combos: Iterable[Sequence[Any]] = itertools.product(
            *[a.values for a in grid_axes]
        ) if grid_axes else [()]
        zipped: List[Sequence[Any]] = (
            list(zip(*[a.values for a in zip_axes])) if zip_axes else [()]
        )
        out: List[Point] = []
        for combo in combos:
            for row in zipped:
                params = dict(self.base)
                params.update(zip((a.name for a in grid_axes), combo))
                params.update(zip((a.name for a in zip_axes), row))
                point = Point(len(out), self.task, params, 0)
                seed = params.get("seed")
                if seed is None:
                    seed = derive_seed(self.seed, point.label)
                out.append(Point(len(out), self.task, params, int(seed)))
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "name": self.name,
            "task": self.task,
            "base": self.base,
            "axes": [
                {"name": a.name, "values": list(a.values), "mode": a.mode}
                for a in self.axes
            ],
            "seed": self.seed,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        try:
            axes = [
                Axis(a["name"], a["values"], a.get("mode", "grid"))
                for a in data.get("axes", [])
            ]
            return cls(
                name=data["name"],
                task=data["task"],
                base=dict(data.get("base", {})),
                axes=axes,
                seed=int(data.get("seed", 0)),
                description=data.get("description", ""),
            )
        except KeyError as missing:
            raise ValueError("spec is missing required field %s" % missing)

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def resolve_spec(name_or_path: str) -> SweepSpec:
    """A built-in spec by name, or a JSON spec file by path."""
    if name_or_path in BUILTIN_SPECS:
        return BUILTIN_SPECS[name_or_path]()
    if name_or_path.endswith(".json"):
        return SweepSpec.from_file(name_or_path)
    raise ValueError(
        "unknown spec %r (built-ins: %s; or pass a .json spec file)"
        % (name_or_path, ", ".join(sorted(BUILTIN_SPECS)))
    )


# ---------------------------------------------------------------------------
# built-in sweeps
# ---------------------------------------------------------------------------

#: parameters that keep one HERD point under ~0.3 s, for smoke sweeps
SMOKE_HERD = dict(
    n_clients=8,
    n_client_machines=4,
    n_server_processes=2,
    measure_ns=60_000.0,
    n_keys=1 << 10,
)


def _smoke() -> SweepSpec:
    return SweepSpec(
        name="smoke",
        task="herd",
        base=dict(SMOKE_HERD),
        axes=[
            Axis("value_size", [32, 256]),
            Axis("get_fraction", [0.5, 0.95]),
        ],
        description="tiny 4-point HERD grid (value size x GET fraction); the CI gate",
    )


def _value_size() -> SweepSpec:
    return SweepSpec(
        name="value-size",
        task="herd",
        axes=[Axis("value_size", [4, 16, 32, 64, 128, 256, 512, 1000])],
        description="Figure 10's HERD line as a cached sweep",
    )


def _put_fraction() -> SweepSpec:
    return SweepSpec(
        name="put-fraction",
        task="herd",
        axes=[Axis("get_fraction", [0.0, 0.5, 0.95])],
        description="Figure 9's HERD mix sensitivity",
    )


def _window() -> SweepSpec:
    return SweepSpec(
        name="window",
        task="herd",
        base=dict(SMOKE_HERD),
        axes=[Axis("window", [1, 2, 4, 8, 16])],
        description="per-client window depth vs throughput/latency",
    )


def _skew() -> SweepSpec:
    return SweepSpec(
        name="skew",
        task="herd",
        base=dict(n_keys=1 << 16, index_entries=2 ** 18, log_bytes=1 << 24),
        axes=[Axis("distribution", ["uniform", "zipfian"])],
        description="Figure 14's uniform-vs-Zipf(.99) comparison",
    )


def _chaos() -> SweepSpec:
    return SweepSpec(
        name="chaos",
        task="chaos",
        base=dict(horizon_ns=150_000.0),
        axes=[Axis("seed", list(range(8)))],
        description="8 seeded chaos runs as a parallel sweep (invariants must hold)",
    )


def _ha_failover() -> SweepSpec:
    return SweepSpec(
        name="ha-failover",
        task="ha",
        base=dict(
            scenario="kill-primary",
            horizon_ns=150_000.0,
            n_clients=4,
            n_items=64,
            value_size=24,
            n_server_processes=2,
        ),
        axes=[
            Axis("replication_factor", [2, 3]),
            Axis("ack_policy", ["all", "majority"]),
            Axis("intensity", [0.25, 1.0]),
        ],
        description="kill-primary failover grid: rf x ack policy x fault "
        "intensity, gating availability, lost writes, and replication "
        "overhead",
    )


def _elasticity() -> SweepSpec:
    return SweepSpec(
        name="elasticity",
        task="elastic",
        base=dict(
            scenario="migrate-under-kill",
            horizon_ns=300_000.0,
            n_clients=4,
            n_items=64,
            value_size=24,
            n_server_processes=3,
            intensity=0.5,
            replication_factor=3,
            ack_policy="majority",
        ),
        axes=[Axis("seed", [3, 5, 11])],
        description="live resharding under kill-primary chaos: post-reshard "
        "tail throughput must track a born-full reference cluster, with "
        "zero lost acked writes",
    )


def _overload() -> SweepSpec:
    return SweepSpec(
        name="overload",
        task="qos",
        base=dict(horizon_ns=300_000.0),
        axes=[
            Axis("scenario", ["flash-crowd", "aggressor-tenant", "slow-client"]),
            Axis("seed", [3, 7, 11]),
        ],
        description="overload protection under flash crowds: per-scenario "
        "in-SLO goodput floor with shedding on (priced against the "
        "unprotected collapse), zero lost acked writes, p99.9 tail",
    )


def _engine() -> SweepSpec:
    return SweepSpec(
        name="engine",
        task="engine",
        base=dict(n_events=40_000, repeats=5),
        axes=[Axis("scenario", ["calendar", "fifo", "store"])],
        description="event-kernel speedup gate: the sorted-run calendar vs "
        "the reference heap calendar on identical schedules; also gates "
        "dispatch-order identity (the determinism contract)",
    )


def _txn() -> SweepSpec:
    return SweepSpec(
        name="txn",
        task="txn",
        base=dict(
            n_clients=24,
            n_client_machines=6,
            n_keys=512,
            read_only_fraction=0.5,
            measure_ns=150_000.0,
        ),
        axes=[
            Axis("dataplane", ["rpc", "onesided"]),
            Axis("hot_fraction", [0.0, 0.3, 0.6, 0.9]),
        ],
        description="multi-key transactions, RPC vs one-sided commit: every "
        "cell must stay strictly serializable with zero torn writes while "
        "the contention sweep reproduces the crossover (one-sided wins "
        "uncontended, server-mediated 2PC wins hot)",
    )


def _nemesis() -> SweepSpec:
    return SweepSpec(
        name="nemesis",
        task="nemesis",
        base=dict(n_schedules=6, planted_cap=24),
        axes=[Axis("seed", [1, 3])],
        description="randomized chaos-schedule search: the healthy arm must "
        "find zero invariant violations across the dataplanes, and the "
        "planted-bug arm must find its failure, shrink it to the crash "
        "atom alone, and replay the minimal reproducer byte-identically",
    )


def _figures() -> SweepSpec:
    return SweepSpec(
        name="figures",
        task="figure",
        base=dict(scale="bench"),
        axes=[Axis("figure", ["fig2", "fig3", "fig4", "fig6"])],
        description="microbenchmark figures as cached lab points",
    )


BUILTIN_SPECS = {
    "smoke": _smoke,
    "value-size": _value_size,
    "put-fraction": _put_fraction,
    "window": _window,
    "skew": _skew,
    "chaos": _chaos,
    "ha-failover": _ha_failover,
    "elasticity": _elasticity,
    "overload": _overload,
    "txn": _txn,
    "nemesis": _nemesis,
    "engine": _engine,
    "figures": _figures,
}
