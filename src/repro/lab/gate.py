"""Baseline capture and the perf-regression gate.

A *baseline* is a committed JSON file holding, per point label, the
headline metrics of a known-good run (plus per-metric tolerance
bands).  The *gate* re-reads the current result store and fails —
exit code 1 from the CLI — when any headline metric moved in the
**worse** direction by more than its tolerance:

* throughput-like metrics (``mops``, ``ops``, ``completed``, ``ok``)
  regress by dropping;
* latency-like metrics (``*_us``, ``*_ns``) regress by rising;
* anything else is gated in both directions.

Movements in the *better* direction are reported (so a speed-up
prompts a re-baseline) but never fail the gate.  Baselines are keyed
on point labels, not cache keys, so they survive code changes — that
is exactly what makes them a regression oracle.

Every gate run also writes ``BENCH_lab.json`` at the repo root: the
current headline numbers, their deltas against the baseline, and the
verdict — the repo's perf trajectory, one snapshot per commit.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.lab.spec import SweepSpec
from repro.lab.store import code_version
from repro.lab.tasks import headline, metric_direction

#: relative tolerance bands by metric name; "default" covers the rest
DEFAULT_TOLERANCES = {
    "default": 0.08,
    "mops": 0.05,
    "p50_us": 0.10,
    "p99_us": 0.20,
    "ok": 0.0,
    "violations": 0.0,
    # HA task: no acked write may ever be lost; availability is gated
    # tightly (0.5% relative) while timing/overhead get wider bands
    "ops_lost": 0.0,
    "availability": 0.005,
    "failover_latency_us": 0.25,
    "goodput_overhead_pct": 0.5,
    # engine task: wall-clock ratios are noisy, so the speedup band is
    # wide; dispatch-order identity is exact or nothing
    "speedup": 0.35,
    "dispatch_match": 0.0,
}

BENCH_JSON_PATH = "BENCH_lab.json"


@dataclass
class GateEntry:
    """One compared metric of one point."""

    label: str
    metric: str
    baseline: float
    current: Optional[float]
    #: signed relative move in the *worse* direction (negative = improved)
    worse_by: float
    tolerance: float
    status: str  # "ok" | "regression" | "improvement" | "missing"

    def describe(self) -> str:
        if self.status == "missing":
            return "MISSING  %s %s (baseline %.4g, no current result)" % (
                self.label, self.metric, self.baseline,
            )
        tag = {"ok": "ok      ", "regression": "REGRESSED", "improvement": "improved"}[
            self.status
        ]
        return "%s %s %s: %.4g -> %.4g (%+.1f%% worse, tol %.0f%%)" % (
            tag, self.label, self.metric, self.baseline, self.current,
            100.0 * self.worse_by, 100.0 * self.tolerance,
        )


@dataclass
class GateReport:
    """Every comparison the gate made, plus the verdict."""

    spec_name: str
    entries: List[GateEntry] = field(default_factory=list)
    ungated: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[GateEntry]:
        return [e for e in self.entries if e.status in ("regression", "missing")]

    @property
    def improvements(self) -> List[GateEntry]:
        return [e for e in self.entries if e.status == "improvement"]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = ["gate %s: %s" % (self.spec_name, "PASS" if self.passed else "FAIL")]
        for entry in self.entries:
            lines.append("  " + entry.describe())
        for label in self.ungated:
            lines.append("  new      %s (not in baseline; re-baseline to gate it)" % label)
        lines.append(
            "  %d metrics compared, %d regressed, %d improved"
            % (len(self.entries), len(self.regressions), len(self.improvements))
        )
        return "\n".join(lines)


def tolerance_for(metric: str, tolerances: Dict[str, float]) -> float:
    short = metric.rsplit("/", 1)[-1]
    if metric in tolerances:
        return tolerances[metric]
    if short in tolerances:
        return tolerances[short]
    return tolerances.get("default", DEFAULT_TOLERANCES["default"])


def capture_baseline(
    spec: SweepSpec,
    results: Dict[str, Dict[str, Any]],
    tolerances: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """A baseline dict from a sweep's results (label -> record)."""
    missing = [p.label for p in spec.points() if p.label not in results]
    if missing:
        raise ValueError(
            "cannot baseline %s: %d points have no stored result (%s)"
            % (spec.name, len(missing), ", ".join(missing[:3]) + ("..." if len(missing) > 3 else ""))
        )
    points = {
        label: headline(spec.task, record["metrics"])
        for label, record in sorted(results.items())
    }
    return {
        "version": 1,
        "spec": spec.name,
        "task": spec.task,
        "captured_code": code_version(),
        "tolerances": dict(tolerances or DEFAULT_TOLERANCES),
        "points": points,
    }


def write_baseline(baseline: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(baseline, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        baseline = json.load(fh)
    if "points" not in baseline:
        raise ValueError("%s is not a lab baseline (no 'points')" % path)
    return baseline


def check(
    spec: SweepSpec,
    results: Dict[str, Dict[str, Any]],
    baseline: Dict[str, Any],
) -> GateReport:
    """Compare current results against a baseline."""
    tolerances = dict(DEFAULT_TOLERANCES)
    tolerances.update(baseline.get("tolerances", {}))
    report = GateReport(spec_name=spec.name)
    for label, base_metrics in sorted(baseline["points"].items()):
        record = results.get(label)
        for metric, base_value in sorted(base_metrics.items()):
            tol = tolerance_for(metric, tolerances)
            if record is None or metric not in record.get("metrics", {}):
                report.entries.append(
                    GateEntry(label, metric, base_value, None, 0.0, tol, "missing")
                )
                continue
            current = record["metrics"][metric]
            direction = metric_direction(metric)
            delta = current - base_value
            if direction > 0:
                worse = -delta
            elif direction < 0:
                worse = delta
            else:
                worse = abs(delta)
            worse_rel = worse / max(abs(base_value), 1e-12)
            if worse_rel > tol:
                status = "regression"
            elif direction != 0 and worse_rel < -tol:
                status = "improvement"
            else:
                status = "ok"
            report.entries.append(
                GateEntry(label, metric, base_value, current, worse_rel, tol, status)
            )
    gated = set(baseline["points"])
    report.ungated = sorted(label for label in results if label not in gated)
    return report


def bench_json(report: GateReport, baseline: Dict[str, Any]) -> Dict[str, Any]:
    """The ``BENCH_lab.json`` payload for one gate run."""
    metrics: Dict[str, Dict[str, Any]] = {}
    for entry in report.entries:
        cell = metrics.setdefault(entry.label, {})
        cell[entry.metric] = {
            "value": entry.current,
            "baseline": entry.baseline,
            "worse_pct": round(100.0 * entry.worse_by, 3),
            "status": entry.status,
        }
    return {
        "version": 1,
        "spec": report.spec_name,
        "pass": report.passed,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "code": code_version(),
        "baseline_code": baseline.get("captured_code"),
        "n_compared": len(report.entries),
        "n_regressed": len(report.regressions),
        "n_improved": len(report.improvements),
        "metrics": metrics,
    }


def read_bench_json(path: str = BENCH_JSON_PATH) -> Dict[str, Any]:
    """The multi-spec ``BENCH_lab.json`` (v2), upgrading v1 files.

    A v1 file (one spec's payload at top level) becomes a v2 envelope
    holding that one spec.  Missing or unparsable files read as an
    empty envelope.
    """
    try:
        with open(path) as fh:
            existing = json.load(fh)
    except (OSError, ValueError):
        existing = None
    if not isinstance(existing, dict):
        return {"version": 2, "pass": True, "specs": {}}
    if existing.get("version") == 2 and isinstance(existing.get("specs"), dict):
        return existing
    if "spec" in existing:  # v1: a single spec's payload
        return {
            "version": 2,
            "pass": bool(existing.get("pass", False)),
            "specs": {existing["spec"]: existing},
        }
    return {"version": 2, "pass": True, "specs": {}}


def write_bench_json(
    report: GateReport, baseline: Dict[str, Any], path: str = BENCH_JSON_PATH
) -> None:
    """Merge this gate run into the multi-spec ``BENCH_lab.json``.

    Each spec keeps its latest payload under ``specs[name]``; the
    top-level ``pass`` is the conjunction over every recorded spec, so
    one file answers "is the repo's perf trajectory clean" even when
    different sweeps are gated by different make targets.
    """
    payload = bench_json(report, baseline)
    merged = read_bench_json(path)
    merged["specs"][report.spec_name] = payload
    merged["pass"] = all(
        bool(spec.get("pass", False)) for spec in merged["specs"].values()
    )
    merged["generated_at"] = payload["generated_at"]
    merged["code"] = payload["code"]
    with open(path, "w") as fh:
        json.dump(merged, fh, indent=1, sort_keys=True)
        fh.write("\n")
