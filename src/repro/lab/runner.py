"""Parallel sweep execution.

The runner expands a :class:`~repro.lab.spec.SweepSpec`, drops every
point whose cache key already has a successful record in the store,
and executes the rest — either serially in-process (``workers=1``) or
on a ``ProcessPoolExecutor``.  Both paths must produce *identical*
result records (the determinism test in ``tests/test_lab_runner.py``
compares the stores byte-for-byte modulo volatile fields); the
simulator is deterministic per seed, so this holds as long as points
never share state — which is why each point runs under its own
:func:`repro.obs.session.capture` and the parallel path ships nothing
between points but the payload dict.

Records are appended to the store **in point order**, not completion
order: completed results are buffered until every earlier point has
finished, so the store file is reproducible and a cancelled run leaves
a clean prefix.

Failure handling:

* a point that raises is recorded with ``status="error"`` (and not
  cached, so the next run retries it);
* a worker process that *dies* (segfault, OOM-kill) breaks the pool;
  the runner rebuilds the pool and resubmits the in-flight points, up
  to ``max_attempts`` per point, after which the point is recorded as
  ``status="crashed"``;
* a point that exceeds ``timeout_s`` is recorded as
  ``status="timeout"``; its worker pool is torn down (the only way to
  reclaim the stuck process) and the other in-flight points are
  resubmitted.  The serial path cannot preempt a running point — it
  records the overrun after the fact instead;
* Ctrl-C cancels gracefully: pending points are dropped, finished
  results are flushed, and the interrupt is re-raised.
"""

from __future__ import annotations

import concurrent.futures
import sys
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.lab.spec import Point, SweepSpec
from repro.lab.store import ResultStore, code_version, point_key

#: default per-point timeout: generous for figure-sized points, small
#: enough that a hung sweep fails the same day it starts
DEFAULT_TIMEOUT_S = 600.0


def _execute_point(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one point; top-level so the process pool can pickle it."""
    from repro.lab.tasks import TASKS

    started = time.time()
    record = dict(payload)
    try:
        metrics = TASKS[payload["task"]](dict(payload["params"]), payload["seed"])
        record.update(status="ok", metrics=metrics, error=None)
    except Exception as error:  # recorded, not raised: one bad point
        record.update(            # must not kill a thousand-point sweep
            status="error",
            metrics={},
            error="%s: %s" % (type(error).__name__, error),
        )
    record["wall_s"] = round(time.time() - started, 3)
    return record


@dataclass
class SweepOutcome:
    """What :func:`run_sweep` did and found."""

    spec: SweepSpec
    points: List[Point]
    #: label -> latest successful record, cached and fresh alike
    results: Dict[str, Dict[str, Any]]
    n_cached: int = 0
    n_ran: int = 0
    n_failed: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.n_failed == 0


class _Progress:
    def __init__(self, enabled: bool, total: int, spec_name: str) -> None:
        self.enabled = enabled
        self.total = total
        self.spec_name = spec_name
        self.done = 0

    def line(self, point: Point, status: str, detail: str = "") -> None:
        self.done += 1
        if not self.enabled:
            return
        print(
            "[lab %s] %d/%d %s %s%s"
            % (
                self.spec_name,
                self.done,
                self.total,
                point.label,
                status,
                " " + detail if detail else "",
            ),
            file=sys.stderr,
        )


def run_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    force: bool = False,
    progress: bool = True,
    max_attempts: int = 3,
) -> SweepOutcome:
    """Execute ``spec``, reusing cached points; returns the outcome."""
    if store is None:
        store = ResultStore()
    if workers < 1:
        raise ValueError("workers must be >= 1; got %r" % (workers,))
    if timeout_s <= 0:
        raise ValueError("timeout_s must be > 0; got %r" % (timeout_s,))
    points = spec.points()
    code = code_version()
    cached = {} if force else store.completed(spec.name)
    outcome = SweepOutcome(spec=spec, points=points, results={})
    report = _Progress(progress, len(points), spec.name)

    payloads: List[Dict[str, Any]] = []
    for point in points:
        key = point_key(point, code)
        if key in cached:
            outcome.results[point.label] = cached[key]
            outcome.n_cached += 1
            report.line(point, "cached")
            continue
        payloads.append(
            {
                "key": key,
                "spec": spec.name,
                "point": point.index,
                "label": point.label,
                "task": point.task,
                "params": point.params,
                "seed": point.seed,
                "code": code,
            }
        )

    if not payloads:
        return outcome

    # in-order flush machinery: buffer finished records, append to the
    # store only once every earlier point's record is present
    by_index: Dict[int, Dict[str, Any]] = {}
    flush_order = [p["point"] for p in payloads]
    flushed = 0

    def flush(final: bool = False) -> None:
        nonlocal flushed
        ready: List[Dict[str, Any]] = []
        while flushed < len(flush_order) and flush_order[flushed] in by_index:
            ready.append(by_index.pop(flush_order[flushed]))
            flushed += 1
        if final:  # cancelled run: keep whatever finished, in order
            for index in sorted(by_index):
                ready.append(by_index.pop(index))
        store.append(spec.name, ready)

    def account(record: Dict[str, Any], point: Point, detail: str = "") -> None:
        by_index[record["point"]] = record
        if record["status"] == "ok":
            outcome.results[point.label] = record
            outcome.n_ran += 1
            summary = ", ".join(
                "%s=%.4g" % (k, v)
                for k, v in sorted(record["metrics"].items())
                if not k.startswith("obs/")
            )
            report.line(point, "ok", "%.2fs %s%s" % (record["wall_s"], summary, detail))
        else:
            outcome.n_failed += 1
            failure = "%s: %s (%s)" % (
                point.label,
                record["status"],
                record.get("error") or "no error text",
            )
            outcome.failures.append(failure)
            report.line(point, record["status"].upper(), record.get("error") or "")

    point_by_index = {p.index: p for p in points}
    try:
        if workers == 1:
            _run_serial(payloads, point_by_index, timeout_s, account, flush)
        else:
            _run_parallel(
                payloads, point_by_index, workers, timeout_s, max_attempts,
                account, flush,
            )
    except KeyboardInterrupt:
        flush(final=True)
        raise
    flush(final=True)
    return outcome


def _run_serial(payloads, point_by_index, timeout_s, account, flush) -> None:
    for payload in payloads:
        record = _execute_point(payload)
        record["attempts"] = 1
        if record["status"] == "ok" and record["wall_s"] > timeout_s:
            record["status"] = "timeout"
            record["error"] = (
                "point took %.1fs (> %.1fs); serial mode cannot preempt"
                % (record["wall_s"], timeout_s)
            )
            record["metrics"] = {}
        account(record, point_by_index[payload["point"]])
        flush()


def _run_parallel(
    payloads, point_by_index, workers, timeout_s, max_attempts, account, flush
) -> None:
    queue: List[Dict[str, Any]] = list(payloads)
    attempts: Dict[int, int] = {p["point"]: 0 for p in payloads}
    pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    futures: Dict[concurrent.futures.Future, Dict[str, Any]] = {}
    started: Dict[concurrent.futures.Future, float] = {}

    def submit_up_to_capacity() -> bool:
        """False when the pool turned out to be broken at submit time."""
        while queue and len(futures) < workers:
            payload = queue.pop(0)
            attempts[payload["point"]] += 1
            try:
                future = pool.submit(_execute_point, payload)
            except BrokenProcessPool:
                attempts[payload["point"]] -= 1
                queue.insert(0, payload)
                return False
            futures[future] = payload
            started[future] = time.time()
        return True

    def fail(payload: Dict[str, Any], status: str, error: str) -> None:
        record = dict(payload)
        record.update(
            status=status, metrics={}, error=error, wall_s=0.0,
            attempts=attempts[payload["point"]],
        )
        account(record, point_by_index[payload["point"]])

    def rebuild_pool() -> List[Dict[str, Any]]:
        """Tear the pool down hard; returns the in-flight payloads."""
        nonlocal pool
        inflight = list(futures.values())
        for process in list(getattr(pool, "_processes", {}).values() or []):
            try:
                process.terminate()
            except OSError:
                pass
        pool.shutdown(wait=False)
        futures.clear()
        started.clear()
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        return inflight

    def requeue_or_fail(payload: Dict[str, Any], why: str) -> None:
        if attempts[payload["point"]] >= max_attempts:
            fail(payload, "crashed", "%s (%d attempts)" % (why, max_attempts))
        else:
            queue.append(payload)

    try:
        while futures or queue:
            if not submit_up_to_capacity():
                for payload in rebuild_pool():
                    requeue_or_fail(payload, "worker process died")
                continue
            done, _pending = concurrent.futures.wait(
                list(futures),
                timeout=0.05,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            broken = False
            for future in done:
                payload = futures.pop(future)
                started.pop(future, None)
                try:
                    record = future.result()
                except BrokenProcessPool:
                    broken = True
                    requeue_or_fail(payload, "worker process died")
                    continue
                except Exception as error:  # pool-level failure
                    fail(payload, "error", "%s: %s" % (type(error).__name__, error))
                    continue
                record["attempts"] = attempts[payload["point"]]
                account(record, point_by_index[payload["point"]])
            if broken:
                for payload in rebuild_pool():
                    requeue_or_fail(payload, "worker process died")
            now = time.time()
            timed_out = [
                future for future, t0 in started.items()
                if now - t0 > timeout_s
            ]
            if timed_out:
                # the stuck workers can only be reclaimed by tearing the
                # whole pool down; innocent in-flight points are rerun
                stuck_points = {futures[f]["point"] for f in timed_out}
                for payload in rebuild_pool():
                    if payload["point"] in stuck_points:
                        fail(
                            payload, "timeout",
                            "exceeded %.1fs timeout" % timeout_s,
                        )
                    else:
                        attempts[payload["point"]] -= 1  # not its fault
                        queue.append(payload)
            flush()
    finally:
        pool.shutdown(wait=False)
