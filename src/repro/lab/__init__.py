"""``repro.lab`` — parallel experiment orchestration.

The lab turns the repo's one-shot harnesses (figure cells, chaos runs,
HERD measurement points) into *sweeps*: declarative grids of points
that run in parallel, cache their results in an append-only store, and
gate the repo against perf regressions.  See docs/LAB.md.
"""

from repro.lab.gate import (
    DEFAULT_TOLERANCES,
    GateReport,
    capture_baseline,
    check,
    load_baseline,
    write_baseline,
    write_bench_json,
)
from repro.lab.runner import SweepOutcome, run_sweep
from repro.lab.spec import BUILTIN_SPECS, Axis, Point, SweepSpec, resolve_spec
from repro.lab.store import ResultStore, code_version, point_key
from repro.lab.tasks import TASKS, headline, metric_direction

__all__ = [
    "Axis",
    "BUILTIN_SPECS",
    "DEFAULT_TOLERANCES",
    "GateReport",
    "Point",
    "ResultStore",
    "SweepOutcome",
    "SweepSpec",
    "TASKS",
    "capture_baseline",
    "check",
    "code_version",
    "headline",
    "load_baseline",
    "metric_direction",
    "point_key",
    "resolve_spec",
    "run_sweep",
    "write_baseline",
    "write_bench_json",
]
