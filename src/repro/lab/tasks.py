"""Lab tasks: what one sweep point actually runs.

A task takes a resolved parameter dict plus the point seed and returns
a flat ``{metric_name: value}`` dict.  Four tasks cover the repo's
harnesses:

* ``herd`` — one :func:`repro.bench.figures.run_herd` cell; headline
  metrics are ``mops``, ``p50_us``, ``p99_us`` (the gate's defaults);
* ``chaos`` — one :func:`repro.faults.run_chaos` run; ``ok`` must stay
  1.0 and the completion counters are tracked;
* ``ha`` — a replicated chaos scenario plus an unreplicated reference
  run; gates availability, lost writes, failover latency, and the
  replication goodput overhead;
* ``elastic`` — a ``migrate-under-kill`` resharding run plus a
  born-full reference run; gates the elasticity ``tracking_ratio``
  (post-reshard tail throughput over the reference's), lost writes,
  and migration completion;
* ``qos`` — an overload scenario (flash crowd / aggressor tenant /
  slow client) with shedding on plus a shedding-off reference; gates
  the in-SLO goodput floor, lost writes, and the p99.9 tail;
* ``figure`` — a whole figure from :data:`repro.bench.figures.FIGURES`,
  flattened to one metric per ``series/x`` cell, so every existing
  figure is lab-runnable (cached, parallel, gated) without changes.

Every task runs inside :func:`repro.obs.session.capture`, so each point
also reports the simulated clock and op counters of its run — the
per-point slice of the observability layer.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict

from repro.obs import session as obs

#: metric names whose larger values are better (throughput-like);
#: latency-like names (``*_us``/``*_ns``) are better smaller, and
#: anything else is gated in both directions
HIGHER_IS_BETTER = ("mops", "ops", "completed", "ok")


def metric_direction(name: str) -> int:
    """+1 if larger is better, -1 if smaller is better, 0 if two-sided."""
    short = name.rsplit("/", 1)[-1]
    if short in HIGHER_IS_BETTER or short in (
        "availability",
        "commits",
        "ops_acked",
        "tracking_ratio",
        "speedup",
        "dispatch_match",
        "goodput_ratio",
        "planted_found",
        "planted_minimal",
        "planted_replay_identical",
    ):
        return 1
    if short.endswith(("_us", "_ns")) or short in (
        "retries",
        "abort_rate",
        "torn_writes",
        "abandoned",
        "violations",
        "ops_lost",
        "stale_nacks",
        "goodput_overhead_pct",
    ):
        return -1
    return 0


def _obs_metrics(session: obs.ObsSession) -> Dict[str, float]:
    """A compact, deterministic digest of a point's captured runs."""
    sim_ns = 0.0
    herd_ops = 0
    for run in session.runs:
        if run.registry is None:
            continue
        snapshot = run.registry.snapshot()
        sim_ns += snapshot.get("sim_time_ns", 0.0)
        for name, value in snapshot.get("counters", {}).items():
            if name.startswith("herd.server") and name.endswith(".ops"):
                herd_ops += value
    out = {"obs/sim_time_ns": sim_ns}
    if herd_ops:
        out["obs/server_ops"] = float(herd_ops)
    return out


def run_herd_task(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    from repro.bench.figures import run_herd

    kwargs = dict(params)
    kwargs.setdefault("seed", seed)
    with obs.capture(metrics=True) as session:
        result = run_herd(**kwargs)
    metrics = {
        "mops": result.mops,
        "ops": float(result.ops),
        "mean_us": result.latency["mean_us"],
        "p50_us": result.latency["p50_us"],
        "p99_us": result.latency["p99_us"],
    }
    metrics.update(_obs_metrics(session))
    return metrics


def run_chaos_task(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    from repro.faults import run_chaos

    kwargs = dict(params)
    kwargs.setdefault("seed", seed)
    with obs.capture(metrics=True) as session:
        report = run_chaos(**kwargs)
    metrics = {
        "ok": 1.0 if report.ok else 0.0,
        "completed": float(report.completed),
        "retries": float(report.retries),
        "abandoned": float(report.abandoned),
        "violations": float(len(report.violations)),
    }
    metrics.update(_obs_metrics(session))
    return metrics


def run_ha_task(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    """One replicated chaos scenario plus an unreplicated reference run.

    The scenario run prices availability (checker verdict, acked/lost
    ops, failover latency); the reference run — same workload and
    cluster shape, ``replication_factor=1``, fault-free — prices the
    replication overhead as ``goodput_overhead_pct``: how much goodput
    the replicated cluster gives up relative to the classic one.
    """
    from repro.faults import run_chaos
    from repro.faults.plan import FaultPlan

    kwargs = dict(params)
    kwargs.setdefault("seed", seed)
    kwargs.setdefault("scenario", "kill-primary")
    horizon_ns = float(kwargs.get("horizon_ns", 300_000.0))
    with obs.capture(metrics=True) as session:
        report = run_chaos(**kwargs)
        ref_kwargs = {
            key: kwargs[key]
            for key in (
                "seed",
                "horizon_ns",
                "drain_ns",
                "n_clients",
                "n_items",
                "value_size",
                "get_fraction",
                "n_server_processes",
            )
            if key in kwargs
        }
        reference = run_chaos(plan=FaultPlan(seed=kwargs["seed"]), **ref_kwargs)
    goodput_kops = report.completed / horizon_ns * 1e6
    ref_kops = reference.completed / horizon_ns * 1e6
    overhead_pct = (
        (ref_kops - goodput_kops) / ref_kops * 100.0 if ref_kops else 0.0
    )
    metrics = {
        "ok": 1.0 if report.ok and reference.ok else 0.0,
        "availability": report.availability,
        "failover_latency_us": report.failover_latency_ns / 1000.0,
        "goodput_kops": goodput_kops,
        "goodput_overhead_pct": overhead_pct,
        "ops_acked": float(report.ops_acked),
        "ops_lost": float(report.ops_lost),
        "stale_nacks": float(report.stale_nacks),
        "replays": float(report.replays),
        "promotions": float(report.promotions),
    }
    metrics.update(_obs_metrics(session))
    return metrics


def run_elastic_task(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    """Resharding under chaos, priced against a born-full reference run.

    The scenario run joins a spare partition mid-horizon and kills the
    first migration source's primary (``migrate-under-kill``).  The
    reference run keeps everything else identical — same seed, noise,
    and pinned crash — but starts with *all* partitions active, so no
    migration happens.  ``tracking_ratio`` is the scenario's completed
    ops over the reference's: how closely elastic throughput tracks the
    cluster it grew into, pricing the whole reshard (holds, reroutes,
    dual writes, the aborted attempt).  The acceptance bar is ~0.9.
    """
    from repro.faults import run_chaos
    from repro.herd.config import HerdConfig

    kwargs = dict(params)
    kwargs.setdefault("seed", seed)
    kwargs.setdefault("scenario", "migrate-under-kill")
    ns = int(kwargs.get("n_server_processes") or 3)
    horizon_ns = float(kwargs.get("horizon_ns", 300_000.0))
    with obs.capture(metrics=True) as session:
        report = run_chaos(**kwargs)
        ref_config = HerdConfig(
            n_server_processes=ns,
            n_active_partitions=ns,  # born full: no spare, no migration
            window=4,
            retry_timeout_ns=10_000.0,
            adaptive_retry=True,
            min_retry_timeout_ns=5_000.0,
            replication_factor=int(kwargs.get("replication_factor", 3)),
            ack_policy=str(kwargs.get("ack_policy", "majority")),
            lease_us=float(kwargs.get("lease_us", 5.0)),
            heartbeat_us=float(kwargs.get("heartbeat_us", 1.0)),
        )
        ref_kwargs = {
            key: kwargs[key]
            for key in (
                "seed",
                "horizon_ns",
                "drain_ns",
                "n_clients",
                "n_items",
                "value_size",
                "get_fraction",
                "intensity",
            )
            if key in kwargs
        }
        reference = run_chaos(
            config=ref_config, scenario="migrate-under-kill", **ref_kwargs
        )
    tracking_ratio = (
        report.completed / reference.completed if reference.completed else 0.0
    )
    metrics = {
        "ok": 1.0 if report.ok and reference.ok else 0.0,
        "tracking_ratio": tracking_ratio,
        "availability": report.availability,
        "ops_acked": float(report.ops_acked),
        "ops_lost": float(report.ops_lost),
        "tail_completed": float(report.tail_completed),
        "ref_tail_completed": float(reference.tail_completed),
        "goodput_kops": report.completed / horizon_ns * 1e6,
        "map_version": float(report.map_version),
        "migrations_done": float(report.migrations_done),
        "migrations_aborted": float(report.migrations_aborted),
        "records_migrated": float(report.records_migrated),
        "reroutes": float(report.reroutes),
    }
    metrics.update(_obs_metrics(session))
    return metrics


def run_qos_task(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    """One overload scenario with shedding on, priced against the same
    crowd with shedding off.

    The protected run gates the repro.qos contract — in-SLO goodput
    floor (``goodput_ratio``), zero lost acked writes, the p99.9 tail —
    while the unprotected reference documents the collapse admission
    control prevents (``unprotected_ratio`` is informational: it *should*
    be terrible for flash crowds).  For ``aggressor-tenant`` points the
    per-tenant tails come along, pricing the isolation band.
    """
    from repro.faults import run_chaos

    kwargs = dict(params)
    kwargs.setdefault("seed", seed)
    kwargs.setdefault("scenario", "flash-crowd")
    kwargs.pop("shedding", None)
    with obs.capture(metrics=True) as session:
        report = run_chaos(shedding=True, **kwargs)
        reference = run_chaos(shedding=False, **kwargs)
    metrics = {
        "ok": 1.0 if report.ok and reference.ok else 0.0,
        "goodput_ratio": report.goodput_ratio,
        "unprotected_ratio": reference.goodput_ratio,
        "pre_burst_mops": report.pre_burst_mops,
        "burst_mops": report.burst_mops,
        "p999_us": report.p999_us,
        "ops_lost": float(report.ops_lost),
        "shed": float(report.shed),
        "retry_after_nacks": float(report.retry_after_nacks),
        "rejected": float(report.rejected),
        "offered": float(report.offered),
        "completed": float(report.completed),
    }
    for tenant, p99 in sorted(report.tenant_p99_us.items()):
        metrics["tenant%d_p99_us" % tenant] = p99
    metrics.update(_obs_metrics(session))
    return metrics


def run_txn_task(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    """One repro.txn measurement cell, audit folded into ``ok``.

    ``ok`` is 1.0 only when the run's history passed the strict-
    serializability checker *and* the final store scan found zero torn
    writes — a faster commit path that corrupts data must read as a
    regression, not an improvement.  The throughput/abort metrics then
    price the RPC-vs-one-sided crossover the spec sweeps.
    """
    from repro.bench.figures import run_txn

    kwargs = dict(params)
    kwargs.setdefault("seed", seed)
    with obs.capture(metrics=True) as session:
        report = run_txn(**kwargs)
    metrics = {
        "ok": 1.0 if report.ok else 0.0,
        "mops": report.result.mops,
        "commits": float(report.commits),
        "aborts": float(report.aborts),
        "abort_rate": report.abort_rate,
        "torn_writes": float(report.torn_writes),
        "retries": float(report.retries),
        "p50_us": report.result.latency.get("p50_us", 0.0),
        "p99_us": report.result.latency.get("p99_us", 0.0),
    }
    metrics.update(_obs_metrics(session))
    return metrics


def run_nemesis_task(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    """Bounded nemesis search: a healthy arm and a planted-bug arm.

    The healthy arm searches ``n_schedules`` randomized fault schedules
    across the dataplanes and must find **zero** violations — that is
    the robustness contract this task gates.  The planted arm layers
    the ``planted-no-crash`` oracle (server crashes are declared a bug)
    over up to ``planted_cap`` schedules, and the machinery itself is
    then on trial: the search must find the planted failure, the
    shrinker must reduce it to the crash atom alone (verified
    1-minimal), and the minimal reproducer must re-run byte-identically
    (fingerprint and violations both matching).
    """
    from repro.faults.rng import derive_seed
    from repro.nemesis import generate, run_schedule, search, shrink_schedule
    from repro.nemesis.oracle import resolve

    seed = int(params.get("seed", seed))
    n = int(params.get("n_schedules", 12))
    planted_cap = int(params.get("planted_cap", 24))
    dataplanes = params.get("dataplanes")
    if dataplanes is not None:
        dataplanes = tuple(dataplanes)
    healthy = search(n, seed=seed, dataplanes=dataplanes, shrink=False)

    oracles = resolve(("planted-no-crash",))
    planted_found = 0.0
    planted_atoms = 0.0
    planted_minimal = 0.0
    planted_replay_identical = 0.0
    shrink_tests = 0.0
    for i in range(planted_cap):
        schedule = generate(derive_seed(seed, "nemesis.planted.%d" % i), "herd")
        result = run_schedule(schedule, oracles)
        if result.ok:
            continue
        planted_found = 1.0
        shrunk = shrink_schedule(schedule, extra_oracles=oracles)
        planted_atoms = float(shrunk.atoms_after)
        planted_minimal = 1.0 if shrunk.minimal else 0.0
        shrink_tests = float(shrunk.tests)
        replayed = run_schedule(shrunk.schedule, oracles)
        planted_replay_identical = (
            1.0
            if replayed.fingerprint == shrunk.fingerprint
            and replayed.violations == shrunk.violations
            else 0.0
        )
        break
    ok = (
        healthy.ok
        and planted_found
        and planted_atoms == 1.0
        and planted_minimal
        and planted_replay_identical
    )
    return {
        "ok": 1.0 if ok else 0.0,
        "examined": float(healthy.examined),
        "violations": float(len(healthy.failures)),
        "planted_found": planted_found,
        "planted_atoms": planted_atoms,
        "planted_minimal": planted_minimal,
        "planted_replay_identical": planted_replay_identical,
        "shrink_tests": shrink_tests,
    }


def run_engine_task(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    """Event-kernel micro-benchmark: sorted-run calendar vs the heap.

    Runs one scenario (``calendar``, ``fifo``, or ``store``) on both
    :class:`~repro.sim.engine.Simulator` (the sorted-run calendar) and
    :class:`~repro.sim.engine.HeapSimulator` (the original single-heap
    algorithm, kept as a reference oracle), interleaved best-of-
    ``repeats``.  The gated metrics are machine-relative, so they
    survive CI hardware churn:

    * ``speedup`` — heap wall time over sorted-run wall time (the
      overhaul's whole point; gated with a wide band because wall
      clocks are noisy);
    * ``dispatch_match`` — 1.0 iff both engines produced the identical
      dispatch digest (times and order); gated at zero tolerance, so
      this sweep is a determinism gate too.
    """
    import time as _time

    from repro.sim import FifoServer, HeapSimulator, Simulator, Store

    scenario = str(params.get("scenario", "calendar"))
    n_events = int(params.get("n_events", 40_000))
    repeats = int(params.get("repeats", 3))

    def calendar(sim):
        fired = []
        append = fired.append

        def observe(_event):
            append(sim.now)

        timeout = sim.timeout
        for i in range(n_events):
            event = timeout(float(i % 997))
            if not i % 16:  # sample the dispatch order, cheaply
                event.callbacks.append(observe)
        sim.run_until_idle()
        return hash((sim.now, tuple(fired)))

    def fifo(sim):
        server = FifoServer(sim, "unit")
        serve = server.serve
        for _ in range(n_events):
            serve(28.5)
        sim.run_until_idle()
        return hash((sim.now, server.jobs, server.busy_time))

    def store(sim):
        mailbox = Store(sim)
        log = [0, 0.0]

        def producer():
            for i in range(n_events):
                yield sim.timeout(1.0)
                mailbox.put(i)

        def consumer():
            for _ in range(n_events):
                item = yield mailbox.get()
                log[0] += 1
                log[1] += sim.now + item

        sim.process(producer())
        sim.process(consumer())
        sim.run_until_idle()
        return hash((sim.now, log[0], log[1]))

    scenarios = {"calendar": calendar, "fifo": fifo, "store": store}
    if scenario not in scenarios:
        raise ValueError(
            "engine task scenario must be one of %s; got %r"
            % (sorted(scenarios), scenario)
        )
    body = scenarios[scenario]

    # Interleave the two engines so machine-load drift hits both.
    new_best = float("inf")
    heap_best = float("inf")
    new_digest = heap_digest = None
    for _ in range(repeats):
        start = _time.perf_counter()
        new_digest = body(Simulator())
        new_t = _time.perf_counter() - start
        start = _time.perf_counter()
        heap_digest = body(HeapSimulator())
        heap_t = _time.perf_counter() - start
        if new_t < new_best:
            new_best = new_t
        if heap_t < heap_best:
            heap_best = heap_t
    return {
        "speedup": heap_best / new_best if new_best else 0.0,
        "dispatch_match": 1.0 if new_digest == heap_digest else 0.0,
        "sorted_run_ms": new_best * 1e3,
        "heap_ms": heap_best * 1e3,
        "events": float(n_events),
    }


def run_figure_task(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    from repro.bench.figures import FIGURES

    kwargs = dict(params)
    figure_id = kwargs.pop("figure", None)
    if figure_id not in FIGURES:
        raise ValueError(
            "figure task needs a 'figure' param in %s; got %r"
            % (sorted(FIGURES), figure_id)
        )
    with obs.capture(metrics=True) as session:
        data = FIGURES[figure_id](**kwargs)
    metrics: Dict[str, float] = {}
    for series in data.series:
        for x, y in series.points:
            if isinstance(y, (int, float)) and math.isfinite(y):
                metrics["%s/%s" % (series.label, x)] = float(y)
    metrics.update(_obs_metrics(session))
    return metrics


def run_selftest_task(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    """A microsecond-scale task for exercising the lab machinery itself.

    Deterministic in (params, seed) like every task, but its
    ``behavior`` param can simulate the runner's failure modes:
    ``"raise"`` throws, ``"exit"`` kills the worker process outright
    (a stand-in for a segfault), ``"sleep"`` hangs for ``sleep_s``
    seconds.  Used by the test suite and handy for smoke-testing a
    sweep definition before pointing it at real experiments.
    """
    import os
    import time

    from repro.faults.rng import child_rng

    behavior = params.get("behavior", "ok")
    if behavior == "raise":
        raise RuntimeError("selftest point asked to fail")
    if behavior == "exit":
        os._exit(17)
    if behavior == "sleep":
        time.sleep(float(params.get("sleep_s", 60.0)))
    value = float(params.get("value", 1.0))
    return {
        "value": value,
        "mops": value * 2.0,
        "seed_draw": round(child_rng(seed, "lab.selftest").random(), 12),
    }


TASKS: Dict[str, Callable[[Dict[str, Any], int], Dict[str, float]]] = {
    "herd": run_herd_task,
    "chaos": run_chaos_task,
    "ha": run_ha_task,
    "elastic": run_elastic_task,
    "qos": run_qos_task,
    "txn": run_txn_task,
    "nemesis": run_nemesis_task,
    "engine": run_engine_task,
    "figure": run_figure_task,
    "selftest": run_selftest_task,
}

#: metrics the gate compares by default, per task (others are informational)
HEADLINE_METRICS = {
    "herd": ("mops", "p50_us", "p99_us"),
    "chaos": ("ok", "completed"),
    "ha": (
        "ok",
        "availability",
        "failover_latency_us",
        "goodput_overhead_pct",
        "ops_lost",
    ),
    "elastic": (
        "ok",
        "tracking_ratio",
        "availability",
        "ops_lost",
        "migrations_done",
    ),
    "qos": (
        "ok",
        "goodput_ratio",
        "ops_lost",
        "p999_us",
    ),
    "txn": ("ok", "mops", "abort_rate", "p99_us"),
    "nemesis": (
        "ok",
        "violations",
        "planted_found",
        "planted_atoms",
        "planted_replay_identical",
    ),
    "engine": ("speedup", "dispatch_match"),
    "figure": None,  # None = every figure cell is a headline metric
    "selftest": ("mops", "value"),
}


def headline(task: str, metrics: Dict[str, float]) -> Dict[str, float]:
    """The subset of ``metrics`` the gate compares for ``task``."""
    wanted = HEADLINE_METRICS.get(task)
    if wanted is None:
        return {k: v for k, v in metrics.items() if not k.startswith("obs/")}
    return {k: metrics[k] for k in wanted if k in metrics}
