"""A remote FIFO queue built both ways: one-sided verbs vs server RPC.

The queue is the ISSUE's "remote data structure on top of the txn
substrate" — the design contrast the paper's Section 2 sets up:

* **One-sided** — the queue lives in a registered ring on the server::

      [ head u64 ][ tail u64 ][ (state u64, item u64) * capacity ]

  Enqueue claims a ticket by CAS-incrementing ``tail`` (retry loop) or
  — with ``ticket_mode="faa"`` — by a single ``ATOMIC_FETCH_ADD`` that
  can never lose a race, then WRITEs ``(ticket+1, item)`` into its
  slot.  Dequeue READs head/tail, CASes ``head`` forward to claim a
  ticket, and spin-READs the slot until the enqueuer's WRITE lands.
  Every op is multiple RTTs and contended CAS retries burn more; the
  FAA mode shows why a fetch-style primitive beats compare-style under
  contention.
* **RPC** — clients send ``Q_ENQ``/``Q_DEQ`` to the partition-0 server
  process, whose Python deque *is* the queue: one RTT per op, no
  retries, serialised by the server loop.

:class:`TxnQueueCluster.run` audits exactly-once conservation: every
dequeued (ticket, item) pair was enqueued, no ticket is dequeued
twice, and per-ticket items match — FIFO order is the ticket order by
construction.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.bench.result import RunResult, collect
from repro.faults.rng import child_rng
from repro.hw import APT, Fabric, HardwareProfile, Machine
from repro.sim import Event, LatencyRecorder, RateMeter, Simulator, Store
from repro.txn import wire
from repro.txn.cluster import DATAPLANES
from repro.txn.client import RpcChannel
from repro.txn.server import TxnServerProcess
from repro.txn.store import TxnPartitionStore
from repro.verbs import QueuePair, RdmaDevice, Transport, WorkRequest

_U64 = struct.Struct("<Q")
_SLOT = struct.Struct("<QQ")

HEAD_OFF = 0
TAIL_OFF = 8
RING_OFF = 16
SLOT_BYTES = 16


@dataclass(frozen=True)
class QueueConfig:
    dataplane: str = "onesided"
    #: one-sided ticket acquisition: "cas" retry loop or "faa" fetch-add
    ticket_mode: str = "cas"
    #: ops each client attempts (half enqueues, alternating)
    ops_per_client: int = 40
    capacity: int = 4096
    rpc_timeout_ns: float = 30_000.0
    backoff_ns: float = 1_000.0

    def __post_init__(self) -> None:
        if self.dataplane not in DATAPLANES:
            raise ValueError(
                "unknown dataplane %r; expected one of %s"
                % (self.dataplane, ", ".join(DATAPLANES))
            )
        if self.ticket_mode not in ("cas", "faa"):
            raise ValueError("ticket_mode must be 'cas' or 'faa'")


@dataclass
class QueueReport:
    dataplane: str
    ticket_mode: str
    result: RunResult
    enqueued: int
    dequeued: int
    #: ticket-claim CAS attempts that lost the race (one-sided only);
    #: enq_retries stays 0 in FAA mode — a fetch-add cannot lose
    enq_retries: int
    deq_retries: int
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        return (
            "queue[%s/%s]: %.3f Mops, %d enq, %d deq, %d+%d cas retries, ok=%s"
            % (self.dataplane, self.ticket_mode, self.result.mops,
               self.enqueued, self.dequeued, self.enq_retries,
               self.deq_retries, self.ok)
        )


class _QueueClient:
    """One closed-loop queue client, on either dataplane."""

    def __init__(self, cid: int, device: RdmaDevice, config: QueueConfig, rng) -> None:
        self.cid = cid
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.config = config
        self.rng = rng
        self.enqueues: List[Tuple[int, int]] = []  # (ticket, item)
        self.dequeues: List[Tuple[int, int]] = []
        self.enq_retries = 0
        self.deq_retries = 0
        self.completed_hook = None
        self._seq = 0
        # RPC plumbing (wired by the cluster when dataplane == "rpc")
        self.rpc: Optional[RpcChannel] = None
        # one-sided plumbing
        self.rc_qp: Optional[QueuePair] = None
        self.ring_addr = 0
        self.ring_rkey = 0
        self.sink = device.register_memory(64)
        self._cq_inbox: Store = Store(self.sim)

    def start(self) -> None:
        if self.rpc is not None:
            self.rpc.start()
        else:
            self.sim.process(self._dispatch_cqes(), name="q-c%d-scq" % self.cid)
        self.sim.process(self.run(), name="q-c%d" % self.cid)

    def _dispatch_cqes(self) -> Generator[Event, None, None]:
        while True:
            cqe = yield self.rc_qp.send_cq.pop()
            self._cq_inbox.put(cqe)

    def _await_cqes(self, n: int) -> Generator[Event, None, None]:
        for _ in range(n):
            yield self._cq_inbox.get()
        yield self.sim.timeout(self.profile.cq_poll_ns)

    def run(self) -> Generator[Event, None, None]:
        cfg = self.config
        for i in range(cfg.ops_per_client):
            started = self.sim.now
            if i % 2 == 0:
                item = (self.cid << 32) | i
                if self.rpc is not None:
                    yield from self._enqueue_rpc(item)
                else:
                    yield from self._enqueue_onesided(item)
            else:
                if self.rpc is not None:
                    yield from self._dequeue_rpc()
                else:
                    yield from self._dequeue_onesided()
            if self.completed_hook is not None:
                self.completed_hook(self.sim.now, self.sim.now - started)

    # -- RPC ---------------------------------------------------------------

    def _enqueue_rpc(self, item: int) -> Generator[Event, None, None]:
        self._seq += 1
        res = yield from self.rpc.call(
            {0: (wire.Q_ENQ, wire.encode_u64(item))}, self._seq
        )
        _status, body = res[0]
        self.enqueues.append((wire.decode_u64(body), item))

    def _dequeue_rpc(self) -> Generator[Event, None, None]:
        attempts = 0
        while True:
            self._seq += 1
            res = yield from self.rpc.call({0: (wire.Q_DEQ, b"")}, self._seq)
            status, body = res[0]
            if status == wire.ST_OK:
                self.dequeues.append(
                    (wire.decode_u64(body, 0), wire.decode_u64(body, 8))
                )
                return
            attempts += 1
            if attempts >= 8:
                return  # nothing to take; bounded politeness
            yield self.sim.timeout(
                self.config.backoff_ns * (0.5 + self.rng.random())
            )

    # -- one-sided ---------------------------------------------------------

    def _read(self, raddr: int, length: int) -> Generator[Event, None, bytes]:
        wr = WorkRequest.read(
            raddr=raddr, rkey=self.ring_rkey, local=(self.sink, 0, length)
        )
        yield from self.device.post_send_timed(self.rc_qp, wr)
        yield from self._await_cqes(1)
        return self.sink.read(0, length)

    def _cas(self, raddr: int, compare: int, swap: int) -> Generator[Event, None, int]:
        wr = WorkRequest.cmp_swap(
            raddr=raddr, rkey=self.ring_rkey, compare=compare, swap=swap,
            local=(self.sink, 32, 8),
        )
        yield from self.device.post_send_timed(self.rc_qp, wr)
        yield from self._await_cqes(1)
        return int.from_bytes(self.sink.read(32, 8), "little")

    def _faa(self, raddr: int, add: int) -> Generator[Event, None, int]:
        wr = WorkRequest.fetch_add(
            raddr=raddr, rkey=self.ring_rkey, add=add, local=(self.sink, 32, 8)
        )
        yield from self.device.post_send_timed(self.rc_qp, wr)
        yield from self._await_cqes(1)
        return int.from_bytes(self.sink.read(32, 8), "little")

    def _enqueue_onesided(self, item: int) -> Generator[Event, None, None]:
        cfg = self.config
        if cfg.ticket_mode == "faa":
            # One atomic, no race to lose: the fetch-style primitive.
            ticket = yield from self._faa(self.ring_addr + TAIL_OFF, 1)
        else:
            while True:
                raw = yield from self._read(self.ring_addr + TAIL_OFF, 8)
                tail = _U64.unpack(raw)[0]
                original = yield from self._cas(
                    self.ring_addr + TAIL_OFF, tail, tail + 1
                )
                if original == tail:
                    ticket = tail
                    break
                self.enq_retries += 1
                yield self.sim.timeout(
                    cfg.backoff_ns * (0.5 + self.rng.random())
                )
        if ticket >= cfg.capacity:
            raise RuntimeError("queue ring overflow; raise QueueConfig.capacity")
        # Publish the item: state = ticket + 1 marks the slot full.
        wr = WorkRequest.write(
            raddr=self.ring_addr + RING_OFF + ticket * SLOT_BYTES,
            rkey=self.ring_rkey,
            payload=_SLOT.pack(ticket + 1, item),
            inline=True,
        )
        yield from self.device.post_send_timed(self.rc_qp, wr)
        yield from self._await_cqes(1)
        self.enqueues.append((ticket, item))

    def _dequeue_onesided(self) -> Generator[Event, None, None]:
        cfg = self.config
        attempts = 0
        while True:
            raw = yield from self._read(self.ring_addr + HEAD_OFF, 16)
            head, tail = _SLOT.unpack(raw)
            if head >= tail:
                attempts += 1
                if attempts >= 8:
                    return  # empty; bounded politeness
                yield self.sim.timeout(
                    cfg.backoff_ns * (0.5 + self.rng.random())
                )
                continue
            original = yield from self._cas(self.ring_addr + HEAD_OFF, head, head + 1)
            if original != head:
                self.deq_retries += 1
                yield self.sim.timeout(
                    cfg.backoff_ns * (0.5 + self.rng.random())
                )
                continue
            # Ticket claimed; spin until the enqueuer's WRITE lands.
            slot_addr = self.ring_addr + RING_OFF + head * SLOT_BYTES
            while True:
                raw = yield from self._read(slot_addr, SLOT_BYTES)
                state, item = _SLOT.unpack(raw)
                if state == head + 1:
                    self.dequeues.append((head, item))
                    return
                yield self.sim.timeout(
                    cfg.backoff_ns * (0.5 + self.rng.random())
                )


class TxnQueueCluster:
    """A remote FIFO queue deployment, one-sided or RPC."""

    def __init__(
        self,
        config: Optional[QueueConfig] = None,
        profile: HardwareProfile = APT,
        n_clients: int = 6,
        n_client_machines: int = 3,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else QueueConfig()
        cfg = self.config
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, profile)
        self.server_device = RdmaDevice(
            Machine(self.sim, self.fabric, "server", cache_seed=seed)
        )
        self.ring = self.server_device.register_memory(
            RING_OFF + cfg.capacity * SLOT_BYTES
        )
        self.server: Optional[TxnServerProcess] = None
        if cfg.dataplane == "rpc":
            store = TxnPartitionStore(self.server_device, 0, 1, 1, 8)
            self.server = TxnServerProcess(0, self.server_device, store, 8)
            self._region = self.server_device.register_memory(max(1, n_clients) * 64)
            self._region.on_write = lambda offset, _len: self.server.arrivals.put(
                offset // 64
            )
            self.server.region = self._region
            self.server.req_slot_bytes = 64
            self.server.ud_qp = self.server_device.create_qp(Transport.UD)
        self.client_devices = [
            RdmaDevice(Machine(self.sim, self.fabric, "cm%d" % i, cache_seed=seed + i + 1))
            for i in range(n_client_machines)
        ]
        self.clients: List[_QueueClient] = []
        for cid in range(n_clients):
            device = self.client_devices[cid % len(self.client_devices)]
            client = _QueueClient(cid, device, cfg, child_rng(seed, "q.client.%d" % cid))
            if cfg.dataplane == "rpc":
                client.rpc = RpcChannel(
                    device, "q-c%d" % cid, cfg.rpc_timeout_ns, recv_bytes=64
                )
                s_uc = self.server_device.create_qp(Transport.UC)
                c_uc = device.create_qp(Transport.UC)
                s_uc.connect(device.machine.name, c_uc.qpn)
                c_uc.connect("server", s_uc.qpn)
                client.rpc.uc_qp = c_uc
                client.rpc.req_slots[0] = (self._region.addr + cid * 64, self._region.rkey)
                self.server.client_ahs.append(
                    (device.machine.name, client.rpc.ud_qp.qpn)
                )
            else:
                s_rc = self.server_device.create_qp(Transport.RC)
                c_rc = device.create_qp(Transport.RC)
                s_rc.connect(device.machine.name, c_rc.qpn)
                c_rc.connect("server", s_rc.qpn)
                client.rc_qp = c_rc
                client.ring_addr = self.ring.addr
                client.ring_rkey = self.ring.rkey
            self.clients.append(client)

    def run(self, warmup_ns: float = 0.0, horizon_ns: float = 2_000_000.0) -> QueueReport:
        meter = RateMeter(warmup_ns, float("inf"))
        latencies = LatencyRecorder(warmup_ns, float("inf"))
        finish = [0.0]
        for client in self.clients:
            def hook(now, latency, _m=meter, _l=latencies, _f=finish):
                _m.record(now)
                _l.record(now, latency)
                _f[0] = max(_f[0], now)

            client.completed_hook = hook
            client.start()
        if self.server is not None:
            self.server.start()
        self.sim.run(until=horizon_ns)
        self.sim.run_until_idle()
        # The workload is a fixed op count, not a fixed window: close
        # the meters at the last completion (sim.now is pinned to the
        # horizon by run(), long after the ops finished).
        meter.window_end = max(1.0, finish[0])
        latencies.window_end = meter.window_end
        return self._report(meter, latencies)

    def _report(self, meter: RateMeter, latencies: LatencyRecorder) -> QueueReport:
        enqueued: Dict[int, int] = {}
        violations: List[str] = []
        for client in self.clients:
            for ticket, item in client.enqueues:
                if ticket in enqueued:
                    violations.append("ticket %d enqueued twice" % ticket)
                enqueued[ticket] = item
        seen: Dict[int, int] = {}
        for client in self.clients:
            for ticket, item in client.dequeues:
                if ticket in seen:
                    violations.append("ticket %d dequeued twice" % ticket)
                seen[ticket] = item
                if ticket not in enqueued:
                    violations.append("ticket %d dequeued but never enqueued" % ticket)
                elif enqueued[ticket] != item:
                    violations.append(
                        "ticket %d: dequeued item %d != enqueued %d"
                        % (ticket, item, enqueued[ticket])
                    )
        # FIFO by construction = ticket order; per-client dequeue
        # tickets must be the order the client claimed them (appended).
        for client in self.clients:
            tickets = [t for t, _ in client.dequeues]
            if tickets != sorted(tickets):
                violations.append(
                    "client %d dequeued tickets out of order: %s" % (client.cid, tickets)
                )
        window = meter.window_end
        return QueueReport(
            dataplane=self.config.dataplane,
            ticket_mode=self.config.ticket_mode,
            result=collect(meter, latencies, window),
            enqueued=sum(len(c.enqueues) for c in self.clients),
            dequeued=sum(len(c.dequeues) for c in self.clients),
            enq_retries=sum(c.enq_retries for c in self.clients),
            deq_retries=sum(c.deq_retries for c in self.clients),
            violations=violations[:16],
        )
